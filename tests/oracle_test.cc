// Unit tests for the centralized reference semantics (the oracle itself),
// including the cases where the path-bounded semantics deliberately
// differs from the naive fixpoint.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/parser.h"

namespace codb {
namespace {

NetworkConfig TwoNodeLoop() {
  // a <-> b over relation d; data copied in both directions.
  NetworkConfig config;
  for (const char* name : {"a", "b"}) {
    NodeDecl decl;
    decl.name = name;
    decl.relations.push_back(RelationSchema(
        "d", {{"k", ValueType::kInt}}));
    config.AddNode(decl);
  }
  auto q = ParseQuery("d(X) :- d(X).");
  config.AddRule(CoordinationRule("ab", "a", "b", q.value()));
  config.AddRule(CoordinationRule("ba", "b", "a", q.value()));
  return config;
}

Instance D(std::vector<int64_t> keys) {
  Instance instance;
  for (int64_t k : keys) instance["d"].push_back(Tuple{Value::Int(k)});
  return instance;
}

TEST(OracleTest, TwoCycleDoesNotReflectOwnData) {
  // The defining corner case of the path-bounded semantics: in a 2-cycle,
  // a's own data travels to b but is never reflected back to a (the path
  // a -> b -> a is not simple).
  NetworkConfig config = TwoNodeLoop();
  NetworkInstance seeds = {{"a", D({1})}, {"b", D({2})}};

  Result<NetworkInstance> bounded = Oracle::PathBounded(config, seeds);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded.value().at("a").at("d").size(), 2u);  // 1 and 2
  EXPECT_EQ(bounded.value().at("b").at("d").size(), 2u);  // 2 and 1

  // The naive fixpoint agrees here (reflection adds no new tuples for
  // copy rules), making the ring a safe exactness test.
  Result<NetworkInstance> naive = Oracle::NaiveFixpoint(config, seeds);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(bounded.value(), naive.value());
}

TEST(OracleTest, ReflectionDifferenceWithRenaming) {
  // With a renaming through another relation the difference becomes
  // observable: b re-exports a's data into a *different* relation of a,
  // which the path bound forbids (a -> b -> a is not simple) but the
  // naive fixpoint allows.
  NetworkConfig config;
  {
    NodeDecl a;
    a.name = "a";
    a.relations.push_back(RelationSchema("d", {{"k", ValueType::kInt}}));
    a.relations.push_back(RelationSchema("back", {{"k", ValueType::kInt}}));
    config.AddNode(a);
    NodeDecl b;
    b.name = "b";
    b.relations.push_back(RelationSchema("d", {{"k", ValueType::kInt}}));
    config.AddNode(b);
  }
  config.AddRule(CoordinationRule(
      "ab", "b", "a", ParseQuery("d(X) :- d(X).").value()));
  config.AddRule(CoordinationRule(
      "ba", "a", "b", ParseQuery("back(X) :- d(X).").value()));
  ASSERT_TRUE(config.Validate().ok());

  NetworkInstance seeds = {{"a", D({1})}, {"b", D({2})}};

  Result<NetworkInstance> bounded = Oracle::PathBounded(config, seeds);
  ASSERT_TRUE(bounded.ok());
  // back at a holds only b's own key (2): key 1 would have had to travel
  // a -> b -> a.
  ASSERT_EQ(bounded.value().at("a").at("back").size(), 1u);
  EXPECT_EQ(bounded.value().at("a").at("back")[0], Tuple{Value::Int(2)});

  Result<NetworkInstance> naive = Oracle::NaiveFixpoint(config, seeds);
  ASSERT_TRUE(naive.ok());
  // The naive fixpoint reflects key 1 back.
  EXPECT_EQ(naive.value().at("a").at("back").size(), 2u);
}

TEST(OracleTest, ExistentialCycleTerminatesUnderPathBound) {
  // d(K,Z) :- d(K,V) around a 2-cycle: the unbounded chase would mint
  // nulls forever; the path bound stops after one lap.
  NetworkConfig config;
  for (const char* name : {"a", "b"}) {
    NodeDecl decl;
    decl.name = name;
    decl.relations.push_back(RelationSchema(
        "d", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
    config.AddNode(decl);
  }
  auto q = ParseQuery("d(K, Z) :- d(K, V).");
  config.AddRule(CoordinationRule("ab", "a", "b", q.value()));
  config.AddRule(CoordinationRule("ba", "b", "a", q.value()));
  ASSERT_TRUE(config.Validate().ok());

  NetworkInstance seeds = {
      {"a", {{"d", {Tuple{Value::Int(1), Value::Int(10)}}}}},
      {"b", {{"d", {Tuple{Value::Int(2), Value::Int(20)}}}}}};

  Result<NetworkInstance> bounded = Oracle::PathBounded(config, seeds);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  // a: own tuple + (2, null) imported from b. The import of (1, null)
  // back into a is blocked by the path bound.
  EXPECT_EQ(bounded.value().at("a").at("d").size(), 2u);

  // The naive fixpoint converges here too: the frontier projects away the
  // existential, so firings are keyed by the (finite) key values.
  Result<NetworkInstance> naive =
      Oracle::NaiveFixpoint(config, seeds, /*max_rounds=*/50);
  ASSERT_TRUE(naive.ok());
  // Naively, a additionally receives the reflected (1, null) via b.
  EXPECT_EQ(naive.value().at("a").at("d").size(), 3u);
}

TEST(OracleTest, NullFeedingCycleDivergesNaivelyButNotPathBounded) {
  // d(Z, K) :- d(K, V): the fresh null becomes next lap's key, so the
  // unbounded chase mints a genuinely new frontier every lap and never
  // converges — while the path bound stops after one lap per seed.
  NetworkConfig config;
  for (const char* name : {"a", "b"}) {
    NodeDecl decl;
    decl.name = name;
    decl.relations.push_back(RelationSchema(
        "d", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
    config.AddNode(decl);
  }
  auto q = ParseQuery("d(Z, K) :- d(K, V).");
  config.AddRule(CoordinationRule("ab", "a", "b", q.value()));
  config.AddRule(CoordinationRule("ba", "b", "a", q.value()));
  ASSERT_TRUE(config.Validate().ok());

  NetworkInstance seeds = {
      {"a", {{"d", {Tuple{Value::Int(1), Value::Int(10)}}}}},
      {"b", {{"d", {Tuple{Value::Int(2), Value::Int(20)}}}}}};

  Result<NetworkInstance> bounded = Oracle::PathBounded(config, seeds);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();

  Result<NetworkInstance> naive =
      Oracle::NaiveFixpoint(config, seeds, /*max_rounds=*/50);
  EXPECT_FALSE(naive.ok());
  EXPECT_EQ(naive.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OracleTest, SeedsForUnknownRelationsAreErrors) {
  NetworkConfig config = TwoNodeLoop();
  NetworkInstance seeds = {{"a", {{"ghost", {Tuple{Value::Int(1)}}}}}};
  Result<NetworkInstance> bounded = Oracle::PathBounded(config, seeds);
  EXPECT_FALSE(bounded.ok());
}

TEST(OracleTest, JoinRuleRequiresBothSides) {
  // b imports d-join-e from a; only keys present in both propagate.
  NetworkConfig config;
  for (const char* name : {"a", "b"}) {
    NodeDecl decl;
    decl.name = name;
    decl.relations.push_back(RelationSchema(
        "d", {{"k", ValueType::kInt}}));
    decl.relations.push_back(RelationSchema(
        "e", {{"k", ValueType::kInt}}));
    config.AddNode(decl);
  }
  config.AddRule(CoordinationRule(
      "r", "b", "a", ParseQuery("d(K) :- d(K), e(K).").value()));
  ASSERT_TRUE(config.Validate().ok());

  NetworkInstance seeds = {
      {"a",
       {{"d", {Tuple{Value::Int(1)}, Tuple{Value::Int(2)}}},
        {"e", {Tuple{Value::Int(2)}}}}}};
  Result<NetworkInstance> bounded = Oracle::PathBounded(config, seeds);
  ASSERT_TRUE(bounded.ok());
  ASSERT_EQ(bounded.value().at("b").at("d").size(), 1u);
  EXPECT_EQ(bounded.value().at("b").at("d")[0], Tuple{Value::Int(2)});
}

}  // namespace
}  // namespace codb
