// Unit tests for the utility layer: Status/Result, strings, PRNG.

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace codb {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::NotFound("relation 'r'");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: relation 'r'");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CODB_ASSIGN_OR_RETURN(int half, Half(x));
  CODB_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, ValueAndErrorPropagation) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());   // 3 is odd at the second step
  EXPECT_FALSE(Quarter(5).ok());
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  \t x y \n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("node n1", "node "));
  EXPECT_FALSE(StartsWith("no", "node"));
}

TEST(StringUtilTest, StrFormatAndHumanBytes) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024 + 512 * 1024), "3.5 MiB");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(7);
  Rng c2(8);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit

  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.Chance(0.5)) ++hits;
  }
  EXPECT_GT(hits, 350);
  EXPECT_LT(hits, 650);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, RandomStringHasRequestedShape) {
  Rng rng(4);
  std::string s = rng.RandomString(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace codb
