// Unit tests for relations, databases, and the table printer.

#include <gtest/gtest.h>

#include "relation/database.h"
#include "relation/printer.h"
#include "relation/relation.h"

namespace codb {
namespace {

RelationSchema TwoIntSchema(const std::string& name) {
  return RelationSchema(name, {{"a", ValueType::kInt},
                               {"b", ValueType::kInt}});
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(TwoIntSchema("r"));
  EXPECT_TRUE(r.Insert(Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Insert(Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(r.Insert(Tuple{Value::Int(1), Value::Int(3)}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(r.Contains(Tuple{Value::Int(9), Value::Int(9)}));
}

TEST(RelationTest, InsertNewReturnsOnlyFreshTuples) {
  Relation r(TwoIntSchema("r"));
  r.Insert(Tuple{Value::Int(1), Value::Int(1)});
  std::vector<Tuple> batch = {
      Tuple{Value::Int(1), Value::Int(1)},  // duplicate
      Tuple{Value::Int(2), Value::Int(2)},
      Tuple{Value::Int(2), Value::Int(2)},  // duplicate within batch
      Tuple{Value::Int(3), Value::Int(3)},
  };
  std::vector<Tuple> fresh = r.InsertNew(batch);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0], (Tuple{Value::Int(2), Value::Int(2)}));
  EXPECT_EQ(fresh[1], (Tuple{Value::Int(3), Value::Int(3)}));
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationTest, DifferenceDoesNotMutate) {
  Relation r(TwoIntSchema("r"));
  r.Insert(Tuple{Value::Int(1), Value::Int(1)});
  std::vector<Tuple> batch = {Tuple{Value::Int(1), Value::Int(1)},
                              Tuple{Value::Int(2), Value::Int(2)}};
  std::vector<Tuple> diff = r.Difference(batch);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], (Tuple{Value::Int(2), Value::Int(2)}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, ProbeFindsMatchingRows) {
  Relation r(TwoIntSchema("r"));
  for (int i = 0; i < 10; ++i) {
    r.Insert(Tuple{Value::Int(i % 3), Value::Int(i)});
  }
  const auto& bucket = r.Probe(0, Value::Int(1));
  EXPECT_EQ(bucket.size(), 3u);  // i = 1, 4, 7
  for (uint32_t row : bucket) {
    EXPECT_EQ(r.rows()[row].at(0), Value::Int(1));
  }
}

TEST(RelationTest, ProbeIndexMaintainedAcrossInserts) {
  // Inserts after the index is built must show up in later probes without
  // a rebuild (the index is appended to, never invalidated).
  Relation r(TwoIntSchema("r"));
  r.Insert(Tuple{Value::Int(1), Value::Int(10)});
  EXPECT_EQ(r.Probe(0, Value::Int(1)).size(), 1u);
  r.Insert(Tuple{Value::Int(1), Value::Int(20)});
  EXPECT_EQ(r.Probe(0, Value::Int(1)).size(), 2u);
  EXPECT_EQ(r.Probe(1, Value::Int(20)).size(), 1u);
}

TEST(RelationTest, ProbeBucketsSurviveRowStorageGrowth) {
  // Regression test for the dangling-pointer hazard of tuple-pointer
  // buckets: hold a bucket reference, then insert enough rows to force the
  // backing vector to reallocate several times, and dereference the bucket
  // through stable row positions. Exercised under ASan in CI.
  Relation r(TwoIntSchema("r"));
  r.Insert(Tuple{Value::Int(0), Value::Int(-1)});
  const auto& bucket = r.Probe(0, Value::Int(0));
  ASSERT_EQ(bucket.size(), 1u);
  for (int i = 1; i <= 1000; ++i) {
    r.Insert(Tuple{Value::Int(i % 7), Value::Int(i)});
  }
  // The same reference is still valid and now sees every later insert with
  // key 0 (i = 7, 14, ..., 994).
  EXPECT_EQ(bucket.size(), 1u + 142u);
  for (uint32_t row : bucket) {
    EXPECT_EQ(r.rows()[row].at(0), Value::Int(0));
  }
}

TEST(RelationTest, ProbeCompositeMatchesAllColumns) {
  Relation r(TwoIntSchema("r"));
  for (int i = 0; i < 12; ++i) {
    r.Insert(Tuple{Value::Int(i % 2), Value::Int(i)});
  }
  const auto& bucket =
      r.ProbeComposite({0, 1}, {Value::Int(1), Value::Int(5)});
  ASSERT_EQ(bucket.size(), 1u);  // exactly the row (1, 5)
  for (uint32_t row : bucket) {
    EXPECT_EQ(r.rows()[row].at(0), Value::Int(1));
    EXPECT_EQ(r.rows()[row].at(1), Value::Int(5));
  }
  EXPECT_TRUE(
      r.ProbeComposite({0, 1}, {Value::Int(0), Value::Int(5)}).empty());
}

TEST(RelationTest, ProbeCompositeMaintainedAcrossInserts) {
  Relation r(TwoIntSchema("r"));
  r.Insert(Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_EQ(
      r.ProbeComposite({0, 1}, {Value::Int(1), Value::Int(2)}).size(), 1u);
  // New rows flow into the already-built composite index too.
  r.Insert(Tuple{Value::Int(1), Value::Int(3)});
  r.Insert(Tuple{Value::Int(2), Value::Int(2)});
  EXPECT_EQ(
      r.ProbeComposite({0, 1}, {Value::Int(1), Value::Int(2)}).size(), 1u);
  EXPECT_EQ(
      r.ProbeComposite({0, 1}, {Value::Int(1), Value::Int(3)}).size(), 1u);
  // Single-column probes agree with the composite view.
  EXPECT_EQ(r.Probe(0, Value::Int(1)).size(), 2u);
  EXPECT_EQ(r.Probe(1, Value::Int(2)).size(), 2u);
}

TEST(RelationTest, ClearResetsEverything) {
  Relation r(TwoIntSchema("r"));
  r.Insert(Tuple{Value::Int(1), Value::Int(1)});
  r.Probe(0, Value::Int(1));
  r.ProbeComposite({0, 1}, {Value::Int(1), Value::Int(1)});
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.Probe(0, Value::Int(1)).empty());
  EXPECT_TRUE(
      r.ProbeComposite({0, 1}, {Value::Int(1), Value::Int(1)}).empty());
  EXPECT_TRUE(r.Insert(Tuple{Value::Int(1), Value::Int(1)}));
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  EXPECT_TRUE(db.CreateRelation(TwoIntSchema("r")).ok());
  EXPECT_TRUE(db.CreateRelation(TwoIntSchema("s")).ok());
  // Duplicate names rejected.
  Status dup = db.CreateRelation(TwoIntSchema("r"));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  EXPECT_NE(db.Find("r"), nullptr);
  EXPECT_NE(db.Find("s"), nullptr);
  EXPECT_EQ(db.Find("t"), nullptr);
  EXPECT_FALSE(db.Get("t").ok());
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"r", "s"}));
}

TEST(DatabaseTest, SchemaReflectsAllRelations) {
  // Regression: CreateRelation once lost relations to an unsequenced move.
  Database db;
  ASSERT_TRUE(db.CreateRelation(TwoIntSchema("d")).ok());
  ASSERT_TRUE(db.CreateRelation(TwoIntSchema("e")).ok());
  DatabaseSchema schema = db.Schema();
  EXPECT_NE(schema.FindRelation("d"), nullptr);
  EXPECT_NE(schema.FindRelation("e"), nullptr);
  EXPECT_EQ(schema.relations().size(), 2u);
}

TEST(DatabaseTest, SnapshotAndRestoreRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(TwoIntSchema("r")).ok());
  db.Find("r")->Insert(Tuple{Value::Int(1), Value::Int(2)});
  auto snapshot = db.Snapshot();

  db.Find("r")->Insert(Tuple{Value::Int(3), Value::Int(4)});
  EXPECT_EQ(db.TotalTuples(), 2u);

  ASSERT_TRUE(db.Restore(snapshot).ok());
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_TRUE(db.Find("r")->Contains(Tuple{Value::Int(1), Value::Int(2)}));
}

TEST(PrinterTest, FormatsAlignedTable) {
  Relation r(RelationSchema("people", {{"id", ValueType::kInt},
                                       {"name", ValueType::kString}}));
  r.Insert(Tuple{Value::Int(1), Value::String("bob")});
  r.Insert(Tuple{Value::Int(42), Value::String("alice")});
  std::string table = FormatRelation(r);
  EXPECT_NE(table.find("| id | name    |"), std::string::npos);
  EXPECT_NE(table.find("| 42 | 'alice' |"), std::string::npos);
}

}  // namespace
}  // namespace codb
