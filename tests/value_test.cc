// Unit tests for values, marked nulls, and tuples.

#include <gtest/gtest.h>

#include <unordered_set>

#include "relation/tuple.h"
#include "relation/value.h"

namespace codb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("abc").type(), ValueType::kString);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  Value null = Value::Null(3, 7);
  EXPECT_EQ(null.type(), ValueType::kNull);
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.AsNull().peer, 3u);
  EXPECT_EQ(null.AsNull().counter, 7u);
}

TEST(ValueTest, EqualityIsTypeAndPayload) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Int(2));
  // Int and double never compare equal, even numerically.
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
  // Marked nulls compare by label identity.
  EXPECT_EQ(Value::Null(1, 2), Value::Null(1, 2));
  EXPECT_FALSE(Value::Null(1, 2) == Value::Null(1, 3));
  EXPECT_FALSE(Value::Null(1, 2) == Value::Null(2, 2));
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> values = {
      Value::Int(2),          Value::Int(1),       Value::Double(0.5),
      Value::String("b"),     Value::String("a"),  Value::Null(0, 1),
      Value::Null(0, 0),
  };
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a < b; });
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_FALSE(values[i + 1] < values[i]);
  }
}

TEST(ValueTest, HashingDistinguishesTypes) {
  // Same payload bits, different type -> (almost surely) different hash.
  EXPECT_NE(Value::Int(0).Hash(), Value::Double(0.0).Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Null(1, 2).Hash(), Value::Null(1, 2).Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("bob").ToString(), "'bob'");
  EXPECT_EQ(Value::Null(7, 12).ToString(), "#7:12");
}

TEST(ValueTest, NumericView) {
  EXPECT_TRUE(Value::Int(3).IsNumeric());
  EXPECT_TRUE(Value::Double(3.5).IsNumeric());
  EXPECT_FALSE(Value::String("3").IsNumeric());
  EXPECT_FALSE(Value::Null(0, 0).IsNumeric());
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric(), 3.0);
}

TEST(ValueTest, WireSizeMatchesSerializedSize) {
  EXPECT_EQ(Value::Int(1).WireSize(), 9u);
  EXPECT_EQ(Value::Double(1.5).WireSize(), 9u);
  EXPECT_EQ(Value::String("abcd").WireSize(), 1u + 4u + 4u);
  EXPECT_EQ(Value::Null(1, 2).WireSize(), 1u + 4u + 8u);
}

TEST(TupleTest, BasicsAndEquality) {
  Tuple t{Value::Int(1), Value::String("a")};
  EXPECT_EQ(t.arity(), 2);
  EXPECT_EQ(t.at(0), Value::Int(1));
  EXPECT_EQ(t, (Tuple{Value::Int(1), Value::String("a")}));
  EXPECT_FALSE(t == (Tuple{Value::Int(1), Value::String("b")}));
}

TEST(TupleTest, HasNull) {
  EXPECT_FALSE((Tuple{Value::Int(1)}).HasNull());
  EXPECT_TRUE((Tuple{Value::Int(1), Value::Null(0, 0)}).HasNull());
}

TEST(TupleTest, CanonicalizeNullsIsOrderOfFirstOccurrence) {
  Tuple a{Value::Null(5, 9), Value::Int(1), Value::Null(5, 9),
          Value::Null(2, 2)};
  Tuple b{Value::Null(8, 1), Value::Int(1), Value::Null(8, 1),
          Value::Null(9, 9)};
  EXPECT_EQ(a.CanonicalizeNulls(), b.CanonicalizeNulls());

  // Different sharing pattern -> different canonical form.
  Tuple c{Value::Null(8, 1), Value::Int(1), Value::Null(9, 9),
          Value::Null(9, 9)};
  EXPECT_FALSE(a.CanonicalizeNulls() == c.CanonicalizeNulls());
}

TEST(TupleTest, HashConsistentWithEquality) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert(Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_EQ(set.count(Tuple{Value::Int(1), Value::Int(2)}), 1u);
  EXPECT_EQ(set.count(Tuple{Value::Int(2), Value::Int(1)}), 0u);
}

TEST(TupleTest, ToStringFormats) {
  Tuple t{Value::Int(1), Value::String("a"), Value::Null(3, 7)};
  EXPECT_EQ(t.ToString(), "(1, 'a', #3:7)");
}

}  // namespace
}  // namespace codb
