// Unit tests for the peer-discovery protocol (advertisement flooding).

#include <gtest/gtest.h>

#include <memory>

#include "net/discovery.h"
#include "net/network.h"

namespace codb {
namespace {

// A peer that routes advertisements into its DiscoveryService.
class DiscoveryPeer : public NetworkPeer {
 public:
  void Attach(Network* network, PeerId id) {
    service = std::make_unique<DiscoveryService>(network, id);
  }
  void HandleMessage(const Message& message) override {
    if (message.type == MessageType::kAdvertisement) {
      service->HandleAdvertisement(message);
    }
  }
  std::unique_ptr<DiscoveryService> service;
};

class DiscoveryTest : public ::testing::Test {
 protected:
  PeerId Add(const std::string& name) {
    peers_.push_back(std::make_unique<DiscoveryPeer>());
    PeerId id = network_.Join(name, peers_.back().get());
    peers_.back()->Attach(&network_, id);
    return id;
  }
  DiscoveryPeer& peer(size_t i) { return *peers_[i]; }

  Network network_;
  std::vector<std::unique_ptr<DiscoveryPeer>> peers_;
};

TEST_F(DiscoveryTest, AdvertisementRoundTrip) {
  PeerAdvertisement ad;
  ad.peer = PeerId(5);
  ad.epoch = 3;
  ad.name = "node-x";
  ad.exported_relations = {"d", "e"};
  Result<PeerAdvertisement> back =
      PeerAdvertisement::Deserialize(ad.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().peer, PeerId(5));
  EXPECT_EQ(back.value().epoch, 3u);
  EXPECT_EQ(back.value().name, "node-x");
  EXPECT_EQ(back.value().exported_relations,
            (std::vector<std::string>{"d", "e"}));
}

TEST_F(DiscoveryTest, FloodReachesTransitivePeers) {
  // a - b - c chain of pipes; a's announce reaches c through b.
  PeerId a = Add("a");
  PeerId b = Add("b");
  PeerId c = Add("c");
  ASSERT_TRUE(network_.OpenPipe(a, b).ok());
  ASSERT_TRUE(network_.OpenPipe(b, c).ok());

  peer(0).service->Announce("a", {"d"});
  network_.Run();

  EXPECT_TRUE(peer(1).service->Knows(a));
  EXPECT_TRUE(peer(2).service->Knows(a));
  ASSERT_EQ(peer(2).service->Known().size(), 1u);
  EXPECT_EQ(peer(2).service->Known()[0].name, "a");
  EXPECT_EQ(peer(2).service->Known()[0].exported_relations,
            (std::vector<std::string>{"d"}));
}

TEST_F(DiscoveryTest, FloodTerminatesOnCycles) {
  PeerId a = Add("a");
  PeerId b = Add("b");
  PeerId c = Add("c");
  ASSERT_TRUE(network_.OpenPipe(a, b).ok());
  ASSERT_TRUE(network_.OpenPipe(b, c).ok());
  ASSERT_TRUE(network_.OpenPipe(c, a).ok());

  peer(0).service->Announce("a", {});
  uint64_t events = network_.Run();
  // Bounded: each peer forwards each (origin, epoch) once.
  EXPECT_LT(events, 20u);
  EXPECT_TRUE(peer(1).service->Knows(a));
  EXPECT_TRUE(peer(2).service->Knows(a));
}

TEST_F(DiscoveryTest, NewerEpochReplacesOlder) {
  PeerId a = Add("a");
  PeerId b = Add("b");
  ASSERT_TRUE(network_.OpenPipe(a, b).ok());

  peer(0).service->Announce("a", {"d"});
  network_.Run();
  peer(0).service->Announce("a", {"d", "e"});
  network_.Run();

  ASSERT_EQ(peer(1).service->Known().size(), 1u);
  EXPECT_EQ(peer(1).service->Known()[0].exported_relations,
            (std::vector<std::string>{"d", "e"}));
  EXPECT_EQ(peer(1).service->Known()[0].epoch, 2u);
}

TEST_F(DiscoveryTest, MalformedAdvertisementIsDropped) {
  PeerId a = Add("a");
  PeerId b = Add("b");
  ASSERT_TRUE(network_.OpenPipe(a, b).ok());
  Message junk;
  junk.src = a;
  junk.dst = b;
  junk.type = MessageType::kAdvertisement;
  junk.payload = {1, 2, 3};
  ASSERT_TRUE(network_.Send(junk).ok());
  network_.Run();
  EXPECT_TRUE(peer(1).service->Known().empty());
}

}  // namespace
}  // namespace codb
