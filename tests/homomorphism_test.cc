// Unit tests for instance homomorphisms and the certain-part helper.

#include <gtest/gtest.h>

#include "query/homomorphism.h"

namespace codb {
namespace {

Tuple T2(Value a, Value b) { return Tuple{std::move(a), std::move(b)}; }

TEST(HomomorphismTest, GroundInstancesRequireSubsetInclusion) {
  Instance small = {{"r", {T2(Value::Int(1), Value::Int(2))}}};
  Instance big = {{"r",
                   {T2(Value::Int(1), Value::Int(2)),
                    T2(Value::Int(3), Value::Int(4))}}};
  EXPECT_TRUE(HasHomomorphism(small, big));
  EXPECT_FALSE(HasHomomorphism(big, small));
  EXPECT_FALSE(HomEquivalent(small, big));
  EXPECT_TRUE(HomEquivalent(big, big));
}

TEST(HomomorphismTest, NullMapsToAnyValue) {
  Instance with_null = {{"r", {T2(Value::Int(1), Value::Null(0, 0))}}};
  Instance ground = {{"r", {T2(Value::Int(1), Value::Int(99))}}};
  // The null can map onto 99...
  EXPECT_TRUE(HasHomomorphism(with_null, ground));
  // ...but 99 cannot map onto a null (constants are fixed).
  EXPECT_FALSE(HasHomomorphism(ground, with_null));
}

TEST(HomomorphismTest, NullMappingMustBeConsistent) {
  Value null = Value::Null(0, 0);
  // The same null twice must map to the same value.
  Instance from = {{"r", {T2(null, null)}}};
  Instance ok = {{"r", {T2(Value::Int(5), Value::Int(5))}}};
  Instance bad = {{"r", {T2(Value::Int(5), Value::Int(6))}}};
  EXPECT_TRUE(HasHomomorphism(from, ok));
  EXPECT_FALSE(HasHomomorphism(from, bad));
}

TEST(HomomorphismTest, CrossTupleNullSharing) {
  Value null = Value::Null(0, 0);
  Instance from = {{"r", {T2(Value::Int(1), null)}},
                   {"s", {T2(null, Value::Int(2))}}};
  // Consistent witness 7 in both relations.
  Instance ok = {{"r", {T2(Value::Int(1), Value::Int(7))}},
                 {"s", {T2(Value::Int(7), Value::Int(2))}}};
  // Inconsistent witnesses.
  Instance bad = {{"r", {T2(Value::Int(1), Value::Int(7))}},
                  {"s", {T2(Value::Int(8), Value::Int(2))}}};
  EXPECT_TRUE(HasHomomorphism(from, ok));
  EXPECT_FALSE(HasHomomorphism(from, bad));
}

TEST(HomomorphismTest, RenamedNullsAreEquivalent) {
  Instance a = {{"r", {T2(Value::Int(1), Value::Null(1, 1))}}};
  Instance b = {{"r", {T2(Value::Int(1), Value::Null(2, 9))}}};
  EXPECT_TRUE(HomEquivalent(a, b));
}

TEST(HomomorphismTest, NullCanFoldOntoAnotherTuple) {
  // {r(1,⊥)} maps into {r(1,2)} and vice versa {r(1,2), r(1,⊥)} is
  // hom-equivalent to {r(1,2)} (the null folds onto 2).
  Instance a = {{"r",
                 {T2(Value::Int(1), Value::Int(2)),
                  T2(Value::Int(1), Value::Null(0, 0))}}};
  Instance b = {{"r", {T2(Value::Int(1), Value::Int(2))}}};
  EXPECT_TRUE(HomEquivalent(a, b));
}

TEST(HomomorphismTest, MissingRelationBlocksHomomorphism) {
  Instance from = {{"r", {T2(Value::Int(1), Value::Int(2))}}};
  Instance to = {{"s", {T2(Value::Int(1), Value::Int(2))}}};
  EXPECT_FALSE(HasHomomorphism(from, to));
  // An empty relation on the from-side is no constraint.
  Instance empty_rel = {{"r", {}}};
  EXPECT_TRUE(HasHomomorphism(empty_rel, to));
}

TEST(HomomorphismTest, EmptyInstanceMapsAnywhere) {
  Instance empty;
  Instance any = {{"r", {T2(Value::Int(1), Value::Int(2))}}};
  EXPECT_TRUE(HasHomomorphism(empty, any));
  EXPECT_TRUE(HasHomomorphism(empty, empty));
  EXPECT_FALSE(HasHomomorphism(any, empty));
}

TEST(HomomorphismTest, BacktrackingFindsNonGreedyAssignment) {
  Value n1 = Value::Null(0, 1);
  Value n2 = Value::Null(0, 2);
  // n1 must be 3 (forced by s); greedy matching of r could try n1=1 first.
  Instance from = {{"r", {T2(n1, n2)}},
                   {"s", {Tuple{n1}}}};
  Instance to = {{"r",
                  {T2(Value::Int(1), Value::Int(2)),
                   T2(Value::Int(3), Value::Int(4))}},
                 {"s", {Tuple{Value::Int(3)}}}};
  EXPECT_TRUE(HasHomomorphism(from, to));
}

TEST(HomomorphismTest, CertainPartStripsNullTuples) {
  Instance mixed = {{"r",
                     {T2(Value::Int(2), Value::Int(1)),
                      T2(Value::Int(1), Value::Null(0, 0)),
                      T2(Value::Int(1), Value::Int(9))}}};
  Instance certain = CertainPart(mixed);
  ASSERT_EQ(certain.at("r").size(), 2u);
  // Sorted for stable comparison.
  EXPECT_EQ(certain.at("r")[0], T2(Value::Int(1), Value::Int(9)));
  EXPECT_EQ(certain.at("r")[1], T2(Value::Int(2), Value::Int(1)));
}

}  // namespace
}  // namespace codb
