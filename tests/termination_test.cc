// Unit tests for the Dijkstra–Scholten termination detector.

#include <gtest/gtest.h>

#include <vector>

#include "core/termination.h"

namespace codb {
namespace {

class TerminationTest : public ::testing::Test {
 protected:
  TerminationTest()
      : detector_(PeerId(0), [this](PeerId to, const FlowId& flow) {
          acks_sent.push_back({to, flow});
        }) {}

  FlowId flow_{FlowId::Scope::kUpdate, 0, 1};
  std::vector<std::pair<PeerId, FlowId>> acks_sent;
  std::vector<FlowId> terminated;
  TerminationDetector detector_;

  TerminationDetector::TerminatedFn OnTerminated() {
    return [this](const FlowId& flow) { terminated.push_back(flow); };
  }
};

TEST_F(TerminationTest, RootWithNoTrafficTerminatesImmediately) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
  EXPECT_EQ(terminated[0], flow_);
  // Termination fires once, even with repeated idle checks.
  detector_.MaybeQuiesce();
  EXPECT_EQ(terminated.size(), 1u);
}

TEST_F(TerminationTest, RootWaitsForAcks) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnSent(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());
  EXPECT_EQ(detector_.DeficitOf(flow_), 2u);

  detector_.OnAck(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());

  detector_.OnAck(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
}

TEST_F(TerminationTest, NonRootDefersFirstAckUntilQuiet) {
  // First message engages; no immediate ack.
  detector_.OnBasicMessage(flow_, PeerId(7));
  EXPECT_TRUE(acks_sent.empty());
  EXPECT_TRUE(detector_.IsEngaged(flow_));

  // Second message from elsewhere is acked immediately.
  detector_.OnBasicMessage(flow_, PeerId(8));
  ASSERT_EQ(acks_sent.size(), 1u);
  EXPECT_EQ(acks_sent[0].first, PeerId(8));

  // We sent something ourselves: cannot disengage yet.
  detector_.OnSent(flow_, PeerId(9));
  detector_.MaybeQuiesce();
  EXPECT_EQ(acks_sent.size(), 1u);
  EXPECT_TRUE(detector_.IsEngaged(flow_));

  // Our message is acked: now the deferred parent ack goes out.
  detector_.OnAck(flow_, PeerId(9));
  detector_.MaybeQuiesce();
  ASSERT_EQ(acks_sent.size(), 2u);
  EXPECT_EQ(acks_sent[1].first, PeerId(7));
  EXPECT_FALSE(detector_.IsEngaged(flow_));
}

TEST_F(TerminationTest, ReengagementAfterDisengage) {
  detector_.OnBasicMessage(flow_, PeerId(7));
  detector_.MaybeQuiesce();  // disengages, acks 7
  ASSERT_EQ(acks_sent.size(), 1u);

  // A later message re-engages with a new parent.
  detector_.OnBasicMessage(flow_, PeerId(8));
  EXPECT_TRUE(detector_.IsEngaged(flow_));
  detector_.MaybeQuiesce();
  ASSERT_EQ(acks_sent.size(), 2u);
  EXPECT_EQ(acks_sent[1].first, PeerId(8));
}

TEST_F(TerminationTest, IndependentFlowsDoNotInterfere) {
  FlowId other{FlowId::Scope::kQuery, 3, 9};
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnBasicMessage(other, PeerId(2));
  detector_.OnSent(other, PeerId(4));

  detector_.OnAck(other, PeerId(4));
  detector_.MaybeQuiesce();
  // `other` disengaged (ack to 2); `flow_` still pending.
  ASSERT_EQ(acks_sent.size(), 1u);
  EXPECT_EQ(acks_sent[0].first, PeerId(2));
  EXPECT_TRUE(terminated.empty());
  EXPECT_FALSE(detector_.IsEngaged(other));
  EXPECT_TRUE(detector_.IsEngaged(flow_));
}

TEST_F(TerminationTest, PeerLossCancelsDeficit) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnSent(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());

  // Peer 1 dies with two outstanding messages.
  detector_.OnPeerLost(PeerId(1));
  EXPECT_EQ(detector_.DeficitOf(flow_), 1u);
  detector_.OnAck(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
}

TEST_F(TerminationTest, OrphanedNodeDisengagesSilently) {
  detector_.OnBasicMessage(flow_, PeerId(7));  // engaged with parent 7
  detector_.OnSent(flow_, PeerId(9));
  detector_.OnPeerLost(PeerId(7));  // parent gone
  detector_.OnAck(flow_, PeerId(9));
  detector_.MaybeQuiesce();
  // No ack was sent to the dead parent.
  EXPECT_TRUE(acks_sent.empty());
  EXPECT_FALSE(detector_.IsEngaged(flow_));
}

TEST_F(TerminationTest, StrayAckIsIgnored) {
  // No crash, no spurious state, on an ack for an unknown flow.
  detector_.OnAck(flow_, PeerId(3));
  EXPECT_EQ(detector_.DeficitOf(flow_), 0u);
}

TEST_F(TerminationTest, DuplicateAckDoesNotUnderflowDeficit) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnSent(flow_, PeerId(2));

  detector_.OnAck(flow_, PeerId(1));
  // A duplicated ack from the same peer must be dropped, not counted
  // against peer 2's outstanding message.
  detector_.OnAck(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());
  EXPECT_EQ(detector_.DeficitOf(flow_), 1u);

  detector_.OnAck(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
}

TEST_F(TerminationTest, AckAfterPeerLostIsDropped) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnSent(flow_, PeerId(2));

  // Peer 1's deficit is cancelled; its in-flight ack then arrives anyway
  // (loss was a partition, not a death). It must not be matched against
  // peer 2's bucket.
  detector_.OnPeerLost(PeerId(1));
  detector_.OnAck(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());
  EXPECT_EQ(detector_.DeficitOf(flow_), 1u);

  detector_.OnAck(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
}

TEST_F(TerminationTest, AckFromPeerNeverSentToIsDropped) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));

  // The flow is known but peer 2 owes us nothing: a forged/rerouted ack
  // must not release peer 1's deficit.
  detector_.OnAck(flow_, PeerId(2));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());
  EXPECT_EQ(detector_.DeficitOf(flow_), 1u);

  detector_.OnAck(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
}

TEST_F(TerminationTest, LostParentWithZeroDeficitThenReengage) {
  // Engaged with nothing outstanding: losing the parent must disengage
  // immediately (no MaybeQuiesce in the peer-lost path fires for us).
  detector_.OnBasicMessage(flow_, PeerId(7));
  detector_.OnPeerLost(PeerId(7));
  EXPECT_FALSE(detector_.IsEngaged(flow_));
  EXPECT_TRUE(acks_sent.empty());

  // A later wave re-engages cleanly with the new parent.
  detector_.OnBasicMessage(flow_, PeerId(8));
  EXPECT_TRUE(detector_.IsEngaged(flow_));
  detector_.MaybeQuiesce();
  ASSERT_EQ(acks_sent.size(), 1u);
  EXPECT_EQ(acks_sent[0].first, PeerId(8));
}

TEST_F(TerminationTest, CancelOneReleasesExactlyOneUnit) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));
  detector_.OnSent(flow_, PeerId(1));

  detector_.CancelOne(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());
  EXPECT_EQ(detector_.DeficitOf(flow_), 1u);

  detector_.CancelOne(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  ASSERT_EQ(terminated.size(), 1u);
  // Further cancels are no-ops.
  detector_.CancelOne(flow_, PeerId(1));
  EXPECT_EQ(detector_.DeficitOf(flow_), 0u);
}

TEST_F(TerminationTest, AbortAtRootSkipsTerminationCallback) {
  detector_.StartRoot(flow_, OnTerminated());
  detector_.OnSent(flow_, PeerId(1));

  detector_.Abort(flow_);
  EXPECT_EQ(detector_.DeficitOf(flow_), 0u);
  // The caller reports the abort itself; on_terminated stays unfired even
  // across later idle checks and stray acks.
  detector_.MaybeQuiesce();
  detector_.OnAck(flow_, PeerId(1));
  detector_.MaybeQuiesce();
  EXPECT_TRUE(terminated.empty());
}

TEST_F(TerminationTest, AbortAtNonRootSendsDeferredParentAck) {
  detector_.OnBasicMessage(flow_, PeerId(7));
  detector_.OnSent(flow_, PeerId(9));

  detector_.Abort(flow_);
  ASSERT_EQ(acks_sent.size(), 1u);
  EXPECT_EQ(acks_sent[0].first, PeerId(7));
  EXPECT_FALSE(detector_.IsEngaged(flow_));
  EXPECT_EQ(detector_.DeficitOf(flow_), 0u);
}

}  // namespace
}  // namespace codb
