// Helpers shared across the test suite.

#ifndef CODB_TESTS_TEST_UTIL_H_
#define CODB_TESTS_TEST_UTIL_H_

#include <vector>

#include "relation/relation.h"

namespace codb {
namespace test {

// Removes one tuple from a relation (relations are append-only; tests
// rebuild).
inline void DeleteTuple(Relation* relation, const Tuple& victim) {
  std::vector<Tuple> kept;
  for (const Tuple& t : relation->rows()) {
    if (!(t == victim)) kept.push_back(t);
  }
  relation->Clear();
  for (const Tuple& t : kept) relation->Insert(t);
}

}  // namespace test
}  // namespace codb

#endif  // CODB_TESTS_TEST_UTIL_H_
