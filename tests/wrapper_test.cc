// Unit tests for the Wrapper and the DBS repository, including mediator
// (LDB-less) nodes.

#include <gtest/gtest.h>

#include "wrapper/wrapper.h"

namespace codb {
namespace {

DatabaseSchema TwoRelations() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  schema.AddRelation(RelationSchema("s", {{"a", ValueType::kInt}}));
  return schema;
}

TEST(DbsRepositoryTest, ExportedMustBeSubsetOfCatalog) {
  DatabaseSchema catalog = TwoRelations();
  DbsRepository dbs;

  DatabaseSchema good;
  good.AddRelation(*catalog.FindRelation("r"));
  EXPECT_TRUE(dbs.SetExported(good, &catalog).ok());
  EXPECT_TRUE(dbs.Exports("r"));
  EXPECT_FALSE(dbs.Exports("s"));
  EXPECT_EQ(dbs.ExportedRelationNames(),
            (std::vector<std::string>{"r"}));

  DatabaseSchema unknown;
  unknown.AddRelation(RelationSchema("ghost", {{"x", ValueType::kInt}}));
  EXPECT_EQ(dbs.SetExported(unknown, &catalog).code(),
            StatusCode::kNotFound);

  DatabaseSchema mismatched;
  mismatched.AddRelation(
      RelationSchema("r", {{"a", ValueType::kString},
                           {"b", ValueType::kInt}}));
  EXPECT_EQ(dbs.SetExported(mismatched, &catalog).code(),
            StatusCode::kInvalidArgument);
}

TEST(WrapperTest, DatabaseModeSharesTheLdb) {
  Database ldb;
  DatabaseSchema schema = TwoRelations();
  for (const RelationSchema& rel : schema.relations()) {
    ASSERT_TRUE(ldb.CreateRelation(rel).ok());
  }
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForDatabase(&ldb, TwoRelations());
  ASSERT_TRUE(wrapper.ok()) << wrapper.status().ToString();
  EXPECT_FALSE(wrapper.value()->is_mediator());

  // Writes through the wrapper land in the LDB.
  ldb.Find("r")->Insert(Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_EQ(wrapper.value()->StoredTuples(), 1u);
  EXPECT_EQ(&wrapper.value()->storage(), &ldb);
}

TEST(WrapperTest, MediatorOwnsTransientStore) {
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForMediator(TwoRelations());
  ASSERT_TRUE(wrapper.ok()) << wrapper.status().ToString();
  EXPECT_TRUE(wrapper.value()->is_mediator());
  // The transient store is laid out after the DBS and starts empty.
  EXPECT_EQ(wrapper.value()->StoredTuples(), 0u);
  EXPECT_NE(wrapper.value()->storage().Find("r"), nullptr);
  EXPECT_NE(wrapper.value()->storage().Find("s"), nullptr);
}

TEST(WrapperTest, ApplyHeadTuplesReturnsOnlyFresh) {
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForMediator(TwoRelations());
  ASSERT_TRUE(wrapper.ok());
  Wrapper& w = *wrapper.value();

  std::vector<HeadTuple> batch = {
      {"r", Tuple{Value::Int(1), Value::Int(2)}},
      {"s", Tuple{Value::Int(7)}},
      {"r", Tuple{Value::Int(1), Value::Int(2)}},  // dup within batch
  };
  Result<std::map<std::string, std::vector<Tuple>>> fresh =
      w.ApplyHeadTuples(batch);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().at("r").size(), 1u);
  EXPECT_EQ(fresh.value().at("s").size(), 1u);

  // Re-applying yields nothing new (T' = T \ R).
  Result<std::map<std::string, std::vector<Tuple>>> again =
      w.ApplyHeadTuples(batch);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().empty());

  // Unknown relation is an error.
  Result<std::map<std::string, std::vector<Tuple>>> bad =
      w.ApplyHeadTuples({{"ghost", Tuple{Value::Int(1)}}});
  EXPECT_FALSE(bad.ok());
}

TEST(WrapperTest, EvaluateQueryJoinsAndProjects) {
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForMediator(TwoRelations());
  ASSERT_TRUE(wrapper.ok());
  Wrapper& w = *wrapper.value();
  w.storage().Find("r")->Insert(Tuple{Value::Int(1), Value::Int(10)});
  w.storage().Find("r")->Insert(Tuple{Value::Int(2), Value::Int(20)});
  w.storage().Find("s")->Insert(Tuple{Value::Int(1)});

  ConjunctiveQuery q;
  q.head.push_back({"q", {Term::Var("B")}});
  q.body.push_back({"r", {Term::Var("A"), Term::Var("B")}});
  q.body.push_back({"s", {Term::Var("A")}});
  Result<std::vector<Tuple>> rows = w.EvaluateQuery(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], (Tuple{Value::Int(10)}));
}

TEST(WrapperTest, EvaluateQueryRejectsUnsafeOrMultiHead) {
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForMediator(TwoRelations());
  ASSERT_TRUE(wrapper.ok());

  ConjunctiveQuery multi;
  multi.head.push_back({"q", {Term::Var("A")}});
  multi.head.push_back({"p", {Term::Var("A")}});
  multi.body.push_back({"s", {Term::Var("A")}});
  EXPECT_FALSE(wrapper.value()->EvaluateQuery(multi).ok());

  ConjunctiveQuery unsafe;
  unsafe.head.push_back({"q", {Term::Var("Z")}});
  unsafe.body.push_back({"s", {Term::Var("A")}});
  EXPECT_FALSE(wrapper.value()->EvaluateQuery(unsafe).ok());
}

TEST(WrapperTest, ForDatabaseRequiresDatabase) {
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForDatabase(nullptr, TwoRelations());
  EXPECT_FALSE(wrapper.ok());
  EXPECT_EQ(wrapper.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace codb
