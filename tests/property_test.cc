// Property-based sweeps: for every (topology, rule style, seed)
// combination, the distributed global update must
//   (1) terminate with every joined node complete,
//   (2) agree with the path-bounded oracle — exactly on the certain part
//       and up to homomorphic equivalence overall — on topologies whose
//       frontier derivations are unique (disjoint seed keys guarantee
//       this on chains, stars, trees and directed rings),
//   (3) map homomorphically into the naive fixpoint (soundness upper
//       bound) whenever the latter converges,
//   (4) report internally consistent statistics.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

enum class Topology { kChain, kRing, kStar, kTree, kGrid, kRandom };

const char* TopologyName(Topology t) {
  switch (t) {
    case Topology::kChain:
      return "Chain";
    case Topology::kRing:
      return "Ring";
    case Topology::kStar:
      return "Star";
    case Topology::kTree:
      return "Tree";
    case Topology::kGrid:
      return "Grid";
    case Topology::kRandom:
      return "Random";
  }
  return "?";
}

const char* StyleName(RuleStyle s) {
  switch (s) {
    case RuleStyle::kCopy:
      return "Copy";
    case RuleStyle::kProject:
      return "Project";
    case RuleStyle::kJoin:
      return "Join";
    case RuleStyle::kFilter:
      return "Filter";
    case RuleStyle::kMultiHead:
      return "MultiHead";
    case RuleStyle::kJoinCopy:
      return "JoinCopy";
  }
  return "?";
}

GeneratedNetwork Generate(Topology topology, const WorkloadOptions& options) {
  switch (topology) {
    case Topology::kChain:
      return MakeChain(options);
    case Topology::kRing:
      return MakeRing(options);
    case Topology::kStar:
      return MakeStar(options);
    case Topology::kTree:
      return MakeTree(options);
    case Topology::kGrid:
      return MakeGrid(options);
    case Topology::kRandom:
      return MakeRandom(options);
  }
  return MakeChain(options);
}

// Unique-derivation topologies where exact oracle agreement is asserted.
bool ExactnessExpected(Topology t) {
  return t == Topology::kChain || t == Topology::kStar ||
         t == Topology::kTree || t == Topology::kRing;
}

using SweepParam = std::tuple<Topology, RuleStyle, uint64_t /*seed*/>;

class GlobalUpdateSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GlobalUpdateSweep, MatchesReferenceSemantics) {
  auto [topology, style, seed] = GetParam();

  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 4;
  options.seed = seed;
  options.style = style;
  options.grid_rows = 2;
  options.grid_cols = 3;
  options.edge_probability = 0.4;
  GeneratedNetwork generated = Generate(topology, options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();

  // (1) Termination: every joined node completed.
  EXPECT_TRUE(bed.AllComplete(update.value()));

  NetworkInstance actual = bed.Snapshot();

  // (2) Oracle agreement on unique-derivation topologies.
  if (ExactnessExpected(topology)) {
    Result<NetworkInstance> oracle =
        Oracle::PathBounded(generated.config, generated.seeds);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    for (const auto& [node, instance] : oracle.value()) {
      EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
          << "certain part mismatch at " << node;
      EXPECT_TRUE(HomEquivalent(instance, actual.at(node)))
          << "hom-equivalence failed at " << node;
    }
  }

  // (3) Soundness against the naive fixpoint (when it converges; project
  // style on cyclic topologies may not, and that is fine).
  Result<NetworkInstance> naive =
      Oracle::NaiveFixpoint(generated.config, generated.seeds,
                            /*max_rounds=*/200);
  if (naive.ok()) {
    for (const auto& [node, instance] : actual) {
      EXPECT_TRUE(HasHomomorphism(instance, naive.value().at(node)))
          << "unsound data at " << node;
    }
  }

  // (4) Statistics sanity.
  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    if (report == nullptr) continue;
    EXPECT_LE(report->longest_path_nodes,
              static_cast<uint32_t>(generated.config.nodes().size()));
    EXPECT_GE(report->complete_virtual_us, report->start_virtual_us);
    if (report->data_messages_received > 0) {
      EXPECT_GT(report->data_bytes_received, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GlobalUpdateSweep,
    ::testing::Combine(
        ::testing::Values(Topology::kChain, Topology::kRing, Topology::kStar,
                          Topology::kTree, Topology::kGrid,
                          Topology::kRandom),
        ::testing::Values(RuleStyle::kCopy, RuleStyle::kProject,
                          RuleStyle::kJoin, RuleStyle::kFilter,
                          RuleStyle::kMultiHead, RuleStyle::kJoinCopy),
        ::testing::Values(1u, 7u, 42u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(TopologyName(std::get<0>(info.param))) +
             StyleName(std::get<1>(info.param)) + "Seed" +
             std::to_string(std::get<2>(info.param));
    });

// Initiator-independence: the final instances do not depend on which node
// starts the global update (on unique-derivation topologies).
class InitiatorSweep : public ::testing::TestWithParam<int> {};

TEST_P(InitiatorSweep, ResultIndependentOfInitiator) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 3;
  options.seed = 11;
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  std::string initiator = NodeName(GetParam());
  Result<FlowId> update = testbed.value()->RunGlobalUpdate(initiator);
  ASSERT_TRUE(update.ok());

  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = testbed.value()->Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << "initiator " << initiator << ", node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(AllInitiators, InitiatorSweep,
                         ::testing::Range(0, 5));

// Dedup ablations (experiment E6): disabling either dedup must preserve
// the final result while strictly increasing traffic on cyclic nets.
struct DedupParam {
  bool dedup_received;
  bool dedup_sent;
};

class DedupSweep : public ::testing::TestWithParam<DedupParam> {};

TEST_P(DedupSweep, ResultUnchangedTrafficGrows) {
  // A grid delivers the same data to a node along multiple simple paths,
  // which is exactly the duplication the two dedups suppress.
  WorkloadOptions options;
  options.tuples_per_node = 4;
  options.grid_rows = 2;
  options.grid_cols = 3;
  GeneratedNetwork generated = MakeGrid(options);

  auto run = [&](UpdateManager::Options update_options)
      -> std::pair<NetworkInstance, uint64_t> {
    Testbed::Options testbed_options;
    testbed_options.node.update = update_options;
    Result<std::unique_ptr<Testbed>> testbed =
        Testbed::Create(generated, testbed_options);
    EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
    Result<FlowId> update = testbed.value()->RunGlobalUpdate("n0");
    EXPECT_TRUE(update.ok());
    EXPECT_TRUE(testbed.value()->AllComplete(update.value()));
    uint64_t data_messages =
        testbed.value()->network().stats().MessagesOfType(
            MessageType::kUpdateData);
    return {testbed.value()->Snapshot(), data_messages};
  };

  auto [baseline_instances, baseline_messages] = run({});

  UpdateManager::Options ablated;
  ablated.dedup_received = GetParam().dedup_received;
  ablated.dedup_sent = GetParam().dedup_sent;
  auto [ablated_instances, ablated_messages] = run(ablated);

  // Same certain data everywhere.
  for (const auto& [node, instance] : baseline_instances) {
    EXPECT_EQ(CertainPart(instance),
              CertainPart(ablated_instances.at(node)))
        << "node " << node;
  }
  // Never less traffic than the fully-dedupped baseline.
  EXPECT_GE(ablated_messages, baseline_messages);
  if (!GetParam().dedup_sent && !GetParam().dedup_received) {
    // With both dedups off, every duplicate arrival re-derives and
    // re-ships frontiers: strictly more data messages.
    EXPECT_GT(ablated_messages, baseline_messages);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, DedupSweep,
    ::testing::Values(DedupParam{false, true}, DedupParam{true, false},
                      DedupParam{false, false}),
    [](const ::testing::TestParamInfo<DedupParam>& info) {
      return std::string("Recv") +
             (info.param.dedup_received ? "On" : "Off") + "Sent" +
             (info.param.dedup_sent ? "On" : "Off");
    });

}  // namespace
}  // namespace codb
