// Unit tests for conjunctive-query containment (Chandra–Merlin).

#include <gtest/gtest.h>

#include "query/containment.h"
#include "query/parser.h"

namespace codb {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddRelation(RelationSchema(
        "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    schema_.AddRelation(RelationSchema(
        "s", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    schema_.AddRelation(RelationSchema(
        "q", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    schema_.AddRelation(RelationSchema("p", {{"a", ValueType::kInt}}));
  }

  bool Contained(const std::string& q1, const std::string& q2) {
    Result<ConjunctiveQuery> a = ParseQuery(q1);
    Result<ConjunctiveQuery> b = ParseQuery(q2);
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_TRUE(b.ok()) << b.status().ToString();
    Result<bool> result = IsContained(a.value(), b.value(), schema_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() && result.value();
  }

  DatabaseSchema schema_;
};

TEST_F(ContainmentTest, IdenticalQueriesContainEachOther) {
  EXPECT_TRUE(Contained("q(X, Y) :- r(X, Y).", "q(A, B) :- r(A, B)."));
}

TEST_F(ContainmentTest, MoreJoinsMeansSmaller) {
  // Joining with s restricts the answers.
  EXPECT_TRUE(Contained("q(X, Y) :- r(X, Y), s(X, Y).",
                        "q(X, Y) :- r(X, Y)."));
  EXPECT_FALSE(Contained("q(X, Y) :- r(X, Y).",
                         "q(X, Y) :- r(X, Y), s(X, Y)."));
}

TEST_F(ContainmentTest, ClassicPathFolding) {
  // A two-hop path query is contained in the one-hop-with-anything query.
  EXPECT_TRUE(Contained("q(X, X) :- r(X, X).",
                        "q(A, B) :- r(A, B)."));
  EXPECT_FALSE(Contained("q(A, B) :- r(A, B).",
                         "q(X, X) :- r(X, X)."));
}

TEST_F(ContainmentTest, SelfJoinFoldsOntoLoop) {
  // r(X,Y),r(Y,Z) can be satisfied by mapping onto a single loop r(A,A):
  // so the loop query is contained in the path query.
  EXPECT_TRUE(Contained("q(A, A) :- r(A, A).",
                        "q(X, Z) :- r(X, Y), r(Y, Z)."));
}

TEST_F(ContainmentTest, ConstantsMustMatch) {
  EXPECT_TRUE(Contained("q(X, 5) :- r(X, 5).", "q(A, B) :- r(A, B)."));
  EXPECT_FALSE(Contained("q(A, B) :- r(A, B).", "q(X, 5) :- r(X, 5)."));
  EXPECT_FALSE(Contained("q(X, 4) :- r(X, 4).", "q(X, 5) :- r(X, 5)."));
}

TEST_F(ContainmentTest, DifferentHeadPredicatesNeverContained) {
  // Head arity mismatch -> trivially false.
  Result<ConjunctiveQuery> a = ParseQuery("p(X) :- r(X, Y).");
  Result<ConjunctiveQuery> b = ParseQuery("q(X, Y) :- r(X, Y).");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<bool> result = IsContained(a.value(), b.value(), schema_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value());
}

TEST_F(ContainmentTest, EquivalenceOfRenamedQueries) {
  Result<ConjunctiveQuery> a = ParseQuery("q(X, Y) :- r(X, Z), r(Z, Y).");
  Result<ConjunctiveQuery> b = ParseQuery("q(U, V) :- r(U, W), r(W, V).");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<bool> eq = AreEquivalent(a.value(), b.value(), schema_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST_F(ContainmentTest, RedundantAtomElimination) {
  // The duplicated atom is redundant: both directions hold.
  Result<ConjunctiveQuery> minimal = ParseQuery("q(X, Y) :- r(X, Y).");
  Result<ConjunctiveQuery> redundant =
      ParseQuery("q(X, Y) :- r(X, Y), r(X, W).");
  ASSERT_TRUE(minimal.ok() && redundant.ok());
  Result<bool> eq = AreEquivalent(minimal.value(), redundant.value(),
                                  schema_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value());
}

TEST_F(ContainmentTest, UnsupportedFeaturesReportErrors) {
  Result<ConjunctiveQuery> comparison =
      ParseQuery("q(X) :- r(X, Y), Y > 3.");
  Result<ConjunctiveQuery> plain = ParseQuery("q(X) :- r(X, Y).");
  ASSERT_TRUE(comparison.ok() && plain.ok());
  Result<bool> result =
      IsContained(comparison.value(), plain.value(), schema_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  Result<ConjunctiveQuery> glav = ParseQuery("q(X, Z) :- r(X, Y).");
  ASSERT_TRUE(glav.ok());
  EXPECT_FALSE(IsContained(glav.value(), plain.value(), schema_).ok());
}

}  // namespace
}  // namespace codb
