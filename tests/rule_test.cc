// Unit tests for GLAV coordination rules: compilation, frontier
// evaluation, head instantiation with marked nulls, multi-atom heads.

#include <gtest/gtest.h>

#include "query/parser.h"
#include "query/rule.h"
#include "relation/database.h"

namespace codb {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Exporter schema: src(a, b); importer schema: dst(x, y), extra(x).
    exporter_schema_.AddRelation(RelationSchema(
        "src", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    importer_schema_.AddRelation(RelationSchema(
        "dst", {{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
    importer_schema_.AddRelation(
        RelationSchema("extra", {{"x", ValueType::kInt}}));

    ASSERT_TRUE(exporter_db_
                    .CreateRelation(*exporter_schema_.FindRelation("src"))
                    .ok());
  }

  void InsertSrc(int64_t a, int64_t b) {
    exporter_db_.Find("src")->Insert(Tuple{Value::Int(a), Value::Int(b)});
  }

  DatabaseSchema exporter_schema_;
  DatabaseSchema importer_schema_;
  Database exporter_db_;
};

TEST_F(RuleTest, GavCopyRule) {
  CoordinationRule rule("r1", "importer", "exporter",
                        Q("dst(A, B) :- src(A, B)."));
  ASSERT_TRUE(rule.Compile(exporter_schema_, importer_schema_).ok());
  EXPECT_FALSE(rule.HasExistentials());
  EXPECT_EQ(rule.HeadRelations(), (std::vector<std::string>{"dst"}));
  EXPECT_EQ(rule.BodyRelations(), (std::vector<std::string>{"src"}));

  InsertSrc(1, 2);
  std::vector<Tuple> frontiers = rule.EvaluateFrontier(exporter_db_);
  ASSERT_EQ(frontiers.size(), 1u);

  NullMinter minter(9);
  std::vector<HeadTuple> heads = rule.InstantiateHead(frontiers[0], minter);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0].relation, "dst");
  EXPECT_EQ(heads[0].tuple, (Tuple{Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(minter.minted(), 0u);  // no existentials, no nulls
}

TEST_F(RuleTest, ExistentialHeadMintsSharedNulls) {
  // Z appears twice in the head of one firing: the same null both times.
  CoordinationRule rule("r1", "importer", "exporter",
                        Q("dst(A, Z), extra(Z) :- src(A, B)."));
  ASSERT_TRUE(rule.Compile(exporter_schema_, importer_schema_).ok());
  EXPECT_TRUE(rule.HasExistentials());

  InsertSrc(1, 2);
  InsertSrc(3, 4);
  std::vector<Tuple> frontiers = rule.EvaluateFrontier(exporter_db_);
  ASSERT_EQ(frontiers.size(), 2u);

  NullMinter minter(9);
  std::vector<HeadTuple> first = rule.InstantiateHead(frontiers[0], minter);
  std::vector<HeadTuple> second = rule.InstantiateHead(frontiers[1], minter);
  ASSERT_EQ(first.size(), 2u);

  // Within a firing, the null is shared across head atoms...
  const Value& null1 = first[0].tuple.at(1);
  EXPECT_TRUE(null1.is_null());
  EXPECT_EQ(null1, first[1].tuple.at(0));
  // ...across firings the nulls are fresh.
  EXPECT_FALSE(null1 == second[0].tuple.at(1));
  EXPECT_EQ(minter.minted(), 2u);
}

TEST_F(RuleTest, FrontierProjectsOntoDistinguishedVarsOnly) {
  // Head only mentions A; frontier is the A-projection, deduplicated.
  CoordinationRule rule("r1", "importer", "exporter",
                        Q("extra(A) :- src(A, B)."));
  ASSERT_TRUE(rule.Compile(exporter_schema_, importer_schema_).ok());
  InsertSrc(1, 10);
  InsertSrc(1, 20);
  InsertSrc(2, 30);
  EXPECT_EQ(rule.EvaluateFrontier(exporter_db_).size(), 2u);
}

TEST_F(RuleTest, ComparisonInBody) {
  CoordinationRule rule("r1", "importer", "exporter",
                        Q("dst(A, B) :- src(A, B), B > 10."));
  ASSERT_TRUE(rule.Compile(exporter_schema_, importer_schema_).ok());
  InsertSrc(1, 5);
  InsertSrc(2, 15);
  std::vector<Tuple> frontiers = rule.EvaluateFrontier(exporter_db_);
  ASSERT_EQ(frontiers.size(), 1u);
}

TEST_F(RuleTest, ConstantsInHead) {
  CoordinationRule rule("r1", "importer", "exporter",
                        Q("dst(A, 99) :- src(A, B)."));
  ASSERT_TRUE(rule.Compile(exporter_schema_, importer_schema_).ok());
  InsertSrc(1, 2);
  NullMinter minter(9);
  std::vector<Tuple> frontiers = rule.EvaluateFrontier(exporter_db_);
  ASSERT_EQ(frontiers.size(), 1u);
  std::vector<HeadTuple> heads = rule.InstantiateHead(frontiers[0], minter);
  EXPECT_EQ(heads[0].tuple.at(1), Value::Int(99));
}

TEST_F(RuleTest, DeltaEvaluation) {
  CoordinationRule rule("r1", "importer", "exporter",
                        Q("dst(A, B) :- src(A, B)."));
  ASSERT_TRUE(rule.Compile(exporter_schema_, importer_schema_).ok());
  InsertSrc(1, 2);
  Tuple fresh{Value::Int(3), Value::Int(4)};
  exporter_db_.Find("src")->Insert(fresh);
  std::vector<Tuple> frontiers =
      rule.EvaluateFrontierDelta(exporter_db_, "src", {fresh});
  ASSERT_EQ(frontiers.size(), 1u);
  EXPECT_EQ(frontiers[0], (Tuple{Value::Int(3), Value::Int(4)}));
}

TEST_F(RuleTest, CompileRejectsBadRules) {
  // Head predicate not in importer schema.
  CoordinationRule bad_head("r", "i", "e", Q("nope(A) :- src(A, B)."));
  EXPECT_FALSE(bad_head.Compile(exporter_schema_, importer_schema_).ok());

  // Body predicate not in exporter schema.
  CoordinationRule bad_body("r", "i", "e", Q("dst(A, A) :- nope(A)."));
  EXPECT_FALSE(bad_body.Compile(exporter_schema_, importer_schema_).ok());

  // Arity mismatch.
  CoordinationRule bad_arity("r", "i", "e", Q("dst(A) :- src(A, B)."));
  EXPECT_FALSE(bad_arity.Compile(exporter_schema_, importer_schema_).ok());
}

TEST_F(RuleTest, ToStringMentionsDirection) {
  CoordinationRule rule("r7", "n2", "n1", Q("dst(A, B) :- src(A, B)."));
  std::string text = rule.ToString();
  EXPECT_NE(text.find("r7"), std::string::npos);
  EXPECT_NE(text.find("n2 <- n1"), std::string::npos);
}

}  // namespace
}  // namespace codb
