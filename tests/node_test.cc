// Direct tests of the Node API: creation, configuration errors, pipe
// lifecycle driven by rules, discovery integration, and the operations
// that require a configuration.

#include <gtest/gtest.h>

#include "net/network.h"
#include "core/node.h"
#include "core/super_peer.h"
#include "query/parser.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

DatabaseSchema OneRelation() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema("d", {{"k", ValueType::kInt}}));
  return schema;
}

TEST(NodeTest, CreateJoinsNetworkAndAnnounces) {
  Network network;
  Result<std::unique_ptr<Node>> node =
      Node::Create(&network, "solo", OneRelation());
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_TRUE(node.value()->id().valid());
  EXPECT_EQ(node.value()->name(), "solo");
  EXPECT_FALSE(node.value()->is_mediator());
  EXPECT_TRUE(network.IsAlive(node.value()->id()));
  EXPECT_EQ(network.NameOf(node.value()->id()), "solo");
}

TEST(NodeTest, MediatorHasTransientStore) {
  Network network;
  Result<std::unique_ptr<Node>> node =
      Node::Create(&network, "relay", OneRelation(), /*mediator=*/true);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(node.value()->is_mediator());
  EXPECT_NE(node.value()->database().Find("d"), nullptr);
}

TEST(NodeTest, OperationsRequireConfiguration) {
  Network network;
  Result<std::unique_ptr<Node>> node =
      Node::Create(&network, "lonely", OneRelation());
  ASSERT_TRUE(node.ok());

  EXPECT_EQ(node.value()->StartGlobalUpdate().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(node.value()->StartGlobalRefresh().status().code(),
            StatusCode::kFailedPrecondition);
  Result<ConjunctiveQuery> q = ParseQuery("q(K) :- d(K).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(node.value()->StartQuery(q.value()).status().code(),
            StatusCode::kFailedPrecondition);
  // Local queries work without a configuration.
  EXPECT_TRUE(node.value()->LocalQuery(q.value()).ok());
  EXPECT_FALSE(node.value()->has_config());
  EXPECT_TRUE(node.value()->ConsistencyViolations().empty());
}

TEST(NodeTest, ConfigSchemaMismatchRejected) {
  Network network;
  Result<std::unique_ptr<Node>> node =
      Node::Create(&network, "a", OneRelation());
  ASSERT_TRUE(node.ok());

  // Config declares a's relation with a different type.
  Result<NetworkConfig> config = NetworkConfig::Parse(
      "node a\n  relation d(k:string)\n"
      "node b\n  relation d(k:string)\n"
      "rule r1 a <- b : d(K) :- d(K).\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  Status applied = node.value()->ApplyConfig(config.value(), 1);
  EXPECT_EQ(applied.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(node.value()->has_config());
}

TEST(NodeTest, RulesDrivePipeLifecycle) {
  Network network;
  Result<std::unique_ptr<Node>> a =
      Node::Create(&network, "a", OneRelation());
  Result<std::unique_ptr<Node>> b =
      Node::Create(&network, "b", OneRelation());
  Result<std::unique_ptr<Node>> c =
      Node::Create(&network, "c", OneRelation());
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  Result<NetworkConfig> with_ab = NetworkConfig::Parse(
      "node a\n  relation d(k:int)\n"
      "node b\n  relation d(k:int)\n"
      "node c\n  relation d(k:int)\n"
      "rule r1 a <- b : d(K) :- d(K).\n");
  ASSERT_TRUE(with_ab.ok());
  ASSERT_TRUE(a.value()->ApplyConfig(with_ab.value(), 1).ok());
  EXPECT_TRUE(network.HasPipe(a.value()->id(), b.value()->id()));
  EXPECT_FALSE(network.HasPipe(a.value()->id(), c.value()->id()));

  // New config connects a to c instead: the a-b pipe is dropped.
  Result<NetworkConfig> with_ac = NetworkConfig::Parse(
      "node a\n  relation d(k:int)\n"
      "node b\n  relation d(k:int)\n"
      "node c\n  relation d(k:int)\n"
      "rule r2 a <- c : d(K) :- d(K).\n");
  ASSERT_TRUE(with_ac.ok());
  ASSERT_TRUE(a.value()->ApplyConfig(with_ac.value(), 2).ok());
  EXPECT_FALSE(network.HasPipe(a.value()->id(), b.value()->id()));
  EXPECT_TRUE(network.HasPipe(a.value()->id(), c.value()->id()));
}

TEST(NodeTest, ReportWorksBeforeConfiguration) {
  Network network;
  Result<std::unique_ptr<Node>> node =
      Node::Create(&network, "bare", OneRelation());
  ASSERT_TRUE(node.ok());
  std::string report = node.value()->Report();
  EXPECT_NE(report.find("node bare"), std::string::npos);
  EXPECT_NE(report.find("exported schema"), std::string::npos);
  std::string view = node.value()->DiscoveryView();
  EXPECT_NE(view.find("acquaintances"), std::string::npos);
}

TEST(NodeTest, QueryAnswersForUnknownFlowFails) {
  Network network;
  Result<std::unique_ptr<Node>> a =
      Node::Create(&network, "a", OneRelation());
  Result<std::unique_ptr<Node>> b =
      Node::Create(&network, "b", OneRelation());
  ASSERT_TRUE(a.ok() && b.ok());
  Result<NetworkConfig> config = NetworkConfig::Parse(
      "node a\n  relation d(k:int)\n"
      "node b\n  relation d(k:int)\n"
      "rule r1 a <- b : d(K) :- d(K).\n");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(a.value()->ApplyConfig(config.value(), 1).ok());

  FlowId ghost{FlowId::Scope::kQuery, 0, 42};
  EXPECT_FALSE(a.value()->QueryAnswers(ghost).ok());
  EXPECT_FALSE(a.value()->QueryDone(ghost));
}

TEST(NodeTest, DuplicateNamesResolveToFirstAlive) {
  // The network allows duplicate names (peers are ids); name resolution
  // returns the first alive peer, and nodes keep working.
  Network network;
  Result<std::unique_ptr<Node>> first =
      Node::Create(&network, "twin", OneRelation());
  Result<std::unique_ptr<Node>> second =
      Node::Create(&network, "twin", OneRelation());
  ASSERT_TRUE(first.ok() && second.ok());
  Result<PeerId> resolved = network.FindByName("twin");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), first.value()->id());
  ASSERT_TRUE(network.Leave(first.value()->id()).ok());
  Result<PeerId> after = network.FindByName("twin");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), second.value()->id());
}

}  // namespace
}  // namespace codb
