// Larger-scale smoke tests: 64-node networks across topologies, checking
// termination, data completeness at the initiator, statistics sanity, and
// that the simulator keeps these runs cheap (they must not time out).

#include <gtest/gtest.h>

#include "workload/testbed.h"

namespace codb {
namespace {

TEST(ScaleTest, SixtyFourNodeChain) {
  WorkloadOptions options;
  options.nodes = 64;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
  // n0 accumulates the whole chain.
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 64u * 5u);
  // Longest path covers the whole chain.
  const UpdateReport* report =
      bed.node("n0")->statistics().FindReport(update.value());
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->longest_path_nodes, 64u);
}

TEST(ScaleTest, SixtyFourNodeTreeAndStats) {
  WorkloadOptions options;
  options.nodes = 64;
  options.tuples_per_node = 8;
  options.tree_fanout = 4;
  GeneratedNetwork generated = MakeTree(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 64u * 8u);

  ASSERT_TRUE(bed.CollectStats().ok());
  std::vector<AggregatedUpdateStats> aggregated =
      bed.super_peer().Aggregate();
  ASSERT_EQ(aggregated.size(), 1u);
  EXPECT_EQ(aggregated[0].nodes_reporting, 64u);
  // Depth of a fanout-4 tree with 64 nodes: 4 levels of nodes.
  EXPECT_EQ(aggregated[0].longest_path_nodes, 4u);
}

TEST(ScaleTest, FiftyNodeRandomGraphTerminates) {
  WorkloadOptions options;
  options.nodes = 50;
  options.tuples_per_node = 3;
  options.edge_probability = 0.08;
  options.seed = 13;
  GeneratedNetwork generated = MakeRandom(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    if (report == nullptr) continue;
    EXPECT_LE(report->longest_path_nodes, 50u);
  }
}

TEST(ScaleTest, WideRingOnThreads) {
  // 32 real threads around a ring.
  WorkloadOptions options;
  options.nodes = 32;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeRing(options);

  Testbed::Options testbed_options;
  testbed_options.threaded = true;
  testbed_options.node.link_profile.latency_us = 50;
  testbed_options.node.link_profile.bandwidth_bpus = 0;

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, testbed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 32u * 2u);
}

}  // namespace
}  // namespace codb
