// Tests of the write-ahead journal: logging, replay, serialization, and
// full crash-recovery of a node's imports after a global update.

#include <gtest/gtest.h>

#include <cstdio>

#include "relation/wal.h"
#include "workload/testbed.h"

namespace codb {
namespace {

RelationSchema DSchema() {
  return RelationSchema("d", {{"k", ValueType::kInt},
                              {"v", ValueType::kInt}});
}

TEST(WalTest, LogAndReplay) {
  WriteAheadLog wal;
  wal.LogInsert("d", Tuple{Value::Int(1), Value::Int(10)});
  wal.LogInsert("d", Tuple{Value::Int(2), Value::Int(20)});
  EXPECT_EQ(wal.entry_count(), 2u);

  Database db;
  ASSERT_TRUE(db.CreateRelation(DSchema()).ok());
  ASSERT_TRUE(wal.ReplayInto(db).ok());
  EXPECT_EQ(db.Find("d")->size(), 2u);
  // Replaying again is idempotent (set semantics).
  ASSERT_TRUE(wal.ReplayInto(db).ok());
  EXPECT_EQ(db.Find("d")->size(), 2u);
}

TEST(WalTest, ReplayIntoUnknownRelationFails) {
  WriteAheadLog wal;
  wal.LogInsert("ghost", Tuple{Value::Int(1)});
  Database db;
  ASSERT_TRUE(db.CreateRelation(DSchema()).ok());
  EXPECT_FALSE(wal.ReplayInto(db).ok());
}

TEST(WalTest, SerializationRoundTrip) {
  WriteAheadLog wal;
  wal.LogInsert("d", Tuple{Value::Int(1), Value::Null(3, 7)});
  wal.LogInsert("e", Tuple{Value::String("x")});
  std::vector<uint8_t> bytes = wal.Serialize();

  Result<WriteAheadLog> back = WriteAheadLog::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().entry_count(), 2u);
  EXPECT_EQ(back.value().Serialize(), bytes);

  // Truncation and trailing garbage rejected.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(WriteAheadLog::Deserialize(truncated).ok());
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(WriteAheadLog::Deserialize(padded).ok());
}

TEST(WalTest, GoldenBytesAreStable) {
  // Pins the exact on-disk journal bytes. The in-memory representation of
  // values (e.g. string interning) must never leak into the format: this
  // byte sequence is the contract with journals written by older builds.
  WriteAheadLog wal;
  wal.LogInsert("d", Tuple{Value::Int(7), Value::String("ab")});
  const std::vector<uint8_t> expected = {
      0x01, 0x00, 0x00, 0x00,              // entry count = 1
      0x01, 0x00, 0x00, 0x00, 'd',         // relation name "d"
      0x02, 0x00,                          // tuple arity = 2
      0x00, 0x07, 0, 0, 0, 0, 0, 0, 0,     // int 7
      0x02, 0x02, 0x00, 0x00, 0x00, 'a', 'b',  // string "ab"
  };
  EXPECT_EQ(wal.Serialize(), expected);
}

TEST(WalTest, FilePersistenceRoundTrip) {
  WriteAheadLog wal;
  wal.LogInsert("d", Tuple{Value::Int(1), Value::Int(10)});
  wal.LogInsert("d", Tuple{Value::Int(2), Value::Null(5, 5)});

  std::string path = ::testing::TempDir() + "codb_wal_test.journal";
  ASSERT_TRUE(wal.SaveToFile(path).ok());

  Result<WriteAheadLog> back = WriteAheadLog::LoadFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().entry_count(), 2u);
  EXPECT_EQ(back.value().Serialize(), wal.Serialize());
  std::remove(path.c_str());

  EXPECT_FALSE(WriteAheadLog::LoadFromFile(path).ok());
  EXPECT_FALSE(
      WriteAheadLog::LoadFromFile("/no/such/dir/x.journal").ok());
  EXPECT_FALSE(wal.SaveToFile("/no/such/dir/x.journal").ok());
}

TEST(WalTest, DeserializeRejectsCorruptBlobsWithoutCrashing) {
  WriteAheadLog wal;
  wal.LogInsert("d", Tuple{Value::Int(1), Value::Int(10)});
  wal.LogInsert("d", Tuple{Value::Int(2), Value::Int(20)});
  std::vector<uint8_t> bytes = wal.Serialize();

  // An empty blob has no entry count.
  EXPECT_FALSE(WriteAheadLog::Deserialize({}).ok());

  // A flipped byte in the leading entry count desynchronizes every
  // subsequent read; the bounds checks must catch it.
  std::vector<uint8_t> bad_count = bytes;
  bad_count[0] ^= 0xFF;
  EXPECT_FALSE(WriteAheadLog::Deserialize(bad_count).ok());

  // A flipped byte inside a record (first entry's relation-name length)
  // is caught the same way.
  std::vector<uint8_t> bad_length = bytes;
  bad_length[4] ^= 0xFF;
  EXPECT_FALSE(WriteAheadLog::Deserialize(bad_length).ok());

  // The valid blob still parses (the corruption copies didn't alias).
  EXPECT_TRUE(WriteAheadLog::Deserialize(bytes).ok());
}

TEST(WalTest, NodeRecoversImportsAfterRestart) {
  // Run a global update with a journal attached to n0, then rebuild n0's
  // store from its base data plus the journal: identical contents.
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 6;
  GeneratedNetwork generated = MakeChain(options);

  WriteAheadLog journal;
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  bed.node("n0")->AttachJournal(&journal);

  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  auto after_update = bed.node("n0")->database().Snapshot();
  EXPECT_EQ(journal.entry_count(), 18u);  // 3 nodes x 6 imported tuples

  // "Restart": fresh database seeded with n0's base data only.
  Database recovered;
  DatabaseSchema standard = StandardSchema();
  for (const RelationSchema& rel : standard.relations()) {
    ASSERT_TRUE(recovered.CreateRelation(rel).ok());
  }
  for (const auto& [relation, tuples] : generated.seeds.at("n0")) {
    for (const Tuple& t : tuples) recovered.Find(relation)->Insert(t);
  }
  // Replay a journal that survived serialization (as a file would).
  Result<WriteAheadLog> reloaded =
      WriteAheadLog::Deserialize(journal.Serialize());
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(reloaded.value().ReplayInto(recovered).ok());

  EXPECT_EQ(recovered.Snapshot(), after_update);
}

}  // namespace
}  // namespace codb
