// Tests over the heterogeneous data-integration workload: GLAV mappings
// of all shapes converging on one registry, with and without mediators,
// checked against the path-bounded oracle and for schema-level sanity.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "query/parser.h"
#include "workload/testbed.h"

namespace codb {
namespace {

TEST(IntegrationWorkloadTest, GeneratorProducesValidHeterogeneousConfig) {
  WorkloadOptions options;
  options.tuples_per_node = 5;
  GeneratedNetwork generated =
      MakeIntegration(options, /*sources=*/6, /*with_mediators=*/true);

  EXPECT_TRUE(generated.config.Validate().ok());
  // registry + 6 sources + 3 mediators (every odd source).
  EXPECT_EQ(generated.config.nodes().size(), 10u);
  // Schemas genuinely differ across sources.
  EXPECT_NE(generated.config.SchemaOf("src0").FindRelation("people"),
            nullptr);
  EXPECT_NE(generated.config.SchemaOf("src1").FindRelation("emp"),
            nullptr);
  EXPECT_NE(generated.config.SchemaOf("src2").FindRelation("clients"),
            nullptr);
  EXPECT_EQ(generated.config.SchemaOf("src0").FindRelation("emp"), nullptr);
}

TEST(IntegrationWorkloadTest, UpdateIntegratesAllSources) {
  WorkloadOptions options;
  options.tuples_per_node = 6;
  options.seed = 5;
  GeneratedNetwork generated =
      MakeIntegration(options, /*sources=*/3, /*with_mediators=*/false);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("registry");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.AllComplete(update.value()));

  Node* registry = bed.node("registry");
  // origin has one row per source tuple: 3 sources x 6.
  EXPECT_EQ(registry->database().Find("origin")->size(), 18u);

  // person: src0 contributes only adults; src1 one row per emp; src2 one
  // row per client with a null witness for the name.
  const Relation* person = registry->database().Find("person");
  int with_null = 0;
  for (const Tuple& t : person->rows()) {
    if (t.HasNull()) ++with_null;
  }
  EXPECT_EQ(with_null, 6);  // src2's clients
  EXPECT_LE(person->size(), 18u);

  // Attribution via the constant-tagged origin relation.
  Result<std::vector<Tuple>> from_src1 = registry->LocalQuery(
      ParseQuery("q(I) :- origin(I, 1).").value());
  ASSERT_TRUE(from_src1.ok());
  EXPECT_EQ(from_src1.value().size(), 6u);

  // Oracle agreement (derivations are unique: star-shaped flows).
  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << node;
    EXPECT_TRUE(HomEquivalent(instance, actual.at(node))) << node;
  }
}

TEST(IntegrationWorkloadTest, MediatedSourcesReachRegistryTransitively) {
  WorkloadOptions options;
  options.tuples_per_node = 4;
  GeneratedNetwork generated =
      MakeIntegration(options, /*sources=*/4, /*with_mediators=*/true);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("registry");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.AllComplete(update.value()));

  // All four sources' origin rows arrive, mediated or not.
  EXPECT_EQ(bed.node("registry")->database().Find("origin")->size(), 16u);
  // Mediators are marked and hold relayed rows in their transient store.
  EXPECT_TRUE(bed.node("med1")->is_mediator());
  EXPECT_GT(bed.node("med1")->database().TotalTuples(), 0u);
}

TEST(IntegrationWorkloadTest, QueryTimeAnsweringOnIntegrationScenario) {
  WorkloadOptions options;
  options.tuples_per_node = 3;
  GeneratedNetwork generated =
      MakeIntegration(options, /*sources=*/3, /*with_mediators=*/false);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> query = bed.node("registry")->StartQuery(
      ParseQuery("q(I, S) :- origin(I, S).").value());
  ASSERT_TRUE(query.ok());
  bed.network().Run();
  ASSERT_TRUE(bed.node("registry")->QueryDone(query.value()));
  Result<std::vector<Tuple>> answers =
      bed.node("registry")->QueryAnswers(query.value());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value().size(), 9u);
  // Stores untouched by the query-time fetch.
  EXPECT_EQ(bed.node("registry")->database().TotalTuples(), 0u);
}

}  // namespace
}  // namespace codb
