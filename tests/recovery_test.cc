// Integration tests of crash recovery: nodes with durable storage are
// killed (cleanly or mid-global-update), restarted from disk, and the
// network must converge back to the oracle fixed point. Also checks that
// durability counters flow into the super-peer's final report.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "storage/fs_util.h"
#include "test_util.h"
#include "workload/testbed.h"

namespace codb {
namespace {

// A scratch storage root with the per-node subdirectories of a previous
// run emptied (the testbed stores node state under <root>/<node name>).
std::string FreshStorageRoot(const std::string& name, int nodes) {
  std::string root = ::testing::TempDir() + "codb_recovery_" + name;
  for (int i = 0; i < nodes; ++i) {
    std::string dir = root + "/n" + std::to_string(i);
    Result<std::vector<std::string>> stale = ListDirectory(dir);
    if (!stale.ok()) continue;
    for (const std::string& file : stale.value()) {
      EXPECT_TRUE(RemoveFile(dir + "/" + file).ok());
    }
  }
  return root;
}

TEST(RecoveryIntegrationTest, CleanKillRestartRecoversExactStore) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Testbed::Options bed_options;
  bed_options.storage.directory = FreshStorageRoot("clean", options.nodes);
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  Instance before = bed.node("n1")->database().Snapshot();
  ASSERT_GT(before.at("d").size(), 3u);  // imports beyond the seed

  ASSERT_TRUE(bed.KillNode("n1").ok());
  EXPECT_EQ(bed.node("n1"), nullptr);

  Result<Node*> revived = bed.RestartNode("n1");
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  // No re-seeding happened: the store came back from checkpoint + WAL.
  EXPECT_EQ(revived.value()->database().Snapshot(), before);
  EXPECT_GT(revived.value()->durable_storage()->recovery().checkpoint_tuples,
            0u);

  // Durability counters travel with the stats reports to the super-peer.
  ASSERT_TRUE(bed.CollectStats().ok());
  const auto& durability = bed.super_peer().collected_durability();
  ASSERT_FALSE(durability.empty());
  ASSERT_NE(durability.find("n1"), durability.end());
  EXPECT_GT(durability.at("n1").recovered_checkpoint_tuples +
                durability.at("n1").recovered_wal_records,
            0u);
  EXPECT_NE(bed.super_peer().FinalReport().find("durability"),
            std::string::npos);
}

TEST(RecoveryIntegrationTest, KillMidUpdateRestartsAndConverges) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Testbed::Options bed_options;
  bed_options.storage.directory = FreshStorageRoot("churn", options.nodes);
  bed_options.storage.checkpoint_every = 2;  // checkpoints during the run
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  // Start a global update but run only a handful of events: the network
  // is killed mid-diffusion, with data messages still in flight.
  ASSERT_TRUE(bed.node("n0")->StartGlobalUpdate().ok());
  bed.network().Run(10);
  ASSERT_TRUE(bed.KillNode("n1").ok());
  bed.network().Run();  // drain what the dead node's absence leaves behind

  // Restart from disk: whatever n1 had durably imported survives; the
  // half-finished update is abandoned by the config re-broadcast.
  Result<Node*> revived = bed.RestartNode("n1");
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_GE(revived.value()->database().Find("d")->size(), 3u);  // the seed

  // A fresh global update from the initiator converges the network to the
  // oracle fixed point (updates are monotone, so the partially recovered
  // imports are simply a head start).
  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok());
  bed.network().Run();
  ASSERT_TRUE(bed.AllComplete(update.value()));

  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << "node " << node;
  }
}

TEST(RecoveryIntegrationTest, RefreshPlusCheckpointMakesDeletionDurable) {
  // The WAL is insert-only, so a refresh-propagated deletion becomes
  // durable through the next checkpoint: recovery starts from the
  // post-refresh snapshot and the deleted tuple cannot resurrect from
  // older WAL records (they are bounded by the checkpoint's LSN).
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Testbed::Options bed_options;
  bed_options.storage.directory = FreshStorageRoot("refresh", options.nodes);
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());

  // First kill/restart cycle, then delete an imported tuple at its source
  // and refresh the network: it disappears downstream.
  ASSERT_TRUE(bed.KillNode("n0").ok());
  Result<Node*> revived = bed.RestartNode("n0");
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();

  Tuple victim = generated.seeds.at("n2").at("d")[0];
  test::DeleteTuple(bed.node("n2")->database().Find("d"), victim);
  Result<FlowId> refresh = bed.node("n1")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  bed.network().Run();
  ASSERT_TRUE(bed.AllComplete(refresh.value()));
  ASSERT_FALSE(bed.node("n1")->database().Find("d")->Contains(victim));

  // Checkpoint the post-refresh store, then cycle n1 again: the deletion
  // held, the rest of the store is intact, and checkpoint numbering
  // resumed past the previous incarnation's files.
  Instance post_refresh = bed.node("n1")->database().Snapshot();
  ASSERT_TRUE(bed.node("n1")->durable_storage()->Checkpoint().ok());
  ASSERT_TRUE(bed.KillNode("n1").ok());
  revived = bed.RestartNode("n1");
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(revived.value()->database().Snapshot(), post_refresh);
  EXPECT_FALSE(revived.value()->database().Find("d")->Contains(victim));
  EXPECT_GT(revived.value()->durable_storage()->recovery().checkpoint_lsn,
            0u);
}

}  // namespace
}  // namespace codb
