// Unit tests for the per-node statistical module and its wire format.

#include <gtest/gtest.h>

#include "core/statistics.h"

namespace codb {
namespace {

UpdateReport SampleReport() {
  UpdateReport report;
  report.update = {FlowId::Scope::kUpdate, 2, 5};
  report.start_virtual_us = 100;
  report.closed_virtual_us = 900;
  report.complete_virtual_us = 1000;
  report.wall_micros = 42.5;
  report.tuples_added = 17;
  report.data_messages_received = 3;
  report.data_bytes_received = 512;
  report.data_messages_sent = 2;
  report.data_bytes_sent = 256;
  report.longest_path_nodes = 4;
  report.received_per_rule["r1"] = {3, 17, 512};
  report.sent_per_rule["r2"] = {2, 9, 256};
  report.acquaintances_queried = {1, 3};
  report.result_destinations = {0};
  return report;
}

TEST(StatisticsTest, ReportSerializationRoundTrip) {
  UpdateReport report = SampleReport();
  WireWriter writer;
  report.SerializeTo(writer);
  std::vector<uint8_t> bytes = writer.Take();

  WireReader reader(bytes);
  Result<UpdateReport> back = UpdateReport::DeserializeFrom(reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const UpdateReport& r = back.value();
  EXPECT_EQ(r.update, report.update);
  EXPECT_EQ(r.start_virtual_us, 100);
  EXPECT_EQ(r.closed_virtual_us, 900);
  EXPECT_EQ(r.complete_virtual_us, 1000);
  EXPECT_DOUBLE_EQ(r.wall_micros, 42.5);
  EXPECT_EQ(r.tuples_added, 17u);
  EXPECT_EQ(r.longest_path_nodes, 4u);
  ASSERT_EQ(r.received_per_rule.count("r1"), 1u);
  EXPECT_EQ(r.received_per_rule.at("r1").tuples, 17u);
  ASSERT_EQ(r.sent_per_rule.count("r2"), 1u);
  EXPECT_EQ(r.sent_per_rule.at("r2").bytes, 256u);
  EXPECT_EQ(r.acquaintances_queried, (std::set<uint32_t>{1, 3}));
  EXPECT_EQ(r.result_destinations, (std::set<uint32_t>{0}));
}

TEST(StatisticsTest, ModuleAccumulatesPerUpdate) {
  StatisticsModule stats;
  FlowId u1{FlowId::Scope::kUpdate, 0, 1};
  FlowId u2{FlowId::Scope::kUpdate, 0, 2};

  stats.ReportFor(u1).tuples_added = 5;
  stats.ReportFor(u1).data_messages_received += 1;
  stats.ReportFor(u2).tuples_added = 9;

  EXPECT_EQ(stats.reports().size(), 2u);
  ASSERT_NE(stats.FindReport(u1), nullptr);
  EXPECT_EQ(stats.FindReport(u1)->tuples_added, 5u);
  EXPECT_EQ(stats.FindReport(u1)->data_messages_received, 1u);
  EXPECT_EQ(stats.FindReport(u2)->tuples_added, 9u);
  EXPECT_EQ(stats.FindReport({FlowId::Scope::kUpdate, 0, 3}), nullptr);
}

TEST(StatisticsTest, SerializeAllRoundTrip) {
  StatisticsModule stats;
  stats.ReportFor({FlowId::Scope::kUpdate, 0, 1}) = SampleReport();
  stats.ReportFor({FlowId::Scope::kQuery, 1, 1}).tuples_added = 3;

  Result<std::vector<UpdateReport>> back =
      StatisticsModule::DeserializeAll(stats.SerializeAll());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().size(), 2u);
}

TEST(StatisticsTest, RenderMentionsKeyFigures) {
  std::string text = SampleReport().Render();
  EXPECT_NE(text.find("update/2.5"), std::string::npos);
  EXPECT_NE(text.find("longest path"), std::string::npos);
  EXPECT_NE(text.find("r1"), std::string::npos);
  EXPECT_NE(text.find("900"), std::string::npos);
}

TEST(StatisticsTest, TruncatedReportRejected) {
  StatisticsModule stats;
  stats.ReportFor({FlowId::Scope::kUpdate, 0, 1}) = SampleReport();
  std::vector<uint8_t> bytes = stats.SerializeAll();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(StatisticsModule::DeserializeAll(bytes).ok());
}

}  // namespace
}  // namespace codb
