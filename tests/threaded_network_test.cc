// Tests of the ThreadedNetwork runtime: basic delivery semantics, and the
// full coDB protocols (global update, refresh, query answering, stats
// collection) running over real threads and checked against the same
// oracle as the simulator. Ring and chain topologies are used because
// their outcomes are order-independent, so genuine concurrency cannot
// make the assertions flaky.

#include <gtest/gtest.h>

#include <atomic>

#include "core/oracle.h"
#include "net/threaded_network.h"
#include "query/homomorphism.h"
#include "query/parser.h"
#include "workload/testbed.h"

namespace codb {
namespace {

class CountingPeer : public NetworkPeer {
 public:
  void HandleMessage(const Message& message) override {
    ++received;
    last_payload_size = message.payload.size();
  }
  void HandlePipeClosed(PeerId) override { ++pipe_closures; }

  std::atomic<int> received{0};
  std::atomic<size_t> last_payload_size{0};
  std::atomic<int> pipe_closures{0};
};

TEST(ThreadedNetworkTest, DeliversMessagesAndRunsToQuiescence) {
  ThreadedNetwork network;
  CountingPeer a;
  CountingPeer b;
  PeerId id_a = network.Join("a", &a);
  PeerId id_b = network.Join("b", &b);

  LinkProfile fast;
  fast.latency_us = 100;
  fast.bandwidth_bpus = 0;
  ASSERT_TRUE(network.OpenPipe(id_a, id_b, fast).ok());

  Message m;
  m.src = id_a;
  m.dst = id_b;
  m.type = MessageType::kAdvertisement;
  m.payload = {1, 2, 3};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(network.Send(m).ok());
  }
  network.Run();
  EXPECT_EQ(b.received.load(), 10);
  EXPECT_EQ(b.last_payload_size.load(), 3u);
  EXPECT_EQ(network.stats().total_messages(), 10u);
}

TEST(ThreadedNetworkTest, SendValidatesPipesAndPeers) {
  ThreadedNetwork network;
  CountingPeer a;
  CountingPeer b;
  PeerId id_a = network.Join("a", &a);
  PeerId id_b = network.Join("b", &b);

  Message m;
  m.src = id_a;
  m.dst = id_b;
  EXPECT_EQ(network.Send(m).code(), StatusCode::kUnavailable);

  ASSERT_TRUE(network.OpenPipe(id_a, id_b).ok());
  EXPECT_TRUE(network.Send(m).ok());
  ASSERT_TRUE(network.ClosePipe(id_a, id_b).ok());
  EXPECT_EQ(network.Send(m).code(), StatusCode::kUnavailable);
  network.Run();
  // Both endpoints saw the closure notification.
  EXPECT_EQ(a.pipe_closures.load(), 1);
  EXPECT_EQ(b.pipe_closures.load(), 1);
}

TEST(ThreadedNetworkTest, ScheduledActionsFire) {
  ThreadedNetwork network;
  std::atomic<int> fired{0};
  network.ScheduleAfter(1000, [&] { ++fired; });
  network.ScheduleAfter(2000, [&] { ++fired; });
  network.Run();
  EXPECT_EQ(fired.load(), 2);
}

TEST(ThreadedNetworkTest, LeaveDropsTrafficAndNotifies) {
  ThreadedNetwork network;
  CountingPeer a;
  CountingPeer b;
  PeerId id_a = network.Join("a", &a);
  PeerId id_b = network.Join("b", &b);
  ASSERT_TRUE(network.OpenPipe(id_a, id_b).ok());
  ASSERT_TRUE(network.Leave(id_b).ok());
  EXPECT_FALSE(network.IsAlive(id_b));
  network.Run();
  EXPECT_EQ(a.pipe_closures.load(), 1);
  EXPECT_FALSE(network.Send(Message{id_b, id_a,
                                    MessageType::kAdvertisement, {}})
                   .ok());
}

Testbed::Options Threaded() {
  Testbed::Options options;
  options.threaded = true;
  // Keep real-time latency small so tests stay fast.
  options.node.link_profile.latency_us = 200;
  options.node.link_profile.bandwidth_bpus = 0;
  return options;
}

TEST(ThreadedProtocolTest, GlobalUpdateOverRealThreadsMatchesOracle) {
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, Threaded());
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.AllComplete(update.value()));

  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << "node " << node;
  }
}

TEST(ThreadedProtocolTest, QueryAnsweringOverRealThreads) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, Threaded());
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> query = bed.node("n0")->StartQuery(
      ParseQuery("q(K, V) :- d(K, V).").value());
  ASSERT_TRUE(query.ok());
  bed.network().Run();

  EXPECT_TRUE(bed.node("n0")->QueryDone(query.value()));
  Result<std::vector<Tuple>> answers =
      bed.node("n0")->QueryAnswers(query.value());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value().size(), 16u);
}

TEST(ThreadedProtocolTest, RefreshAndStatsOverRealThreads) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, Threaded());
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 12u);

  Result<FlowId> refresh = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok());
  bed.network().Run();
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 12u);

  ASSERT_TRUE(bed.CollectStats().ok());
  EXPECT_EQ(bed.super_peer().collected().size(), 4u);
}

TEST(ThreadedProtocolTest, UpdateSurvivesChurnOnRealThreads) {
  // Cut a pipe while a threaded update is in flight: Dijkstra–Scholten's
  // peer-loss cancellation must still drive the update to completion.
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 8;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, Threaded());
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  // Cut roughly mid-flight (wall-clock): the chain needs ~5 hops at
  // 200us/hop, so 400us lands inside the propagation.
  bed.network().ScheduleAfter(400, [&] {
    bed.network().ClosePipe(bed.node("n3")->id(), bed.node("n4")->id());
  });

  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok());
  bed.network().Run();

  EXPECT_TRUE(
      bed.node("n0")->update_manager()->IsComplete(update.value()));
  // At least the near side of the cut arrived; churn timing decides the
  // rest (this is a real race by design).
  EXPECT_GE(bed.node("n0")->database().Find("d")->size(), 8u * 4u - 8u);
}

TEST(ThreadedProtocolTest, RepeatedRunsAreStable) {
  // Exercise the runtime repeatedly to shake out races (run under TSan or
  // stress loops in CI; here a handful of iterations).
  for (int i = 0; i < 5; ++i) {
    WorkloadOptions options;
    options.nodes = 5;
    options.tuples_per_node = 3;
    options.seed = static_cast<uint64_t>(i + 1);
    GeneratedNetwork generated = MakeTree(options);

    Result<std::unique_ptr<Testbed>> testbed =
        Testbed::Create(generated, Threaded());
    ASSERT_TRUE(testbed.ok());
    Result<FlowId> update = testbed.value()->RunGlobalUpdate("n0");
    ASSERT_TRUE(update.ok());
    EXPECT_TRUE(testbed.value()->AllComplete(update.value())) << i;
    EXPECT_EQ(
        testbed.value()->node("n0")->database().Find("d")->size(),
        15u)
        << i;
  }
}

}  // namespace
}  // namespace codb
