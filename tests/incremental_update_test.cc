// Differential battery for the incremental (semi-naive) global update:
// every scenario is executed twice from the same generated network — once
// through Node::InsertLocal + StartIncrementalUpdate, once through the
// drop-and-rederive StartGlobalRefresh, which keeps the full fixpoint
// semantics and therefore doubles as the oracle. The tentpole claim: after
// every delta batch the two deployments hold byte-identical stores (for
// null-free rule styles), with exactly-once completion callbacks, across
// four topologies (including the cyclic ring) and eight seeds. The
// incremental side also runs with four-way intra-node parallelism forced,
// so the equivalence suite is simultaneously the 4-thread determinism
// check for the delta path.
//
// On failure the SCOPED_TRACE line prints topology, style and seed;
// replaying is one --gtest_filter away.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "core/oracle.h"
#include "net/fault.h"
#include "query/homomorphism.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

enum class Topology { kChain, kStar, kTree, kRing };

const char* TopologyName(Topology t) {
  switch (t) {
    case Topology::kChain:
      return "Chain";
    case Topology::kStar:
      return "Star";
    case Topology::kTree:
      return "Tree";
    case Topology::kRing:
      return "Ring";
  }
  return "?";
}

GeneratedNetwork Generate(Topology topology, const WorkloadOptions& options) {
  switch (topology) {
    case Topology::kChain:
      return MakeChain(options);
    case Topology::kStar:
      return MakeStar(options);
    case Topology::kTree:
      return MakeTree(options);
    case Topology::kRing:
      return MakeRing(options);
  }
  return MakeChain(options);
}

// The initiator must be a node whose local inserts actually export
// somewhere: the deepest source for the converging topologies, any node
// on the cycle for the ring.
int InitiatorIndex(Topology topology, int nodes) {
  switch (topology) {
    case Topology::kChain:
    case Topology::kTree:
      return nodes - 1;
    case Topology::kStar:
      return 1;
    case Topology::kRing:
      return 0;
  }
  return 0;
}

// Cycle through the null-free rule styles so every topology meets every
// evaluation shape (copy, join, insert→probe fixpoint, filter) across the
// seed range; null-minting styles get their own hom-equivalence tests.
RuleStyle StyleFor(uint64_t seed) {
  switch (seed % 4) {
    case 0:
      return RuleStyle::kCopy;
    case 1:
      return RuleStyle::kJoin;
    case 2:
      return RuleStyle::kJoinCopy;
    default:
      return RuleStyle::kFilter;
  }
}

const char* StyleName(RuleStyle style) {
  switch (style) {
    case RuleStyle::kCopy:
      return "Copy";
    case RuleStyle::kProject:
      return "Project";
    case RuleStyle::kJoin:
      return "Join";
    case RuleStyle::kFilter:
      return "Filter";
    case RuleStyle::kMultiHead:
      return "MultiHead";
    case RuleStyle::kJoinCopy:
      return "JoinCopy";
  }
  return "?";
}

// One batch of local inserts at the initiator: relation -> rows.
using DeltaBatch = std::map<std::string, std::vector<Tuple>>;

// Three deterministic batches keyed inside the initiator's private key
// range (node i owns [i*10000, ...)), clear of the seeded prefix so every
// delta derivation is unique. Batch 1 is intentionally empty — an
// incremental update with nothing to say must still terminate cleanly.
// Values straddle the kFilter threshold so the filtered style passes and
// drops rows on both sides of the comparison.
std::vector<DeltaBatch> MakeBatches(int initiator_index, uint64_t seed) {
  std::vector<DeltaBatch> batches(3);
  const int64_t base = static_cast<int64_t>(initiator_index) * 10000 + 1000;
  for (int b : {0, 2}) {
    DeltaBatch& batch = batches[static_cast<size_t>(b)];
    for (int64_t j = 0; j < 3; ++j) {
      int64_t key = base + 100 * b + j;
      int64_t v =
          (17 * j + 31 * b + static_cast<int64_t>(seed) * 7) % 100;
      batch["d"].push_back(Tuple{Value::Int(key), Value::Int(v)});
      // Two of the three keys get a matching e-row, so join-style rules
      // derive for some delta keys and stay silent for others.
      if (j < 2) {
        batch["e"].push_back(
            Tuple{Value::Int(key), Value::Int((v + 13) % 100)});
      }
    }
  }
  return batches;
}

NetworkInstance Canonical(NetworkInstance instances) {
  for (auto& [node, instance] : instances) {
    for (auto& [relation, rows] : instance) {
      std::sort(rows.begin(), rows.end());
    }
  }
  return instances;
}

// Spawns a testbed and runs the baseline full update every incremental
// sequence starts from (the incremental contract: the network has been
// synchronized at least once).
std::unique_ptr<Testbed> SpawnSynchronized(const GeneratedNetwork& generated,
                                           const std::string& initiator,
                                           int num_threads) {
  Testbed::Options options;
  if (num_threads > 1) {
    options.node_threads = num_threads;
    // Force the parallel path even for tiny test frontiers.
    options.node.exec.min_parallel_rows = 1;
  }
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  if (!testbed.ok()) return nullptr;
  Result<FlowId> baseline = testbed.value()->RunGlobalUpdate(initiator);
  EXPECT_TRUE(baseline.ok()) << baseline.status().ToString();
  if (baseline.ok()) {
    EXPECT_TRUE(testbed.value()->AllComplete(baseline.value()));
  }
  return std::move(testbed).value();
}

Status InsertBatch(Testbed& bed, const std::string& initiator,
                   const DeltaBatch& batch) {
  Node* node = bed.node(initiator);
  if (node == nullptr) return Status::NotFound("no initiator");
  for (const auto& [relation, rows] : batch) {
    CODB_RETURN_IF_ERROR(node->InsertLocal(relation, rows));
  }
  return Status::Ok();
}

// Runs one incremental update at `initiator` and asserts its completion
// callback fired exactly once by the time the network quiesced.
void RunIncrementalOnce(Testbed& bed, const std::string& initiator) {
  int fired = 0;
  Result<FlowId> flow = bed.node(initiator)->StartIncrementalUpdate(
      [&fired](const FlowId&) { ++fired; });
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  bed.network().Run();
  EXPECT_TRUE(bed.AllComplete(flow.value()));
  EXPECT_EQ(fired, 1) << "completion callback not exactly-once";
}

uint64_t CounterSum(Testbed& bed, const std::string& name) {
  uint64_t total = 0;
  for (const auto& node : bed.nodes()) {
    total += node->statistics().metrics().GetCounter(name)->value();
  }
  return total;
}

// ---------------------------------------------------------------------------
// The differential sweep: topologies × seeds, three delta batches each.

using SweepParam = std::tuple<Topology, uint64_t /*seed*/>;

class IncrementalEquivalenceSweep
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IncrementalEquivalenceSweep, MatchesRefreshOracleBatchByBatch) {
  auto [topology, seed] = GetParam();

  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 4;
  options.seed = seed;
  options.style = StyleFor(seed);
  GeneratedNetwork generated = Generate(topology, options);
  const int initiator_index = InitiatorIndex(topology, options.nodes);
  const std::string initiator = NodeName(initiator_index);

  SCOPED_TRACE(std::string("replay: topology=") + TopologyName(topology) +
               " style=" + StyleName(options.style) +
               " seed=" + std::to_string(seed) + " initiator=" + initiator);

  // Three deployments off the same network: incremental at one thread,
  // incremental at four threads, and the refresh oracle (sequential).
  std::unique_ptr<Testbed> incremental =
      SpawnSynchronized(generated, initiator, /*num_threads=*/1);
  std::unique_ptr<Testbed> incremental4 =
      SpawnSynchronized(generated, initiator, /*num_threads=*/4);
  std::unique_ptr<Testbed> oracle_bed =
      SpawnSynchronized(generated, initiator, /*num_threads=*/1);
  ASSERT_NE(incremental, nullptr);
  ASSERT_NE(incremental4, nullptr);
  ASSERT_NE(oracle_bed, nullptr);

  const std::vector<DeltaBatch> batches = MakeBatches(initiator_index, seed);
  NetworkInstance initial = generated.seeds;
  for (size_t b = 0; b < batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    ASSERT_TRUE(InsertBatch(*incremental, initiator, batches[b]).ok());
    ASSERT_TRUE(InsertBatch(*incremental4, initiator, batches[b]).ok());
    ASSERT_TRUE(InsertBatch(*oracle_bed, initiator, batches[b]).ok());
    for (const auto& [relation, rows] : batches[b]) {
      Instance& instance = initial[initiator];
      instance[relation].insert(instance[relation].end(), rows.begin(),
                                rows.end());
    }

    RunIncrementalOnce(*incremental, initiator);
    RunIncrementalOnce(*incremental4, initiator);
    Result<FlowId> refresh = oracle_bed->RunGlobalRefresh(initiator);
    ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
    EXPECT_TRUE(oracle_bed->AllComplete(refresh.value()));

    // The differential claim, after *every* batch: byte-identical stores
    // (the styles in this sweep mint no nulls). Compare per node so a
    // failure names the divergent store.
    NetworkInstance expected = Canonical(oracle_bed->Snapshot());
    NetworkInstance got = Canonical(incremental->Snapshot());
    NetworkInstance got4 = Canonical(incremental4->Snapshot());
    ASSERT_EQ(expected.size(), got.size());
    for (const auto& [node, instance] : expected) {
      ASSERT_TRUE(got.count(node) > 0) << "missing node " << node;
      EXPECT_EQ(got.at(node), instance)
          << "incremental store diverged from refresh oracle at " << node;
      EXPECT_EQ(got4.at(node), instance)
          << "4-thread incremental store diverged at " << node;
    }
  }

  // Independent ground truth: the final incremental state must also agree
  // with the path-bounded oracle run over seeds ∪ deltas.
  Result<NetworkInstance> oracle = Oracle::PathBounded(generated.config,
                                                       initial);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  NetworkInstance got = Canonical(incremental->Snapshot());
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(got.at(node)))
        << "certain part mismatch vs oracle at " << node;
    EXPECT_TRUE(HomEquivalent(instance, got.at(node)))
        << "hom-equivalence vs oracle failed at " << node;
  }

  // The incremental runs actually took the incremental path, and the
  // non-empty batches shipped their delta rows through the counters.
  EXPECT_EQ(CounterSum(*incremental, "update.incremental"),
            static_cast<uint64_t>(batches.size()));
  EXPECT_GT(CounterSum(*incremental, "update.delta_rows"), 0u);
  EXPECT_EQ(CounterSum(*oracle_bed, "update.incremental"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalEquivalenceSweep,
    ::testing::Combine(::testing::Values(Topology::kChain, Topology::kStar,
                                         Topology::kTree, Topology::kRing),
                       ::testing::Range<uint64_t>(1, 9)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(TopologyName(std::get<0>(info.param))) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Existential styles: refresh re-mints its marked nulls, so byte equality
// is the wrong contract — the stores must agree on the certain part and be
// homomorphically equivalent, per node, after every batch.

TEST(IncrementalExistentialTest, ProjectAndMultiHeadHomEquivalent) {
  for (RuleStyle style : {RuleStyle::kProject, RuleStyle::kMultiHead}) {
    for (uint64_t seed : {1u, 2u, 3u, 4u}) {
      WorkloadOptions options;
      options.nodes = 5;
      options.tuples_per_node = 3;
      options.seed = seed;
      options.style = style;
      GeneratedNetwork generated = MakeChain(options);
      const int initiator_index = options.nodes - 1;
      const std::string initiator = NodeName(initiator_index);
      SCOPED_TRACE(std::string("replay: style=") + StyleName(style) +
                   " seed=" + std::to_string(seed));

      std::unique_ptr<Testbed> incremental =
          SpawnSynchronized(generated, initiator, /*num_threads=*/1);
      std::unique_ptr<Testbed> oracle_bed =
          SpawnSynchronized(generated, initiator, /*num_threads=*/1);
      ASSERT_NE(incremental, nullptr);
      ASSERT_NE(oracle_bed, nullptr);

      for (const DeltaBatch& batch : MakeBatches(initiator_index, seed)) {
        ASSERT_TRUE(InsertBatch(*incremental, initiator, batch).ok());
        ASSERT_TRUE(InsertBatch(*oracle_bed, initiator, batch).ok());
        RunIncrementalOnce(*incremental, initiator);
        Result<FlowId> refresh = oracle_bed->RunGlobalRefresh(initiator);
        ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();

        NetworkInstance expected = Canonical(oracle_bed->Snapshot());
        NetworkInstance got = Canonical(incremental->Snapshot());
        for (const auto& [node, instance] : expected) {
          EXPECT_EQ(CertainPart(instance), CertainPart(got.at(node)))
              << "certain part diverged at " << node;
          EXPECT_TRUE(HomEquivalent(instance, got.at(node)))
              << "hom-equivalence vs refresh failed at " << node;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property-based leg: Erdős–Rényi rule networks (arbitrary direction mix,
// possibly disconnected, possibly cyclic) under random multi-batch delta
// sequences that re-insert existing keys, hit join-dead keys, and leave
// some batches empty. The incremental result must stay hom-equivalent to
// the refresh oracle from the same initiator, whatever the graph.

TEST(IncrementalPropertyTest, RandomNetworksRandomDeltaBatches) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadOptions options;
    options.nodes = 5;
    options.tuples_per_node = 3;
    options.seed = seed;
    options.edge_probability = 0.5;
    options.style = static_cast<RuleStyle>(seed % 6);
    GeneratedNetwork generated = MakeRandom(options);
    const int initiator_index = static_cast<int>(seed) % options.nodes;
    const std::string initiator = NodeName(initiator_index);
    SCOPED_TRACE("replay: random seed=" + std::to_string(seed) + " style=" +
                 StyleName(options.style) + " initiator=" + initiator);

    std::unique_ptr<Testbed> incremental =
        SpawnSynchronized(generated, initiator, /*num_threads=*/1);
    std::unique_ptr<Testbed> oracle_bed =
        SpawnSynchronized(generated, initiator, /*num_threads=*/1);
    ASSERT_NE(incremental, nullptr);
    ASSERT_NE(oracle_bed, nullptr);

    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
    const int64_t base = static_cast<int64_t>(initiator_index) * 10000;
    int64_t fresh_key = base + 500;
    for (int b = 0; b < 3; ++b) {
      SCOPED_TRACE("batch " + std::to_string(b));
      DeltaBatch batch;
      const size_t d_rows = rng() % 4;  // 0 → empty d-delta
      const size_t e_rows = rng() % 3;
      for (size_t j = 0; j < d_rows; ++j) {
        // Mix fresh keys with re-inserts of already-present keys (the
        // wrapper must filter those out of the pending delta).
        int64_t key = (rng() % 2 == 0)
                          ? fresh_key++
                          : base + static_cast<int64_t>(
                                       rng() %
                                       static_cast<uint64_t>(
                                           options.tuples_per_node));
        batch["d"].push_back(Tuple{
            Value::Int(key),
            Value::Int(static_cast<int64_t>(rng() % 100))});
      }
      for (size_t j = 0; j < e_rows; ++j) {
        batch["e"].push_back(Tuple{
            Value::Int(base + 500 + static_cast<int64_t>(rng() % 8)),
            Value::Int(static_cast<int64_t>(rng() % 100))});
      }
      ASSERT_TRUE(InsertBatch(*incremental, initiator, batch).ok());
      ASSERT_TRUE(InsertBatch(*oracle_bed, initiator, batch).ok());

      RunIncrementalOnce(*incremental, initiator);
      Result<FlowId> refresh = oracle_bed->RunGlobalRefresh(initiator);
      ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();

      NetworkInstance expected = Canonical(oracle_bed->Snapshot());
      NetworkInstance got = Canonical(incremental->Snapshot());
      for (const auto& [node, instance] : expected) {
        EXPECT_EQ(CertainPart(instance), CertainPart(got.at(node)))
            << "certain part diverged at " << node;
        EXPECT_TRUE(HomEquivalent(instance, got.at(node)))
            << "hom-equivalence vs refresh failed at " << node;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deltas hitting subsumed rules: with skip_subsumed the contained rule is
// skipped on the incremental path exactly as on the full path, and the
// result still matches the refresh oracle (run under the same option).

TEST(IncrementalSubsumptionTest, DeltaThroughSubsumedRulePair) {
  const char* text =
      "node a\n"
      "  relation d(k:int)\n"
      "node b\n"
      "  relation d(k:int)\n"
      "  relation e(k:int)\n"
      "rule narrow a <- b : d(K) :- d(K), e(K).\n"
      "rule wide a <- b : d(K) :- d(K).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  GeneratedNetwork generated;
  generated.config = std::move(config).value();
  generated.seeds["b"]["d"] = {Tuple{Value::Int(1)}, Tuple{Value::Int(2)},
                               Tuple{Value::Int(3)}};
  generated.seeds["b"]["e"] = {Tuple{Value::Int(2)}};

  for (bool skip : {true, false}) {
    SCOPED_TRACE(std::string("skip_subsumed=") + (skip ? "on" : "off"));
    Testbed::Options options;
    options.node.update.skip_subsumed = skip;
    Result<std::unique_ptr<Testbed>> incremental =
        Testbed::Create(generated, options);
    Result<std::unique_ptr<Testbed>> oracle_bed =
        Testbed::Create(generated, options);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
    ASSERT_TRUE(oracle_bed.ok()) << oracle_bed.status().ToString();
    ASSERT_TRUE(incremental.value()->RunGlobalUpdate("b").ok());
    ASSERT_TRUE(oracle_bed.value()->RunGlobalUpdate("b").ok());

    // d(4) joins the new e(4); d(5) rides only the wide rule.
    DeltaBatch batch;
    batch["d"] = {Tuple{Value::Int(4)}, Tuple{Value::Int(5)}};
    batch["e"] = {Tuple{Value::Int(4)}};
    ASSERT_TRUE(InsertBatch(*incremental.value(), "b", batch).ok());
    ASSERT_TRUE(InsertBatch(*oracle_bed.value(), "b", batch).ok());

    RunIncrementalOnce(*incremental.value(), "b");
    ASSERT_TRUE(oracle_bed.value()->RunGlobalRefresh("b").ok());

    EXPECT_EQ(Canonical(incremental.value()->Snapshot()),
              Canonical(oracle_bed.value()->Snapshot()));
    // The wide rule ships every key regardless of the option.
    std::vector<Tuple> at_a =
        Canonical(incremental.value()->Snapshot()).at("a").at("d");
    EXPECT_EQ(at_a.size(), 5u);
  }
}

// ---------------------------------------------------------------------------
// Work proportionality: the incremental run's evaluation work is charged
// by delta rows, the refresh oracle's by full body scans — on a store that
// dwarfs the delta the gap must be at least an order of magnitude (the
// claim E17 measures and gates at bench scale).

TEST(IncrementalWorkTest, DeltaEvalReadsFarFewerRowsThanRefresh) {
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 50;
  options.style = RuleStyle::kCopy;
  GeneratedNetwork generated = MakeChain(options);
  const std::string initiator = NodeName(options.nodes - 1);

  std::unique_ptr<Testbed> incremental =
      SpawnSynchronized(generated, initiator, /*num_threads=*/1);
  std::unique_ptr<Testbed> oracle_bed =
      SpawnSynchronized(generated, initiator, /*num_threads=*/1);
  ASSERT_NE(incremental, nullptr);
  ASSERT_NE(oracle_bed, nullptr);

  DeltaBatch batch;
  batch["d"] = {Tuple{Value::Int(59001), Value::Int(1)},
                Tuple{Value::Int(59002), Value::Int(2)}};
  ASSERT_TRUE(InsertBatch(*incremental, initiator, batch).ok());
  ASSERT_TRUE(InsertBatch(*oracle_bed, initiator, batch).ok());

  const uint64_t incr_before = CounterSum(*incremental, "update.eval_rows");
  const uint64_t full_before = CounterSum(*oracle_bed, "update.eval_rows");
  RunIncrementalOnce(*incremental, initiator);
  ASSERT_TRUE(oracle_bed->RunGlobalRefresh(initiator).ok());
  const uint64_t incr_rows =
      CounterSum(*incremental, "update.eval_rows") - incr_before;
  const uint64_t full_rows =
      CounterSum(*oracle_bed, "update.eval_rows") - full_before;

  EXPECT_EQ(Canonical(incremental->Snapshot()),
            Canonical(oracle_bed->Snapshot()));
  EXPECT_GT(incr_rows, 0u);
  EXPECT_GT(full_rows, 10 * incr_rows)
      << "semi-naive update did not beat the full recompute by 10x: "
      << incr_rows << " vs " << full_rows;
  EXPECT_EQ(CounterSum(*incremental, "update.delta_rows"), 2u);
}

// ---------------------------------------------------------------------------
// Empty delta: a no-op network-wide, but the diffusing computation still
// runs to completion and the callback fires exactly once.

TEST(IncrementalEdgeTest, EmptyDeltaTerminatesWithoutChangingAnything) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);
  const std::string initiator = NodeName(options.nodes - 1);
  std::unique_ptr<Testbed> bed =
      SpawnSynchronized(generated, initiator, /*num_threads=*/1);
  ASSERT_NE(bed, nullptr);

  NetworkInstance before = Canonical(bed->Snapshot());
  const uint64_t data_before =
      bed->network().stats().MessagesOfType(MessageType::kUpdateData);
  RunIncrementalOnce(*bed, initiator);
  EXPECT_EQ(Canonical(bed->Snapshot()), before);
  EXPECT_EQ(CounterSum(*bed, "update.delta_rows"), 0u);
  // Nothing to say means no data messages at all — only control traffic.
  EXPECT_EQ(bed->network().stats().MessagesOfType(MessageType::kUpdateData),
            data_before);
}

// Re-running an incremental update after its delta was consumed ships
// nothing new: the pending delta was taken, and the export memory holds
// every frontier the first run shipped.

TEST(IncrementalEdgeTest, ReRunAfterConsumedDeltaShipsNothing) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);
  const std::string initiator = NodeName(options.nodes - 1);
  std::unique_ptr<Testbed> bed =
      SpawnSynchronized(generated, initiator, /*num_threads=*/1);
  ASSERT_NE(bed, nullptr);

  DeltaBatch batch;
  batch["d"] = {Tuple{Value::Int(31001), Value::Int(7)}};
  ASSERT_TRUE(InsertBatch(*bed, initiator, batch).ok());
  RunIncrementalOnce(*bed, initiator);
  NetworkInstance after_first = Canonical(bed->Snapshot());

  const uint64_t data_before =
      bed->network().stats().MessagesOfType(MessageType::kUpdateData);
  RunIncrementalOnce(*bed, initiator);
  EXPECT_EQ(Canonical(bed->Snapshot()), after_first);
  EXPECT_EQ(bed->network().stats().MessagesOfType(MessageType::kUpdateData),
            data_before);
}

// ---------------------------------------------------------------------------
// The completion callback fires exactly once even when the flow dies by
// deadline abort instead of clean termination.

TEST(IncrementalEdgeTest, CallbackFiresOnceOnDeadlineAbort) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);
  const std::string initiator = NodeName(options.nodes - 1);

  Testbed::Options bed_options;
  bed_options.node.reliability.enabled = true;
  bed_options.node.reliability.retransmit_base_us = 20'000;
  bed_options.node.reliability.max_retries = 12;
  bed_options.node.reliability.flow_deadline_us = 500'000;
  Result<std::unique_ptr<Testbed>> bed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();

  // Silent partition mid-chain: the initiator's delta reaches n2 but the
  // request/data toward n1 vanish, so only the root's deadline can end
  // the flow.
  ASSERT_TRUE(
      bed.value()->SetFault("n1", "n2", FaultProfile::Partition()).ok());

  DeltaBatch batch;
  batch["d"] = {Tuple{Value::Int(31001), Value::Int(5)}};
  ASSERT_TRUE(InsertBatch(*bed.value(), initiator, batch).ok());

  int fired = 0;
  Result<FlowId> flow =
      bed.value()->node(initiator)->StartIncrementalUpdate(
          [&fired](const FlowId&) { ++fired; });
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  bed.value()->network().Run();

  EXPECT_EQ(fired, 1) << "abort path must fire the callback exactly once";
  EXPECT_TRUE(bed.value()->AllComplete(flow.value()));
  const UpdateReport* report =
      bed.value()->node(initiator)->statistics().FindReport(flow.value());
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->aborted);
}

}  // namespace
}  // namespace codb
