// Unit tests for the intra-node concurrency primitives (DESIGN.md §10):
// the work-stealing thread pool, the sharded reader/writer store lock,
// the per-flow strand executor, and the wrapper's journal serialization.
// Each test pins one contract the integration suites rely on; the
// regression tests at the bottom encode bugs that were possible designs
// (a batch caller stealing foreign work while holding a lock; journal
// appends racing once writers touch disjoint shards).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/flow_executor.h"
#include "core/protocol.h"
#include "net/network.h"
#include "relation/database.h"
#include "relation/wal.h"
#include "util/sharded_rwlock.h"
#include "util/thread_pool.h"
#include "wrapper/wrapper.h"

namespace codb {
namespace {

// -- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, RunBatchCompletesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(count.load(), 100);

  // Helper no-op jobs may still sit in the deques (RunBatch returns as
  // soon as the *batch* completes), so queue_depth is not asserted here.
  ThreadPool::StatsSnapshot stats = pool.Stats();
  EXPECT_GE(stats.executed, 100u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  // num_threads counts the caller: a pool of 1 spawns no workers and
  // RunBatch degenerates to a plain loop on the calling thread.
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&all_inline, caller] {
      if (std::this_thread::get_id() != caller) all_inline = false;
    });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, SubmitRunsFireAndForgetTasks) {
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  int count = 0;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++count == 20) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return count == 20; }));
}

TEST(ThreadPoolTest, RunBatchNeverExecutesForeignQueuedWork) {
  // Regression: RunBatch's caller participates, but must claim only batch
  // tasks. If it popped arbitrary deque work it could run a flow task
  // that takes a write lock the caller already holds in read mode —
  // exactly the FireInitial-evaluates-while-ApplyHeadTuples-queued shape.
  // Setup: the caller holds `mu` shared, a submitted foreign task wants
  // it exclusive. RunBatch must finish without the caller touching the
  // foreign task, even though the only worker is free to block on it.
  ThreadPool pool(2);
  std::shared_mutex mu;
  std::atomic<bool> foreign_done{false};

  mu.lock_shared();
  pool.Submit([&] {
    std::unique_lock<std::shared_mutex> exclusive(mu);
    foreign_done.store(true);
  });

  std::atomic<int> count{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunBatch(std::move(tasks));  // deadlocks here if the caller steals
  EXPECT_EQ(count.load(), 50);
  EXPECT_FALSE(foreign_done.load());

  mu.unlock_shared();
  while (!foreign_done.load()) std::this_thread::yield();
}

// -- ShardedRWLock -----------------------------------------------------------

TEST(ShardedRWLockTest, SortedShardsOfIsAscendingDistinctAndInRange) {
  ShardedRWLock lock;
  std::vector<std::string> keys = {"d", "e", "person", "origin",
                                   "d", "clients", "emp", "dept_name"};
  std::vector<size_t> shards = lock.SortedShardsOf(keys.begin(), keys.end());
  ASSERT_FALSE(shards.empty());
  for (size_t i = 0; i < shards.size(); ++i) {
    EXPECT_LT(shards[i], lock.shard_count());
    if (i > 0) {
      EXPECT_LT(shards[i - 1], shards[i]);
    }
  }
}

TEST(ShardedRWLockTest, WriterExcludesReaderOnTheSameKey) {
  ShardedRWLock lock;
  std::atomic<bool> reader_in{false};
  std::thread reader;
  {
    ShardedRWLock::WriteGuard write(lock, "d");
    reader = std::thread([&] {
      ShardedRWLock::ReadGuard read(lock, "d");
      reader_in.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(reader_in.load());
  }
  reader.join();
  EXPECT_TRUE(reader_in.load());
  // The reader blocked behind the writer; the wait was charged.
  EXPECT_GT(lock.wait_us(), 0u);
}

TEST(ShardedRWLockTest, WriteSetGuardCoversEveryListedKey) {
  ShardedRWLock lock;
  std::vector<std::string> keys = {"d", "e"};
  std::atomic<bool> writer_in{false};
  std::thread writer;
  {
    ShardedRWLock::WriteSetGuard set(
        lock, lock.SortedShardsOf(keys.begin(), keys.end()));
    writer = std::thread([&] {
      ShardedRWLock::WriteGuard write(lock, "e");
      writer_in.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(writer_in.load());
  }
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(ShardedRWLockTest, ReadersOnTheSameKeyShare) {
  ShardedRWLock lock;
  std::atomic<bool> second_in{false};
  ShardedRWLock::ReadGuard first(lock, "d");
  std::thread second([&] {
    ShardedRWLock::ReadGuard read(lock, "d");
    second_in.store(true);
  });
  second.join();  // returns promptly: readers never exclude readers
  EXPECT_TRUE(second_in.load());
}

// -- FlowExecutor ------------------------------------------------------------

TEST(FlowExecutorTest, PreservesPerFlowFifoAcrossConcurrentFlows) {
  ThreadPool pool(4);
  Network network;  // simulator: external-work hooks are benign no-ops
  FlowExecutor exec(&pool, &network);

  constexpr int kFlows = 3;
  constexpr int kTasksPerFlow = 80;
  std::mutex mu;
  std::vector<std::vector<int>> order(kFlows);

  for (int t = 0; t < kTasksPerFlow; ++t) {
    for (int f = 0; f < kFlows; ++f) {
      FlowId flow{FlowId::Scope::kQuery, static_cast<uint32_t>(f), 1};
      exec.Post(flow, [&mu, &order, f, t] {
        std::lock_guard<std::mutex> lock(mu);
        order[static_cast<size_t>(f)].push_back(t);
      });
    }
  }
  exec.Drain();

  for (int f = 0; f < kFlows; ++f) {
    ASSERT_EQ(order[static_cast<size_t>(f)].size(),
              static_cast<size_t>(kTasksPerFlow));
    for (int t = 0; t < kTasksPerFlow; ++t) {
      EXPECT_EQ(order[static_cast<size_t>(f)][static_cast<size_t>(t)], t)
          << "flow " << f << " ran out of order";
    }
  }
  EXPECT_EQ(exec.ActiveFlows(), 0u);
}

TEST(FlowExecutorTest, ActiveFlowsDropsToZeroAfterDrain) {
  ThreadPool pool(2);
  Network network;
  FlowExecutor exec(&pool, &network);

  for (uint64_t seq = 1; seq <= 16; ++seq) {
    exec.Post(FlowId{FlowId::Scope::kUpdate, 7, seq},
              [] { std::this_thread::yield(); });
  }
  exec.Drain();
  EXPECT_EQ(exec.ActiveFlows(), 0u);
}

// -- Wrapper journal serialization -------------------------------------------

// A sink that detects overlapping appends: the wrapper promises sinks
// serialized LogInsert calls even when store writers touch disjoint
// shards (the latent single-writer assumption of the durable WAL).
class OverlapDetectingSink : public JournalSink {
 public:
  void LogInsert(const std::string& relation, const Tuple& tuple) override {
    (void)relation;
    (void)tuple;
    if (depth_.fetch_add(1) != 0) overlapped_.store(true);
    std::this_thread::yield();  // widen the window
    entries_.fetch_add(1);
    depth_.fetch_sub(1);
  }

  bool overlapped() const { return overlapped_.load(); }
  int entries() const { return entries_.load(); }

 private:
  std::atomic<int> depth_{0};
  std::atomic<bool> overlapped_{false};
  std::atomic<int> entries_{0};
};

TEST(WrapperJournalTest, ConcurrentImportersNeverOverlapSinkAppends) {
  // 8 relations spread across shards, 4 threads each importing into its
  // own relations: the store lock alone would let two ApplyHeadTuples
  // calls proceed in parallel (disjoint shard sets), so only the
  // wrapper's journal mutex keeps the sink appends serialized.
  DatabaseSchema schema;
  constexpr int kRelations = 8;
  for (int r = 0; r < kRelations; ++r) {
    ASSERT_TRUE(schema
                    .AddRelation(RelationSchema(
                        "rel" + std::to_string(r), {{"a", ValueType::kInt}}))
                    .ok());
  }
  Result<std::unique_ptr<Wrapper>> wrapper =
      Wrapper::ForMediator(std::move(schema));
  ASSERT_TRUE(wrapper.ok()) << wrapper.status().ToString();

  OverlapDetectingSink sink;
  wrapper.value()->AttachJournal(&sink);

  constexpr int kThreads = 4;
  constexpr int kTuplesPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Wrapper& w = *wrapper.value();
      for (int i = 0; i < kTuplesPerThread; ++i) {
        // Thread t alternates between two relations of its own, with
        // values unique per thread so every insert is genuinely new.
        std::string relation = "rel" + std::to_string(t * 2 + (i % 2));
        Result<std::map<std::string, std::vector<Tuple>>> applied =
            w.ApplyHeadTuples(
                {{relation, Tuple{Value::Int(t * 100000 + i)}}});
        EXPECT_TRUE(applied.ok()) << applied.status().ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(sink.overlapped()) << "journal appends overlapped";
  EXPECT_EQ(sink.entries(), kThreads * kTuplesPerThread);
  EXPECT_EQ(wrapper.value()->ImportedCount(),
            static_cast<size_t>(kThreads * kTuplesPerThread));
}

}  // namespace
}  // namespace codb
