// Unit tests for the network configuration / coordination-rules file.

#include <gtest/gtest.h>

#include "core/config.h"

namespace codb {
namespace {

const char* kSample = R"(
# university network
node uni_a
  relation student(id:int, name:string)
  relation takes(sid:int, course:string)
node uni_b mediator
  relation person(id:int, name:string)
rule r1 uni_b <- uni_a : person(I, N) :- student(I, N).
rule r2 uni_b <- uni_a : person(I, N) :- student(I, N), takes(I, C), C = 'db'.
)";

TEST(ConfigTest, ParsesNodesRelationsAndRules) {
  Result<NetworkConfig> config = NetworkConfig::Parse(kSample);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const NetworkConfig& c = config.value();

  ASSERT_EQ(c.nodes().size(), 2u);
  EXPECT_EQ(c.nodes()[0].name, "uni_a");
  EXPECT_FALSE(c.nodes()[0].mediator);
  EXPECT_EQ(c.nodes()[0].relations.size(), 2u);
  EXPECT_TRUE(c.nodes()[1].mediator);

  ASSERT_EQ(c.rules().size(), 2u);
  EXPECT_EQ(c.rules()[0].id(), "r1");
  EXPECT_EQ(c.rules()[0].importer(), "uni_b");
  EXPECT_EQ(c.rules()[0].exporter(), "uni_a");
  EXPECT_EQ(c.rules()[1].query().comparisons.size(), 1u);
}

TEST(ConfigTest, SerializeParseRoundTrip) {
  Result<NetworkConfig> config = NetworkConfig::Parse(kSample);
  ASSERT_TRUE(config.ok());
  std::string text = config.value().Serialize();
  Result<NetworkConfig> again = NetworkConfig::Parse(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().Serialize(), text);
  EXPECT_EQ(again.value().nodes().size(), 2u);
  EXPECT_EQ(again.value().rules().size(), 2u);
}

TEST(ConfigTest, LookupHelpers) {
  Result<NetworkConfig> config = NetworkConfig::Parse(kSample);
  ASSERT_TRUE(config.ok());
  const NetworkConfig& c = config.value();

  EXPECT_NE(c.FindNode("uni_a"), nullptr);
  EXPECT_EQ(c.FindNode("nope"), nullptr);
  EXPECT_NE(c.FindRule("r1"), nullptr);
  EXPECT_EQ(c.FindRule("nope"), nullptr);

  EXPECT_EQ(c.OutgoingOf("uni_b").size(), 2u);  // uni_b imports
  EXPECT_EQ(c.IncomingOf("uni_a").size(), 2u);  // uni_a exports
  EXPECT_TRUE(c.OutgoingOf("uni_a").empty());

  EXPECT_EQ(c.AcquaintancesOf("uni_a"),
            (std::vector<std::string>{"uni_b"}));
  EXPECT_EQ(c.AcquaintancesOf("uni_b"),
            (std::vector<std::string>{"uni_a"}));

  DatabaseSchema schema = c.SchemaOf("uni_a");
  EXPECT_NE(schema.FindRelation("student"), nullptr);
  EXPECT_NE(schema.FindRelation("takes"), nullptr);
}

TEST(ConfigTest, RejectsStructuralErrors) {
  // Duplicate node.
  EXPECT_FALSE(NetworkConfig::Parse("node a\nnode a\n").ok());
  // Rule referencing an undeclared node.
  EXPECT_FALSE(NetworkConfig::Parse(
                   "node a\n  relation r(x:int)\n"
                   "rule r1 a <- ghost : r(X) :- r(X).\n")
                   .ok());
  // Self-rule.
  EXPECT_FALSE(NetworkConfig::Parse(
                   "node a\n  relation r(x:int)\n"
                   "rule r1 a <- a : r(X) :- r(X).\n")
                   .ok());
  // Duplicate rule id.
  EXPECT_FALSE(NetworkConfig::Parse(
                   "node a\n  relation r(x:int)\n"
                   "node b\n  relation r(x:int)\n"
                   "rule r1 a <- b : r(X) :- r(X).\n"
                   "rule r1 a <- b : r(X) :- r(X).\n")
                   .ok());
  // Rule that does not type-check (arity).
  EXPECT_FALSE(NetworkConfig::Parse(
                   "node a\n  relation r(x:int)\n"
                   "node b\n  relation r(x:int)\n"
                   "rule r1 a <- b : r(X, Y) :- r(X).\n")
                   .ok());
  // Relation outside a node block.
  EXPECT_FALSE(NetworkConfig::Parse("relation r(x:int)\n").ok());
  // Unknown declaration.
  EXPECT_FALSE(NetworkConfig::Parse("frobnicate everything\n").ok());
}

TEST(ConfigTest, ErrorsCarryLineNumbers) {
  Result<NetworkConfig> bad =
      NetworkConfig::Parse("node a\n  relation r(x:int)\nbogus line\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

TEST(ConfigTest, ProgrammaticConstruction) {
  NetworkConfig config;
  NodeDecl a{"a", false, {RelationSchema("r", {{"x", ValueType::kInt}})}, {}};
  NodeDecl b{"b", false, {RelationSchema("r", {{"x", ValueType::kInt}})}, {}};
  ASSERT_TRUE(config.AddNode(a).ok());
  ASSERT_TRUE(config.AddNode(b).ok());
  EXPECT_EQ(config.AddNode(a).code(), StatusCode::kAlreadyExists);

  ConjunctiveQuery q;
  q.head.push_back({"r", {Term::Var("X")}});
  q.body.push_back({"r", {Term::Var("X")}});
  ASSERT_TRUE(config.AddRule(CoordinationRule("r1", "a", "b", q)).ok());
  EXPECT_EQ(config.AddRule(CoordinationRule("r1", "b", "a", q)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace codb
