// Unit tests for the discrete-event network simulator: delivery order,
// latency/bandwidth cost model, FIFO pipes, churn, and scheduled actions.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace codb {
namespace {

// Records every delivery it sees.
class RecordingPeer : public NetworkPeer {
 public:
  void HandleMessage(const Message& message) override {
    received.push_back(message);
    receive_times.push_back(now_source != nullptr ? now_source->now_us()
                                                  : 0);
  }
  void HandlePipeClosed(PeerId other) override {
    closed_pipes.push_back(other);
  }

  Network* now_source = nullptr;
  std::vector<Message> received;
  std::vector<int64_t> receive_times;
  std::vector<PeerId> closed_pipes;
};

Message Msg(PeerId src, PeerId dst, size_t payload_bytes = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = MessageType::kAdvertisement;
  m.payload.assign(payload_bytes, 0x55);
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_.now_source = &network_;
    b_.now_source = &network_;
    id_a_ = network_.Join("a", &a_);
    id_b_ = network_.Join("b", &b_);
  }

  Network network_;
  RecordingPeer a_;
  RecordingPeer b_;
  PeerId id_a_;
  PeerId id_b_;
};

TEST_F(NetworkTest, SendRequiresAPipe) {
  Status no_pipe = network_.Send(Msg(id_a_, id_b_));
  EXPECT_EQ(no_pipe.code(), StatusCode::kUnavailable);

  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  EXPECT_TRUE(network_.Send(Msg(id_a_, id_b_)).ok());
  network_.Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, LatencyAndBandwidthDelayDelivery) {
  LinkProfile profile;
  profile.latency_us = 1000;
  profile.bandwidth_bpus = 2.0;  // 2 bytes per us
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_, profile).ok());

  // WireSize = 16 header + 84 payload = 100 bytes -> 50us transmit.
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_, 84)).ok());
  network_.Run();
  ASSERT_EQ(b_.receive_times.size(), 1u);
  EXPECT_EQ(b_.receive_times[0], 1050);
}

TEST_F(NetworkTest, PipeIsFifoAndSerializesBandwidth) {
  LinkProfile profile;
  profile.latency_us = 10;
  profile.bandwidth_bpus = 1.0;
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_, profile).ok());

  // Two 100-byte messages sent back to back at t=0: the second waits for
  // the first to clear the link (FIFO serialization).
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_, 84)).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_, 84)).ok());
  network_.Run();
  ASSERT_EQ(b_.receive_times.size(), 2u);
  EXPECT_EQ(b_.receive_times[0], 110);   // 100 transmit + 10 latency
  EXPECT_EQ(b_.receive_times[1], 210);   // starts at 100, arrives 210
}

TEST_F(NetworkTest, OppositeDirectionsDoNotShareBandwidth) {
  LinkProfile profile;
  profile.latency_us = 10;
  profile.bandwidth_bpus = 1.0;
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_, profile).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_, 84)).ok());
  ASSERT_TRUE(network_.Send(Msg(id_b_, id_a_, 84)).ok());
  network_.Run();
  ASSERT_EQ(b_.receive_times.size(), 1u);
  ASSERT_EQ(a_.receive_times.size(), 1u);
  EXPECT_EQ(b_.receive_times[0], 110);
  EXPECT_EQ(a_.receive_times[0], 110);  // full duplex
}

TEST_F(NetworkTest, EqualTimestampsDeliverInSendOrder) {
  RecordingPeer c;
  c.now_source = &network_;
  PeerId id_c = network_.Join("c", &c);
  LinkProfile instant;
  instant.latency_us = 5;
  instant.bandwidth_bpus = 0;  // no serialization delay
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_c, instant).ok());
  ASSERT_TRUE(network_.OpenPipe(id_b_, id_c, instant).ok());

  Message first = Msg(id_a_, id_c);
  first.type = MessageType::kUpdateRequest;
  Message second = Msg(id_b_, id_c);
  second.type = MessageType::kUpdateData;
  ASSERT_TRUE(network_.Send(first).ok());
  ASSERT_TRUE(network_.Send(second).ok());
  network_.Run();
  ASSERT_EQ(c.received.size(), 2u);
  EXPECT_EQ(c.received[0].type, MessageType::kUpdateRequest);
  EXPECT_EQ(c.received[1].type, MessageType::kUpdateData);
}

TEST_F(NetworkTest, InFlightMessagesDropOnPipeClose) {
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_)).ok());
  ASSERT_TRUE(network_.ClosePipe(id_a_, id_b_).ok());
  network_.Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(network_.stats().dropped_messages(), 1u);
  // Both endpoints were notified.
  ASSERT_EQ(a_.closed_pipes.size(), 1u);
  EXPECT_EQ(a_.closed_pipes[0], id_b_);
  ASSERT_EQ(b_.closed_pipes.size(), 1u);
  EXPECT_EQ(b_.closed_pipes[0], id_a_);
}

TEST_F(NetworkTest, LeaveKillsPipesAndDropsTraffic) {
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_)).ok());
  ASSERT_TRUE(network_.Leave(id_b_).ok());
  EXPECT_FALSE(network_.IsAlive(id_b_));
  network_.Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(network_.stats().dropped_messages(), 1u);
  // Survivor was notified; the dead peer was not.
  ASSERT_EQ(a_.closed_pipes.size(), 1u);
  EXPECT_TRUE(b_.closed_pipes.empty());
  // Sends from a dead peer fail.
  EXPECT_FALSE(network_.Send(Msg(id_b_, id_a_)).ok());
}

TEST_F(NetworkTest, FindByNameAndNeighbors) {
  EXPECT_EQ(network_.FindByName("a").value(), id_a_);
  EXPECT_FALSE(network_.FindByName("zz").ok());
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  EXPECT_EQ(network_.Neighbors(id_a_),
            (std::vector<PeerId>{id_b_}));
  EXPECT_EQ(network_.open_pipe_count(), 1u);
  network_.ClosePipe(id_a_, id_b_);
  EXPECT_TRUE(network_.Neighbors(id_a_).empty());
  EXPECT_EQ(network_.open_pipe_count(), 0u);
}

TEST_F(NetworkTest, ReopeningAClosedPipeWorks) {
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  ASSERT_TRUE(network_.ClosePipe(id_a_, id_b_).ok());
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_)).ok());
  network_.Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, ScheduledActionsRunAtTheirTime) {
  std::vector<int64_t> fired_at;
  network_.ScheduleAt(500, [&] { fired_at.push_back(network_.now_us()); });
  network_.ScheduleAfter(100, [&] { fired_at.push_back(network_.now_us()); });
  network_.Run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], 100);
  EXPECT_EQ(fired_at[1], 500);
  EXPECT_EQ(network_.now_us(), 500);
}

TEST_F(NetworkTest, ChurnScriptRewiresMidFlight) {
  // Cut the pipe at t=500 while traffic is flowing.
  LinkProfile slow;
  slow.latency_us = 1000;
  slow.bandwidth_bpus = 0;
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_, slow).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_)).ok());  // arrives t=1000
  network_.ScheduleAt(500, [&] { network_.ClosePipe(id_a_, id_b_); });
  network_.Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(network_.stats().dropped_messages(), 1u);
}

TEST_F(NetworkTest, RunHonorsEventCap) {
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_)).ok());
  }
  EXPECT_EQ(network_.Run(/*max_events=*/3), 3u);
  EXPECT_EQ(b_.received.size(), 3u);
  network_.Run();
  EXPECT_EQ(b_.received.size(), 10u);
}

TEST_F(NetworkTest, StatsCountMessagesAndBytes) {
  ASSERT_TRUE(network_.OpenPipe(id_a_, id_b_).ok());
  ASSERT_TRUE(network_.Send(Msg(id_a_, id_b_, 84)).ok());
  network_.Run();
  EXPECT_EQ(network_.stats().total_messages(), 1u);
  EXPECT_EQ(network_.stats().total_bytes(), 100u);
  EXPECT_EQ(network_.stats().MessagesOfType(MessageType::kAdvertisement),
            1u);
  EXPECT_EQ(network_.stats().BytesOfType(MessageType::kAdvertisement),
            100u);
}

}  // namespace
}  // namespace codb
