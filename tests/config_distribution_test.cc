// Delta/projected config distribution (DESIGN.md §13).
//
// The tentpole claims under test:
//   * a node configured from its projected slice behaves byte-identically
//     to one configured from the full rule file (the projection-closure
//     argument: managers only ever ask the link graph about incident
//     rules, and cycle answers ride the super-peer's closure),
//   * version-keyed patches apply exactly or not at all (pre/post-state
//     checksums), with the receiver falling back to a fetch on mismatch,
//   * a partial broadcast failure bumps the version exactly once and the
//     retransmit sweep heals the laggards — no mixed-version end states,
//   * every peer converges to the latest version on a lossy network, and
//   * a rejoiner (silent kill + restart) catches up through the
//     gap-detection -> kConfigFetch -> full-slice path.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/config_distribution.h"
#include "core/link_graph.h"
#include "net/network.h"
#include "query/parser.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

// Stable per-relation order, as in the differential concurrency suite.
NetworkInstance Canonical(NetworkInstance instances) {
  for (auto& [node, instance] : instances) {
    for (auto& [relation, rows] : instance) {
      std::sort(rows.begin(), rows.end());
    }
  }
  return instances;
}

Result<std::unique_ptr<Node>> SpawnNode(NetworkBase* network,
                                        const NodeDecl& decl) {
  DatabaseSchema schema;
  for (const RelationSchema& rel : decl.relations) {
    CODB_RETURN_IF_ERROR(schema.AddRelation(rel));
  }
  return Node::Create(network, decl.name, std::move(schema), decl.mediator);
}

void Seed(Node* node, const GeneratedNetwork& generated) {
  auto it = generated.seeds.find(node->name());
  if (it == generated.seeds.end()) return;
  for (const auto& [relation, tuples] : it->second) {
    Relation* r = node->database().Find(relation);
    ASSERT_NE(r, nullptr);
    for (const Tuple& tuple : tuples) r->Insert(tuple);
  }
}

std::vector<Tuple> SortedAnswers(Node* node, NetworkBase& network) {
  Result<ConjunctiveQuery> q = ParseQuery("q(K, V) :- d(K, V).");
  EXPECT_TRUE(q.ok());
  Result<FlowId> query = node->StartQuery(q.value());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  network.Run();
  Result<std::vector<Tuple>> answers = node->QueryAnswers(query.value());
  EXPECT_TRUE(answers.ok()) << answers.status().ToString();
  std::vector<Tuple> sorted = answers.ok() ? answers.value()
                                           : std::vector<Tuple>();
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// Reference deployment: every node gets the FULL configuration via a
// direct ApplyConfig — the pre-§13 distribution semantics.
struct FullConfigRun {
  NetworkInstance stores;
  std::vector<Tuple> answers;
};

FullConfigRun RunWithFullConfig(const GeneratedNetwork& generated) {
  FullConfigRun out;
  Network network;
  std::vector<std::unique_ptr<Node>> nodes;
  for (const NodeDecl& decl : generated.config.nodes()) {
    Result<std::unique_ptr<Node>> node = SpawnNode(&network, decl);
    EXPECT_TRUE(node.ok()) << node.status().ToString();
    if (!node.ok()) return out;
    Seed(node.value().get(), generated);
    nodes.push_back(std::move(node).value());
  }
  for (auto& node : nodes) {
    EXPECT_TRUE(node->ApplyConfig(generated.config, 1).ok());
  }
  network.Run();

  Result<FlowId> update = nodes.front()->StartGlobalUpdate();
  EXPECT_TRUE(update.ok()) << update.status().ToString();
  network.Run();

  for (auto& node : nodes) {
    out.stores.emplace(node->name(), node->database().Snapshot());
  }
  out.stores = Canonical(std::move(out.stores));
  out.answers = SortedAnswers(nodes.front().get(), network);
  return out;
}

TEST(ConfigDistributionTest, SliceConfiguredNetworkMatchesFullConfig) {
  struct Case {
    const char* name;
    GeneratedNetwork (*make)(const WorkloadOptions&);
    RuleStyle style;
  };
  const Case cases[] = {
      {"chain/copy", MakeChain, RuleStyle::kCopy},
      {"star/join", MakeStar, RuleStyle::kJoin},
      {"tree/project", MakeTree, RuleStyle::kProject},
      {"ring/join", MakeRing, RuleStyle::kJoin},  // cyclic rule set
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    WorkloadOptions options;
    options.nodes = 6;
    options.tuples_per_node = 4;
    options.style = c.style;
    GeneratedNetwork generated = c.make(options);

    FullConfigRun reference = RunWithFullConfig(generated);

    // Same network, distributed as per-node slices by the super-peer.
    Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
    ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
    Testbed& bed = *testbed.value();

    // The legacy full-file broadcast is gone from the wire.
    EXPECT_EQ(bed.network().stats().MessagesOfType(
                  MessageType::kConfigBroadcast),
              0u);
    EXPECT_GT(bed.network().stats().MessagesOfType(MessageType::kConfigSlice),
              0u);

    // Every node holds only its slice, yet answers cycle queries with the
    // super-peer's global closure.
    LinkGraph full_graph = LinkGraph::Build(generated.config);
    for (const auto& node : bed.nodes()) {
      ASSERT_NE(node->link_graph(), nullptr);
      EXPECT_EQ(node->link_graph()->HasAnyCycle(), full_graph.HasAnyCycle())
          << node->name();
      for (const CoordinationRule& rule : node->config()->rules()) {
        EXPECT_EQ(node->link_graph()->IsCyclic(rule.id()),
                  full_graph.IsCyclic(rule.id()))
            << node->name() << " rule " << rule.id();
      }
    }

    Result<FlowId> update = bed.RunGlobalUpdate("n0");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    EXPECT_TRUE(bed.AllComplete(update.value()));

    NetworkInstance sliced = Canonical(bed.Snapshot());
    ASSERT_EQ(reference.stores.size(), sliced.size());
    for (const auto& [name, instance] : reference.stores) {
      ASSERT_TRUE(sliced.count(name) > 0) << "missing node " << name;
      EXPECT_EQ(instance, sliced.at(name))
          << "slice-configured store diverged at " << name;
    }
    EXPECT_EQ(reference.answers, SortedAnswers(bed.node("n0"), bed.network()));
  }
}

TEST(ConfigDistributionTest, PatchRoundTripAndChecksumRejection) {
  WorkloadOptions options;
  options.nodes = 5;
  NetworkConfig from = MakeChain(options).config;
  NetworkConfig to = MakeStar(options).config;  // same nodes, new rules

  ConfigPatch patch = DiffSlices(from, to);
  patch.from_version = 1;
  patch.to_version = 2;
  EXPECT_FALSE(patch.Empty());

  Result<NetworkConfig> applied = ApplyPatch(from, patch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().CanonicalText(), to.CanonicalText());
  EXPECT_EQ(applied.value().CanonicalChecksum(), to.CanonicalChecksum());

  // Tampered post-state checksum: refused, and the base — ApplyPatch is
  // pure — still hashes as before (nothing was applied in place).
  const uint64_t base_checksum = from.CanonicalChecksum();
  ConfigPatch tampered = patch;
  tampered.post_checksum ^= 0xdeadbeef;
  Result<NetworkConfig> rejected = ApplyPatch(from, tampered);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
  EXPECT_EQ(from.CanonicalChecksum(), base_checksum);

  // Wrong base: refused up front by the pre-state checksum.
  Result<NetworkConfig> wrong_base = ApplyPatch(to, patch);
  ASSERT_FALSE(wrong_base.ok());
  EXPECT_EQ(wrong_base.status().code(), StatusCode::kFailedPrecondition);

  // Per-node slices patch the same way the full file does.
  LinkGraph from_graph = LinkGraph::Build(from);
  LinkGraph to_graph = LinkGraph::Build(to);
  for (const NodeDecl& decl : from.nodes()) {
    SCOPED_TRACE(decl.name);
    ConfigSlice old_slice = MakeSlice(from, from_graph, decl.name);
    ConfigSlice new_slice = MakeSlice(to, to_graph, decl.name);
    ConfigPatch slice_patch = DiffSlices(old_slice.config, new_slice.config);
    Result<NetworkConfig> patched = ApplyPatch(old_slice.config, slice_patch);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    EXPECT_EQ(patched.value().CanonicalChecksum(), new_slice.checksum);
  }
}

TEST(ConfigDistributionTest, RebroadcastShipsDeltasNotSlices) {
  WorkloadOptions options;
  options.nodes = 8;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  const uint64_t slice_bytes_v1 =
      bed.network().stats().BytesOfType(MessageType::kConfigSlice);
  EXPECT_GT(slice_bytes_v1, 0u);

  // Re-broadcast of the unchanged file: every peer acked v1, so v2 ships
  // as (empty) patches — not one slice more on the wire.
  ASSERT_TRUE(bed.super_peer().BroadcastConfig().ok());
  bed.network().Run();
  EXPECT_EQ(bed.network().stats().BytesOfType(MessageType::kConfigSlice),
            slice_bytes_v1);
  const uint64_t delta_bytes =
      bed.network().stats().BytesOfType(MessageType::kConfigDelta);
  EXPECT_GT(delta_bytes, 0u);
  EXPECT_LT(delta_bytes, slice_bytes_v1);

  EXPECT_EQ(bed.super_peer().config_version(), 2u);
  for (const auto& node : bed.nodes()) {
    EXPECT_EQ(node->config_version(), 2u) << node->name();
    EXPECT_EQ(bed.super_peer().AckedVersionOf(node->name()), 2u)
        << node->name();
  }
}

// A network whose next config send to the victim fails with an error (not
// a silent drop), modelling a refused connection mid-broadcast.
class FlakyNetwork : public Network {
 public:
  void FailNextConfigSendTo(PeerId victim) {
    victim_ = victim;
    armed_ = true;
  }
  Status Send(Message message) override {
    if (armed_ && message.dst == victim_ &&
        (message.type == MessageType::kConfigSlice ||
         message.type == MessageType::kConfigDelta)) {
      armed_ = false;
      return Status::Unavailable("injected config send failure");
    }
    return Network::Send(std::move(message));
  }

 private:
  PeerId victim_{};
  bool armed_ = false;
};

TEST(ConfigDistributionTest, PartialSendFailureLeavesNoVersionSkew) {
  WorkloadOptions options;
  options.nodes = 4;
  GeneratedNetwork generated = MakeChain(options);

  FlakyNetwork network;
  std::vector<std::unique_ptr<Node>> nodes;
  for (const NodeDecl& decl : generated.config.nodes()) {
    Result<std::unique_ptr<Node>> node = SpawnNode(&network, decl);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    nodes.push_back(std::move(node).value());
  }
  std::unique_ptr<SuperPeer> super = SuperPeer::Create(&network, "super");
  ASSERT_TRUE(super->LoadConfig(generated.config).ok());

  // The send to n2 fails mid-loop. The old BroadcastConfig aborted right
  // there, leaving n0..n1 on the new version and n2..n3 on the old one —
  // and a retry re-bumped the version past the already-updated peers.
  network.FailNextConfigSendTo(nodes[2]->id());
  ASSERT_TRUE(super->BroadcastConfig().ok());  // best-effort, not an error

  EXPECT_EQ(super->config_version(), 1u);  // bumped exactly once
  std::vector<std::string> failures = super->LastBroadcastFailures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0], "n2");

  // The retransmit sweep heals the victim; after quiescence there is no
  // mixed-version region.
  network.Run();
  for (const auto& node : nodes) {
    EXPECT_EQ(node->config_version(), 1u) << node->name();
    EXPECT_EQ(super->AckedVersionOf(node->name()), 1u) << node->name();
  }
}

TEST(ConfigDistributionTest, LossyNetworkConvergesToLatestVersion) {
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  // The initial settle runs faultlessly (testbed contract); every later
  // send — broadcasts, deltas, acks, sweeps — rides a seeded 35% drop.
  Testbed::Options bed_options;
  bed_options.fault = FaultProfile::Drop(0.35, /*seed=*/1234);
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  // Two broadcasts under loss: v2 and v3. Lost kConfigSlice/kConfigDelta
  // deliveries are healed by the retransmit sweep; a node that missed an
  // intermediate version is patched from whatever it last acked.
  ASSERT_TRUE(bed.super_peer().BroadcastConfig().ok());
  bed.network().Run();
  ASSERT_TRUE(bed.super_peer().BroadcastConfig().ok());
  bed.network().Run();

  EXPECT_EQ(bed.super_peer().config_version(), 3u);
  for (const auto& node : bed.nodes()) {
    EXPECT_EQ(node->config_version(), 3u)
        << node->name() << " stuck on a stale config";
    EXPECT_EQ(bed.super_peer().AckedVersionOf(node->name()), 3u)
        << node->name();
  }
}

TEST(ConfigDistributionTest, RejoinerCatchesUpViaFetch) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  ASSERT_TRUE(bed.SilentKillNode("n2").ok());
  Result<Node*> revived = bed.RestartNode("n2");
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();

  // The super remembered n2's v1 ack (keyed by name, surviving the peer-id
  // change) and sent a v1->v2 delta; the restarted node is back at v0, so
  // it detected the gap, fetched, and got a full slice.
  EXPECT_GE(revived.value()
                ->statistics()
                .metrics()
                .GetCounter("config.gap_fetches")
                ->value(),
            1u);
  EXPECT_EQ(bed.super_peer().config_version(), 2u);
  EXPECT_EQ(revived.value()->config_version(), 2u);
  for (const auto& node : bed.nodes()) {
    EXPECT_EQ(node->config_version(), 2u) << node->name();
  }

  // The rejoined topology works end to end: n2 restarted empty (no
  // durable storage here) but relays n3's data to the head of the chain.
  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 15u);  // n0+n1+n3
}

TEST(ConfigDistributionTest, LatecomerAcquaintancePipeOpensOnDiscovery) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Network network;
  // n0 applies the config before its exporter n1 exists: the pipe cannot
  // open yet, and the miss is parked for retry instead of dropped.
  Result<std::unique_ptr<Node>> n0 =
      SpawnNode(&network, *generated.config.FindNode("n0"));
  ASSERT_TRUE(n0.ok());
  Seed(n0.value().get(), generated);
  ASSERT_TRUE(n0.value()->ApplyConfig(generated.config, 1).ok());

  // n1 joins late and applies the same config; its announcement reaches
  // n0, whose deferred-pipe retry completes the topology.
  Result<std::unique_ptr<Node>> n1 =
      SpawnNode(&network, *generated.config.FindNode("n1"));
  ASSERT_TRUE(n1.ok());
  Seed(n1.value().get(), generated);
  ASSERT_TRUE(n1.value()->ApplyConfig(generated.config, 1).ok());
  network.Run();

  EXPECT_TRUE(network.HasPipe(n0.value()->id(), n1.value()->id()));
  Result<FlowId> update = n0.value()->StartGlobalUpdate();
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  network.Run();
  EXPECT_EQ(n0.value()->database().Find("d")->size(), 6u);  // n0 + n1
}

}  // namespace
}  // namespace codb
