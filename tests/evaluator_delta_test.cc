// Dedicated coverage for semi-naive delta evaluation in the cases the
// update fixpoint actually produces: rule bodies mentioning the delta
// relation in two or more atoms (the per-occurrence union path of
// CompiledQuery::EvaluateDelta) and joins whose keys are marked nulls.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/evaluator.h"
#include "query/parser.h"
#include "relation/database.h"

namespace codb {
namespace {

class EvaluatorDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateRelation(RelationSchema(
                        "r", {{"a", ValueType::kInt},
                              {"b", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_.CreateRelation(RelationSchema(
                        "link", {{"x", ValueType::kInt},
                                 {"y", ValueType::kInt}}))
                    .ok());
    schema_ = db_.Schema();
  }

  CompiledQuery Compile(const std::string& text,
                        std::vector<std::string> output) {
    Result<ConjunctiveQuery> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Result<CompiledQuery> compiled =
        CompiledQuery::Compile(q.value(), schema_, std::move(output));
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return std::move(compiled).value();
  }

  void InsertR(int64_t a, int64_t b) {
    db_.Find("r")->Insert(Tuple{Value::Int(a), Value::Int(b)});
  }

  Database db_;
  DatabaseSchema schema_;
};

// Reference semantics: EvaluateDelta must return exactly the frontiers of
// derivations that use at least one delta tuple, i.e. it must cover
// eval(after) \ eval(before) and stay within eval(after).
TEST_F(EvaluatorDeltaTest, ThreeOccurrenceDeltaMatchesFullEvalDifference) {
  CompiledQuery q =
      Compile("q(A, D) :- r(A, B), r(B, C), r(C, D).", {"A", "D"});

  InsertR(1, 2);
  InsertR(2, 3);
  InsertR(3, 4);
  std::vector<Tuple> before = q.Evaluate(db_);

  // The delta extends existing chains in front, in the middle, and at the
  // back, so every occurrence position contributes derivations.
  std::vector<Tuple> delta = {Tuple{Value::Int(0), Value::Int(1)},
                              Tuple{Value::Int(4), Value::Int(5)}};
  for (const Tuple& t : delta) db_.Find("r")->Insert(t);
  std::vector<Tuple> after = q.Evaluate(db_);

  std::vector<Tuple> rows = q.EvaluateDelta(db_, "r", delta);

  std::set<Tuple> delta_set(rows.begin(), rows.end());
  std::set<Tuple> before_set(before.begin(), before.end());
  std::set<Tuple> after_set(after.begin(), after.end());

  // No duplicates leak out of the per-occurrence union.
  EXPECT_EQ(delta_set.size(), rows.size());
  for (const Tuple& t : after) {
    if (before_set.count(t) == 0) {
      EXPECT_TRUE(delta_set.count(t) > 0)
          << "missing new derivation " << t.ToString();
    }
  }
  for (const Tuple& t : rows) {
    EXPECT_TRUE(after_set.count(t) > 0)
        << "derivation not in full evaluation " << t.ToString();
  }
}

// One delta tuple serving two occurrences at once (a self-loop) must yield
// its frontier exactly once despite both per-occurrence passes finding it.
TEST_F(EvaluatorDeltaTest, SelfLoopDedupedAcrossOccurrencePasses) {
  CompiledQuery q = Compile("q(A, C) :- r(A, B), r(B, C).", {"A", "C"});
  Tuple loop{Value::Int(7), Value::Int(7)};
  db_.Find("r")->Insert(loop);

  std::vector<Tuple> rows = q.EvaluateDelta(db_, "r", {loop});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(7), Value::Int(7)}));
}

// Marked nulls are first-class join keys: two link tuples sharing a null
// label must join, distinct labels must not — also through the delta path.
TEST_F(EvaluatorDeltaTest, MarkedNullJoinKeysInDelta) {
  CompiledQuery q =
      Compile("q(X, Z) :- link(X, Y), link(Y, Z).", {"X", "Z"});

  Value witness = Value::Null(3, 41);
  Value other = Value::Null(3, 42);
  db_.Find("link")->Insert(Tuple{Value::Int(1), witness});

  // Delta joins with the stored tuple through the shared witness; the
  // tuple with a different label must not contribute.
  std::vector<Tuple> delta = {Tuple{witness, Value::Int(9)},
                              Tuple{other, Value::Int(666)}};
  for (const Tuple& t : delta) db_.Find("link")->Insert(t);

  std::vector<Tuple> rows = q.EvaluateDelta(db_, "link", delta);
  std::sort(rows.begin(), rows.end());

  // (1, 9) via the shared witness. No derivation may cross labels.
  ASSERT_TRUE(std::find(rows.begin(), rows.end(),
                        (Tuple{Value::Int(1), Value::Int(9)})) != rows.end());
  for (const Tuple& t : rows) {
    EXPECT_FALSE(t == (Tuple{Value::Int(1), Value::Int(666)}));
  }
}

// Both at once: the delta relation occurs twice AND the join key is a
// marked null minted by a remote peer — the exact shape a propagated
// existential produces in the global-update fixpoint.
TEST_F(EvaluatorDeltaTest, RepeatedOccurrenceWithNullKeysAndFrontierNulls) {
  CompiledQuery q =
      Compile("q(X, Z) :- link(X, Y), link(Y, Z).", {"X", "Z"});

  Value n1 = Value::Null(5, 1);
  Value n2 = Value::Null(5, 2);
  // Chain: n1 -> n2 -> 3 where every hop arrives in the same delta batch.
  std::vector<Tuple> delta = {Tuple{n1, n2}, Tuple{n2, Value::Int(3)}};
  for (const Tuple& t : delta) db_.Find("link")->Insert(t);

  std::vector<Tuple> rows = q.EvaluateDelta(db_, "link", delta);
  // The two-hop derivation joins two delta tuples on the null key n2 and
  // carries the null n1 out through the frontier.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{n1, Value::Int(3)}));

  // An empty delta stays empty even with repeated occurrences.
  EXPECT_TRUE(q.EvaluateDelta(db_, "link", {}).empty());
}

// Edge cases surfaced by the incremental-update battery ---------------------

// A batch whose rows connect to the store on both sides: the delta must
// join delta←existing and existing←delta without double-counting the
// all-delta derivation both passes can reach.
TEST_F(EvaluatorDeltaTest, DeltaExtendsExistingChainsBothDirections) {
  CompiledQuery q = Compile("q(A, C) :- r(A, B), r(B, C).", {"A", "C"});
  InsertR(1, 2);  // pre-existing middle link

  std::vector<Tuple> delta = {Tuple{Value::Int(0), Value::Int(1)},
                              Tuple{Value::Int(2), Value::Int(3)}};
  for (const Tuple& t : delta) db_.Find("r")->Insert(t);

  std::vector<Tuple> rows = q.EvaluateDelta(db_, "r", delta);
  std::sort(rows.begin(), rows.end());
  std::vector<Tuple> expected = {
      Tuple{Value::Int(0), Value::Int(2)},   // delta ⋈ existing
      Tuple{Value::Int(1), Value::Int(3)}};  // existing ⋈ delta
  EXPECT_EQ(rows, expected);
}

// Multi-relation body: a delta for one relation must probe the other
// relation's *entire* store, and a delta for the other relation must do
// the converse — the union covers the full difference.
TEST_F(EvaluatorDeltaTest, MultiRelationBodyDeltaPerRelation) {
  CompiledQuery q = Compile("q(A, Y) :- r(A, B), link(B, Y).", {"A", "Y"});
  InsertR(1, 10);
  db_.Find("link")->Insert(Tuple{Value::Int(10), Value::Int(100)});
  std::vector<Tuple> before = q.Evaluate(db_);

  // One delta per relation, landing in the same batch of an update.
  std::vector<Tuple> delta_r = {Tuple{Value::Int(2), Value::Int(20)}};
  std::vector<Tuple> delta_link = {Tuple{Value::Int(20), Value::Int(200)}};
  db_.Find("r")->Insert(delta_r[0]);
  db_.Find("link")->Insert(delta_link[0]);
  std::vector<Tuple> after = q.Evaluate(db_);

  std::set<Tuple> covered;
  for (const Tuple& t : q.EvaluateDelta(db_, "r", delta_r)) covered.insert(t);
  for (const Tuple& t : q.EvaluateDelta(db_, "link", delta_link)) {
    covered.insert(t);
  }
  std::set<Tuple> before_set(before.begin(), before.end());
  std::set<Tuple> after_set(after.begin(), after.end());
  for (const Tuple& t : after_set) {
    if (before_set.count(t) == 0) {
      EXPECT_TRUE(covered.count(t) > 0)
          << "missing new derivation " << t.ToString();
    }
  }
  for (const Tuple& t : covered) {
    EXPECT_TRUE(after_set.count(t) > 0)
        << "derivation not in full evaluation " << t.ToString();
  }
  // The r-delta alone reaches the new link row too (it is in the store by
  // the time the delta evaluates), so (2, 200) must be covered.
  EXPECT_TRUE(covered.count(Tuple{Value::Int(2), Value::Int(200)}) > 0);
}

// A duplicated row inside one delta batch (a wrapper that failed to dedup,
// or a retransmitted shipment applied twice) must not duplicate frontiers.
TEST_F(EvaluatorDeltaTest, DuplicateDeltaRowsYieldEachFrontierOnce) {
  CompiledQuery q = Compile("q(A, C) :- r(A, B), r(B, C).", {"A", "C"});
  InsertR(1, 2);
  Tuple row{Value::Int(2), Value::Int(3)};
  db_.Find("r")->Insert(row);

  std::vector<Tuple> rows = q.EvaluateDelta(db_, "r", {row, row});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1), Value::Int(3)}));
}

// A delta against a relation the body never mentions contributes nothing —
// the guard the update manager relies on when it routes a multi-relation
// batch through rules that reference only part of it.
TEST_F(EvaluatorDeltaTest, DeltaForUnreferencedRelationIsEmpty) {
  CompiledQuery q = Compile("q(A, B) :- r(A, B).", {"A", "B"});
  InsertR(1, 2);
  std::vector<Tuple> delta = {Tuple{Value::Int(5), Value::Int(6)}};
  db_.Find("link")->Insert(delta[0]);
  EXPECT_TRUE(q.EvaluateDelta(db_, "link", delta).empty());
}

}  // namespace
}  // namespace codb
