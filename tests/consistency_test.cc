// Tests of key constraints and local-inconsistency handling: detection,
// suppression of exports (paper principle (d): "local inconsistency does
// not propagate"), recovery after repair, and message batching.

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "query/parser.h"
#include "workload/testbed.h"

namespace codb {
namespace {

TEST(ConsistencyTest, FindKeyViolationsDetectsDuplicates) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                      "d", {{"k", ValueType::kInt},
                            {"v", ValueType::kInt}}))
                  .ok());
  db.Find("d")->Insert(Tuple{Value::Int(1), Value::Int(10)});
  db.Find("d")->Insert(Tuple{Value::Int(2), Value::Int(20)});

  KeyConstraint key{"d", {"k"}};
  EXPECT_TRUE(FindKeyViolations(db, {key}).empty());

  // Same key, different payload: violation.
  db.Find("d")->Insert(Tuple{Value::Int(1), Value::Int(99)});
  std::vector<std::string> violations = FindKeyViolations(db, {key});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("key d(k)"), std::string::npos);
}

TEST(ConsistencyTest, CompositeKeysAndBadConstraints) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                      "d", {{"a", ValueType::kInt},
                            {"b", ValueType::kInt},
                            {"c", ValueType::kInt}}))
                  .ok());
  db.Find("d")->Insert(Tuple{Value::Int(1), Value::Int(1), Value::Int(1)});
  db.Find("d")->Insert(Tuple{Value::Int(1), Value::Int(2), Value::Int(2)});

  // (a,b) is a key here; (a) alone is not.
  EXPECT_TRUE(FindKeyViolations(db, {{"d", {"a", "b"}}}).empty());
  EXPECT_EQ(FindKeyViolations(db, {{"d", {"a"}}}).size(), 1u);

  // Misconfigured constraints count as violations.
  EXPECT_EQ(FindKeyViolations(db, {{"ghost", {"a"}}}).size(), 1u);
  EXPECT_EQ(FindKeyViolations(db, {{"d", {"zz"}}}).size(), 1u);
}

TEST(ConsistencyTest, ConfigParsesAndSerializesKeys) {
  const char* text =
      "node a\n"
      "  relation d(k:int, v:int)\n"
      "  key d(k)\n"
      "node b\n"
      "  relation d(k:int, v:int)\n"
      "rule r1 b <- a : d(K, V) :- d(K, V).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config.value().nodes()[0].keys.size(), 1u);
  EXPECT_EQ(config.value().nodes()[0].keys[0].relation, "d");
  EXPECT_EQ(config.value().nodes()[0].keys[0].columns,
            (std::vector<std::string>{"k"}));

  // Round trip.
  Result<NetworkConfig> again =
      NetworkConfig::Parse(config.value().Serialize());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().nodes()[0].keys.size(), 1u);

  // Key on an undeclared relation rejected.
  EXPECT_FALSE(NetworkConfig::Parse("node a\n  relation d(k:int)\n"
                                    "  key ghost(k)\n")
                   .ok());
  EXPECT_FALSE(NetworkConfig::Parse("node a\n  relation d(k:int)\n"
                                    "  key d(zz)\n")
                   .ok());
}

GeneratedNetwork KeyedChain() {
  const char* text =
      "node a\n"
      "  relation d(k:int, v:int)\n"
      "node b\n"
      "  relation d(k:int, v:int)\n"
      "  key d(k)\n"
      "node c\n"
      "  relation d(k:int, v:int)\n"
      "rule ab a <- b : d(K, V) :- d(K, V).\n"
      "rule bc b <- c : d(K, V) :- d(K, V).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  NetworkInstance seeds;
  seeds["a"]["d"] = {Tuple{Value::Int(1), Value::Int(10)}};
  seeds["b"]["d"] = {Tuple{Value::Int(2), Value::Int(20)}};
  seeds["c"]["d"] = {Tuple{Value::Int(3), Value::Int(30)}};
  return {std::move(config).value(), std::move(seeds)};
}

TEST(ConsistencyTest, InconsistentNodeExportsNothing) {
  GeneratedNetwork generated = KeyedChain();
  // Violate b's key: duplicate key 2 with different payloads.
  generated.seeds["b"]["d"].push_back(
      Tuple{Value::Int(2), Value::Int(99)});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  EXPECT_FALSE(bed.node("b")->ConsistencyViolations().empty());
  EXPECT_TRUE(bed.node("a")->ConsistencyViolations().empty());

  Result<FlowId> update = bed.RunGlobalUpdate("a");
  ASSERT_TRUE(update.ok());
  // The update still terminates...
  EXPECT_TRUE(bed.AllComplete(update.value()));
  // ...but a receives nothing from b (b is inconsistent and exports
  // nothing, including c's data it would have relayed).
  EXPECT_EQ(bed.node("a")->database().Find("d")->size(), 1u);
  // b still imports from c (imports are unaffected): its 2 seed rows
  // plus c's imported row.
  EXPECT_EQ(bed.node("b")->database().Find("d")->size(), 3u);
}

TEST(ConsistencyTest, RepairRestoresExports) {
  GeneratedNetwork generated = KeyedChain();
  generated.seeds["b"]["d"].push_back(
      Tuple{Value::Int(2), Value::Int(99)});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("a").ok());
  ASSERT_EQ(bed.node("a")->database().Find("d")->size(), 1u);

  // Repair b: drop the offending tuple (keep the relation a set again).
  Relation* b_d = bed.node("b")->database().Find("d");
  std::vector<Tuple> kept;
  for (const Tuple& t : b_d->rows()) {
    if (!(t == Tuple{Value::Int(2), Value::Int(99)})) kept.push_back(t);
  }
  b_d->Clear();
  for (const Tuple& t : kept) b_d->Insert(t);
  EXPECT_TRUE(bed.node("b")->ConsistencyViolations().empty());

  // A fresh update now migrates b's (and c's relayed) data.
  Result<FlowId> second = bed.RunGlobalUpdate("a");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(bed.node("a")->database().Find("d")->size(), 3u);
}

TEST(ConsistencyTest, InconsistentNodeServesNoQueries) {
  GeneratedNetwork generated = KeyedChain();
  generated.seeds["b"]["d"].push_back(
      Tuple{Value::Int(2), Value::Int(99)});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> query = bed.node("a")->StartQuery(
      ParseQuery("q(K, V) :- d(K, V).").value());
  ASSERT_TRUE(query.ok());
  bed.network().Run();
  EXPECT_TRUE(bed.node("a")->QueryDone(query.value()));
  Result<std::vector<Tuple>> answers =
      bed.node("a")->QueryAnswers(query.value());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value().size(), 1u);  // a's own row only
}

TEST(BatchingTest, BatchesSplitMessagesButPreserveResults) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 25;
  GeneratedNetwork generated = MakeChain(options);

  auto run = [&](size_t batch) {
    Testbed::Options testbed_options;
    testbed_options.node.update.max_batch_tuples = batch;
    Result<std::unique_ptr<Testbed>> testbed =
        Testbed::Create(generated, testbed_options);
    EXPECT_TRUE(testbed.ok());
    Result<FlowId> update = testbed.value()->RunGlobalUpdate("n0");
    EXPECT_TRUE(update.ok());
    EXPECT_TRUE(testbed.value()->AllComplete(update.value()));
    return std::pair{testbed.value()->Snapshot(),
                     testbed.value()->network().stats().MessagesOfType(
                         MessageType::kUpdateData)};
  };

  auto [unbatched_instances, unbatched_messages] = run(0);
  auto [batched_instances, batched_messages] = run(10);

  EXPECT_EQ(unbatched_instances, batched_instances);
  // 25-tuple results split into 10-tuple batches -> more messages.
  EXPECT_GT(batched_messages, unbatched_messages);
}

}  // namespace
}  // namespace codb
