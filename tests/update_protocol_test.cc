// White-box tests of the update manager's protocol state machine, driving
// a single real node with hand-crafted messages from a scripted peer:
// link-state transitions, ack emission, duplicate-request handling, and
// the simple-path guard at the message level.

#include <gtest/gtest.h>

#include "core/node.h"
#include "net/network.h"
#include "query/parser.h"

namespace codb {
namespace {

// A scripted peer that records everything it receives.
class ScriptedPeer : public NetworkPeer {
 public:
  void HandleMessage(const Message& message) override {
    received.push_back(message);
  }
  std::vector<Message> received;

  size_t CountType(MessageType type) const {
    size_t n = 0;
    for (const Message& m : received) {
      if (m.type == type) ++n;
    }
    return n;
  }
  const Message* FirstOfType(MessageType type) const {
    for (const Message& m : received) {
      if (m.type == type) return &m;
    }
    return nullptr;
  }
};

// Network with one real node ("mid") between two scripted endpoints:
//   left <- mid <- right   (mid imports from right via r_in, exports to
//   left via r_out; both rules move relation d).
class UpdateProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    left_id_ = network_.Join("left", &left_);
    DatabaseSchema schema;
    ASSERT_TRUE(
        schema.AddRelation(RelationSchema("d", {{"k", ValueType::kInt}}))
            .ok());
    Result<std::unique_ptr<Node>> node =
        Node::Create(&network_, "mid", schema);
    ASSERT_TRUE(node.ok());
    mid_ = std::move(node).value();
    right_id_ = network_.Join("right", &right_);

    Result<NetworkConfig> config = NetworkConfig::Parse(
        "node left\n  relation d(k:int)\n"
        "node mid\n  relation d(k:int)\n"
        "node right\n  relation d(k:int)\n"
        "rule r_out left <- mid : d(K) :- d(K).\n"
        "rule r_in mid <- right : d(K) :- d(K).\n");
    ASSERT_TRUE(config.ok()) << config.status().ToString();
    ASSERT_TRUE(mid_->ApplyConfig(config.value(), 1).ok());
    network_.Run();  // settle pipes + discovery
    left_.received.clear();
    right_.received.clear();
  }

  void SendToMid(PeerId from, MessageType type,
                 std::vector<uint8_t> payload) {
    ASSERT_TRUE(network_
                    .Send(MakeMessage(from, mid_->id(), type,
                                      std::move(payload)))
                    .ok());
    network_.Run();
  }

  FlowId update_{FlowId::Scope::kUpdate, 77, 1};
  Network network_;
  ScriptedPeer left_;
  ScriptedPeer right_;
  std::unique_ptr<Node> mid_;
  PeerId left_id_;
  PeerId right_id_;
};

TEST_F(UpdateProtocolTest, RequestTriggersJoinFloodAndInitialData) {
  mid_->database().Find("d")->Insert(Tuple{Value::Int(5)});
  SendToMid(left_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());

  // mid forwards the request to right (not back to left)...
  EXPECT_EQ(right_.CountType(MessageType::kUpdateRequest), 1u);
  EXPECT_EQ(left_.CountType(MessageType::kUpdateRequest), 0u);
  // ...ships its initial data on r_out to left...
  const Message* data = left_.FirstOfType(MessageType::kUpdateData);
  ASSERT_NE(data, nullptr);
  Result<UpdateDataPayload> parsed =
      UpdateDataPayload::Deserialize(data->payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().rule_id, "r_out");
  EXPECT_EQ(parsed.value().path,
            (std::vector<uint32_t>{mid_->id().value}));
  ASSERT_EQ(parsed.value().tuples.size(), 1u);
  EXPECT_EQ(parsed.value().tuples[0].tuple, Tuple{Value::Int(5)});
  EXPECT_TRUE(mid_->update_manager()->IsJoined(update_));
}

TEST_F(UpdateProtocolTest, DuplicateRequestAckedButNotReprocessed) {
  SendToMid(left_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  size_t forwarded = right_.CountType(MessageType::kUpdateRequest);
  SendToMid(left_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  // No second flood; the duplicate is acked immediately (mid is already
  // engaged, so the second basic message gets an instant ack).
  EXPECT_EQ(right_.CountType(MessageType::kUpdateRequest), forwarded);
  EXPECT_GE(left_.CountType(MessageType::kUpdateAck), 1u);
}

TEST_F(UpdateProtocolTest, DataIsRelayedWithExtendedPathAndAcked) {
  SendToMid(right_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  left_.received.clear();
  right_.received.clear();

  UpdateDataPayload data;
  data.update = update_;
  data.rule_id = "r_in";
  data.path = {right_id_.value};
  data.tuples = {{"d", Tuple{Value::Int(9)}}};
  SendToMid(right_id_, MessageType::kUpdateData, data.Serialize());

  // The tuple landed in mid's store...
  EXPECT_TRUE(mid_->database().Find("d")->Contains(Tuple{Value::Int(9)}));
  // ...was relayed on r_out with the extended path...
  const Message* relayed = left_.FirstOfType(MessageType::kUpdateData);
  ASSERT_NE(relayed, nullptr);
  Result<UpdateDataPayload> parsed =
      UpdateDataPayload::Deserialize(relayed->payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().path,
            (std::vector<uint32_t>{right_id_.value, mid_->id().value}));
  // ...and right got an ack for its data message.
  EXPECT_GE(right_.CountType(MessageType::kUpdateAck), 1u);
}

TEST_F(UpdateProtocolTest, SimplePathGuardBlocksRelayToPathMember) {
  SendToMid(right_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  left_.received.clear();

  // Data whose path already contains left: mid must NOT relay it there.
  UpdateDataPayload data;
  data.update = update_;
  data.rule_id = "r_in";
  data.path = {left_id_.value, right_id_.value};
  data.tuples = {{"d", Tuple{Value::Int(11)}}};
  SendToMid(right_id_, MessageType::kUpdateData, data.Serialize());

  EXPECT_TRUE(mid_->database().Find("d")->Contains(Tuple{Value::Int(11)}));
  EXPECT_EQ(left_.CountType(MessageType::kUpdateData), 0u);
}

TEST_F(UpdateProtocolTest, LinkClosedCascadesDownstream) {
  SendToMid(right_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  // r_out cannot close yet: its relevant upstream link r_in is open.
  EXPECT_FALSE(
      mid_->update_manager()->IncomingLinkClosed(update_, "r_out"));

  SendToMid(right_id_, MessageType::kLinkClosed,
            LinkClosedPayload{update_, "r_in"}.Serialize());
  // Now r_in is closed at mid, so mid closes r_out and tells left.
  EXPECT_TRUE(
      mid_->update_manager()->OutgoingLinkClosed(update_, "r_in"));
  EXPECT_TRUE(
      mid_->update_manager()->IncomingLinkClosed(update_, "r_out"));
  EXPECT_EQ(left_.CountType(MessageType::kLinkClosed), 1u);
  EXPECT_TRUE(mid_->update_manager()->IsClosed(update_));
}

TEST_F(UpdateProtocolTest, CompleteFloodForcesClosureAndForwards) {
  SendToMid(right_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  EXPECT_FALSE(mid_->update_manager()->IsComplete(update_));

  SendToMid(right_id_, MessageType::kUpdateComplete,
            UpdateCompletePayload{update_}.Serialize());
  EXPECT_TRUE(mid_->update_manager()->IsComplete(update_));
  EXPECT_TRUE(
      mid_->update_manager()->IncomingLinkClosed(update_, "r_out"));
  // Forwarded to the other acquaintance only.
  EXPECT_EQ(left_.CountType(MessageType::kUpdateComplete), 1u);
  size_t right_completes =
      right_.CountType(MessageType::kUpdateComplete);
  // A second complete is ignored, not re-flooded.
  SendToMid(right_id_, MessageType::kUpdateComplete,
            UpdateCompletePayload{update_}.Serialize());
  EXPECT_EQ(left_.CountType(MessageType::kUpdateComplete), 1u);
  EXPECT_EQ(right_.CountType(MessageType::kUpdateComplete),
            right_completes);
}

TEST_F(UpdateProtocolTest, RefreshRequestDropsImportsBeforeReexport) {
  // Pre-load an imported tuple via a first update round.
  SendToMid(right_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{update_, false}.Serialize());
  UpdateDataPayload data;
  data.update = update_;
  data.rule_id = "r_in";
  data.path = {right_id_.value};
  data.tuples = {{"d", Tuple{Value::Int(42)}}};
  SendToMid(right_id_, MessageType::kUpdateData, data.Serialize());
  ASSERT_TRUE(mid_->database().Find("d")->Contains(Tuple{Value::Int(42)}));

  // A refresh request for a NEW update drops the import.
  FlowId second{FlowId::Scope::kUpdate, 77, 2};
  SendToMid(right_id_, MessageType::kUpdateRequest,
            UpdateRequestPayload{second, true}.Serialize());
  EXPECT_FALSE(
      mid_->database().Find("d")->Contains(Tuple{Value::Int(42)}));
}

}  // namespace
}  // namespace codb
