// Unit tests for conjunctive-query minimization.

#include <gtest/gtest.h>

#include "query/minimize.h"
#include "query/parser.h"

namespace codb {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddRelation(RelationSchema(
        "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    schema_.AddRelation(RelationSchema(
        "s", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  }

  ConjunctiveQuery Minimized(const std::string& text) {
    Result<ConjunctiveQuery> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Result<ConjunctiveQuery> m = MinimizeQuery(q.value(), schema_);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return std::move(m).value();
  }

  DatabaseSchema schema_;
};

TEST_F(MinimizeTest, AlreadyMinimalIsUnchanged) {
  ConjunctiveQuery m = Minimized("q(X, Y) :- r(X, Z), s(Z, Y).");
  EXPECT_EQ(m.body.size(), 2u);
}

TEST_F(MinimizeTest, DuplicateAtomRemoved) {
  ConjunctiveQuery m = Minimized("q(X, Y) :- r(X, Y), r(X, Y).");
  EXPECT_EQ(m.body.size(), 1u);
}

TEST_F(MinimizeTest, SubsumedAtomRemoved) {
  // r(X, W) with W otherwise unused folds onto r(X, Y).
  ConjunctiveQuery m = Minimized("q(X, Y) :- r(X, Y), r(X, W).");
  EXPECT_EQ(m.body.size(), 1u);
}

TEST_F(MinimizeTest, ChainFoldsOntoShorterChain) {
  // r(X,Z1), r(Z1,Z2), r(Z2,Y) does not fold onto a 2-chain with X,Y
  // distinguished... but an extra dangling hop does fold.
  ConjunctiveQuery m =
      Minimized("q(X) :- r(X, Z), r(Z, W), r(Z, W2).");
  // W2-atom folds onto the W-atom.
  EXPECT_EQ(m.body.size(), 2u);
}

TEST_F(MinimizeTest, DistinguishedVariablesBlockFolding) {
  // Both atoms share only variables that are head-distinguished:
  // nothing can be removed.
  ConjunctiveQuery m = Minimized("q(X, Y) :- r(X, Y), s(X, Y).");
  EXPECT_EQ(m.body.size(), 2u);
}

TEST_F(MinimizeTest, SafetyPreserved) {
  // Removing s(Y, W) would make Y existential in the head: must stay.
  ConjunctiveQuery m = Minimized("q(X, Y) :- r(X, X), s(Y, W).");
  EXPECT_EQ(m.body.size(), 2u);
}

TEST_F(MinimizeTest, MultipleRedundantAtomsAllRemoved) {
  ConjunctiveQuery m = Minimized(
      "q(X) :- r(X, Y), r(X, Y2), r(X, Y3), r(X, Y4).");
  EXPECT_EQ(m.body.size(), 1u);
}

TEST_F(MinimizeTest, UnsupportedQueriesRejected) {
  Result<ConjunctiveQuery> with_comparison =
      ParseQuery("q(X) :- r(X, Y), Y > 3.");
  ASSERT_TRUE(with_comparison.ok());
  EXPECT_FALSE(MinimizeQuery(with_comparison.value(), schema_).ok());

  Result<ConjunctiveQuery> glav = ParseQuery("q(X, Z) :- r(X, Y).");
  ASSERT_TRUE(glav.ok());
  EXPECT_FALSE(MinimizeQuery(glav.value(), schema_).ok());
}

}  // namespace
}  // namespace codb
