// Tests of the containment-based subsumed-rule optimization: detection in
// the configuration, and the skip_subsumed option shrinking traffic
// without changing the final stores.

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/testbed.h"

namespace codb {
namespace {

// Two rules on the same pair: 'narrow' ships a's d-tuples joined with e;
// 'wide' ships all d-tuples. narrow ⊆ wide.
GeneratedNetwork SubsumedPair() {
  const char* text =
      "node a\n"
      "  relation d(k:int)\n"
      "node b\n"
      "  relation d(k:int)\n"
      "  relation e(k:int)\n"
      "rule narrow a <- b : d(K) :- d(K), e(K).\n"
      "rule wide a <- b : d(K) :- d(K).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  NetworkInstance seeds;
  seeds["b"]["d"] = {Tuple{Value::Int(1)}, Tuple{Value::Int(2)},
                     Tuple{Value::Int(3)}};
  seeds["b"]["e"] = {Tuple{Value::Int(2)}};
  return {std::move(config).value(), std::move(seeds)};
}

TEST(SubsumptionTest, DetectionFindsContainedRule) {
  GeneratedNetwork generated = SubsumedPair();
  std::vector<std::pair<std::string, std::string>> subsumed =
      generated.config.FindSubsumedRules();
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0].first, "narrow");
  EXPECT_EQ(subsumed[0].second, "wide");
}

TEST(SubsumptionTest, EquivalentRulesKeepExactlyOne) {
  const char* text =
      "node a\n  relation d(k:int)\n"
      "node b\n  relation d(k:int)\n"
      "rule r1 a <- b : d(K) :- d(K).\n"
      "rule r2 a <- b : d(K) :- d(K).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  ASSERT_TRUE(config.ok());
  std::vector<std::pair<std::string, std::string>> subsumed =
      config.value().FindSubsumedRules();
  // Exactly one direction reported (the larger id yields to the smaller),
  // so at least one copy always survives.
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0].first, "r2");
  EXPECT_EQ(subsumed[0].second, "r1");
}

TEST(SubsumptionTest, DifferentPairsOrDirectionsNotCompared) {
  const char* text =
      "node a\n  relation d(k:int)\n"
      "node b\n  relation d(k:int)\n"
      "node c\n  relation d(k:int)\n"
      "rule ab a <- b : d(K) :- d(K).\n"
      "rule ac a <- c : d(K) :- d(K).\n"
      "rule ba b <- a : d(K) :- d(K).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config.value().FindSubsumedRules().empty());
}

TEST(SubsumptionTest, GlavRulesConservativelyKept) {
  // Existential heads are outside the containment fragment: never report.
  const char* text =
      "node a\n  relation d(k:int, v:int)\n"
      "node b\n  relation d(k:int, v:int)\n"
      "rule g1 a <- b : d(K, Z) :- d(K, V).\n"
      "rule g2 a <- b : d(K, V) :- d(K, V).\n";
  Result<NetworkConfig> config = NetworkConfig::Parse(text);
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config.value().FindSubsumedRules().empty());
}

TEST(SubsumptionTest, SkipSubsumedShrinksTrafficSameResult) {
  GeneratedNetwork generated = SubsumedPair();

  auto run = [&](bool skip) {
    Testbed::Options options;
    options.node.update.skip_subsumed = skip;
    Result<std::unique_ptr<Testbed>> testbed =
        Testbed::Create(generated, options);
    EXPECT_TRUE(testbed.ok());
    Result<FlowId> update = testbed.value()->RunGlobalUpdate("a");
    EXPECT_TRUE(update.ok());
    EXPECT_TRUE(testbed.value()->AllComplete(update.value()));
    uint64_t tuples_shipped = 0;
    for (const auto& node : testbed.value()->nodes()) {
      const UpdateReport* report =
          node->statistics().FindReport(update.value());
      if (report == nullptr) continue;
      for (const auto& [rule, traffic] : report->sent_per_rule) {
        tuples_shipped += traffic.tuples;
      }
    }
    return std::pair{testbed.value()->Snapshot(), tuples_shipped};
  };

  auto [baseline_stores, baseline_shipped] = run(false);
  auto [optimized_stores, optimized_shipped] = run(true);

  // Same contents; arrival order may differ, so compare sorted.
  auto sorted = [](NetworkInstance instance) {
    for (auto& [node, relations] : instance) {
      for (auto& [relation, rows] : relations) {
        std::sort(rows.begin(), rows.end());
      }
    }
    return instance;
  };
  EXPECT_EQ(sorted(baseline_stores), sorted(optimized_stores));
  // Baseline ships 'narrow''s join result (1 tuple) on top of 'wide''s 3;
  // the optimization drops it.
  EXPECT_EQ(baseline_shipped, 4u);
  EXPECT_EQ(optimized_shipped, 3u);
}

}  // namespace
}  // namespace codb
