// Membership layer tests: RTT estimation, the failure-detector state
// machine, heartbeat cadence under the virtual clock, false-suspicion
// recovery, stale-incarnation rejection, and the eviction fan-out into a
// node's reliability layer.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "membership/failure_detector.h"
#include "membership/heartbeat.h"
#include "membership/membership.h"
#include "membership/rtt.h"
#include "net/network.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

// -- RttEstimator -------------------------------------------------------------

TEST(RttEstimatorTest, FirstSampleSeedsEstimate) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.HasSample());
  EXPECT_EQ(rtt.srtt_us(), 0);

  rtt.AddSample(2000);
  EXPECT_TRUE(rtt.HasSample());
  // RFC 6298 seeding: srtt = sample, rttvar = sample / 2.
  EXPECT_EQ(rtt.srtt_us(), 2000);
  EXPECT_EQ(rtt.rttvar_us(), 1000);
  EXPECT_EQ(rtt.RetransmitTimeout(0), 2000 + 4 * 1000);
}

TEST(RttEstimatorTest, ConvergesOnConstantSamples) {
  RttEstimator rtt;
  for (int i = 0; i < 200; ++i) rtt.AddSample(1000);
  EXPECT_NEAR(static_cast<double>(rtt.srtt_us()), 1000.0, 1.0);
  // Constant samples drive the deviation to (almost) zero.
  EXPECT_LT(rtt.rttvar_us(), 5);
  EXPECT_EQ(rtt.samples(), 200u);
}

TEST(RttEstimatorTest, TracksShiftedLoad) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.AddSample(1000);
  for (int i = 0; i < 200; ++i) rtt.AddSample(5000);
  // After a sustained shift the EWMA follows the new level.
  EXPECT_GT(rtt.srtt_us(), 4500);
  EXPECT_EQ(rtt.last_sample_us(), 5000);
}

TEST(RttEstimatorTest, ClampsNonPositiveSamplesAndHonorsFloor) {
  RttEstimator rtt;
  rtt.AddSample(0);   // virtual-clock ack within the same microsecond
  rtt.AddSample(-5);  // defensive: never trust a negative delta
  EXPECT_GE(rtt.srtt_us(), 1);
  EXPECT_EQ(rtt.RetransmitTimeout(250'000), 250'000);
}

// -- FailureDetector ----------------------------------------------------------

FailureDetector::Timeouts TestTimeouts() {
  FailureDetector::Timeouts t;
  t.suspect_us = 300;
  t.evict_us = 200;
  t.grace_us = 400;
  return t;
}

TEST(FailureDetectorTest, SuspectsThenEvictsOnSilence) {
  FailureDetector detector(TestTimeouts());
  PeerId peer(7);
  detector.Track(peer, 0);
  detector.HeardFrom(peer, 1, 0);

  // Within the grace window: quiet ticks, still alive.
  EXPECT_TRUE(detector.Tick(200).empty());
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kAlive);

  std::vector<FailureDetector::Event> events = detector.Tick(450);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kSuspected);
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kSuspect);

  // More silence inside the confirmation window: no double-suspicion.
  EXPECT_TRUE(detector.Tick(500).empty());

  events = detector.Tick(700);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kEvicted);
  EXPECT_EQ(events[0].peer, peer);
  // Detection latency reported from the last first-hand sign of life.
  EXPECT_EQ(events[0].silent_for_us, 700);
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kDead);
  EXPECT_EQ(detector.suspicions(), 1u);
  EXPECT_EQ(detector.evictions(), 1u);
  EXPECT_EQ(detector.false_suspicions(), 0u);
}

TEST(FailureDetectorTest, RecoversFromFalseSuspicion) {
  FailureDetector detector(TestTimeouts());
  PeerId peer(3);
  detector.Track(peer, 0);
  detector.HeardFrom(peer, 1, 0);

  ASSERT_EQ(detector.Tick(450).size(), 1u);  // suspected
  std::vector<FailureDetector::Event> events = detector.HeardFrom(peer, 1, 500);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kRecovered);
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kAlive);
  EXPECT_EQ(detector.false_suspicions(), 1u);
  EXPECT_EQ(detector.evictions(), 0u);

  // The recovered peer is not evicted on the old schedule.
  EXPECT_TRUE(detector.Tick(700).empty());
}

TEST(FailureDetectorTest, GracePeriodSuppressesEarlySuspicion) {
  FailureDetector detector(TestTimeouts());
  PeerId peer(9);
  detector.Track(peer, 0);  // never heard from at all

  // Silence alone inside the grace window is not suspicious: the peer's
  // first beacon may still be in flight.
  EXPECT_TRUE(detector.Tick(399).empty());
  std::vector<FailureDetector::Event> events = detector.Tick(401);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kSuspected);
}

TEST(FailureDetectorTest, StaleIncarnationRejected) {
  FailureDetector detector(TestTimeouts());
  PeerId peer(4);
  detector.Track(peer, 0);
  detector.HeardFrom(peer, 5, 100);
  EXPECT_EQ(detector.IncarnationOf(peer), 5u);

  // A message from an older incarnation (pre-restart straggler) must not
  // refresh liveness.
  detector.HeardFrom(peer, 4, 400);
  EXPECT_EQ(detector.stale_rejected(), 1u);
  EXPECT_EQ(detector.IncarnationOf(peer), 5u);
  std::vector<FailureDetector::Event> events = detector.Tick(450);
  ASSERT_EQ(events.size(), 1u);  // suspected: the stale message did not count
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kSuspected);
}

TEST(FailureDetectorTest, DeadIsTerminalPerIncarnationButRestartResurrects) {
  FailureDetector detector(TestTimeouts());
  PeerId peer(6);
  detector.Track(peer, 0);
  detector.HeardFrom(peer, 2, 0);
  detector.Tick(450);
  detector.Tick(700);
  ASSERT_EQ(detector.HealthOf(peer), PeerHealth::kDead);

  // Same incarnation: stays dead, counted stale.
  detector.HeardFrom(peer, 2, 800);
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kDead);

  // Strictly higher incarnation: the peer restarted — back to alive.
  detector.HeardFrom(peer, 3, 900);
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kAlive);
  EXPECT_EQ(detector.IncarnationOf(peer), 3u);
}

TEST(FailureDetectorTest, ClaimsEscalateButNeverRefreshLiveness) {
  FailureDetector detector(TestTimeouts());
  PeerId peer(8);
  detector.Track(peer, 0);
  detector.HeardFrom(peer, 1, 0);

  // A single accuser cannot kill an alive peer: a dead-claim only opens
  // the suspicion window.
  std::vector<FailureDetector::Event> events =
      detector.OnClaim(peer, 1, PeerHealth::kDead, 100);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kSuspected);

  // A dead-claim about an already-suspect peer confirms the eviction.
  events = detector.OnClaim(peer, 1, PeerHealth::kDead, 200);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FailureDetector::Event::kEvicted);

  // An alive-claim never refreshes last_heard (liveness is first-hand):
  // nothing changes for a dead peer, and for an alive one the silence
  // clock keeps running — covered by the suspicion above firing despite
  // any number of claims.
  EXPECT_TRUE(detector.OnClaim(peer, 1, PeerHealth::kAlive, 250).empty());
  EXPECT_EQ(detector.HealthOf(peer), PeerHealth::kDead);
}

// -- HeartbeatSession under the virtual clock --------------------------------

// Minimal peer: routes heartbeat traffic into its session, like Node does.
struct MemberHarness : NetworkPeer {
  std::shared_ptr<HeartbeatSession> session;
  void HandleMessage(const Message& message) override {
    if (message.type == MessageType::kHeartbeat) {
      session->HandleBeacon(message);
    } else if (message.type == MessageType::kHeartbeatAck) {
      session->HandleAck(message);
    }
  }
  void HandlePipeClosed(PeerId other) override { session->Forget(other); }
};

struct RecordingListener : MembershipListener {
  std::vector<std::pair<char, uint32_t>> events;
  void OnPeerSuspected(PeerId peer, int64_t) override {
    events.emplace_back('S', peer.value);
  }
  void OnPeerRecovered(PeerId peer, int64_t) override {
    events.emplace_back('R', peer.value);
  }
  void OnPeerEvicted(PeerId peer, int64_t) override {
    events.emplace_back('E', peer.value);
  }
};

MembershipOptions FastMembership() {
  MembershipOptions options;
  options.period_us = 100'000;  // 0.1s beacon period
  return options;
}

TEST(HeartbeatSessionTest, BeaconsOnCadenceWithoutHoldingRunOpen) {
  Network net;
  MemberHarness a, b;
  PeerId pa = net.Join("a", &a);
  PeerId pb = net.Join("b", &b);
  ASSERT_TRUE(net.OpenPipe(pa, pb, LinkProfile::Lan()).ok());

  MembershipOptions options = FastMembership();
  a.session = HeartbeatSession::Create(&net, pa, options, nullptr);
  b.session = HeartbeatSession::Create(&net, pb, options, nullptr);
  a.session->Start();
  b.session->Start();

  // The beacon loop is maintenance-only: Run() sees no foreground events
  // and returns immediately, at time zero.
  EXPECT_EQ(net.Run(), 0u);
  EXPECT_EQ(net.now_us(), 0);

  net.RunFor(10 * options.period_us + options.period_us / 2);

  HeartbeatSession::Counters ca = a.session->counters();
  HeartbeatSession::Counters cb = b.session->counters();
  // Ticks are phase-staggered, so each session got 10 or 11 ticks in.
  EXPECT_GE(ca.beacons_out, 9u);
  EXPECT_LE(ca.beacons_out, 12u);
  EXPECT_GE(cb.beacons_in, 9u);
  EXPECT_GE(ca.acks_in, 9u);
  EXPECT_EQ(ca.suspicions, 0u);
  EXPECT_EQ(ca.evictions, 0u);
  EXPECT_EQ(a.session->HealthOf(pb), PeerHealth::kAlive);
  EXPECT_EQ(b.session->HealthOf(pa), PeerHealth::kAlive);
  // The ack echo closed the RTT loop (LAN latency is non-zero).
  EXPECT_GT(a.session->SrttOf(pb), 0);

  // Once both sessions stop, time can keep advancing without any beacons.
  a.session->Stop();
  b.session->Stop();
  uint64_t before = a.session->counters().beacons_out;
  net.RunFor(5 * options.period_us);
  EXPECT_EQ(a.session->counters().beacons_out, before);
}

TEST(HeartbeatSessionTest, SilentPeerIsSuspectedThenEvicted) {
  Network net;
  MemberHarness a, b;
  PeerId pa = net.Join("a", &a);
  PeerId pb = net.Join("b", &b);
  ASSERT_TRUE(net.OpenPipe(pa, pb, LinkProfile::Lan()).ok());

  MembershipOptions options = FastMembership();
  a.session = HeartbeatSession::Create(&net, pa, options, nullptr);
  b.session = HeartbeatSession::Create(&net, pb, options, nullptr);
  RecordingListener listener;
  a.session->AddListener(&listener);
  a.session->Start();
  b.session->Start();

  // Establish mutual tracking, then kill b silently: the pipe partitions
  // (no pipe-closed event) and b stops beaconing.
  net.RunFor(5 * options.period_us);
  ASSERT_EQ(a.session->HealthOf(pb), PeerHealth::kAlive);
  b.session->Stop();
  ASSERT_TRUE(net.SetFaultProfile(pa, pb, FaultProfile::Partition()).ok());

  // Worst-case detection: suspect (max(1.5P, 100ms floor) + RTT margin)
  // plus evict (1P), each rounded up to the next beacon tick — under 6
  // periods for P = 100ms.
  net.RunFor(6 * options.period_us);
  EXPECT_EQ(a.session->HealthOf(pb), PeerHealth::kDead);
  EXPECT_FALSE(a.session->IsPresumedAlive(pb));
  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[0], std::make_pair('S', pb.value));
  EXPECT_EQ(listener.events[1], std::make_pair('E', pb.value));
  HeartbeatSession::Counters counters = a.session->counters();
  EXPECT_EQ(counters.suspicions, 1u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.false_suspicions, 0u);
}

TEST(HeartbeatSessionTest, PartitionHealedInTimeIsAFalseSuspicion) {
  Network net;
  MemberHarness a, b;
  PeerId pa = net.Join("a", &a);
  PeerId pb = net.Join("b", &b);
  ASSERT_TRUE(net.OpenPipe(pa, pb, LinkProfile::Lan()).ok());

  MembershipOptions options = FastMembership();
  options.evict_after_periods = 6.0;  // wide confirmation window
  a.session = HeartbeatSession::Create(&net, pa, options, nullptr);
  b.session = HeartbeatSession::Create(&net, pb, options, nullptr);
  RecordingListener listener;
  a.session->AddListener(&listener);
  a.session->Start();
  b.session->Start();

  net.RunFor(5 * options.period_us);
  ASSERT_EQ(a.session->HealthOf(pb), PeerHealth::kAlive);

  // Partition for 4 periods: long enough that suspicion definitely fired
  // (suspect timeout + one tick of rounding ≈ 2.5P), far inside the 6P
  // confirmation window — then heal.
  ASSERT_TRUE(net.SetFaultProfile(pa, pb, FaultProfile::Partition()).ok());
  net.RunFor(4 * options.period_us);
  EXPECT_EQ(a.session->HealthOf(pb), PeerHealth::kSuspect);
  ASSERT_TRUE(net.SetFaultProfile(pa, pb, FaultProfile()).ok());
  net.RunFor(3 * options.period_us);

  EXPECT_EQ(a.session->HealthOf(pb), PeerHealth::kAlive);
  HeartbeatSession::Counters counters = a.session->counters();
  EXPECT_EQ(counters.false_suspicions, 1u);
  EXPECT_EQ(counters.evictions, 0u);
  ASSERT_GE(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[0], std::make_pair('S', pb.value));
  EXPECT_EQ(listener.events[1], std::make_pair('R', pb.value));
}

TEST(HeartbeatSessionTest, StaleBeaconDoesNotResurrectOrRefresh) {
  Network net;
  MemberHarness a, b;
  PeerId pa = net.Join("a", &a);
  PeerId pb = net.Join("b", &b);
  ASSERT_TRUE(net.OpenPipe(pa, pb, LinkProfile::Lan()).ok());

  MembershipOptions options = FastMembership();
  MembershipOptions old_b = options;
  old_b.incarnation = 3;
  a.session = HeartbeatSession::Create(&net, pa, options, nullptr);
  b.session = HeartbeatSession::Create(&net, pb, old_b, nullptr);
  a.session->Start();
  b.session->Start();
  net.RunFor(3 * options.period_us);
  ASSERT_EQ(a.session->HealthOf(pb), PeerHealth::kAlive);

  // Forge a beacon from b with an older incarnation (a straggler from
  // before its last restart): rejected, not counted as a sign of life.
  uint64_t before = a.session->counters().stale_rejected;
  HeartbeatPayload stale;
  stale.incarnation = 2;
  stale.seq = 1;
  stale.send_time_us = net.now_us();
  Message forged;
  forged.src = pb;
  forged.dst = pa;
  forged.type = MessageType::kHeartbeat;
  forged.payload = stale.Serialize();
  a.session->HandleBeacon(forged);
  EXPECT_EQ(a.session->counters().stale_rejected, before + 1);
}

TEST(HeartbeatSessionTest, RefutesGossipedDeathByBumpingIncarnation) {
  Network net;
  MemberHarness a, b;
  PeerId pa = net.Join("a", &a);
  PeerId pb = net.Join("b", &b);
  ASSERT_TRUE(net.OpenPipe(pa, pb, LinkProfile::Lan()).ok());

  MembershipOptions options = FastMembership();
  a.session = HeartbeatSession::Create(&net, pa, options, nullptr);
  b.session = HeartbeatSession::Create(&net, pb, options, nullptr);
  a.session->Start();
  b.session->Start();
  net.RunFor(3 * options.period_us);

  // b's beacon gossips "a (incarnation 1) is dead". a is very much
  // alive: it refutes by bumping its own incarnation above the claim.
  ASSERT_EQ(a.session->incarnation(), 1u);
  HeartbeatPayload rumor;
  rumor.incarnation = 1;
  rumor.seq = 99;
  rumor.send_time_us = net.now_us();
  rumor.digest.push_back(
      HeartbeatDigestEntry{pa.value, 1, PeerHealth::kDead});
  Message forged;
  forged.src = pb;
  forged.dst = pa;
  forged.type = MessageType::kHeartbeat;
  forged.payload = rumor.Serialize();
  a.session->HandleBeacon(forged);
  EXPECT_EQ(a.session->incarnation(), 2u);
}

// -- eviction fan-out through a full node -------------------------------------

TEST(MembershipNodeTest, EvictionCancelsRetransmissionsAndUnblocksUpdate) {
  WorkloadOptions workload;
  workload.nodes = 3;
  workload.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(workload);

  Testbed::Options options;
  options.membership = true;
  options.membership_options.period_us = 200'000;
  // A huge retransmission backoff: if eviction did NOT cancel pending
  // retransmissions, the flow below could only finish through the full
  // retry budget, far past the RunFor window.
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 30'000'000;
  options.node.reliability.max_retries = 5;

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();
  NetworkBase& net = bed.network();

  // Let everyone track everyone, then silently kill the chain's tail.
  net.RunFor(5 * options.membership_options.period_us);
  PeerId dead = bed.node("n2")->id();
  ASSERT_TRUE(bed.SilentKillNode("n2").ok());

  // Start an update immediately: n1 has in-flight traffic toward n2 that
  // will never be acked.
  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok());
  // RunFor, never Run(): a bare Run() would drain the foreground queue
  // through the 30s retransmission timers, fast-forwarding virtual time
  // past the give-up window and defeating the point of the test. RunFor
  // delivers the update flood (sub-millisecond) and the beacon ticks in
  // time order, stopping long before the first retransmission.
  net.RunFor(10 * options.membership_options.period_us);

  EXPECT_FALSE(bed.node("n1")->IsPresumedAlive(dead));
  // The moment n2 was evicted, n1 dropped its unacked messages toward it
  // (no waiting out the 30s retransmission timer) and cancelled the
  // matching termination deficits, so the update completed.
  EXPECT_EQ(bed.node("n1")->update_manager()->PendingReliable(), 0u);
  EXPECT_TRUE(bed.AllComplete(update.value()));
  EXPECT_GE(bed.node("n1")->membership()->counters().evictions, 1u);
}

}  // namespace
}  // namespace codb
