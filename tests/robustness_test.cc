// Robustness tests: nodes must survive malformed payloads, unexpected
// message kinds, stray protocol traffic, and randomized fuzz without
// crashing or corrupting their stores; and the algorithms must stay
// correct under heterogeneous and extreme link profiles.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "util/random.h"
#include "workload/testbed.h"

namespace codb {
namespace {

// Sends a raw message from a fresh peer wired to the target node.
class RawSender : public NetworkPeer {
 public:
  void HandleMessage(const Message&) override {}
};

TEST(RobustnessTest, MalformedPayloadsAreIgnored) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  RawSender sender;
  PeerId raw = bed.network().Join("fuzzer", &sender);
  ASSERT_TRUE(bed.network().OpenPipe(raw, bed.node("n0")->id()).ok());

  const MessageType kinds[] = {
      MessageType::kAdvertisement,  MessageType::kConfigBroadcast,
      MessageType::kUpdateRequest,  MessageType::kUpdateData,
      MessageType::kLinkClosed,     MessageType::kUpdateAck,
      MessageType::kUpdateComplete, MessageType::kQueryRequest,
      MessageType::kQueryResult,    MessageType::kQueryDone,
      MessageType::kStatsRequest,   MessageType::kStatsReport,
      MessageType::kConfigSlice,    MessageType::kConfigDelta,
      MessageType::kConfigFetch,    MessageType::kConfigAck,
  };
  Rng rng(99);
  for (MessageType type : kinds) {
    for (size_t size : {0u, 1u, 7u, 64u}) {
      Message junk;
      junk.src = raw;
      junk.dst = bed.node("n0")->id();
      junk.type = type;
      for (size_t i = 0; i < size; ++i) {
        junk.payload.push_back(static_cast<uint8_t>(rng.Next()));
      }
      ASSERT_TRUE(bed.network().Send(junk).ok());
    }
  }
  bed.network().Run();

  // The node survived and still works end to end.
  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 6u);
}

TEST(RobustnessTest, StrayProtocolMessagesForUnknownFlows) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  PeerId n0 = bed.node("n0")->id();
  PeerId n1 = bed.node("n1")->id();

  // A LinkClosed for an update nobody started: the node joins defensively
  // and the stray flow still terminates.
  LinkClosedPayload stray{{FlowId::Scope::kUpdate, 55, 99}, "r0"};
  ASSERT_TRUE(bed.network()
                  .Send(MakeMessage(n1, n0, MessageType::kLinkClosed,
                                    stray.Serialize()))
                  .ok());
  // An ack nobody asked for.
  AckPayload ack{{FlowId::Scope::kQuery, 1, 2}};
  ASSERT_TRUE(bed.network()
                  .Send(MakeMessage(n1, n0, MessageType::kUpdateAck,
                                    ack.Serialize()))
                  .ok());
  // Update data for an unknown rule.
  UpdateDataPayload data;
  data.update = {FlowId::Scope::kUpdate, 55, 100};
  data.rule_id = "ghost-rule";
  data.path = {n1.value};
  ASSERT_TRUE(bed.network()
                  .Send(MakeMessage(n1, n0, MessageType::kUpdateData,
                                    data.Serialize()))
                  .ok());
  bed.network().Run();

  // Still fully functional.
  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
}

class LatencyFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatencyFuzzSweep, HeterogeneousLatenciesPreserveCorrectness) {
  // Randomize every pipe's latency/bandwidth, reordering deliveries
  // across pipes; the update must still match the oracle (chains and
  // rings have unique derivations, so exact agreement is required).
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 4;
  options.seed = GetParam();
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Rng rng(GetParam());
  for (const auto& a : bed.nodes()) {
    for (const auto& b : bed.nodes()) {
      if (a->id().value >= b->id().value) continue;
      if (!bed.network().HasPipe(a->id(), b->id())) continue;
      LinkProfile profile;
      profile.latency_us = static_cast<int64_t>(rng.Uniform(50'000)) + 1;
      profile.bandwidth_bpus = 0.1 + rng.UniformDouble() * 100.0;
      ASSERT_TRUE(
          bed.network().OpenPipe(a->id(), b->id(), profile).ok());
    }
  }

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));

  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << "node " << node << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyFuzzSweep,
                         ::testing::Values(3u, 17u, 23u, 101u, 999u));

TEST(RobustnessTest, ZeroDataNetworkCompletesCleanly) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 0;  // nothing to move
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(bed.network().stats().MessagesOfType(MessageType::kUpdateData),
            0u);
}

TEST(RobustnessTest, SingleNodeNetworkUpdatesInstantly) {
  WorkloadOptions options;
  options.nodes = 1;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);  // no rules
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(bed.node("n0")->update_manager()->IsComplete(update.value()));
}

TEST(RobustnessTest, ConcurrentUpdatesFromDifferentInitiators) {
  // Two updates in flight simultaneously: both terminate, final state is
  // the same as running either alone (idempotent data migration).
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> first = bed.node("n0")->StartGlobalUpdate();
  Result<FlowId> second = bed.node("n2")->StartGlobalUpdate();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  bed.network().Run();

  EXPECT_TRUE(bed.AllComplete(first.value()));
  EXPECT_TRUE(bed.AllComplete(second.value()));

  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << "node " << node;
  }
}

}  // namespace
}  // namespace codb
