// Tests of refresh updates: deletion propagation through import
// provenance. A refresh drops every node's imported tuples and re-derives
// the network state, so data deleted at its source disappears everywhere.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "test_util.h"
#include "workload/testbed.h"

namespace codb {
namespace {

using test::DeleteTuple;

TEST(RefreshTest, SourceDeletionPropagatesOnRefresh) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  ASSERT_EQ(bed.node("n0")->database().Find("d")->size(), 12u);

  // Delete one of n3's tuples at the source.
  Tuple victim = generated.seeds.at("n3").at("d")[0];
  DeleteTuple(bed.node("n3")->database().Find("d"), victim);

  // A plain update cannot remove it downstream...
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  EXPECT_TRUE(bed.node("n0")->database().Find("d")->Contains(victim));

  // ...a refresh does.
  Result<FlowId> refresh = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  bed.network().Run();
  EXPECT_TRUE(bed.AllComplete(refresh.value()));

  for (const char* node : {"n0", "n1", "n2"}) {
    EXPECT_FALSE(bed.node(node)->database().Find("d")->Contains(victim))
        << node;
  }
  // Everything still derivable is back.
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 11u);
}

TEST(RefreshTest, RefreshMatchesOracleOnCurrentLocalData) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());

  // Mutate the sources: delete one tuple at n1, add one at n2.
  Tuple victim = generated.seeds.at("n1").at("d")[0];
  DeleteTuple(bed.node("n1")->database().Find("d"), victim);
  Tuple added{Value::Int(123456), Value::Int(7)};
  bed.node("n2")->database().Find("d")->Insert(added);

  Result<FlowId> refresh = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok());
  bed.network().Run();
  ASSERT_TRUE(bed.AllComplete(refresh.value()));

  // The oracle run on the *current* local data predicts the outcome.
  NetworkInstance current_seeds = generated.seeds;
  {
    auto& n1_d = current_seeds.at("n1").at("d");
    n1_d.erase(std::remove(n1_d.begin(), n1_d.end(), victim), n1_d.end());
    current_seeds.at("n2").at("d").push_back(added);
  }
  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, current_seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(actual.at(node)))
        << "node " << node;
  }
}

TEST(RefreshTest, LocalDataSurvivesRefresh) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());

  // A tuple inserted locally at n0 (not imported) must survive.
  Tuple local{Value::Int(777), Value::Int(7)};
  bed.node("n0")->database().Find("d")->Insert(local);

  Result<FlowId> refresh = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok());
  bed.network().Run();
  EXPECT_TRUE(bed.node("n0")->database().Find("d")->Contains(local));
  // Imports re-derived: 3 own + 3 imported + 1 local extra.
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 7u);
}

TEST(RefreshTest, RefreshIsIdempotent) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeTree(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  NetworkInstance after_update = bed.Snapshot();

  Result<FlowId> refresh = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok());
  bed.network().Run();
  EXPECT_EQ(bed.Snapshot(), after_update);

  Result<FlowId> again = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(again.ok());
  bed.network().Run();
  EXPECT_EQ(bed.Snapshot(), after_update);
}

TEST(RefreshTest, ExistentialImportsRefreshToEquivalentInstance) {
  // With projection rules the refreshed instance carries fresh null
  // labels but must be homomorphically equivalent to the original.
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 4;
  options.style = RuleStyle::kProject;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  NetworkInstance before = bed.Snapshot();

  Result<FlowId> refresh = bed.node("n0")->StartGlobalRefresh();
  ASSERT_TRUE(refresh.ok());
  bed.network().Run();
  NetworkInstance after = bed.Snapshot();

  for (const auto& [node, instance] : before) {
    EXPECT_TRUE(HomEquivalent(instance, after.at(node))) << node;
    EXPECT_EQ(instance.at("d").size(), after.at(node).at("d").size())
        << node;
  }
}

}  // namespace
}  // namespace codb
