// Tests of the super-peer: config broadcast, statistics collection and
// aggregation, and the node-side report surfaces (the textual "UI").

#include <gtest/gtest.h>

#include "net/network.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

TEST(SuperPeerTest, CollectsStatsFromEveryNode) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());

  ASSERT_TRUE(bed.CollectStats().ok());
  EXPECT_TRUE(bed.super_peer().CollectionComplete());
  EXPECT_EQ(bed.super_peer().collected().size(), 4u);
  for (const auto& [node, reports] : bed.super_peer().collected()) {
    EXPECT_FALSE(reports.empty()) << node;
  }
}

TEST(SuperPeerTest, AggregationAddsUpAcrossNodes) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  std::vector<AggregatedUpdateStats> aggregated =
      bed.super_peer().Aggregate();
  ASSERT_EQ(aggregated.size(), 1u);
  const AggregatedUpdateStats& agg = aggregated[0];
  EXPECT_EQ(agg.update, update.value());
  EXPECT_EQ(agg.nodes_reporting, 5u);
  EXPECT_GT(agg.total_virtual_us, 0);
  // On a 5-chain the network-wide data-message count equals the sum of
  // per-node receive counts; each of n1..n4's exports contributes.
  EXPECT_GE(agg.data_messages, 4u);
  // n0 eventually holds all 5*4 d-tuples (4 nodes' worth imported, each
  // also re-shipped down the chain once).
  EXPECT_GT(agg.tuples_added, 0u);
  // Longest path on a 5-chain: 5 nodes.
  EXPECT_EQ(agg.longest_path_nodes, 5u);
  // Per-rule traffic covers all 4 chain rules.
  EXPECT_EQ(agg.per_rule.size(), 4u);
}

TEST(SuperPeerTest, FinalReportMentionsEverything) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  std::string report = bed.super_peer().FinalReport();
  EXPECT_NE(report.find("final statistical report"), std::string::npos);
  EXPECT_NE(report.find("update/"), std::string::npos);
  EXPECT_NE(report.find("longest path"), std::string::npos);
  EXPECT_NE(report.find("rule"), std::string::npos);
}

TEST(SuperPeerTest, StatsForMultipleUpdatesStaySeparate) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> first = bed.RunGlobalUpdate("n0");
  Result<FlowId> second = bed.RunGlobalUpdate("n2");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  std::vector<AggregatedUpdateStats> aggregated =
      bed.super_peer().Aggregate();
  ASSERT_EQ(aggregated.size(), 2u);
  EXPECT_FALSE(aggregated[0].update == aggregated[1].update);
}

TEST(SuperPeerTest, BroadcastRequiresConfig) {
  Network network;
  std::unique_ptr<SuperPeer> super_peer = SuperPeer::Create(&network);
  EXPECT_EQ(super_peer->BroadcastConfig().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SuperPeerTest, LoadConfigTextValidates) {
  Network network;
  std::unique_ptr<SuperPeer> super_peer = SuperPeer::Create(&network);
  EXPECT_FALSE(super_peer->LoadConfigText("garbage").ok());
  EXPECT_TRUE(super_peer
                  ->LoadConfigText("node a\n  relation d(k:int)\n")
                  .ok());
  ASSERT_NE(super_peer->config(), nullptr);
  EXPECT_EQ(super_peer->config()->nodes().size(), 1u);
}

TEST(FederationTest, RegionedSupersCoverTheNetworkTogether) {
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Testbed::Options bed_options;
  bed_options.super_peers = 2;
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  // Two contiguous regions of three nodes each.
  ASSERT_EQ(bed.super_peer_count(), 2u);
  EXPECT_EQ(bed.super_peer(0).region().size(), 3u);
  EXPECT_EQ(bed.super_peer(1).region().size(), 3u);
  EXPECT_EQ(bed.super_of("n1"), &bed.super_peer(0));
  EXPECT_EQ(bed.super_of("n4"), &bed.super_peer(1));

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  // Each super collected exactly its own region...
  EXPECT_EQ(bed.super_peer(0).collected().size(), 3u);
  EXPECT_EQ(bed.super_peer(1).collected().size(), 3u);
  EXPECT_TRUE(bed.super_peer(0).FederationComplete());
  EXPECT_TRUE(bed.super_peer(1).FederationComplete());

  // ...yet the federated view is network-wide, from either super.
  for (size_t s = 0; s < 2; ++s) {
    std::vector<AggregatedUpdateStats> federated =
        bed.super_peer(s).FederatedAggregate();
    ASSERT_EQ(federated.size(), 1u) << "super " << s;
    const AggregatedUpdateStats& agg = federated[0];
    EXPECT_EQ(agg.update, update.value());
    EXPECT_EQ(agg.nodes_reporting, 6u);
    EXPECT_EQ(agg.longest_path_nodes, 6u);
    EXPECT_EQ(agg.per_rule.size(), 5u);
    // The global span is recomputed from the merged endpoints, so it is
    // at least as wide as either region's own span.
    EXPECT_GT(agg.total_virtual_us, 0);
    for (const AggregatedUpdateStats& regional :
         bed.super_peer(s).Aggregate()) {
      EXPECT_GE(agg.total_virtual_us, regional.total_virtual_us);
    }
  }

  std::string report = bed.super_peer(1).FederatedReport();
  EXPECT_NE(report.find("federated statistical report"), std::string::npos);
  EXPECT_NE(report.find("2 super-peers"), std::string::npos);
  EXPECT_NE(report.find("update/"), std::string::npos);
  EXPECT_NE(report.find("longest path"), std::string::npos);
}

TEST(FederationTest, NodeDyingMidUpdateIsEvictedAndReportsSurvive) {
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Testbed::Options bed_options;
  bed_options.super_peers = 2;
  bed_options.membership = true;
  bed_options.membership_options.period_us = 200'000;
  // A retransmission backoff far beyond the test horizon: completion can
  // only come from the eviction cancelling the dead peer's deficits, not
  // from the retry budget draining.
  bed_options.node.reliability.enabled = true;
  bed_options.node.reliability.retransmit_base_us = 30'000'000;
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, bed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();
  NetworkBase& net = bed.network();
  const int64_t period = bed_options.membership_options.period_us;

  // Establish tracking everywhere (grace = 2 periods), then the chain's
  // tail dies silently — no pipe event; only suspicion can find it.
  net.RunFor(5 * period);
  PeerId dead = bed.node("n5")->id();
  ASSERT_TRUE(bed.SilentKillNode("n5").ok());

  // An update started while the corpse is still presumed alive: n4 ships
  // toward n5 and waits on acks that will never come.
  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok());
  net.RunFor(10 * period);

  // Suspicion fired and the eviction propagated: n4 and super-1 both
  // presume n5 dead, n4's retransmissions were cancelled outright, and
  // the update terminated exactly once on the surviving topology.
  EXPECT_FALSE(bed.node("n4")->IsPresumedAlive(dead));
  EXPECT_FALSE(bed.super_peer(1).IsPresumedAlive(dead));
  EXPECT_GE(bed.node("n4")->membership()->counters().evictions, 1u);
  EXPECT_EQ(bed.node("n4")->update_manager()->PendingReliable(), 0u);
  EXPECT_TRUE(bed.AllComplete(update.value()));
  for (const char* name : {"n0", "n1", "n2", "n3", "n4"}) {
    EXPECT_TRUE(bed.node(name)->update_manager()->IsComplete(update.value()))
        << name;
  }

  // Collection skips the evicted member instead of hanging on it, and the
  // federated report reflects the surviving topology.
  ASSERT_TRUE(bed.CollectStats().ok());
  std::vector<AggregatedUpdateStats> federated =
      bed.super_peer(0).FederatedAggregate();
  ASSERT_EQ(federated.size(), 1u);
  EXPECT_EQ(federated[0].nodes_reporting, 5u);
  EXPECT_EQ(bed.super_peer(1).collected().count("n5"), 0u);
}

TEST(NodeReportTest, ReportAndDiscoveryViewSurfaceTheArchitecture) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());

  std::string report = bed.node("n1")->Report();
  EXPECT_NE(report.find("node n1"), std::string::npos);
  EXPECT_NE(report.find("exported schema"), std::string::npos);
  EXPECT_NE(report.find("outgoing links"), std::string::npos);
  EXPECT_NE(report.find("incoming links"), std::string::npos);
  EXPECT_NE(report.find("update report"), std::string::npos);

  // Discovery: n0 is not pipe-connected to n2, but knows it exists.
  std::string view = bed.node("n0")->DiscoveryView();
  EXPECT_NE(view.find("acquaintances"), std::string::npos);
  EXPECT_NE(view.find("n1"), std::string::npos);
  EXPECT_NE(view.find("discovered"), std::string::npos);
  EXPECT_NE(view.find("n2"), std::string::npos);
}

}  // namespace
}  // namespace codb
