// Tests of the super-peer: config broadcast, statistics collection and
// aggregation, and the node-side report surfaces (the textual "UI").

#include <gtest/gtest.h>

#include "net/network.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

TEST(SuperPeerTest, CollectsStatsFromEveryNode) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());

  ASSERT_TRUE(bed.CollectStats().ok());
  EXPECT_TRUE(bed.super_peer().CollectionComplete());
  EXPECT_EQ(bed.super_peer().collected().size(), 4u);
  for (const auto& [node, reports] : bed.super_peer().collected()) {
    EXPECT_FALSE(reports.empty()) << node;
  }
}

TEST(SuperPeerTest, AggregationAddsUpAcrossNodes) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  std::vector<AggregatedUpdateStats> aggregated =
      bed.super_peer().Aggregate();
  ASSERT_EQ(aggregated.size(), 1u);
  const AggregatedUpdateStats& agg = aggregated[0];
  EXPECT_EQ(agg.update, update.value());
  EXPECT_EQ(agg.nodes_reporting, 5u);
  EXPECT_GT(agg.total_virtual_us, 0);
  // On a 5-chain the network-wide data-message count equals the sum of
  // per-node receive counts; each of n1..n4's exports contributes.
  EXPECT_GE(agg.data_messages, 4u);
  // n0 eventually holds all 5*4 d-tuples (4 nodes' worth imported, each
  // also re-shipped down the chain once).
  EXPECT_GT(agg.tuples_added, 0u);
  // Longest path on a 5-chain: 5 nodes.
  EXPECT_EQ(agg.longest_path_nodes, 5u);
  // Per-rule traffic covers all 4 chain rules.
  EXPECT_EQ(agg.per_rule.size(), 4u);
}

TEST(SuperPeerTest, FinalReportMentionsEverything) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  std::string report = bed.super_peer().FinalReport();
  EXPECT_NE(report.find("final statistical report"), std::string::npos);
  EXPECT_NE(report.find("update/"), std::string::npos);
  EXPECT_NE(report.find("longest path"), std::string::npos);
  EXPECT_NE(report.find("rule"), std::string::npos);
}

TEST(SuperPeerTest, StatsForMultipleUpdatesStaySeparate) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> first = bed.RunGlobalUpdate("n0");
  Result<FlowId> second = bed.RunGlobalUpdate("n2");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(bed.CollectStats().ok());

  std::vector<AggregatedUpdateStats> aggregated =
      bed.super_peer().Aggregate();
  ASSERT_EQ(aggregated.size(), 2u);
  EXPECT_FALSE(aggregated[0].update == aggregated[1].update);
}

TEST(SuperPeerTest, BroadcastRequiresConfig) {
  Network network;
  std::unique_ptr<SuperPeer> super_peer = SuperPeer::Create(&network);
  EXPECT_EQ(super_peer->BroadcastConfig().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SuperPeerTest, LoadConfigTextValidates) {
  Network network;
  std::unique_ptr<SuperPeer> super_peer = SuperPeer::Create(&network);
  EXPECT_FALSE(super_peer->LoadConfigText("garbage").ok());
  EXPECT_TRUE(super_peer
                  ->LoadConfigText("node a\n  relation d(k:int)\n")
                  .ok());
  ASSERT_NE(super_peer->config(), nullptr);
  EXPECT_EQ(super_peer->config()->nodes().size(), 1u);
}

TEST(NodeReportTest, ReportAndDiscoveryViewSurfaceTheArchitecture) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());

  std::string report = bed.node("n1")->Report();
  EXPECT_NE(report.find("node n1"), std::string::npos);
  EXPECT_NE(report.find("exported schema"), std::string::npos);
  EXPECT_NE(report.find("outgoing links"), std::string::npos);
  EXPECT_NE(report.find("incoming links"), std::string::npos);
  EXPECT_NE(report.find("update report"), std::string::npos);

  // Discovery: n0 is not pipe-connected to n2, but knows it exists.
  std::string view = bed.node("n0")->DiscoveryView();
  EXPECT_NE(view.find("acquaintances"), std::string::npos);
  EXPECT_NE(view.find("n1"), std::string::npos);
  EXPECT_NE(view.find("discovered"), std::string::npos);
  EXPECT_NE(view.find("n2"), std::string::npos);
}

}  // namespace
}  // namespace codb
