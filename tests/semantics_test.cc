// Semantics-focused integration tests over the real network, exercising
// the corner cases of the coDB path-bounded semantics with hand-written
// configurations: reflection blocking on 2-cycles, GLAV multi-atom heads,
// comparison predicates, join bodies, and mediator relays.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "query/parser.h"
#include "workload/testbed.h"

namespace codb {
namespace {

GeneratedNetwork FromText(const std::string& config_text,
                          NetworkInstance seeds) {
  Result<NetworkConfig> config = NetworkConfig::Parse(config_text);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return {std::move(config).value(), std::move(seeds)};
}

Instance D1(std::vector<int64_t> keys) {
  Instance instance;
  for (int64_t k : keys) instance["d"].push_back(Tuple{Value::Int(k)});
  return instance;
}

TEST(SemanticsTest, TwoCycleDoesNotReflectOwnDataOverTheWire) {
  GeneratedNetwork generated = FromText(
      R"(node a
           relation d(k:int)
           relation back(k:int)
         node b
           relation d(k:int)
         rule ab b <- a : d(X) :- d(X).
         rule ba a <- b : back(X) :- d(X).
      )",
      {{"a", D1({1})}, {"b", D1({2})}});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("a");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.AllComplete(update.value()));

  // b imported a's key 1.
  EXPECT_EQ(bed.node("b")->database().Find("d")->size(), 2u);
  // a's `back` holds ONLY b's own key: a -> b -> a is not a simple path,
  // so key 1 is not reflected (the paper's local semantics).
  const Relation* back = bed.node("a")->database().Find("back");
  ASSERT_EQ(back->size(), 1u);
  EXPECT_TRUE(back->Contains(Tuple{Value::Int(2)}));

  // Matches the oracle exactly.
  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok());
  NetworkInstance actual = bed.Snapshot();
  EXPECT_EQ(CertainPart(oracle.value().at("a")),
            CertainPart(actual.at("a")));
  EXPECT_EQ(CertainPart(oracle.value().at("b")),
            CertainPart(actual.at("b")));
}

TEST(SemanticsTest, MultiAtomGlavHeadSharesWitness) {
  // One rule populates two relations of the importer, sharing the same
  // existential witness within a firing.
  GeneratedNetwork generated = FromText(
      R"(node src
           relation person(id:int)
         node dst
           relation employee(id:int, dept:int)
           relation dept_info(dept:int)
         rule glav dst <- src : employee(I, Z), dept_info(Z) :- person(I).
      )",
      {{"src", {{"person", {Tuple{Value::Int(1)}, Tuple{Value::Int(2)}}}}}});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("dst");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.AllComplete(update.value()));

  const Relation* employee = bed.node("dst")->database().Find("employee");
  const Relation* dept_info = bed.node("dst")->database().Find("dept_info");
  ASSERT_EQ(employee->size(), 2u);
  ASSERT_EQ(dept_info->size(), 2u);
  // For each employee tuple, its dept null also appears in dept_info.
  for (const Tuple& emp : employee->rows()) {
    ASSERT_TRUE(emp.at(1).is_null());
    EXPECT_TRUE(dept_info->Contains(Tuple{emp.at(1)}));
  }
  // The two firings use distinct witnesses.
  EXPECT_FALSE(employee->rows()[0].at(1) == employee->rows()[1].at(1));
}

TEST(SemanticsTest, ComparisonPredicateRestrictsMigration) {
  GeneratedNetwork generated = FromText(
      R"(node a
           relation d(k:int, v:int)
         node b
           relation d(k:int, v:int)
         rule f a <- b : d(K, V) :- d(K, V), V >= 50, K != 3.
      )",
      {{"b",
        {{"d",
          {Tuple{Value::Int(1), Value::Int(40)},
           Tuple{Value::Int(2), Value::Int(60)},
           Tuple{Value::Int(3), Value::Int(70)},
           Tuple{Value::Int(4), Value::Int(50)}}}}}});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("a");
  ASSERT_TRUE(update.ok());
  const Relation* d = bed.node("a")->database().Find("d");
  // Only (2,60) and (4,50) pass "V >= 50, K != 3".
  ASSERT_EQ(d->size(), 2u);
  EXPECT_TRUE(d->Contains(Tuple{Value::Int(2), Value::Int(60)}));
  EXPECT_TRUE(d->Contains(Tuple{Value::Int(4), Value::Int(50)}));
}

TEST(SemanticsTest, MediatorRelaysWithoutOwnStorageSemantics) {
  // a <- m <- b where m is a mediator: data reaches a through m's
  // transient store; all three stores agree with the oracle.
  GeneratedNetwork generated = FromText(
      R"(node a
           relation d(k:int)
         node m mediator
           relation d(k:int)
         node b
           relation d(k:int)
         rule am a <- m : d(X) :- d(X).
         rule mb m <- b : d(X) :- d(X).
      )",
      {{"a", D1({1})}, {"b", D1({3})}});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();
  EXPECT_TRUE(bed.node("m")->is_mediator());

  Result<FlowId> update = bed.RunGlobalUpdate("a");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.AllComplete(update.value()));

  // b's key flowed through the mediator to a.
  EXPECT_TRUE(bed.node("a")->database().Find("d")->Contains(
      Tuple{Value::Int(3)}));
  EXPECT_EQ(bed.node("a")->database().Find("d")->size(), 2u);
  // The mediator's transient store holds the relayed tuple.
  EXPECT_EQ(bed.node("m")->database().Find("d")->size(), 1u);
}

TEST(SemanticsTest, JoinAcrossImportedAndLocalData) {
  // c imports from b the join of b's d with b's e; b's e is partly
  // imported from a first — the transitive dependency the incremental
  // recomputation must catch.
  GeneratedNetwork generated = FromText(
      R"(node a
           relation e(k:int)
         node b
           relation d(k:int)
           relation e(k:int)
         node c
           relation joined(k:int)
         rule be b <- a : e(X) :- e(X).
         rule cj c <- b : joined(X) :- d(X), e(X).
      )",
      {{"a", {{"e", {Tuple{Value::Int(7)}}}}},
       {"b", {{"d", {Tuple{Value::Int(7)}, Tuple{Value::Int(8)}}},
              {"e", {Tuple{Value::Int(8)}}}}}});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("c");
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(bed.AllComplete(update.value()));

  const Relation* joined = bed.node("c")->database().Find("joined");
  // 8 joins locally at b; 7 joins only after e(7) arrives from a.
  ASSERT_EQ(joined->size(), 2u);
  EXPECT_TRUE(joined->Contains(Tuple{Value::Int(7)}));
  EXPECT_TRUE(joined->Contains(Tuple{Value::Int(8)}));
}

TEST(SemanticsTest, LinkClosingIsInductiveOnAcyclicChains) {
  // After the update completes, every link must be closed at both ends.
  GeneratedNetwork generated = FromText(
      R"(node a
           relation d(k:int)
         node b
           relation d(k:int)
         node c
           relation d(k:int)
         rule ab a <- b : d(X) :- d(X).
         rule bc b <- c : d(X) :- d(X).
      )",
      {{"a", D1({1})}, {"b", D1({2})}, {"c", D1({3})}});

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  // Acyclic link graph.
  EXPECT_FALSE(bed.node("a")->link_graph()->HasAnyCycle());

  Result<FlowId> update = bed.RunGlobalUpdate("a");
  ASSERT_TRUE(update.ok());
  const FlowId& id = update.value();

  EXPECT_TRUE(bed.node("a")->update_manager()->OutgoingLinkClosed(id, "ab"));
  EXPECT_TRUE(bed.node("b")->update_manager()->IncomingLinkClosed(id, "ab"));
  EXPECT_TRUE(bed.node("b")->update_manager()->OutgoingLinkClosed(id, "bc"));
  EXPECT_TRUE(bed.node("c")->update_manager()->IncomingLinkClosed(id, "bc"));
  EXPECT_TRUE(bed.node("a")->update_manager()->IsClosed(id));
  EXPECT_TRUE(bed.node("c")->update_manager()->IsClosed(id));
}

TEST(SemanticsTest, SecondUpdateShipsNothingNew) {
  // Re-running a global update on an unchanged network moves no data
  // (sent-set dedup + T' dedup): only control traffic.
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> first = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(first.ok());
  NetworkInstance after_first = bed.Snapshot();

  Result<FlowId> second = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(bed.Snapshot(), after_first);

  uint64_t tuples_moved = 0;
  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(second.value());
    if (report != nullptr) tuples_moved += report->tuples_added;
  }
  EXPECT_EQ(tuples_moved, 0u);
}

TEST(SemanticsTest, IncrementalUpdateAfterLocalInsert) {
  // Insert new local data, re-run the update: exactly the new tuples
  // migrate.
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();
  ASSERT_TRUE(bed.RunGlobalUpdate("n0").ok());
  size_t n0_before = bed.node("n0")->database().Find("d")->size();

  // New fact appears at the far end of the chain.
  bed.node("n2")->database().Find("d")->Insert(
      Tuple{Value::Int(99999), Value::Int(1)});
  Result<FlowId> second = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(second.ok());

  const Relation* d = bed.node("n0")->database().Find("d");
  EXPECT_EQ(d->size(), n0_before + 1);
  EXPECT_TRUE(d->Contains(Tuple{Value::Int(99999), Value::Int(1)}));
}

}  // namespace
}  // namespace codb
