// Unit tests for the link-dependency graph: dependency edges, SCC-based
// cycle classification, and longest simple paths.

#include <gtest/gtest.h>

#include "core/link_graph.h"

namespace codb {
namespace {

// Builds a config where every node has relations d and e, with the given
// "rule id -> (importer, exporter, head rel, body rel)" entries.
struct Edge {
  std::string id;
  std::string importer;
  std::string exporter;
  std::string head_rel = "d";
  std::string body_rel = "d";
};

NetworkConfig MakeConfig(const std::vector<std::string>& nodes,
                         const std::vector<Edge>& edges) {
  NetworkConfig config;
  for (const std::string& name : nodes) {
    NodeDecl decl;
    decl.name = name;
    decl.relations.push_back(
        RelationSchema("d", {{"k", ValueType::kInt}}));
    decl.relations.push_back(
        RelationSchema("e", {{"k", ValueType::kInt}}));
    EXPECT_TRUE(config.AddNode(decl).ok());
  }
  for (const Edge& edge : edges) {
    ConjunctiveQuery q;
    q.head.push_back({edge.head_rel, {Term::Var("X")}});
    q.body.push_back({edge.body_rel, {Term::Var("X")}});
    EXPECT_TRUE(config
                    .AddRule(CoordinationRule(edge.id, edge.importer,
                                              edge.exporter, q))
                    .ok());
  }
  EXPECT_TRUE(config.Validate().ok());
  return config;
}

TEST(LinkGraphTest, ChainDependencies) {
  // c <- b via r1; b <- a via r2: data through r2 (into b) can trigger r1
  // (exported by b). Edge r2 -> r1.
  NetworkConfig config = MakeConfig(
      {"a", "b", "c"},
      {{"r1", "c", "b"}, {"r2", "b", "a"}});
  LinkGraph graph = LinkGraph::Build(config);

  EXPECT_EQ(graph.rule_count(), 2u);
  EXPECT_EQ(graph.DependentOn("r2"),
            (std::vector<std::string>{"r1"}));
  EXPECT_EQ(graph.RelevantFor("r1"),
            (std::vector<std::string>{"r2"}));
  EXPECT_TRUE(graph.DependentOn("r1").empty());
  EXPECT_TRUE(graph.RelevantFor("r2").empty());
  EXPECT_FALSE(graph.HasAnyCycle());
  EXPECT_FALSE(graph.IsCyclic("r1"));
  EXPECT_EQ(graph.LongestSimplePath(), 1);
}

TEST(LinkGraphTest, NoEdgeWhenRelationsDisjoint) {
  // r2 writes e at b, but r1's body reads d at b: no dependency.
  NetworkConfig config = MakeConfig(
      {"a", "b", "c"},
      {{"r1", "c", "b", "d", "d"}, {"r2", "b", "a", "e", "d"}});
  LinkGraph graph = LinkGraph::Build(config);
  EXPECT_TRUE(graph.DependentOn("r2").empty());
  EXPECT_TRUE(graph.RelevantFor("r1").empty());
}

TEST(LinkGraphTest, NoEdgeAcrossDifferentNodes) {
  // r2 imports into b', not b: even with matching relations, no edge.
  NetworkConfig config = MakeConfig(
      {"a", "b", "b2", "c"},
      {{"r1", "c", "b"}, {"r2", "b2", "a"}});
  LinkGraph graph = LinkGraph::Build(config);
  EXPECT_TRUE(graph.DependentOn("r2").empty());
}

TEST(LinkGraphTest, RingIsOneCyclicScc) {
  NetworkConfig config = MakeConfig(
      {"a", "b", "c"},
      {{"r0", "a", "b"}, {"r1", "b", "c"}, {"r2", "c", "a"}});
  LinkGraph graph = LinkGraph::Build(config);
  EXPECT_TRUE(graph.HasAnyCycle());
  EXPECT_TRUE(graph.IsCyclic("r0"));
  EXPECT_TRUE(graph.IsCyclic("r1"));
  EXPECT_TRUE(graph.IsCyclic("r2"));
}

TEST(LinkGraphTest, MixedCyclicAndAcyclicParts) {
  // Two-cycle between a and b, plus an acyclic tail into c.
  NetworkConfig config = MakeConfig(
      {"a", "b", "c"},
      {{"cyc1", "a", "b"}, {"cyc2", "b", "a"}, {"tail", "c", "a"}});
  LinkGraph graph = LinkGraph::Build(config);
  EXPECT_TRUE(graph.HasAnyCycle());
  EXPECT_TRUE(graph.IsCyclic("cyc1"));
  EXPECT_TRUE(graph.IsCyclic("cyc2"));
  EXPECT_FALSE(graph.IsCyclic("tail"));
  // Data through cyc2 (into b)... cyc1 is exported by b? cyc1 imports
  // into a from b, so cyc1 is b's incoming link: edge cyc2 -> cyc1.
  EXPECT_EQ(graph.DependentOn("cyc2"),
            (std::vector<std::string>{"cyc1"}));
}

TEST(LinkGraphTest, LongestSimplePathOnChain) {
  auto named = [](const char* prefix, int i) {
    std::string out = prefix;
    out += std::to_string(i);
    return out;
  };
  std::vector<std::string> nodes;
  std::vector<Edge> edges;
  for (int i = 0; i < 6; ++i) nodes.push_back(named("n", i));
  // n0 <- n1 <- ... <- n5: 5 links, path length 4 edges.
  for (int i = 0; i + 1 < 6; ++i) {
    edges.push_back({named("r", i), named("n", i), named("n", i + 1)});
  }
  LinkGraph graph = LinkGraph::Build(MakeConfig(nodes, edges));
  EXPECT_EQ(graph.LongestSimplePath(), 4);
}

TEST(LinkGraphTest, UnknownRuleIsSafe) {
  NetworkConfig config = MakeConfig({"a", "b"}, {{"r1", "a", "b"}});
  LinkGraph graph = LinkGraph::Build(config);
  EXPECT_TRUE(graph.DependentOn("ghost").empty());
  EXPECT_TRUE(graph.RelevantFor("ghost").empty());
  EXPECT_FALSE(graph.IsCyclic("ghost"));
}

TEST(LinkGraphTest, ToStringListsLinks) {
  NetworkConfig config = MakeConfig(
      {"a", "b"}, {{"r1", "a", "b"}, {"r2", "b", "a"}});
  LinkGraph graph = LinkGraph::Build(config);
  std::string text = graph.ToString();
  EXPECT_NE(text.find("r1"), std::string::npos);
  EXPECT_NE(text.find("cyclic"), std::string::npos);
}

}  // namespace
}  // namespace codb
