// Remaining small-unit coverage: pipe cost model, message envelopes,
// transport-stats reporting, logging levels, and printer edge cases.

#include <gtest/gtest.h>

#include "net/message.h"
#include "net/pipe.h"
#include "net/transport_stats.h"
#include "relation/printer.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace codb {
namespace {

TEST(PipeTest, ArrivalIsLatencyPlusTransmission) {
  LinkProfile profile;
  profile.latency_us = 100;
  profile.bandwidth_bpus = 10.0;  // 10 bytes/us
  Pipe pipe(PeerId(0), PeerId(1), profile);

  // 500 bytes at 10 B/us = 50us transmit + 100us latency.
  EXPECT_EQ(pipe.ScheduleArrival(/*now=*/0, /*bytes=*/500), 150);
  // Next message queues behind the first transmission (FIFO link).
  EXPECT_EQ(pipe.ScheduleArrival(/*now=*/0, /*bytes=*/500), 200);
  // After the link drains, a later send starts fresh.
  EXPECT_EQ(pipe.ScheduleArrival(/*now=*/10'000, /*bytes=*/100), 10'110);
}

TEST(PipeTest, ZeroBandwidthMeansNoTransmissionDelay) {
  LinkProfile profile;
  profile.latency_us = 42;
  profile.bandwidth_bpus = 0;
  Pipe pipe(PeerId(0), PeerId(1), profile);
  EXPECT_EQ(pipe.ScheduleArrival(0, 1'000'000), 42);
  EXPECT_EQ(pipe.ScheduleArrival(5, 1), 47);
}

TEST(PipeTest, LifecycleAndToString) {
  Pipe pipe(PeerId(3), PeerId(4), LinkProfile::Lan());
  EXPECT_TRUE(pipe.open());
  EXPECT_EQ(pipe.from(), PeerId(3));
  EXPECT_EQ(pipe.to(), PeerId(4));
  pipe.Close();
  EXPECT_FALSE(pipe.open());
  EXPECT_NE(pipe.ToString().find("closed"), std::string::npos);
}

TEST(MessageTest, WireSizeIsHeaderPlusPayload) {
  Message m;
  EXPECT_EQ(m.WireSize(), Message::kHeaderBytes);
  m.payload.assign(100, 0);
  EXPECT_EQ(m.WireSize(), Message::kHeaderBytes + 100u);
}

TEST(MessageTest, EveryTypeHasAName) {
  for (uint16_t raw : {1, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}) {
    EXPECT_STRNE(MessageTypeName(static_cast<MessageType>(raw)),
                 "UNKNOWN");
  }
  EXPECT_STREQ(MessageTypeName(static_cast<MessageType>(999)), "UNKNOWN");
}

TEST(TransportStatsTest, ReportBreaksDownByType) {
  TransportStats stats;
  Message data;
  data.type = MessageType::kUpdateData;
  data.payload.assign(88, 0);
  stats.RecordSend(data);
  stats.RecordSend(data);
  Message ack;
  ack.type = MessageType::kUpdateAck;
  stats.RecordSend(ack);
  stats.RecordDrop(ack);

  EXPECT_EQ(stats.total_messages(), 3u);
  EXPECT_EQ(stats.total_bytes(),
            2u * (88u + Message::kHeaderBytes) + Message::kHeaderBytes);
  EXPECT_EQ(stats.dropped_messages(), 1u);
  EXPECT_EQ(stats.MessagesOfType(MessageType::kUpdateData), 2u);
  EXPECT_EQ(stats.BytesOfType(MessageType::kUpdateData),
            2u * (88u + Message::kHeaderBytes));
  EXPECT_EQ(stats.MessagesOfType(MessageType::kQueryResult), 0u);

  std::string report = stats.Report();
  EXPECT_NE(report.find("UPDATE_DATA"), std::string::npos);
  EXPECT_NE(report.find("dropped"), std::string::npos);

  stats.Reset();
  EXPECT_EQ(stats.total_messages(), 0u);
  EXPECT_EQ(stats.MessagesOfType(MessageType::kUpdateData), 0u);
}

TEST(LoggingTest, LevelsGateOutput) {
  LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  // Nothing should be evaluated below the level; the side effect proves
  // the stream expression is skipped entirely.
  int evaluations = 0;
  auto touch = [&] {
    ++evaluations;
    return "x";
  };
  CODB_LOG(kDebug) << touch();
  CODB_LOG(kError) << touch();
  EXPECT_EQ(evaluations, 0);

  SetLogLevel(LogLevel::kError);
  CODB_LOG(kWarning) << touch();
  EXPECT_EQ(evaluations, 0);
  CODB_LOG(kError) << touch();  // evaluated (and printed to stderr)
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(previous);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Burn a little CPU deterministically.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_GE(watch.ElapsedMicros(), 0);
  int64_t first = watch.ElapsedMicros();
  watch.Restart();
  EXPECT_LE(watch.ElapsedMicros(), first + 1000000);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

TEST(PrinterTest, EmptyTableStillRendersHeader) {
  std::string table = FormatTable({"a", "bb"}, {});
  EXPECT_NE(table.find("| a | bb |"), std::string::npos);
}

TEST(PrinterTest, WideValuesStretchColumns) {
  std::vector<Tuple> rows = {
      Tuple{Value::String("very-long-content"), Value::Int(1)}};
  std::string table = FormatTable({"x", "y"}, rows);
  EXPECT_NE(table.find("'very-long-content'"), std::string::npos);
  // Header column padded to the row width.
  EXPECT_NE(table.find("| x                   | y |"), std::string::npos);
}

}  // namespace
}  // namespace codb
