// End-to-end tests of the global update algorithm over the simulated
// network: termination, link closing, and agreement with the reference
// semantics (core/oracle.h) across topologies and rule styles.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

// Asserts that after the update every node's store agrees with the
// path-bounded oracle: equal certain parts and homomorphic equivalence.
void ExpectMatchesOracle(const GeneratedNetwork& generated,
                         const NetworkInstance& actual) {
  Result<NetworkInstance> expected =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  for (const auto& [node, instance] : expected.value()) {
    auto it = actual.find(node);
    ASSERT_NE(it, actual.end()) << "missing node " << node;
    EXPECT_EQ(CertainPart(instance), CertainPart(it->second))
        << "certain parts differ at " << node;
    EXPECT_TRUE(HomEquivalent(instance, it->second))
        << "instances not hom-equivalent at " << node;
  }
}

TEST(GlobalUpdateTest, TwoNodeCopy) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.AllComplete(update.value()));

  // n0 imported everything n1 had: 5 own + 5 imported d-tuples.
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 10u);
  // n1 imports nothing (no outgoing links).
  EXPECT_EQ(bed.node("n1")->database().Find("d")->size(), 5u);

  ExpectMatchesOracle(generated, bed.Snapshot());
}

TEST(GlobalUpdateTest, ChainPropagatesTransitively) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.AllComplete(update.value()));

  // n0 accumulates the whole chain: 5 nodes x 3 tuples.
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 15u);
  // n2 accumulates its suffix: nodes n2..n4.
  EXPECT_EQ(bed.node("n2")->database().Find("d")->size(), 9u);

  ExpectMatchesOracle(generated, bed.Snapshot());
}

TEST(GlobalUpdateTest, RingIsCyclicAndTerminates) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  // The ring's rules form a dependency cycle.
  EXPECT_TRUE(bed.node("n0")->link_graph()->HasAnyCycle());

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.AllComplete(update.value()));

  // Every node sees every other node's data (simple paths cover the whole
  // directed ring).
  for (const auto& node : bed.nodes()) {
    EXPECT_EQ(node->database().Find("d")->size(), 12u)
        << "at " << node->name();
  }
  ExpectMatchesOracle(generated, bed.Snapshot());
}

TEST(GlobalUpdateTest, ProjectRuleMintsMarkedNulls) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 4;
  options.style = RuleStyle::kProject;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.AllComplete(update.value()));

  // Imported tuples carry fresh marked nulls in the projected column.
  const Relation* d = bed.node("n0")->database().Find("d");
  EXPECT_EQ(d->size(), 8u);
  int with_null = 0;
  for (const Tuple& t : d->rows()) {
    if (t.HasNull()) ++with_null;
  }
  EXPECT_EQ(with_null, 4);
  ExpectMatchesOracle(generated, bed.Snapshot());
}

}  // namespace
}  // namespace codb
