// Unit tests for wire serialization: round trips and robustness against
// truncated or corrupt payloads.

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "relation/wire.h"

namespace codb {
namespace {

TEST(WireTest, PrimitiveRoundTrips) {
  WireWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU16(0xBEEF);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFULL);
  writer.WriteI64(-42);
  writer.WriteDouble(3.14159);
  writer.WriteString("hello");
  std::vector<uint8_t> bytes = writer.Take();

  WireReader reader(bytes);
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.14159);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, ValueRoundTripsAllKinds) {
  const Value values[] = {
      Value::Int(-7),
      Value::Double(2.5),
      Value::String("text with spaces"),
      Value::String(""),
      Value::Null(3, 99),
  };
  for (const Value& v : values) {
    WireWriter writer;
    writer.WriteValue(v);
    std::vector<uint8_t> bytes = writer.Take();
    EXPECT_EQ(bytes.size(), v.WireSize());

    WireReader reader(bytes);
    Result<Value> back = reader.ReadValue();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), v);
  }
}

TEST(WireTest, TupleBatchRoundTrip) {
  std::vector<Tuple> tuples = {
      Tuple{Value::Int(1), Value::String("a")},
      Tuple{Value::Null(2, 3), Value::Double(0.5)},
      Tuple{},
  };
  WireWriter writer;
  writer.WriteTuples(tuples);
  std::vector<uint8_t> bytes = writer.Take();

  WireReader reader(bytes);
  Result<std::vector<Tuple>> back = reader.ReadTuples();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), tuples);
}

TEST(WireTest, GoldenBytesAreStable) {
  // Pins the exact wire encoding of every value kind. In-memory
  // representation changes (e.g. string interning) must translate at this
  // boundary: the bytes below are the cross-version and cross-peer
  // contract.
  WireWriter writer;
  writer.WriteTuple(Tuple{Value::Int(7), Value::Double(1.5),
                          Value::String("ab"), Value::Null(3, 9)});
  const std::vector<uint8_t> expected = {
      0x04, 0x00,                                   // arity = 4
      0x00, 0x07, 0, 0, 0, 0, 0, 0, 0,              // int 7, little-endian
      0x01, 0, 0, 0, 0, 0, 0, 0xF8, 0x3F,           // double 1.5
      0x02, 0x02, 0x00, 0x00, 0x00, 'a', 'b',       // string "ab"
      0x03, 0x03, 0, 0, 0, 0x09, 0, 0, 0, 0, 0, 0, 0,  // null #3:9
  };
  EXPECT_EQ(writer.Take(), expected);
}

TEST(WireTest, TruncatedInputReportsParseError) {
  WireWriter writer;
  writer.WriteString("hello");
  std::vector<uint8_t> bytes = writer.Take();
  // Chop off the tail; every prefix must fail cleanly, never crash.
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(keep));
    WireReader reader(prefix);
    Result<std::string> s = reader.ReadString();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.status().code(), StatusCode::kParseError);
  }
}

TEST(WireTest, CorruptValueTagRejected) {
  std::vector<uint8_t> bytes = {0x77};  // no such type tag
  WireReader reader(bytes);
  Result<Value> v = reader.ReadValue();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

TEST(ProtocolTest, UpdateDataPayloadRoundTrip) {
  UpdateDataPayload payload;
  payload.update = {FlowId::Scope::kUpdate, 4, 17};
  payload.rule_id = "r3";
  payload.path = {0, 2, 5};
  payload.tuples = {{"d", Tuple{Value::Int(1), Value::Null(0, 0)}},
                    {"e", Tuple{Value::Int(2), Value::Int(3)}}};

  Result<UpdateDataPayload> back =
      UpdateDataPayload::Deserialize(payload.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().update, payload.update);
  EXPECT_EQ(back.value().rule_id, "r3");
  EXPECT_EQ(back.value().path, payload.path);
  ASSERT_EQ(back.value().tuples.size(), 2u);
  EXPECT_EQ(back.value().tuples[0], payload.tuples[0]);
  EXPECT_EQ(back.value().tuples[1], payload.tuples[1]);
}

TEST(ProtocolTest, AllSmallPayloadsRoundTrip) {
  FlowId update{FlowId::Scope::kUpdate, 1, 2};
  FlowId query{FlowId::Scope::kQuery, 3, 4};

  EXPECT_EQ(UpdateRequestPayload::Deserialize(
                UpdateRequestPayload{update}.Serialize())
                .value()
                .update,
            update);
  // Both mode flags ride the request and must survive the wire in every
  // combination the protocol emits (refresh and incremental are mutually
  // exclusive; both-false is the plain full update).
  for (bool refresh : {false, true}) {
    for (bool incremental : {false, true}) {
      if (refresh && incremental) continue;
      Result<UpdateRequestPayload> mode_back =
          UpdateRequestPayload::Deserialize(
              UpdateRequestPayload{update, refresh, incremental}
                  .Serialize());
      ASSERT_TRUE(mode_back.ok());
      EXPECT_EQ(mode_back.value().refresh, refresh);
      EXPECT_EQ(mode_back.value().incremental, incremental);
    }
  }
  LinkClosedPayload closed{update, "r9"};
  Result<LinkClosedPayload> closed_back =
      LinkClosedPayload::Deserialize(closed.Serialize());
  ASSERT_TRUE(closed_back.ok());
  EXPECT_EQ(closed_back.value().rule_id, "r9");

  EXPECT_EQ(AckPayload::Deserialize(AckPayload{query}.Serialize())
                .value()
                .flow,
            query);
  EXPECT_EQ(UpdateCompletePayload::Deserialize(
                UpdateCompletePayload{update}.Serialize())
                .value()
                .update,
            update);
  QueryRequestPayload request{query, "r1", {7, 8}};
  Result<QueryRequestPayload> request_back =
      QueryRequestPayload::Deserialize(request.Serialize());
  ASSERT_TRUE(request_back.ok());
  EXPECT_EQ(request_back.value().label, (std::vector<uint32_t>{7, 8}));

  ConfigBroadcastPayload config{12, "node n0\n"};
  Result<ConfigBroadcastPayload> config_back =
      ConfigBroadcastPayload::Deserialize(config.Serialize());
  ASSERT_TRUE(config_back.ok());
  EXPECT_EQ(config_back.value().version, 12u);
  EXPECT_EQ(config_back.value().config_text, "node n0\n");
}

TEST(ProtocolTest, FlowIdOrderingAndNames) {
  FlowId a{FlowId::Scope::kUpdate, 1, 1};
  FlowId b{FlowId::Scope::kUpdate, 1, 2};
  FlowId c{FlowId::Scope::kQuery, 1, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // update scope sorts before query scope
  EXPECT_EQ(a.ToString(), "update/1.1");
  EXPECT_EQ(c.ToString(), "query/1.1");
}

TEST(ProtocolTest, MalformedPayloadRejected) {
  std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(UpdateDataPayload::Deserialize(junk).ok());
  EXPECT_FALSE(QueryRequestPayload::Deserialize(junk).ok());
  std::vector<uint8_t> bad_scope = {9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(UpdateRequestPayload::Deserialize(bad_scope).ok());
}

}  // namespace
}  // namespace codb
