// End-to-end tests of distributed query answering: streaming results,
// simple-path labels, overlay isolation (query-time fetch does not mutate
// node databases), and equivalence with querying after a global update.

#include <gtest/gtest.h>

#include <algorithm>

#include "query/parser.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(QueryAnsweringTest, FetchesRemoteDataWithoutMutatingStores) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Node* n0 = bed.node("n0");
  size_t before = n0->database().Find("d")->size();

  Result<FlowId> query = n0->StartQuery(Q("q(K, V) :- d(K, V)."));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  bed.network().Run();

  EXPECT_TRUE(n0->QueryDone(query.value()));
  Result<std::vector<Tuple>> answers = n0->QueryAnswers(query.value());
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // All three nodes' d-tuples are visible through the chain.
  EXPECT_EQ(answers.value().size(), 12u);

  // But the local store was not touched (overlay isolation)...
  EXPECT_EQ(n0->database().Find("d")->size(), before);
  // ...on any node.
  EXPECT_EQ(bed.node("n1")->database().Find("d")->size(), 4u);
  EXPECT_EQ(bed.node("n2")->database().Find("d")->size(), 4u);
}

TEST(QueryAnsweringTest, StreamsResultsInWaves) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  int waves = 0;
  bool completed = false;
  Result<FlowId> query = bed.node("n0")->StartQuery(
      Q("q(K) :- d(K, V)."),
      [&](const QueryManager::QueryProgress& progress) {
        if (progress.done) {
          completed = true;
        } else if (progress.new_tuples > 0) {
          ++waves;
        }
      });
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  bed.network().Run();

  EXPECT_TRUE(completed);
  // n1's data and n2's data arrive in separate waves (one hop vs two).
  EXPECT_GE(waves, 2);
}

TEST(QueryAnsweringTest, AgreesWithQueryAfterGlobalUpdate) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 3;
  options.style = RuleStyle::kJoin;
  GeneratedNetwork generated = MakeTree(options);

  // Query-time answering on a cold network...
  Result<std::unique_ptr<Testbed>> cold_bed = Testbed::Create(generated);
  ASSERT_TRUE(cold_bed.ok());
  Result<FlowId> query =
      cold_bed.value()->node("n0")->StartQuery(Q("q(K, V) :- d(K, V)."));
  ASSERT_TRUE(query.ok());
  cold_bed.value()->network().Run();
  Result<std::vector<Tuple>> cold =
      cold_bed.value()->node("n0")->QueryAnswers(query.value());
  ASSERT_TRUE(cold.ok());

  // ...matches local answering after a global update.
  Result<std::unique_ptr<Testbed>> warm_bed = Testbed::Create(generated);
  ASSERT_TRUE(warm_bed.ok());
  Result<FlowId> update = warm_bed.value()->RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  Result<std::vector<Tuple>> warm =
      warm_bed.value()->node("n0")->LocalQuery(Q("q(K, V) :- d(K, V)."));
  ASSERT_TRUE(warm.ok());

  std::vector<Tuple> cold_sorted = cold.value();
  std::vector<Tuple> warm_sorted = warm.value();
  std::sort(cold_sorted.begin(), cold_sorted.end());
  std::sort(warm_sorted.begin(), warm_sorted.end());
  EXPECT_EQ(cold_sorted, warm_sorted);
}

TEST(QueryAnsweringTest, CertainAnswersDropNullWitnesses) {
  // A projection rule invents null name-witnesses; the certain answers
  // keep only the null-free rows.
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 3;
  options.style = RuleStyle::kProject;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> query =
      bed.node("n0")->StartQuery(Q("q(K, V) :- d(K, V)."));
  ASSERT_TRUE(query.ok());
  bed.network().Run();

  Result<std::vector<Tuple>> all =
      bed.node("n0")->QueryAnswers(query.value());
  Result<std::vector<Tuple>> certain =
      bed.node("n0")->CertainQueryAnswers(query.value());
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(all.value().size(), 6u);      // 3 own + 3 imported-with-null
  EXPECT_EQ(certain.value().size(), 3u);  // own rows only
  for (const Tuple& t : certain.value()) {
    EXPECT_FALSE(t.HasNull());
  }
}

TEST(QueryAnsweringTest, QueryOnRingTerminates) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 2;
  GeneratedNetwork generated = MakeRing(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  Result<FlowId> query = bed.node("n0")->StartQuery(Q("q(K) :- d(K, V)."));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  bed.network().Run();

  EXPECT_TRUE(bed.node("n0")->QueryDone(query.value()));
  Result<std::vector<Tuple>> answers =
      bed.node("n0")->QueryAnswers(query.value());
  ASSERT_TRUE(answers.ok());
  // All four nodes' keys reachable around the ring.
  EXPECT_EQ(answers.value().size(), 8u);
}

TEST(QueryAnsweringTest, LocalQueryNeedsNoNetwork) {
  WorkloadOptions options;
  options.nodes = 2;
  options.tuples_per_node = 3;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  uint64_t messages_before = bed.network().stats().total_messages();
  Result<std::vector<Tuple>> local =
      bed.node("n0")->LocalQuery(Q("q(K, V) :- d(K, V)."));
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.value().size(), 3u);  // own data only
  EXPECT_EQ(bed.network().stats().total_messages(), messages_before);
}

TEST(QueryAnsweringTest, RejectsMalformedQueries) {
  WorkloadOptions options;
  options.nodes = 2;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());

  // Unknown relation.
  Result<FlowId> bad =
      testbed.value()->node("n0")->StartQuery(Q("q(X) :- nope(X)."));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  // Existential head variable.
  Result<FlowId> unsafe =
      testbed.value()->node("n0")->StartQuery(Q("q(X, Y) :- d(X, V)."));
  EXPECT_FALSE(unsafe.ok());
  EXPECT_EQ(unsafe.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace codb
