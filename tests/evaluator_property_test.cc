// Differential testing of the join evaluator: random conjunctive queries
// over random instances, checked against a brute-force reference that
// enumerates the cartesian product of the body atoms. Any disagreement is
// an evaluator bug (plan ordering, index probing, comparison placement,
// dedup) by construction.
//
// Every case additionally re-runs under the partitioned-join parallel
// path (num_threads = 4, min_parallel_rows = 1) and requires the output
// *sequence* — not just the set — to match the sequential run: the
// parallel evaluator promises byte-identical results (see
// query/evaluator.h). A second suite draws the schema itself at random
// (relation count, arities, instance sizes) so the fixed r/s/t shape
// cannot mask shape-dependent bugs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "query/evaluator.h"
#include "relation/database.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace codb {
namespace {

struct RandomCase {
  Database db;
  DatabaseSchema schema;
  ConjunctiveQuery query;
  std::vector<std::string> output_vars;
};

// Builds a small random instance over r(a,b), s(a,b), t(a).
void BuildInstance(Rng& rng, Database& db) {
  db.CreateRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  db.CreateRelation(RelationSchema(
      "s", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  db.CreateRelation(RelationSchema("t", {{"a", ValueType::kInt}}));
  // Small domain so joins actually hit.
  for (int i = 0; i < 12; ++i) {
    db.Find("r")->Insert(Tuple{Value::Int(rng.UniformInt(0, 5)),
                               Value::Int(rng.UniformInt(0, 5))});
    db.Find("s")->Insert(Tuple{Value::Int(rng.UniformInt(0, 5)),
                               Value::Int(rng.UniformInt(0, 5))});
  }
  for (int i = 0; i < 4; ++i) {
    db.Find("t")->Insert(Tuple{Value::Int(rng.UniformInt(0, 5))});
  }
}

RandomCase BuildCase(uint64_t seed) {
  Rng rng(seed);
  RandomCase c;
  BuildInstance(rng, c.db);
  c.schema = c.db.Schema();

  const char* predicates[] = {"r", "s", "t"};
  int atom_count = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<std::string> var_pool = {"X", "Y", "Z", "W"};
  std::set<std::string> used_vars;

  for (int i = 0; i < atom_count; ++i) {
    const char* predicate = predicates[rng.Uniform(3)];
    int arity = c.schema.FindRelation(predicate)->arity();
    Atom atom;
    atom.predicate = predicate;
    for (int slot = 0; slot < arity; ++slot) {
      if (rng.Chance(0.15)) {
        atom.terms.push_back(
            Term::Const(Value::Int(rng.UniformInt(0, 5))));
      } else {
        const std::string& var =
            var_pool[rng.Uniform(var_pool.size())];
        atom.terms.push_back(Term::Var(var));
        used_vars.insert(var);
      }
    }
    c.query.body.push_back(std::move(atom));
  }

  // Head: non-empty subset of used variables.
  std::vector<std::string> usable(used_vars.begin(), used_vars.end());
  if (usable.empty()) {
    // All-constant body; give the head a var by rewriting one slot.
    c.query.body[0].terms[0] = Term::Var("X");
    usable.push_back("X");
  }
  rng.Shuffle(usable);
  size_t head_size = 1 + rng.Uniform(usable.size());
  c.output_vars.assign(usable.begin(),
                       usable.begin() + static_cast<long>(head_size));
  Atom head;
  head.predicate = "q";
  for (const std::string& v : c.output_vars) {
    head.terms.push_back(Term::Var(v));
  }
  c.query.head.push_back(std::move(head));

  // Maybe one comparison over a used variable.
  if (rng.Chance(0.6)) {
    const ComparisonOp ops[] = {ComparisonOp::kEq,  ComparisonOp::kNeq,
                                ComparisonOp::kLt,  ComparisonOp::kLeq,
                                ComparisonOp::kGt,  ComparisonOp::kGeq};
    Comparison comparison;
    comparison.lhs = Term::Var(usable[rng.Uniform(usable.size())]);
    comparison.op = ops[rng.Uniform(6)];
    comparison.rhs = rng.Chance(0.5)
                         ? Term::Const(Value::Int(rng.UniformInt(0, 5)))
                         : Term::Var(usable[rng.Uniform(usable.size())]);
    c.query.comparisons.push_back(std::move(comparison));
  }
  return c;
}

// Brute force: cartesian product over body atoms, unify, filter, project.
std::set<Tuple> BruteForce(const RandomCase& c) {
  std::set<Tuple> out;
  std::vector<const Relation*> relations;
  for (const Atom& atom : c.query.body) {
    relations.push_back(c.db.Find(atom.predicate));
  }
  std::vector<size_t> choice(c.query.body.size(), 0);

  for (;;) {
    // Try to unify the current choice of one tuple per atom.
    std::map<std::string, Value> binding;
    bool consistent = true;
    for (size_t i = 0; i < c.query.body.size() && consistent; ++i) {
      const Atom& atom = c.query.body[i];
      const Tuple& tuple = relations[i]->rows()[choice[i]];
      for (int slot = 0; slot < atom.arity(); ++slot) {
        const Term& term = atom.terms[static_cast<size_t>(slot)];
        const Value& v = tuple.at(slot);
        if (!term.is_var()) {
          if (!(term.value() == v)) {
            consistent = false;
            break;
          }
          continue;
        }
        auto [it, inserted] = binding.emplace(term.var(), v);
        if (!inserted && !(it->second == v)) {
          consistent = false;
          break;
        }
      }
    }
    if (consistent) {
      for (const Comparison& comparison : c.query.comparisons) {
        Value lhs = comparison.lhs.is_var() ? binding.at(comparison.lhs.var())
                                            : comparison.lhs.value();
        Value rhs = comparison.rhs.is_var() ? binding.at(comparison.rhs.var())
                                            : comparison.rhs.value();
        if (!EvalComparison(lhs, comparison.op, rhs)) {
          consistent = false;
          break;
        }
      }
    }
    if (consistent) {
      std::vector<Value> projected;
      for (const std::string& v : c.output_vars) {
        projected.push_back(binding.at(v));
      }
      out.insert(Tuple(std::move(projected)));
    }

    // Advance the odometer.
    size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < relations[i]->rows().size()) break;
      choice[i] = 0;
    }
    if (i == choice.size()) break;
  }
  return out;
}

// Pool shared across cases: building threads per case would dominate the
// sweep's runtime for no extra coverage.
ThreadPool& SharedPool() {
  static ThreadPool pool(4);
  return pool;
}

EvalOptions ForcedParallel() {
  EvalOptions options;
  options.num_threads = 4;
  options.pool = &SharedPool();
  options.min_parallel_rows = 1;  // parallelize even the tiny test inputs
  return options;
}

// Runs the compiled query sequentially and in parallel, checks the dedup
// promise and the byte-identical-sequence promise, and returns the
// sequential rows for the brute-force comparison.
std::vector<Tuple> EvaluateBothPaths(const CompiledQuery& compiled,
                                     const Database& db) {
  std::vector<Tuple> sequential = compiled.Evaluate(db);
  std::set<Tuple> deduped(sequential.begin(), sequential.end());
  // Evaluate() promises dedup: no row may appear twice.
  EXPECT_EQ(deduped.size(), sequential.size());

  std::vector<Tuple> parallel = compiled.Evaluate(db, ForcedParallel());
  EXPECT_EQ(parallel, sequential)
      << "parallel evaluation diverged from the sequential sequence";
  return sequential;
}

class EvaluatorDifferentialSweep
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorDifferentialSweep, MatchesBruteForce) {
  RandomCase c = BuildCase(GetParam());
  SCOPED_TRACE("query: " + c.query.ToString());

  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(c.query, c.schema, c.output_vars);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  std::vector<Tuple> actual_rows =
      EvaluateBothPaths(compiled.value(), c.db);
  std::set<Tuple> actual(actual_rows.begin(), actual_rows.end());
  EXPECT_EQ(actual, BruteForce(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorDifferentialSweep,
                         ::testing::Range<uint64_t>(1, 61));

// -- random-schema suite -----------------------------------------------------

// Draws the schema too: 1–4 relations of arity 1–3 with 1–14 rows each,
// then a random query over whatever came out. Column type stays kInt so
// the brute-force reference needs no type dispatch.
RandomCase BuildSchemaCase(uint64_t seed) {
  Rng rng(seed);
  RandomCase c;

  int relation_count = static_cast<int>(rng.UniformInt(1, 4));
  std::vector<std::string> names;
  std::vector<int> arities;
  for (int r = 0; r < relation_count; ++r) {
    std::string name = "rel" + std::to_string(r);
    int arity = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<Attribute> columns;
    for (int col = 0; col < arity; ++col) {
      columns.push_back({"c" + std::to_string(col), ValueType::kInt});
    }
    c.db.CreateRelation(RelationSchema(name, std::move(columns)));
    int rows = static_cast<int>(rng.UniformInt(1, 14));
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row;
      for (int col = 0; col < arity; ++col) {
        row.push_back(Value::Int(rng.UniformInt(0, 5)));
      }
      c.db.Find(name)->Insert(Tuple(std::move(row)));
    }
    names.push_back(std::move(name));
    arities.push_back(arity);
  }
  c.schema = c.db.Schema();

  int atom_count = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<std::string> var_pool = {"X", "Y", "Z", "W", "U"};
  std::set<std::string> used_vars;
  for (int i = 0; i < atom_count; ++i) {
    size_t pick = rng.Uniform(names.size());
    Atom atom;
    atom.predicate = names[pick];
    for (int slot = 0; slot < arities[pick]; ++slot) {
      if (rng.Chance(0.15)) {
        atom.terms.push_back(
            Term::Const(Value::Int(rng.UniformInt(0, 5))));
      } else {
        const std::string& var = var_pool[rng.Uniform(var_pool.size())];
        atom.terms.push_back(Term::Var(var));
        used_vars.insert(var);
      }
    }
    c.query.body.push_back(std::move(atom));
  }

  std::vector<std::string> usable(used_vars.begin(), used_vars.end());
  if (usable.empty()) {
    c.query.body[0].terms[0] = Term::Var("X");
    usable.push_back("X");
  }
  rng.Shuffle(usable);
  size_t head_size = 1 + rng.Uniform(usable.size());
  c.output_vars.assign(usable.begin(),
                       usable.begin() + static_cast<long>(head_size));
  Atom head;
  head.predicate = "q";
  for (const std::string& v : c.output_vars) {
    head.terms.push_back(Term::Var(v));
  }
  c.query.head.push_back(std::move(head));

  if (rng.Chance(0.5)) {
    const ComparisonOp ops[] = {ComparisonOp::kEq,  ComparisonOp::kNeq,
                                ComparisonOp::kLt,  ComparisonOp::kLeq,
                                ComparisonOp::kGt,  ComparisonOp::kGeq};
    Comparison comparison;
    comparison.lhs = Term::Var(usable[rng.Uniform(usable.size())]);
    comparison.op = ops[rng.Uniform(6)];
    comparison.rhs = rng.Chance(0.5)
                         ? Term::Const(Value::Int(rng.UniformInt(0, 5)))
                         : Term::Var(usable[rng.Uniform(usable.size())]);
    c.query.comparisons.push_back(std::move(comparison));
  }
  return c;
}

class RandomSchemaSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemaSweep, MatchesBruteForce) {
  RandomCase c = BuildSchemaCase(GetParam());
  SCOPED_TRACE("query: " + c.query.ToString());

  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(c.query, c.schema, c.output_vars);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  std::vector<Tuple> actual_rows =
      EvaluateBothPaths(compiled.value(), c.db);
  std::set<Tuple> actual(actual_rows.begin(), actual_rows.end());
  EXPECT_EQ(actual, BruteForce(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemaSweep,
                         ::testing::Range<uint64_t>(100, 160));

}  // namespace
}  // namespace codb
