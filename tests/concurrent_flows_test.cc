// Concurrent flow admission under the threaded runtime: several query
// flows race one global update on nodes with per-flow strands enabled
// (Node::ExecOptions::concurrent_flows). The update inserts monotonically
// (kJoinCopy derives no deletions and no nulls), so every racing query
// must observe a store *sandwiched* between the pre-update and the
// post-update state:
//
//     A_pre(n)  ⊆  certain answers of a query racing at n  ⊆  A_post(n)
//
// where A_pre/A_post are the node's local d-rows before/after the update.
// On top of the sandwich, completion callbacks must fire exactly once per
// flow, and at teardown no strand may be left running and no foreign
// query state may be leaked anywhere in the network — the no-leak
// invariants DESIGN.md §10 promises.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "query/parser.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  Result<ConjunctiveQuery> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

Testbed::Options ConcurrentOptions() {
  Testbed::Options options;
  options.threaded = true;
  options.concurrent_flows = true;
  options.node_threads = 2;
  options.node.link_profile.latency_us = 200;
  options.node.link_profile.bandwidth_bpus = 0;
  return options;
}

std::vector<Tuple> Sorted(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool IsSubset(const std::vector<Tuple>& small,
              const std::vector<Tuple>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

void ExpectNoLeakedFlows(Testbed& bed) {
  for (const auto& node : bed.nodes()) {
    EXPECT_EQ(node->ActiveFlows(), 0u)
        << "strand still active on " << node->name();
    ASSERT_NE(node->query_manager(), nullptr);
    EXPECT_EQ(node->query_manager()->ForeignQueryStates(), 0u)
        << "foreign query state leaked on " << node->name();
  }
}

TEST(ConcurrentFlowsTest, QueriesRacingAnUpdateSeeSandwichedStores) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 6;
  options.style = RuleStyle::kJoinCopy;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, ConcurrentOptions());
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  const ConjunctiveQuery kQuery = Q("q(K, V) :- d(K, V).");
  const std::vector<std::string> kQueryNodes = {"n1", "n2", "n3", "n4"};

  // Pre-update local state per querying node.
  std::vector<std::vector<Tuple>> pre;
  for (const std::string& name : kQueryNodes) {
    Result<std::vector<Tuple>> rows = bed.node(name)->LocalQuery(kQuery);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    pre.push_back(Sorted(std::move(rows).value()));
  }

  // Launch the update and all queries before running the network, so
  // their traffic genuinely interleaves on the delivery threads.
  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok()) << update.status().ToString();

  std::vector<std::atomic<int>> done_counts(kQueryNodes.size());
  std::vector<FlowId> queries;
  for (size_t i = 0; i < kQueryNodes.size(); ++i) {
    std::atomic<int>* done = &done_counts[i];
    Result<FlowId> query = bed.node(kQueryNodes[i])->StartQuery(
        kQuery, [done](const QueryManager::QueryProgress& progress) {
          if (progress.done) done->fetch_add(1);
        });
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    queries.push_back(query.value());
  }

  bed.network().Run();

  EXPECT_TRUE(bed.AllComplete(update.value()));
  for (size_t i = 0; i < kQueryNodes.size(); ++i) {
    Node* node = bed.node(kQueryNodes[i]);
    SCOPED_TRACE("query node " + kQueryNodes[i]);

    // Exactly-once completion.
    EXPECT_TRUE(node->QueryDone(queries[i]));
    EXPECT_EQ(done_counts[i].load(), 1);

    Result<std::vector<Tuple>> racing =
        node->CertainQueryAnswers(queries[i]);
    ASSERT_TRUE(racing.ok()) << racing.status().ToString();
    Result<std::vector<Tuple>> post = node->LocalQuery(kQuery);
    ASSERT_TRUE(post.ok()) << post.status().ToString();

    std::vector<Tuple> racing_sorted = Sorted(std::move(racing).value());
    std::vector<Tuple> post_sorted = Sorted(std::move(post).value());
    EXPECT_TRUE(IsSubset(pre[i], racing_sorted))
        << "racing query missed pre-update local data";
    EXPECT_TRUE(IsSubset(racing_sorted, post_sorted))
        << "racing query answered with data absent from the final store";
  }

  ExpectNoLeakedFlows(bed);
}

TEST(ConcurrentFlowsTest, RacingFlowsSurviveAnUnreliableNetwork) {
  // Same race, but every link drops 1% of messages and the at-least-once
  // layer papers over it. The sandwich upper bound still holds (answers
  // never contain data the final store lacks); the lower bound is only
  // asserted for queries that actually completed, since a flow that gave
  // up after max retries legitimately returns partial data.
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 5;
  options.style = RuleStyle::kJoinCopy;
  GeneratedNetwork generated = MakeChain(options);

  Testbed::Options testbed_options = ConcurrentOptions();
  testbed_options.fault = FaultProfile::Drop(0.01, /*seed=*/17);
  testbed_options.node.reliability.enabled = true;
  testbed_options.node.reliability.retransmit_base_us = 5'000;
  testbed_options.node.reliability.max_retries = 10;
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, testbed_options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  const ConjunctiveQuery kQuery = Q("q(K, V) :- d(K, V).");
  const std::vector<std::string> kQueryNodes = {"n1", "n2", "n3"};

  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok()) << update.status().ToString();

  std::vector<std::atomic<int>> done_counts(kQueryNodes.size());
  std::vector<FlowId> queries;
  for (size_t i = 0; i < kQueryNodes.size(); ++i) {
    std::atomic<int>* done = &done_counts[i];
    Result<FlowId> query = bed.node(kQueryNodes[i])->StartQuery(
        kQuery, [done](const QueryManager::QueryProgress& progress) {
          if (progress.done) done->fetch_add(1);
        });
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    queries.push_back(query.value());
  }

  bed.network().Run();

  for (size_t i = 0; i < kQueryNodes.size(); ++i) {
    Node* node = bed.node(kQueryNodes[i]);
    SCOPED_TRACE("query node " + kQueryNodes[i]);

    // Never more than one completion event, even with retransmissions
    // and duplicate deliveries in play.
    EXPECT_LE(done_counts[i].load(), 1);
    if (!node->QueryDone(queries[i])) continue;
    EXPECT_EQ(done_counts[i].load(), 1);

    Result<std::vector<Tuple>> racing =
        node->CertainQueryAnswers(queries[i]);
    ASSERT_TRUE(racing.ok()) << racing.status().ToString();
    Result<std::vector<Tuple>> post = node->LocalQuery(kQuery);
    ASSERT_TRUE(post.ok()) << post.status().ToString();
    EXPECT_TRUE(IsSubset(Sorted(std::move(racing).value()),
                         Sorted(std::move(post).value())))
        << "racing query answered with data absent from the final store";
  }

  ExpectNoLeakedFlows(bed);
}

TEST(ConcurrentFlowsTest, BackToBackUpdatesStayExactlyOnce) {
  // Two sequential updates with concurrent admission enabled: the second
  // flow's strand must not resurrect or double-complete the first.
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 4;
  options.style = RuleStyle::kJoinCopy;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, ConcurrentOptions());
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> first = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(bed.AllComplete(first.value()));
  NetworkInstance after_first = bed.Snapshot();

  Result<FlowId> second = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(bed.AllComplete(second.value()));

  // The network was already at its fixpoint: a repeat update changes
  // nothing, and the first flow stays complete.
  EXPECT_EQ(bed.Snapshot(), after_first);
  EXPECT_TRUE(bed.AllComplete(first.value()));
  ExpectNoLeakedFlows(bed);
}

}  // namespace
}  // namespace codb
