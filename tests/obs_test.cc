// Tests for the observability layer (src/obs/): the metrics registry,
// histogram bucketing, snapshot merge/serialize round-trips, the flow
// tracer's span bookkeeping, and a golden end-to-end trace of a 3-node
// global update whose span counts must agree with the statistics module.

#include <gtest/gtest.h>

#include <set>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

// Count stored in a snapshot histogram's (sparse) bucket list.
uint64_t BucketCount(const MetricValue& entry, size_t bucket) {
  for (const auto& [index, count] : entry.buckets) {
    if (index == bucket) return count;
  }
  return 0;
}

// Resets the global tracer around every tracer test; the tracer is a
// process-wide singleton, so tests must not leak spans into each other.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, CounterAndGaugeRoundTrip) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("cache.hits");
  hits->Add();
  hits->Add(4);
  registry.GetGauge("queue.depth")->Set(7);
  ASSERT_EQ(registry.GetCounter("cache.hits"), hits);  // same instrument

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.entries.at("cache.hits").value, 5);
  EXPECT_EQ(snapshot.entries.at("queue.depth").value, 7);
}

TEST(MetricsTest, HistogramBucketing) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(1023), 10u);
  EXPECT_EQ(HistogramBucketOf(1024), 11u);
  EXPECT_EQ(HistogramBucketOf(UINT64_MAX), kHistogramBuckets - 1);

  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("handler.us");
  for (uint64_t value : {0u, 1u, 2u, 3u, 100u, 100u}) {
    latency->Record(value);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricValue& entry = snapshot.entries.at("handler.us");
  EXPECT_EQ(entry.kind, MetricKind::kHistogram);
  EXPECT_EQ(entry.value, 6);    // count
  EXPECT_EQ(entry.sum, 206);
  EXPECT_EQ(BucketCount(entry, 0), 1u);
  EXPECT_EQ(BucketCount(entry, 1), 1u);
  EXPECT_EQ(BucketCount(entry, 2), 2u);
  EXPECT_EQ(BucketCount(entry, HistogramBucketOf(100)), 2u);
}

TEST(MetricsTest, KindCollisionGetsSuffixedName) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Add(1);
  Gauge* gauge = registry.GetGauge("x");  // same name, different kind
  gauge->Set(9);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.entries.at("x").value, 1);
  EXPECT_EQ(snapshot.entries.at("x.gauge").value, 9);
}

TEST(MetricsTest, SnapshotMerge) {
  MetricsRegistry a;
  a.GetCounter("msgs")->Add(3);
  a.GetGauge("depth")->Set(5);
  a.GetHistogram("lat")->Record(2);

  MetricsRegistry b;
  b.GetCounter("msgs")->Add(4);
  b.GetGauge("depth")->Set(9);
  b.GetHistogram("lat")->Record(100);
  b.GetCounter("only_b")->Add(1);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.entries.at("msgs").value, 7);       // counters add
  EXPECT_EQ(merged.entries.at("depth").value, 9);      // gauges take max
  EXPECT_EQ(merged.entries.at("lat").value, 2);        // counts add
  EXPECT_EQ(merged.entries.at("lat").sum, 102);
  EXPECT_EQ(merged.entries.at("only_b").value, 1);
}

TEST(MetricsTest, SnapshotSerializeRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(12);
  registry.GetGauge("b.depth")->Set(-3);
  registry.GetHistogram("c.lat")->Record(7);
  registry.GetHistogram("c.lat")->Record(900);
  MetricsSnapshot snapshot = registry.Snapshot();

  WireWriter writer;
  snapshot.SerializeTo(writer);
  std::vector<uint8_t> bytes = writer.Take();
  WireReader reader(bytes);
  Result<MetricsSnapshot> restored = MetricsSnapshot::DeserializeFrom(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(reader.AtEnd());

  ASSERT_EQ(restored.value().entries.size(), snapshot.entries.size());
  for (const auto& [name, value] : snapshot.entries) {
    const MetricValue& other = restored.value().entries.at(name);
    EXPECT_EQ(other.kind, value.kind) << name;
    EXPECT_EQ(other.value, value.value) << name;
    EXPECT_EQ(other.sum, value.sum) << name;
    EXPECT_EQ(other.buckets, value.buckets) << name;
  }
}

TEST(MetricsTest, RenderAndJsonAgree) {
  MetricsRegistry registry;
  registry.GetCounter("net.messages")->Add(42);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(snapshot.Render().find("net.messages"), std::string::npos);
  EXPECT_NE(snapshot.Render().find("42"), std::string::npos);
  EXPECT_EQ(snapshot.ToJson().GetNumber("net.messages"), 42);
}

// ---------------------------------------------------------------------------
// Tracer span bookkeeping

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  uint64_t span = tracer.BeginSpan(1, "work");
  EXPECT_EQ(span, 0u);
  tracer.EndSpan(span);
  EXPECT_EQ(tracer.NoteSend(), 0u);
  EXPECT_TRUE(tracer.FinishedSpans().empty());
}

TEST_F(TracerTest, SpansOpenAndCloseBalanced) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();

  uint64_t outer = tracer.BeginSpan(1, "outer", "flow/1");
  ASSERT_NE(outer, 0u);
  EXPECT_EQ(tracer.open_span_count(), 1u);
  uint64_t inner = tracer.BeginSpanHere("inner");
  ASSERT_NE(inner, 0u);
  EXPECT_EQ(tracer.open_span_count(), 2u);
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);
  EXPECT_EQ(tracer.open_span_count(), 0u);

  std::vector<TraceSpan> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& inner_span =
      spans[0].name == "inner" ? spans[0] : spans[1];
  const TraceSpan& outer_span =
      spans[0].name == "outer" ? spans[0] : spans[1];
  EXPECT_EQ(inner_span.parent, outer_span.id);
  EXPECT_EQ(inner_span.node, outer_span.node);  // inherited
  EXPECT_EQ(outer_span.flow, "flow/1");
  EXPECT_EQ(outer_span.parent, 0u);
}

TEST_F(TracerTest, BeginSpanHereWithoutContextIsNoop) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  EXPECT_EQ(tracer.BeginSpanHere("orphan"), 0u);
  EXPECT_TRUE(tracer.FinishedSpans().empty());
}

TEST_F(TracerTest, ScopedSpanClosesOnDestruction) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ScopedSpan span(tracer.BeginSpan(2, "scoped"));
    EXPECT_EQ(tracer.open_span_count(), 1u);
  }
  EXPECT_EQ(tracer.open_span_count(), 0u);
  EXPECT_EQ(tracer.FinishedSpans().size(), 1u);
}

TEST_F(TracerTest, LinkDeliveryParentsAcrossNodes) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();

  uint64_t sender = tracer.BeginSpan(1, "send_side");
  uint64_t correlation = tracer.NoteSend();
  ASSERT_NE(correlation, 0u);
  tracer.EndSpan(sender);

  uint64_t delivery = tracer.BeginSpan(2, "net.deliver");
  tracer.LinkDelivery(correlation, delivery);
  tracer.EndSpan(delivery);

  std::vector<TraceSpan> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& delivered =
      spans[0].name == "net.deliver" ? spans[0] : spans[1];
  EXPECT_EQ(delivered.parent, sender);
  EXPECT_EQ(delivered.link_in, correlation);
  ASSERT_EQ(tracer.Edges().size(), 1u);
  EXPECT_EQ(tracer.Edges()[0].from_span, sender);
  EXPECT_EQ(tracer.Edges()[0].to_span, delivery);
}

// ---------------------------------------------------------------------------
// Golden trace: 3-node chain update

class GoldenTraceTest : public TracerTest {};

TEST_F(GoldenTraceTest, ThreeNodeUpdateProducesCorrelatedSpanTree) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  bed.network().Run();
  tracer.Disable();
  ASSERT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(tracer.open_span_count(), 0u);  // every span was closed

  const std::string flow = update.value().ToString();
  std::vector<TraceSpan> spans = tracer.FinishedSpans();
  ASSERT_FALSE(spans.empty());

  // Exactly one root: the initiating node's update.start span.
  std::map<uint64_t, const TraceSpan*> by_id;
  for (const TraceSpan& span : spans) by_id[span.id] = &span;
  size_t roots = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent != 0) {
      ASSERT_TRUE(by_id.count(span.parent) > 0)
          << "dangling parent on " << span.name;
      continue;
    }
    ++roots;
    EXPECT_EQ(span.name, "update.start");
    EXPECT_EQ(span.flow, flow);
    EXPECT_EQ(bed.network().NameOf(PeerId{span.node}), "n0");
  }
  EXPECT_EQ(roots, 1u);

  // One update.data span per data message the statistics modules counted.
  uint64_t data_messages = 0;
  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    if (report != nullptr) data_messages += report->data_messages_received;
  }
  size_t data_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name == "update.data" && span.flow == flow) ++data_spans;
  }
  EXPECT_GT(data_messages, 0u);
  EXPECT_EQ(data_spans, data_messages);

  // The Chrome export is valid JSON and every X event nests under the
  // tree (args.span/args.parent mirror the span ids).
  std::string dumped = tracer.ExportChromeTrace().Dump();
  Result<JsonValue> parsed = ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<uint64_t> exported_ids;
  size_t x_events = 0;
  for (const JsonValue& event : events->items()) {
    if (event.GetString("ph") != "X") continue;
    ++x_events;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    exported_ids.insert(static_cast<uint64_t>(args->GetNumber("span")));
  }
  for (const JsonValue& event : events->items()) {
    if (event.GetString("ph") != "X") continue;
    uint64_t parent = static_cast<uint64_t>(
        event.Find("args")->GetNumber("parent"));
    if (parent != 0) {
      EXPECT_TRUE(exported_ids.count(parent) > 0)
          << event.GetString("name") << " parent missing from export";
    }
  }
  size_t interval_spans = 0;
  for (const TraceSpan& span : spans) {
    if (!span.instant) ++interval_spans;
  }
  EXPECT_EQ(x_events, interval_spans);

  // Flow arrows: one s+f pair per recorded message hop.
  size_t arrows = 0;
  for (const JsonValue& event : events->items()) {
    std::string ph = event.GetString("ph");
    if (ph == "s" || ph == "f") ++arrows;
  }
  EXPECT_EQ(arrows, tracer.Edges().size() * 2);

  // The JSONL export parses line by line.
  std::string jsonl = tracer.ExportJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) break;
    Result<JsonValue> line = ParseJson(jsonl.substr(start, end - start));
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, spans.size() + tracer.Edges().size());
}

}  // namespace
}  // namespace codb
