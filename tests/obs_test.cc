// Tests for the observability layer (src/obs/): the metrics registry,
// histogram bucketing, snapshot merge/serialize round-trips, the flow
// tracer's span bookkeeping, a golden end-to-end trace of a 3-node
// global update whose span counts must agree with the statistics module,
// and the wire-cost ledger / queue profiler (per-class byte accounting
// checked exactly against the transport counters).

#include <gtest/gtest.h>

#include <set>

#include "net/fault.h"
#include "obs/cost_ledger.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

// Count stored in a snapshot histogram's (sparse) bucket list.
uint64_t BucketCount(const MetricValue& entry, size_t bucket) {
  for (const auto& [index, count] : entry.buckets) {
    if (index == bucket) return count;
  }
  return 0;
}

// Resets the global tracer around every tracer test; the tracer is a
// process-wide singleton, so tests must not leak spans into each other.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, CounterAndGaugeRoundTrip) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("cache.hits");
  hits->Add();
  hits->Add(4);
  registry.GetGauge("queue.depth")->Set(7);
  ASSERT_EQ(registry.GetCounter("cache.hits"), hits);  // same instrument

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.entries.at("cache.hits").value, 5);
  EXPECT_EQ(snapshot.entries.at("queue.depth").value, 7);
}

TEST(MetricsTest, HistogramBucketing) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(1023), 10u);
  EXPECT_EQ(HistogramBucketOf(1024), 11u);
  EXPECT_EQ(HistogramBucketOf(UINT64_MAX), kHistogramBuckets - 1);

  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("handler.us");
  for (uint64_t value : {0u, 1u, 2u, 3u, 100u, 100u}) {
    latency->Record(value);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricValue& entry = snapshot.entries.at("handler.us");
  EXPECT_EQ(entry.kind, MetricKind::kHistogram);
  EXPECT_EQ(entry.value, 6);    // count
  EXPECT_EQ(entry.sum, 206);
  EXPECT_EQ(BucketCount(entry, 0), 1u);
  EXPECT_EQ(BucketCount(entry, 1), 1u);
  EXPECT_EQ(BucketCount(entry, 2), 2u);
  EXPECT_EQ(BucketCount(entry, HistogramBucketOf(100)), 2u);
}

TEST(MetricsTest, KindCollisionGetsSuffixedName) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Add(1);
  Gauge* gauge = registry.GetGauge("x");  // same name, different kind
  gauge->Set(9);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.entries.at("x").value, 1);
  EXPECT_EQ(snapshot.entries.at("x.gauge").value, 9);
}

TEST(MetricsTest, SnapshotMerge) {
  MetricsRegistry a;
  a.GetCounter("msgs")->Add(3);
  a.GetGauge("depth")->Set(5);
  a.GetHistogram("lat")->Record(2);

  MetricsRegistry b;
  b.GetCounter("msgs")->Add(4);
  b.GetGauge("depth")->Set(9);
  b.GetHistogram("lat")->Record(100);
  b.GetCounter("only_b")->Add(1);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.entries.at("msgs").value, 7);       // counters add
  EXPECT_EQ(merged.entries.at("depth").value, 9);      // gauges take max
  EXPECT_EQ(merged.entries.at("lat").value, 2);        // counts add
  EXPECT_EQ(merged.entries.at("lat").sum, 102);
  EXPECT_EQ(merged.entries.at("only_b").value, 1);
}

TEST(MetricsTest, SnapshotSerializeRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(12);
  registry.GetGauge("b.depth")->Set(-3);
  registry.GetHistogram("c.lat")->Record(7);
  registry.GetHistogram("c.lat")->Record(900);
  MetricsSnapshot snapshot = registry.Snapshot();

  WireWriter writer;
  snapshot.SerializeTo(writer);
  std::vector<uint8_t> bytes = writer.Take();
  WireReader reader(bytes);
  Result<MetricsSnapshot> restored = MetricsSnapshot::DeserializeFrom(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(reader.AtEnd());

  ASSERT_EQ(restored.value().entries.size(), snapshot.entries.size());
  for (const auto& [name, value] : snapshot.entries) {
    const MetricValue& other = restored.value().entries.at(name);
    EXPECT_EQ(other.kind, value.kind) << name;
    EXPECT_EQ(other.value, value.value) << name;
    EXPECT_EQ(other.sum, value.sum) << name;
    EXPECT_EQ(other.buckets, value.buckets) << name;
  }
}

TEST(MetricsTest, RenderAndJsonAgree) {
  MetricsRegistry registry;
  registry.GetCounter("net.messages")->Add(42);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(snapshot.Render().find("net.messages"), std::string::npos);
  EXPECT_NE(snapshot.Render().find("42"), std::string::npos);
  EXPECT_EQ(snapshot.ToJson().GetNumber("net.messages"), 42);
}

// ---------------------------------------------------------------------------
// Tracer span bookkeeping

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  uint64_t span = tracer.BeginSpan(1, "work");
  EXPECT_EQ(span, 0u);
  tracer.EndSpan(span);
  EXPECT_EQ(tracer.NoteSend(), 0u);
  EXPECT_TRUE(tracer.FinishedSpans().empty());
}

TEST_F(TracerTest, SpansOpenAndCloseBalanced) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();

  uint64_t outer = tracer.BeginSpan(1, "outer", "flow/1");
  ASSERT_NE(outer, 0u);
  EXPECT_EQ(tracer.open_span_count(), 1u);
  uint64_t inner = tracer.BeginSpanHere("inner");
  ASSERT_NE(inner, 0u);
  EXPECT_EQ(tracer.open_span_count(), 2u);
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);
  EXPECT_EQ(tracer.open_span_count(), 0u);

  std::vector<TraceSpan> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& inner_span =
      spans[0].name == "inner" ? spans[0] : spans[1];
  const TraceSpan& outer_span =
      spans[0].name == "outer" ? spans[0] : spans[1];
  EXPECT_EQ(inner_span.parent, outer_span.id);
  EXPECT_EQ(inner_span.node, outer_span.node);  // inherited
  EXPECT_EQ(outer_span.flow, "flow/1");
  EXPECT_EQ(outer_span.parent, 0u);
}

TEST_F(TracerTest, BeginSpanHereWithoutContextIsNoop) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  EXPECT_EQ(tracer.BeginSpanHere("orphan"), 0u);
  EXPECT_TRUE(tracer.FinishedSpans().empty());
}

TEST_F(TracerTest, ScopedSpanClosesOnDestruction) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ScopedSpan span(tracer.BeginSpan(2, "scoped"));
    EXPECT_EQ(tracer.open_span_count(), 1u);
  }
  EXPECT_EQ(tracer.open_span_count(), 0u);
  EXPECT_EQ(tracer.FinishedSpans().size(), 1u);
}

TEST_F(TracerTest, LinkDeliveryParentsAcrossNodes) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();

  uint64_t sender = tracer.BeginSpan(1, "send_side");
  uint64_t correlation = tracer.NoteSend();
  ASSERT_NE(correlation, 0u);
  tracer.EndSpan(sender);

  uint64_t delivery = tracer.BeginSpan(2, "net.deliver");
  tracer.LinkDelivery(correlation, delivery);
  tracer.EndSpan(delivery);

  std::vector<TraceSpan> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& delivered =
      spans[0].name == "net.deliver" ? spans[0] : spans[1];
  EXPECT_EQ(delivered.parent, sender);
  EXPECT_EQ(delivered.link_in, correlation);
  ASSERT_EQ(tracer.Edges().size(), 1u);
  EXPECT_EQ(tracer.Edges()[0].from_span, sender);
  EXPECT_EQ(tracer.Edges()[0].to_span, delivery);
}

// ---------------------------------------------------------------------------
// Golden trace: 3-node chain update

class GoldenTraceTest : public TracerTest {};

TEST_F(GoldenTraceTest, ThreeNodeUpdateProducesCorrelatedSpanTree) {
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  bed.network().Run();
  tracer.Disable();
  ASSERT_TRUE(bed.AllComplete(update.value()));
  EXPECT_EQ(tracer.open_span_count(), 0u);  // every span was closed

  const std::string flow = update.value().ToString();
  std::vector<TraceSpan> spans = tracer.FinishedSpans();
  ASSERT_FALSE(spans.empty());

  // Exactly one root: the initiating node's update.start span.
  std::map<uint64_t, const TraceSpan*> by_id;
  for (const TraceSpan& span : spans) by_id[span.id] = &span;
  size_t roots = 0;
  for (const TraceSpan& span : spans) {
    if (span.parent != 0) {
      ASSERT_TRUE(by_id.count(span.parent) > 0)
          << "dangling parent on " << span.name;
      continue;
    }
    ++roots;
    EXPECT_EQ(span.name, "update.start");
    EXPECT_EQ(span.flow, flow);
    EXPECT_EQ(bed.network().NameOf(PeerId{span.node}), "n0");
  }
  EXPECT_EQ(roots, 1u);

  // One update.data span per data message the statistics modules counted.
  uint64_t data_messages = 0;
  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    if (report != nullptr) data_messages += report->data_messages_received;
  }
  size_t data_spans = 0;
  for (const TraceSpan& span : spans) {
    if (span.name == "update.data" && span.flow == flow) ++data_spans;
  }
  EXPECT_GT(data_messages, 0u);
  EXPECT_EQ(data_spans, data_messages);

  // The Chrome export is valid JSON and every X event nests under the
  // tree (args.span/args.parent mirror the span ids).
  std::string dumped = tracer.ExportChromeTrace().Dump();
  Result<JsonValue> parsed = ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<uint64_t> exported_ids;
  size_t x_events = 0;
  for (const JsonValue& event : events->items()) {
    if (event.GetString("ph") != "X") continue;
    ++x_events;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    exported_ids.insert(static_cast<uint64_t>(args->GetNumber("span")));
  }
  for (const JsonValue& event : events->items()) {
    if (event.GetString("ph") != "X") continue;
    uint64_t parent = static_cast<uint64_t>(
        event.Find("args")->GetNumber("parent"));
    if (parent != 0) {
      EXPECT_TRUE(exported_ids.count(parent) > 0)
          << event.GetString("name") << " parent missing from export";
    }
  }
  size_t interval_spans = 0;
  for (const TraceSpan& span : spans) {
    if (!span.instant) ++interval_spans;
  }
  EXPECT_EQ(x_events, interval_spans);

  // Flow arrows: one s+f pair per recorded message hop.
  size_t arrows = 0;
  for (const JsonValue& event : events->items()) {
    std::string ph = event.GetString("ph");
    if (ph == "s" || ph == "f") ++arrows;
  }
  EXPECT_EQ(arrows, tracer.Edges().size() * 2);

  // The JSONL export parses line by line.
  std::string jsonl = tracer.ExportJsonl();
  size_t lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) break;
    Result<JsonValue> line = ParseJson(jsonl.substr(start, end - start));
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, spans.size() + tracer.Edges().size());
}

// ---------------------------------------------------------------------------
// Snapshot merge across histogram spans

// A report serialized by a peer running a different build may carry
// bucket indexes beyond this build's kHistogramBuckets. Both the wire
// decoder and Merge must clamp them into the top bucket instead of
// growing the array or corrupting quantiles.
TEST(MetricsTest, MergeClampsOutOfRangeBuckets) {
  MetricValue alien;
  alien.kind = MetricKind::kHistogram;
  alien.value = 7;
  alien.sum = 700;
  alien.buckets = {{3, 2}, {80, 4}, {200, 1}};  // 80 and 200 out of range

  MetricsSnapshot foreign;
  foreign.entries["lat"] = alien;

  // Wire round-trip clamps: 80 and 200 coalesce into the top bucket.
  WireWriter writer;
  foreign.SerializeTo(writer);
  std::vector<uint8_t> bytes = writer.Take();
  WireReader reader(bytes);
  Result<MetricsSnapshot> decoded = MetricsSnapshot::DeserializeFrom(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const MetricValue& wire = decoded.value().entries.at("lat");
  EXPECT_EQ(wire.value, 7);
  EXPECT_EQ(BucketCount(wire, 3), 2u);
  EXPECT_EQ(BucketCount(wire, kHistogramBuckets - 1), 5u);
  EXPECT_EQ(BucketCount(wire, 80), 0u);

  // Merge clamps too, summing into this build's top bucket.
  MetricsRegistry local;
  local.GetHistogram("lat")->Record(5);
  MetricsSnapshot merged = local.Snapshot();
  merged.Merge(foreign);
  const MetricValue& entry = merged.entries.at("lat");
  EXPECT_EQ(entry.value, 8);  // 1 local + 7 foreign
  uint64_t total = 0;
  for (const auto& [index, count] : entry.buckets) {
    EXPECT_LT(index, kHistogramBuckets);  // nothing escaped the clamp
    total += count;
  }
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(BucketCount(entry, kHistogramBuckets - 1), 5u);
  // Quantiles and JSON stay well-defined on the clamped form.
  EXPECT_LE(MetricsSnapshot::Quantile(entry, 0.99),
            HistogramBucketLow(kHistogramBuckets - 1));
  EXPECT_EQ(merged.ToJson().Find("lat")->GetNumber("count"), 8);
}

// ---------------------------------------------------------------------------
// Cost ledger

// Every wire type, for replaying the transport's per-type counters
// through the same classifier the ledger uses.
constexpr MessageType kAllMessageTypes[] = {
    MessageType::kAdvertisement,  MessageType::kConfigBroadcast,
    MessageType::kUpdateRequest,  MessageType::kUpdateData,
    MessageType::kLinkClosed,     MessageType::kUpdateAck,
    MessageType::kUpdateComplete, MessageType::kQueryRequest,
    MessageType::kQueryResult,    MessageType::kQueryDone,
    MessageType::kStatsRequest,   MessageType::kStatsReport,
    MessageType::kDeliveryAck,    MessageType::kHeartbeat,
    MessageType::kHeartbeatAck,   MessageType::kFederationReport,
    MessageType::kConfigSlice,    MessageType::kConfigDelta,
    MessageType::kConfigFetch,    MessageType::kConfigAck,
};

TEST(CostLedgerTest, GoldenThreeNodeByteAccounting) {
  WorkloadOptions workload;
  workload.nodes = 3;
  workload.tuples_per_node = 4;
  GeneratedNetwork generated = MakeChain(workload);
  Testbed::Options options;
  options.profiling = true;
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  ASSERT_TRUE(bed.AllComplete(update.value()));
  ASSERT_TRUE(bed.CollectStats().ok());

  // Golden cross-check: per class, the network-wide ledger must agree
  // EXACTLY with the transport's per-type counters replayed through the
  // classifier (no reliability layer here, so no retransmit flags).
  const CostLedger& cost = bed.cost();
  std::array<CostLedger::Totals, kCostClassCount> expected{};
  for (MessageType type : kAllMessageTypes) {
    auto& slot = expected[static_cast<size_t>(
        ClassifyMessage(type, /*retransmit=*/false))];
    slot.messages += bed.network().stats().MessagesOfType(type);
    slot.bytes += bed.network().stats().BytesOfType(type);
  }
  uint64_t total_bytes = 0;
  for (size_t c = 0; c < kCostClassCount; ++c) {
    CostClass cls = static_cast<CostClass>(c);
    SCOPED_TRACE(CostClassName(cls));
    EXPECT_EQ(cost.Sent(cls).messages, expected[c].messages);
    EXPECT_EQ(cost.Sent(cls).bytes, expected[c].bytes);
    // No faults and no dead peers: everything sent was delivered.
    EXPECT_EQ(cost.Received(cls).bytes, cost.Sent(cls).bytes);
    total_bytes += cost.Sent(cls).bytes;
  }
  EXPECT_EQ(cost.TotalSentBytes(), total_bytes);
  EXPECT_GT(cost.SentBytes(CostClass::kData), 0u);
  EXPECT_GT(cost.SentBytes(CostClass::kConfig), 0u);
  EXPECT_EQ(cost.SentBytes(CostClass::kRetransmit), 0u);

  // The per-node breakdown rode the kStatsReport trailer: the super's
  // merged metrics carry cost.* counters, and the rendered table shows
  // every per-node class (config/federation are super-side only).
  MetricsSnapshot merged = bed.super_peer().MergedMetrics();
  EXPECT_GT(merged.entries.at("cost.sent.data.bytes").value, 0);
  EXPECT_GT(merged.entries.at("cost.recv.config.bytes").value, 0);
  std::string table = RenderCostBreakdown(merged);
  EXPECT_NE(table.find("data"), std::string::npos);
  EXPECT_NE(table.find("config"), std::string::npos);
}

TEST(CostLedgerTest, LossyRingChargesRetransmitClass) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 3;
  GeneratedNetwork generated = MakeRing(workload);

  Testbed::Options options;
  options.profiling = true;
  options.fault = FaultProfile::Drop(0.25, /*seed=*/11);
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 20'000;
  options.node.reliability.max_retries = 10;
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  ASSERT_TRUE(bed.AllComplete(update.value()));

  // Losses forced resends; the ledger charges them to the retransmit
  // class and its byte total must equal the reliability layer's own
  // net.retx.bytes counter exactly (both charge WireSize at send time,
  // whether or not the fault injector then drops the copy).
  uint64_t retx_counted = 0;
  for (const auto& node : bed.nodes()) {
    retx_counted +=
        node->statistics().metrics().GetCounter("net.retx.bytes")->value();
  }
  EXPECT_GT(retx_counted, 0u);
  EXPECT_EQ(bed.cost().SentBytes(CostClass::kRetransmit), retx_counted);
  EXPECT_GT(bed.cost().Sent(CostClass::kRetransmit).messages, 0u);
}

// ---------------------------------------------------------------------------
// Queue profiler

TEST(QueueProfilerTest, OffByDefaultThenInstrumentsWhenEnabled) {
  WorkloadOptions workload;
  workload.nodes = 3;
  workload.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(workload);

  // Default testbed: profiling stays off, the profiler snapshots to
  // nothing (no instruments were ever registered) and no ledger exists.
  {
    Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    EXPECT_FALSE(bed.value()->network().profiler().enabled());
    EXPECT_TRUE(bed.value()->network().profiler().Snapshot().empty());
    EXPECT_TRUE(bed.value()->cost().empty());
  }

  // Profiling testbed: the event loops record sojourn + service time per
  // class and the depth watermarks move.
  Testbed::Options options;
  options.profiling = true;
  Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated, options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();

  MetricsSnapshot profile = bed.value()->network().profiler().Snapshot();
  const MetricValue& sojourn = profile.entries.at("queue.sojourn_us.data");
  EXPECT_EQ(sojourn.kind, MetricKind::kHistogram);
  EXPECT_GT(sojourn.value, 0);
  EXPECT_GT(profile.entries.at("queue.service_us.config").value, 0);
  EXPECT_GT(profile.entries.at("queue.depth.fg").value, 0);
}

}  // namespace
}  // namespace codb
