// Differential concurrency suite for the partitioned-join evaluator: for
// every (topology, seed) combination the same generated network is run to
// completion twice — once on the historical sequential path (num_threads
// = 1) and once with four-way intra-node parallelism forced onto every
// evaluation (min_parallel_rows = 1, so even tiny frontiers take the
// parallel path). The claim under test is DESIGN.md §10's determinism
// argument: the parallel evaluator's output *sequence* is byte-identical
// to the sequential one, so the final stores must match exactly — same
// tuples, same invented-null identities — not merely up to homomorphism.
// Both results are additionally checked against the path-bounded oracle,
// so a bug that broke sequential and parallel runs identically would
// still be caught.
//
// On failure the SCOPED_TRACE line prints the topology, style and seed;
// replaying is one --gtest_filter away.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/oracle.h"
#include "query/homomorphism.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

enum class Topology { kChain, kStar, kTree, kRing };

const char* TopologyName(Topology t) {
  switch (t) {
    case Topology::kChain:
      return "Chain";
    case Topology::kStar:
      return "Star";
    case Topology::kTree:
      return "Tree";
    case Topology::kRing:
      return "Ring";
  }
  return "?";
}

GeneratedNetwork Generate(Topology topology, const WorkloadOptions& options) {
  switch (topology) {
    case Topology::kChain:
      return MakeChain(options);
    case Topology::kStar:
      return MakeStar(options);
    case Topology::kTree:
      return MakeTree(options);
    case Topology::kRing:
      return MakeRing(options);
  }
  return MakeChain(options);
}

// Stable per-relation order so two runs compare independently of
// insertion interleavings (with deterministic evaluation the raw
// snapshots already match, but the test's contract is the sorted form).
NetworkInstance Canonical(NetworkInstance instances) {
  for (auto& [node, instance] : instances) {
    for (auto& [relation, rows] : instance) {
      std::sort(rows.begin(), rows.end());
    }
  }
  return instances;
}

// One complete global update at the given thread count; returns the
// canonicalized final stores.
NetworkInstance RunAtThreads(const GeneratedNetwork& generated,
                             int num_threads) {
  Testbed::Options options;
  if (num_threads > 1) {
    options.node_threads = num_threads;
    // Force the parallel path even for the tiny frontiers of a test
    // workload; the production default would fall back to sequential.
    options.node.exec.min_parallel_rows = 1;
  }
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  if (!testbed.ok()) return {};

  Result<FlowId> update = testbed.value()->RunGlobalUpdate("n0");
  EXPECT_TRUE(update.ok()) << update.status().ToString();
  if (update.ok()) {
    EXPECT_TRUE(testbed.value()->AllComplete(update.value()))
        << "update did not complete at num_threads=" << num_threads;
  }
  return Canonical(testbed.value()->Snapshot());
}

using EquivalenceParam = std::tuple<Topology, uint64_t /*seed*/>;

class ParallelEquivalenceSweep
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(ParallelEquivalenceSweep, FourThreadsByteIdenticalToSequential) {
  auto [topology, seed] = GetParam();

  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 4;
  options.seed = seed;
  // Alternate between the two join styles so half the sweep exercises
  // multi-head rule firings through the parallel merge.
  options.style = seed % 2 == 0 ? RuleStyle::kJoinCopy : RuleStyle::kJoin;
  GeneratedNetwork generated = Generate(topology, options);

  SCOPED_TRACE(std::string("replay: topology=") + TopologyName(topology) +
               " style=" +
               (options.style == RuleStyle::kJoinCopy ? "JoinCopy" : "Join") +
               " seed=" + std::to_string(seed));

  NetworkInstance sequential = RunAtThreads(generated, /*num_threads=*/1);
  NetworkInstance parallel = RunAtThreads(generated, /*num_threads=*/4);

  // The tentpole claim: exact equality, nulls included. Compare per node
  // so a failure names the divergent store.
  ASSERT_EQ(sequential.size(), parallel.size());
  for (const auto& [node, instance] : sequential) {
    ASSERT_TRUE(parallel.count(node) > 0) << "missing node " << node;
    EXPECT_EQ(instance, parallel.at(node))
        << "parallel store diverged at " << node;
  }

  // Independent ground truth: both runs must also agree with the oracle
  // (all four topologies here have unique frontier derivations).
  Result<NetworkInstance> oracle =
      Oracle::PathBounded(generated.config, generated.seeds);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (const auto& [node, instance] : oracle.value()) {
    EXPECT_EQ(CertainPart(instance), CertainPart(parallel.at(node)))
        << "certain part mismatch vs oracle at " << node;
    EXPECT_TRUE(HomEquivalent(instance, parallel.at(node)))
        << "hom-equivalence vs oracle failed at " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalenceSweep,
    ::testing::Combine(::testing::Values(Topology::kChain, Topology::kStar,
                                         Topology::kTree, Topology::kRing),
                       ::testing::Range<uint64_t>(1, 9)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      return std::string(TopologyName(std::get<0>(info.param))) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace codb
