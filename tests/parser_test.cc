// Unit tests for the query/schema parser.

#include <gtest/gtest.h>

#include "query/parser.h"

namespace codb {
namespace {

TEST(ParserTest, SimpleQuery) {
  Result<ConjunctiveQuery> q = ParseQuery("q(X, Y) :- r(X, Z), s(Z, Y).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().head.size(), 1u);
  EXPECT_EQ(q.value().head[0].predicate, "q");
  EXPECT_EQ(q.value().body.size(), 2u);
  EXPECT_EQ(q.value().body[1].predicate, "s");
  EXPECT_TRUE(q.value().comparisons.empty());
}

TEST(ParserTest, ConstantsOfAllKinds) {
  Result<ConjunctiveQuery> q =
      ParseQuery("q(X) :- r(X, 42, -7, 3.5, 'hello world').");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const Atom& atom = q.value().body[0];
  EXPECT_EQ(atom.terms[1].value(), Value::Int(42));
  EXPECT_EQ(atom.terms[2].value(), Value::Int(-7));
  EXPECT_EQ(atom.terms[3].value(), Value::Double(3.5));
  EXPECT_EQ(atom.terms[4].value(), Value::String("hello world"));
}

TEST(ParserTest, ComparisonsAllOperators) {
  Result<ConjunctiveQuery> q = ParseQuery(
      "q(X) :- r(X, Y), X < 5, X <= Y, Y > 0, Y >= X, X != 3, Y = 2.");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().comparisons.size(), 6u);
  EXPECT_EQ(q.value().comparisons[0].op, ComparisonOp::kLt);
  EXPECT_EQ(q.value().comparisons[1].op, ComparisonOp::kLeq);
  EXPECT_EQ(q.value().comparisons[2].op, ComparisonOp::kGt);
  EXPECT_EQ(q.value().comparisons[3].op, ComparisonOp::kGeq);
  EXPECT_EQ(q.value().comparisons[4].op, ComparisonOp::kNeq);
  EXPECT_EQ(q.value().comparisons[5].op, ComparisonOp::kEq);
}

TEST(ParserTest, MultiAtomHead) {
  Result<ConjunctiveQuery> q =
      ParseQuery("a(X), b(X, Z) :- r(X).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().head.size(), 2u);
  // Z is existential (GLAV head).
  EXPECT_EQ(q.value().ExistentialVars(),
            (std::set<std::string>{"Z"}));
}

TEST(ParserTest, UnderscoreAndUppercaseAreVariables) {
  Result<ConjunctiveQuery> q = ParseQuery("q(_x, Y) :- r(_x, Y).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q.value().head[0].terms[0].is_var());
  EXPECT_EQ(q.value().head[0].terms[0].var(), "_x");
}

TEST(ParserTest, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("q(X) :- r(X)").ok());
  EXPECT_TRUE(ParseQuery("q(X) :- r(X).").ok());
}

TEST(ParserTest, ErrorsArePreciseAndNonFatal) {
  struct Case {
    const char* text;
    const char* expect_substring;
  };
  const Case cases[] = {
      {"", "expected identifier"},
      {"q(X)", "expected ',' or ':-'"},
      {"q(X) :- ", "expected identifier"},
      {"q(X) :- r(X", "expected ',' or ')'"},
      {"q(X) :- r(X) extra", "trailing input"},
      {"q(X) :- r(X, 'oops)", "unterminated string"},
      {"q(X) :- r(lower)", "lower-case identifier"},
      {"q(X) :- r(X), X ~ 3", "comparison operator"},
  };
  for (const Case& c : cases) {
    Result<ConjunctiveQuery> q = ParseQuery(c.text);
    ASSERT_FALSE(q.ok()) << "should fail: " << c.text;
    EXPECT_EQ(q.status().code(), StatusCode::kParseError) << c.text;
    EXPECT_NE(q.status().message().find(c.expect_substring),
              std::string::npos)
        << "for \"" << c.text << "\" got: " << q.status().message();
  }
}

TEST(ParserTest, ConstantOnlyComparisonRejectedByValidation) {
  Result<ConjunctiveQuery> q = ParseQuery("q(X) :- r(X), 1 = 2.");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(q.status().message().find("between two constants"),
            std::string::npos);
}

TEST(ParserTest, UnsafeComparisonVariableRejected) {
  // W occurs only in a comparison -> unsafe.
  Result<ConjunctiveQuery> q = ParseQuery("q(X) :- r(X), W > 3.");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, SchemaDeclaration) {
  Result<RelationSchema> schema =
      ParseSchema("emp(id:int, name:string, salary:double)");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema.value().name(), "emp");
  ASSERT_EQ(schema.value().arity(), 3);
  EXPECT_EQ(schema.value().attributes()[0].type, ValueType::kInt);
  EXPECT_EQ(schema.value().attributes()[1].type, ValueType::kString);
  EXPECT_EQ(schema.value().attributes()[2].type, ValueType::kDouble);
}

TEST(ParserTest, SchemaErrors) {
  EXPECT_FALSE(ParseSchema("emp(id:int").ok());
  EXPECT_FALSE(ParseSchema("emp(id:blob)").ok());
  EXPECT_FALSE(ParseSchema("emp(id int)").ok());
  EXPECT_FALSE(ParseSchema("emp()").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* text = "q(X, Y) :- r(X, Z), s(Z, Y), Z > 5, X != 'a'.";
  Result<ConjunctiveQuery> q1 = ParseQuery(text);
  ASSERT_TRUE(q1.ok());
  Result<ConjunctiveQuery> q2 = ParseQuery(q1.value().ToString());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q1.value(), q2.value());
}

}  // namespace
}  // namespace codb
