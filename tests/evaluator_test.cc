// Unit tests for conjunctive-query evaluation: joins, selections,
// comparisons, repeated variables, and semi-naive delta evaluation.

#include <gtest/gtest.h>

#include <algorithm>

#include "query/evaluator.h"
#include "query/parser.h"
#include "relation/database.h"

namespace codb {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateRelation(RelationSchema(
                        "r", {{"a", ValueType::kInt},
                              {"b", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_.CreateRelation(RelationSchema(
                        "s", {{"b", ValueType::kInt},
                              {"c", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(db_.CreateRelation(RelationSchema(
                        "names", {{"id", ValueType::kInt},
                                  {"name", ValueType::kString}}))
                    .ok());
    schema_ = db_.Schema();
  }

  void InsertR(int64_t a, int64_t b) {
    db_.Find("r")->Insert(Tuple{Value::Int(a), Value::Int(b)});
  }
  void InsertS(int64_t b, int64_t c) {
    db_.Find("s")->Insert(Tuple{Value::Int(b), Value::Int(c)});
  }

  std::vector<Tuple> Eval(const std::string& text,
                          std::vector<std::string> output) {
    Result<ConjunctiveQuery> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Result<CompiledQuery> compiled =
        CompiledQuery::Compile(q.value(), schema_, std::move(output));
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::vector<Tuple> rows = compiled.value().Evaluate(db_);
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  Database db_;
  DatabaseSchema schema_;
};

TEST_F(EvaluatorTest, SingleAtomScan) {
  InsertR(1, 10);
  InsertR(2, 20);
  std::vector<Tuple> rows = Eval("q(A, B) :- r(A, B).", {"A", "B"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1), Value::Int(10)}));
}

TEST_F(EvaluatorTest, ConstantSelection) {
  InsertR(1, 10);
  InsertR(2, 20);
  std::vector<Tuple> rows = Eval("q(B) :- r(2, B).", {"B"});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(20)}));
}

TEST_F(EvaluatorTest, BinaryJoin) {
  InsertR(1, 10);
  InsertR(2, 20);
  InsertR(3, 20);
  InsertS(20, 100);
  InsertS(30, 300);
  std::vector<Tuple> rows = Eval("q(A, C) :- r(A, B), s(B, C).",
                                 {"A", "C"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(2), Value::Int(100)}));
  EXPECT_EQ(rows[1], (Tuple{Value::Int(3), Value::Int(100)}));
}

TEST_F(EvaluatorTest, RepeatedVariableWithinAtom) {
  InsertR(1, 1);
  InsertR(1, 2);
  InsertR(3, 3);
  std::vector<Tuple> rows = Eval("q(A) :- r(A, A).", {"A"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1)}));
  EXPECT_EQ(rows[1], (Tuple{Value::Int(3)}));
}

TEST_F(EvaluatorTest, SelfJoin) {
  InsertR(1, 2);
  InsertR(2, 3);
  InsertR(3, 4);
  // Two-hop paths through r.
  std::vector<Tuple> rows = Eval("q(A, C) :- r(A, B), r(B, C).",
                                 {"A", "C"});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1), Value::Int(3)}));
  EXPECT_EQ(rows[1], (Tuple{Value::Int(2), Value::Int(4)}));
}

TEST_F(EvaluatorTest, ComparisonsFilter) {
  InsertR(1, 10);
  InsertR(2, 20);
  InsertR(3, 30);
  EXPECT_EQ(Eval("q(A) :- r(A, B), B > 15.", {"A"}).size(), 2u);
  EXPECT_EQ(Eval("q(A) :- r(A, B), B >= 20, B != 30.", {"A"}).size(), 1u);
  EXPECT_EQ(Eval("q(A) :- r(A, B), A < B.", {"A"}).size(), 3u);
  EXPECT_EQ(Eval("q(A) :- r(A, B), B < A.", {"A"}).size(), 0u);
}

TEST_F(EvaluatorTest, StringComparisons) {
  db_.Find("names")->Insert(Tuple{Value::Int(1), Value::String("alice")});
  db_.Find("names")->Insert(Tuple{Value::Int(2), Value::String("bob")});
  std::vector<Tuple> rows =
      Eval("q(I) :- names(I, N), N < 'b'.", {"I"});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1)}));
}

TEST_F(EvaluatorTest, MarkedNullsJoinByLabel) {
  Value null_a = Value::Null(1, 1);
  Value null_b = Value::Null(1, 2);
  db_.Find("r")->Insert(Tuple{Value::Int(1), null_a});
  db_.Find("s")->Insert(Tuple{null_a, Value::Int(100)});
  db_.Find("s")->Insert(Tuple{null_b, Value::Int(200)});
  // The join binds B to the null; only the matching label joins.
  std::vector<Tuple> rows = Eval("q(A, C) :- r(A, B), s(B, C).",
                                 {"A", "C"});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1), Value::Int(100)}));
}

TEST_F(EvaluatorTest, OrderingComparisonOnNullIsFalse) {
  db_.Find("r")->Insert(Tuple{Value::Int(1), Value::Null(0, 0)});
  EXPECT_EQ(Eval("q(A) :- r(A, B), B > 0.", {"A"}).size(), 0u);
  EXPECT_EQ(Eval("q(A) :- r(A, B), B != 5.", {"A"}).size(), 1u);
}

TEST_F(EvaluatorTest, EmptyRelationYieldsNoRows) {
  EXPECT_TRUE(Eval("q(A) :- r(A, B).", {"A"}).empty());
}

TEST_F(EvaluatorTest, ProjectionDeduplicates) {
  InsertR(1, 10);
  InsertR(1, 20);
  std::vector<Tuple> rows = Eval("q(A) :- r(A, B).", {"A"});
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(EvaluatorTest, CompileErrors) {
  Result<ConjunctiveQuery> q = ParseQuery("q(A) :- nope(A).");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(CompiledQuery::Compile(q.value(), schema_, {"A"}).ok());

  Result<ConjunctiveQuery> arity = ParseQuery("q(A) :- r(A).");
  ASSERT_TRUE(arity.ok());
  EXPECT_FALSE(CompiledQuery::Compile(arity.value(), schema_, {"A"}).ok());

  Result<ConjunctiveQuery> good = ParseQuery("q(A) :- r(A, B).");
  ASSERT_TRUE(good.ok());
  // Output var must occur in the body.
  EXPECT_FALSE(CompiledQuery::Compile(good.value(), schema_, {"Z"}).ok());
}

TEST_F(EvaluatorTest, DeltaEvaluationFindsOnlyNewDerivations) {
  InsertR(1, 10);
  InsertS(10, 100);
  Result<ConjunctiveQuery> q = ParseQuery("q(A, C) :- r(A, B), s(B, C).");
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(q.value(), schema_, {"A", "C"});
  ASSERT_TRUE(compiled.ok());

  // Insert a new r-tuple, then delta-evaluate with it.
  Tuple fresh{Value::Int(2), Value::Int(10)};
  db_.Find("r")->Insert(fresh);
  std::vector<Tuple> delta_rows =
      compiled.value().EvaluateDelta(db_, "r", {fresh});
  ASSERT_EQ(delta_rows.size(), 1u);
  EXPECT_EQ(delta_rows[0], (Tuple{Value::Int(2), Value::Int(100)}));

  // Empty delta -> no derivations.
  EXPECT_TRUE(compiled.value().EvaluateDelta(db_, "r", {}).empty());
  // Delta on a relation the body does not use -> no derivations.
  EXPECT_TRUE(compiled.value().EvaluateDelta(db_, "names", {fresh}).empty());
}

TEST_F(EvaluatorTest, DeltaWithRepeatedRelationCoversAllOccurrences) {
  // q(A,C) :- r(A,B), r(B,C): a new tuple may serve either occurrence.
  InsertR(1, 2);
  Result<ConjunctiveQuery> q = ParseQuery("q(A, C) :- r(A, B), r(B, C).");
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(q.value(), schema_, {"A", "C"});
  ASSERT_TRUE(compiled.ok());

  Tuple fresh{Value::Int(2), Value::Int(3)};
  db_.Find("r")->Insert(fresh);
  std::vector<Tuple> rows = compiled.value().EvaluateDelta(db_, "r", {fresh});
  // New derivation (1,3) uses the delta in the second occurrence.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Tuple{Value::Int(1), Value::Int(3)}));

  // A tuple joining with itself through both occurrences.
  Tuple loop{Value::Int(7), Value::Int(7)};
  db_.Find("r")->Insert(loop);
  std::vector<Tuple> loop_rows =
      compiled.value().EvaluateDelta(db_, "r", {loop});
  EXPECT_TRUE(std::find(loop_rows.begin(), loop_rows.end(),
                        (Tuple{Value::Int(7), Value::Int(7)})) !=
              loop_rows.end());
}

TEST_F(EvaluatorTest, ExplainPlanShowsOrderAndAccessPaths) {
  // r is big, s is small: the planner starts from s and probes r.
  for (int i = 0; i < 50; ++i) InsertR(i, i);
  InsertS(1, 100);
  Result<ConjunctiveQuery> q = ParseQuery("q(A) :- r(A, B), s(B, C).");
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(q.value(), schema_, {"A"});
  ASSERT_TRUE(compiled.ok());
  std::string plan = compiled.value().ExplainPlan(db_);
  // s first (scan, 1 row), then r via an index probe on column b.
  size_t s_pos = plan.find("s [scan] rows=1");
  size_t r_pos = plan.find("r [probe col 1] rows=50");
  EXPECT_NE(s_pos, std::string::npos) << plan;
  EXPECT_NE(r_pos, std::string::npos) << plan;
  EXPECT_LT(s_pos, r_pos) << plan;

  // A constant makes the first atom probe-able too.
  Result<ConjunctiveQuery> with_const = ParseQuery("q(B) :- r(7, B).");
  ASSERT_TRUE(with_const.ok());
  Result<CompiledQuery> compiled2 =
      CompiledQuery::Compile(with_const.value(), schema_, {"B"});
  ASSERT_TRUE(compiled2.ok());
  EXPECT_NE(compiled2.value().ExplainPlan(db_).find("[probe col 0]"),
            std::string::npos);
}

TEST_F(EvaluatorTest, UsesRelationReflectsBody) {
  Result<ConjunctiveQuery> q = ParseQuery("q(A) :- r(A, B), s(B, C).");
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> compiled =
      CompiledQuery::Compile(q.value(), schema_, {"A"});
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled.value().UsesRelation("r"));
  EXPECT_TRUE(compiled.value().UsesRelation("s"));
  EXPECT_FALSE(compiled.value().UsesRelation("names"));
}

}  // namespace
}  // namespace codb
