// Dynamic-network tests (design goal (c) of the paper): updates under
// pipe drops and node departures, and runtime topology reconfiguration
// through the super-peer.

#include <gtest/gtest.h>

#include "net/network.h"
#include "query/parser.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

TEST(ChurnTest, UpdateSurvivesMidFlightPipeCut) {
  WorkloadOptions options;
  options.nodes = 5;
  options.tuples_per_node = 10;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  // Cut the n3-n4 pipe shortly after the update starts: data beyond the
  // cut is lost, but the update must still terminate and the initiator
  // must still see completion.
  Node* n3 = bed.node("n3");
  Node* n4 = bed.node("n4");
  bed.network().ScheduleAfter(500, [&] {
    bed.network().ClosePipe(n3->id(), n4->id());
  });

  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok());
  bed.network().Run();

  EXPECT_TRUE(
      bed.node("n0")->update_manager()->IsComplete(update.value()));
  // Data from the reachable part arrived.
  EXPECT_GE(bed.node("n0")->database().Find("d")->size(), 40u - 10u);
}

TEST(ChurnTest, UpdateSurvivesNodeDeath) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 8;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  // The far end dies immediately after the update starts.
  bed.network().ScheduleAfter(100, [&] {
    bed.network().Leave(bed.node("n3")->id());
  });

  Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
  ASSERT_TRUE(update.ok());
  bed.network().Run();

  EXPECT_TRUE(
      bed.node("n0")->update_manager()->IsComplete(update.value()));
  // n0 holds at least its own data plus n1's.
  EXPECT_GE(bed.node("n0")->database().Find("d")->size(), 16u);
}

TEST(ChurnTest, UpdateAfterChurnIsConsistentWithSurvivingTopology) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 5;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  // Cut before starting: the update sees the truncated chain from the
  // beginning and completes with exactly the reachable data.
  ASSERT_TRUE(bed.network()
                  .ClosePipe(bed.node("n1")->id(), bed.node("n2")->id())
                  .ok());
  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(
      bed.node("n0")->update_manager()->IsComplete(update.value()));
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 10u);  // n0+n1
}

TEST(ChurnTest, SuperPeerRewiresTopologyAtRuntime) {
  // Start as a chain n0 <- n1 <- n2; re-broadcast a config where n0
  // imports directly from n2 instead. Pipes must follow the rules.
  WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 3;
  GeneratedNetwork chain = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(chain);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  PeerId n0 = bed.node("n0")->id();
  PeerId n1 = bed.node("n1")->id();
  PeerId n2 = bed.node("n2")->id();
  EXPECT_TRUE(bed.network().HasPipe(n0, n1));
  EXPECT_TRUE(bed.network().HasPipe(n1, n2));
  EXPECT_FALSE(bed.network().HasPipe(n0, n2));

  // New rule file: single rule n0 <- n2.
  NetworkConfig rewired;
  for (const NodeDecl& decl : chain.config.nodes()) {
    ASSERT_TRUE(rewired.AddNode(decl).ok());
  }
  const CoordinationRule* old_rule = chain.config.FindRule("r0");
  ASSERT_NE(old_rule, nullptr);
  ASSERT_TRUE(rewired
                  .AddRule(CoordinationRule("direct", "n0", "n2",
                                            old_rule->query()))
                  .ok());

  ASSERT_TRUE(bed.super_peer().LoadConfig(rewired).ok());
  ASSERT_TRUE(bed.super_peer().BroadcastConfig().ok());
  bed.network().Run();

  // "it drops 'old' rules and pipes, and creates new ones".
  EXPECT_FALSE(bed.network().HasPipe(n0, n1));
  EXPECT_FALSE(bed.network().HasPipe(n1, n2));
  EXPECT_TRUE(bed.network().HasPipe(n0, n2));

  // An update over the new topology pulls n2's data straight to n0.
  Result<FlowId> update = bed.RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(bed.node("n0")->database().Find("d")->size(), 6u);  // n0+n2
}

TEST(ChurnTest, StaleConfigVersionIgnored) {
  WorkloadOptions options;
  options.nodes = 2;
  GeneratedNetwork generated = MakeChain(options);
  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  // Applying the same config with an older version is a no-op.
  Node* n0 = bed.node("n0");
  EXPECT_TRUE(n0->ApplyConfig(generated.config, /*version=*/0).ok());
  EXPECT_TRUE(n0->has_config());
}

TEST(ChurnTest, NodeNotInConfigRejectsIt) {
  Network network;
  DatabaseSchema schema = StandardSchema();
  Result<std::unique_ptr<Node>> node =
      Node::Create(&network, "outsider", schema);
  ASSERT_TRUE(node.ok());

  WorkloadOptions options;
  options.nodes = 2;
  GeneratedNetwork generated = MakeChain(options);
  Status applied = node.value()->ApplyConfig(generated.config, 1);
  EXPECT_EQ(applied.code(), StatusCode::kNotFound);
}

TEST(ChurnTest, QueryTerminatesWhenPipeDropsMidQuery) {
  WorkloadOptions options;
  options.nodes = 4;
  options.tuples_per_node = 6;
  GeneratedNetwork generated = MakeChain(options);

  Result<std::unique_ptr<Testbed>> testbed = Testbed::Create(generated);
  ASSERT_TRUE(testbed.ok());
  Testbed& bed = *testbed.value();

  bed.network().ScheduleAfter(400, [&] {
    bed.network().ClosePipe(bed.node("n2")->id(), bed.node("n3")->id());
  });

  Result<ConjunctiveQuery> q = ParseQuery("q(K, V) :- d(K, V).");
  ASSERT_TRUE(q.ok());
  Result<FlowId> query = bed.node("n0")->StartQuery(q.value());
  ASSERT_TRUE(query.ok());
  bed.network().Run();

  EXPECT_TRUE(bed.node("n0")->QueryDone(query.value()));
  Result<std::vector<Tuple>> answers =
      bed.node("n0")->QueryAnswers(query.value());
  ASSERT_TRUE(answers.ok());
  // At least the data on this side of the cut.
  EXPECT_GE(answers.value().size(), 18u);
}

}  // namespace
}  // namespace codb
