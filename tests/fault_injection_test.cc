// Torture tests for the unreliable-network stack: deterministic fault
// injection (net/fault.h) underneath, at-least-once delivery
// (core/reliability.h) on top. The headline assertion: a global update
// over a lossy, duplicating, reordering network converges to exactly the
// database a fault-free run produces, with exactly-once termination at
// the root — across a matrix of seeds and fault profiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "core/reliability.h"
#include "net/fault.h"
#include "net/network.h"
#include "net/threaded_network.h"
#include "query/parser.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace {

// ---------------------------------------------------------------------------
// Injector determinism

TEST(FaultInjectorTest, SameSeedReplaysTheSameDecisions) {
  FaultProfile profile;
  profile.drop_rate = 0.3;
  profile.duplicate_rate = 0.2;
  profile.reorder_rate = 0.4;
  profile.jitter_us = 500;
  profile.seed = 1234;

  FaultInjector a(profile, PeerId(7), PeerId(9));
  FaultInjector b(profile, PeerId(7), PeerId(9));
  for (int i = 0; i < 200; ++i) {
    FaultInjector::Decision da = a.Next();
    FaultInjector::Decision db = b.Next();
    EXPECT_EQ(da.drop, db.drop) << "message " << i;
    EXPECT_EQ(da.duplicate, db.duplicate) << "message " << i;
    EXPECT_EQ(da.extra_delay_us, db.extra_delay_us) << "message " << i;
  }
}

TEST(FaultInjectorTest, EndpointsDecorrelateTheSequence) {
  FaultProfile profile = FaultProfile::Drop(0.5, /*seed=*/42);
  FaultInjector ab(profile, PeerId(1), PeerId(2));
  FaultInjector ba(profile, PeerId(2), PeerId(1));
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (ab.Next().drop != ba.Next().drop) ++differing;
  }
  // The two directions of a pipe share a profile but must not share a
  // fault sequence (else losses would always be symmetric).
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, PartitionEatsEverythingAndZeroProfileNothing) {
  FaultInjector partition(FaultProfile::Partition(), PeerId(1), PeerId(2));
  FaultInjector clean(FaultProfile(), PeerId(1), PeerId(2));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(partition.Next().drop);
    FaultInjector::Decision d = clean.Next();
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.extra_delay_us, 0);
  }
}

// ---------------------------------------------------------------------------
// Receiver-side ordering gate

TEST(DupFilterTest, RestoresSenderOrderAndSuppressesDuplicates) {
  DupFilter filter;
  FlowId flow{FlowId::Scope::kUpdate, 1, 1};
  PeerId src(9);
  auto msg = [&](uint32_t seq) {
    Message m;
    m.src = src;
    m.seq = seq;
    return m;
  };

  EXPECT_EQ(filter.Check(flow, src, 1), DupFilter::Verdict::kDeliver);
  // Seq 3 arrives before 2 (a drop's retransmission is in flight).
  EXPECT_EQ(filter.Check(flow, src, 3), DupFilter::Verdict::kHold);
  filter.Hold(flow, src, msg(3));
  EXPECT_EQ(filter.held_count(), 1u);
  // A duplicate of the parked message needs no second parking.
  EXPECT_EQ(filter.Check(flow, src, 3), DupFilter::Verdict::kDuplicate);
  // Nothing is releasable while the gap is open.
  EXPECT_FALSE(filter.NextReady(flow, src).has_value());

  // The gap fills: 2 delivers, and 3 becomes releasable.
  EXPECT_EQ(filter.Check(flow, src, 2), DupFilter::Verdict::kDeliver);
  std::optional<Message> ready = filter.NextReady(flow, src);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->seq, 3u);
  EXPECT_EQ(filter.Check(flow, src, 3), DupFilter::Verdict::kDeliver);

  // Late retransmissions of anything already delivered are duplicates.
  EXPECT_EQ(filter.Check(flow, src, 1), DupFilter::Verdict::kDuplicate);
  EXPECT_EQ(filter.Check(flow, src, 3), DupFilter::Verdict::kDuplicate);
  // Unsequenced traffic always passes.
  EXPECT_EQ(filter.Check(flow, src, 0), DupFilter::Verdict::kDeliver);
}

// ---------------------------------------------------------------------------
// Runtime-level injection

class CountingPeer : public NetworkPeer {
 public:
  void HandleMessage(const Message&) override { ++received; }
  void HandlePipeClosed(PeerId) override {}

  std::atomic<int> received{0};
};

Message Msg(PeerId src, PeerId dst) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = MessageType::kAdvertisement;
  m.payload = {1, 2, 3};
  return m;
}

TEST(FaultNetworkTest, FullDropLosesEverythingAndCountsIt) {
  Network network;
  CountingPeer a;
  CountingPeer b;
  PeerId id_a = network.Join("a", &a);
  PeerId id_b = network.Join("b", &b);
  ASSERT_TRUE(network.OpenPipe(id_a, id_b).ok());
  ASSERT_TRUE(
      network.SetFaultProfile(id_a, id_b, FaultProfile::Partition()).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(network.Send(Msg(id_a, id_b)).ok());
  }
  network.Run();
  EXPECT_EQ(b.received.load(), 0);
  EXPECT_EQ(network.stats().injected_drops(), 10u);
  // Sends are still counted: the sender paid for them.
  EXPECT_EQ(network.stats().total_messages(), 10u);
}

TEST(FaultNetworkTest, FullDuplicationDeliversTwice) {
  Network network;
  CountingPeer a;
  CountingPeer b;
  PeerId id_a = network.Join("a", &a);
  PeerId id_b = network.Join("b", &b);
  ASSERT_TRUE(network.OpenPipe(id_a, id_b).ok());
  ASSERT_TRUE(network
                  .SetFaultProfile(id_a, id_b,
                                   FaultProfile::Duplicate(1.0, /*seed=*/1))
                  .ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(network.Send(Msg(id_a, id_b)).ok());
  }
  network.Run();
  EXPECT_EQ(b.received.load(), 20);
  EXPECT_EQ(network.stats().injected_dups(), 10u);
}

TEST(FaultNetworkTest, ReorderDelaysButNeverLoses) {
  Network network;
  CountingPeer a;
  CountingPeer b;
  PeerId id_a = network.Join("a", &a);
  PeerId id_b = network.Join("b", &b);
  ASSERT_TRUE(network.OpenPipe(id_a, id_b).ok());
  ASSERT_TRUE(network
                  .SetFaultProfile(
                      id_a, id_b,
                      FaultProfile::Reorder(1.0, /*jitter_us=*/5000,
                                            /*seed=*/3))
                  .ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(network.Send(Msg(id_a, id_b)).ok());
  }
  network.Run();
  EXPECT_EQ(b.received.load(), 20);
  EXPECT_EQ(network.stats().injected_drops(), 0u);
  EXPECT_GT(network.stats().injected_delays(), 0u);
}

// The simulator and the threaded runtime must inject the *same* faults
// for the same per-pipe traffic: the injector is seeded from (profile,
// endpoints) and advances once per send, never from wall-clock state.
TEST(FaultNetworkTest, RuntimesInjectIdenticalFaultSequences) {
  FaultProfile profile;
  profile.drop_rate = 0.4;
  profile.duplicate_rate = 0.2;
  profile.seed = 77;

  uint64_t drops[2];
  uint64_t dups[2];
  int delivered[2];
  for (int runtime = 0; runtime < 2; ++runtime) {
    std::unique_ptr<NetworkBase> network;
    if (runtime == 0) {
      network = std::make_unique<Network>();
    } else {
      network = std::make_unique<ThreadedNetwork>();
    }
    CountingPeer a;
    CountingPeer b;
    // Names pin the peer ids so MixSeed sees identical endpoints.
    PeerId id_a = network->Join("a", &a);
    PeerId id_b = network->Join("b", &b);
    ASSERT_TRUE(network->OpenPipe(id_a, id_b).ok());
    ASSERT_TRUE(network->SetFaultProfile(id_a, id_b, profile).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(network->Send(Msg(id_a, id_b)).ok());
    }
    network->Run();
    drops[runtime] = network->stats().injected_drops();
    dups[runtime] = network->stats().injected_dups();
    delivered[runtime] = b.received.load();
  }
  EXPECT_EQ(drops[0], drops[1]);
  EXPECT_EQ(dups[0], dups[1]);
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_GT(drops[0], 0u);
  EXPECT_GT(dups[0], 0u);
}

// ---------------------------------------------------------------------------
// Protocol torture matrix

// Order-independent form of a node's store: reordering faults perturb
// insertion order, which must not count as divergence.
Instance Normalized(Instance instance) {
  for (auto& [relation, tuples] : instance) {
    std::sort(tuples.begin(), tuples.end());
  }
  return instance;
}

NetworkInstance Normalized(const NetworkInstance& network) {
  NetworkInstance out;
  for (const auto& [node, instance] : network) {
    out.emplace(node, Normalized(instance));
  }
  return out;
}

uint64_t CounterAt(const Testbed& bed, const std::string& node,
                   const std::string& name) {
  Node* n = const_cast<Testbed&>(bed).node(node);
  return n->statistics().metrics().GetCounter(name)->value();
}

uint64_t CounterSum(Testbed& bed, const std::string& name) {
  uint64_t total = 0;
  for (const auto& node : bed.nodes()) {
    total += node->statistics().metrics().GetCounter(name)->value();
  }
  return total;
}

TEST(FaultTortureTest, UpdateConvergesUnderSeedMatrix) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 3;
  // The directed ring is the adversarial topology: every message class
  // (request flood, data along simple paths, inductive link closing,
  // completion flood) crosses every pipe, and a single lost or
  // re-engaging message wedges or corrupts the whole cycle.
  GeneratedNetwork generated = MakeRing(workload);

  // Fault-free baseline (reliability off: the historical code path).
  NetworkInstance baseline;
  {
    Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    ASSERT_TRUE(bed.value()->AllComplete(update.value()));
    baseline = Normalized(bed.value()->Snapshot());
  }

  struct TortureCase {
    const char* name;
    FaultProfile profile;
  };
  auto mixed = [](uint64_t seed) {
    FaultProfile p;
    p.drop_rate = 0.03;
    p.duplicate_rate = 0.03;
    p.reorder_rate = 0.2;
    p.jitter_us = 2000;
    p.seed = seed;
    return p;
  };

  uint64_t total_drops = 0;
  uint64_t total_dups_suppressed = 0;
  uint64_t total_retransmits = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    std::vector<TortureCase> cases = {
        {"drop5pct", FaultProfile::Drop(0.05, seed)},
        {"dup5pct", FaultProfile::Duplicate(0.05, seed)},
        {"reorder", FaultProfile::Reorder(0.5, /*jitter_us=*/2000, seed)},
        {"mixed", mixed(seed)},
    };
    for (const TortureCase& c : cases) {
      SCOPED_TRACE(std::string(c.name) + " seed " + std::to_string(seed));
      Testbed::Options options;
      options.fault = c.profile;
      options.node.reliability.enabled = true;
      options.node.reliability.retransmit_base_us = 20'000;
      options.node.reliability.max_retries = 10;
      Result<std::unique_ptr<Testbed>> bed =
          Testbed::Create(generated, options);
      ASSERT_TRUE(bed.ok()) << bed.status().ToString();

      Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
      ASSERT_TRUE(update.ok()) << update.status().ToString();
      EXPECT_TRUE(bed.value()->AllComplete(update.value()));

      // Byte-for-byte the same converged network as the fault-free run.
      EXPECT_EQ(Normalized(bed.value()->Snapshot()), baseline);
      // The root's termination callback fired exactly once, and no flow
      // hit its (disabled) deadline.
      EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.root_terminations"),
                1u);
      EXPECT_EQ(CounterSum(*bed.value(), "update.aborted"), 0u);

      total_drops += bed.value()->network().stats().injected_drops();
      total_dups_suppressed +=
          CounterSum(*bed.value(), "update.dups_suppressed");
      total_retransmits += CounterSum(*bed.value(), "update.retransmits");
    }
  }
  // The matrix genuinely exercised the machinery: faults were injected,
  // duplicates suppressed, losses repaired.
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_dups_suppressed, 0u);
  EXPECT_GT(total_retransmits, 0u);
}

TEST(FaultTortureTest, BackToBackUpdatesStayExactlyOnce) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 2;
  GeneratedNetwork generated = MakeRing(workload);

  Testbed::Options options;
  options.fault = FaultProfile::Drop(0.05, /*seed=*/9);
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 20'000;
  options.node.reliability.max_retries = 10;
  Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated, options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();

  // Two sequential updates from the same root: late retransmissions of
  // the first flow must not re-engage anyone or leak into the second.
  for (int round = 1; round <= 2; ++round) {
    Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    EXPECT_TRUE(bed.value()->AllComplete(update.value()));
    EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.root_terminations"),
              static_cast<uint64_t>(round));
  }
}

TEST(FaultTortureTest, QueryConvergesUnderFaults) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 3;
  GeneratedNetwork generated = MakeRing(workload);

  // Baseline answers on a reliable network.
  std::vector<Tuple> expected;
  {
    Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    Node* root = bed.value()->node("n0");
    Result<FlowId> query =
        root->StartQuery(ParseQuery("q(K, V) :- d(K, V).").value());
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    bed.value()->network().Run();
    ASSERT_TRUE(root->QueryDone(query.value()));
    expected = root->QueryAnswers(query.value()).value();
    std::sort(expected.begin(), expected.end());
  }

  Testbed::Options options;
  options.fault = FaultProfile::Drop(0.05, /*seed=*/5);
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 20'000;
  options.node.reliability.max_retries = 10;
  Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated, options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  Node* root = bed.value()->node("n0");
  Result<FlowId> query =
      root->StartQuery(ParseQuery("q(K, V) :- d(K, V).").value());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  bed.value()->network().Run();
  ASSERT_TRUE(root->QueryDone(query.value()));
  std::vector<Tuple> answers = root->QueryAnswers(query.value()).value();
  std::sort(answers.begin(), answers.end());
  EXPECT_EQ(answers, expected);
  EXPECT_EQ(CounterAt(*bed.value(), "n0", "query.root_terminations"), 1u);
}

TEST(FaultTortureTest, PartitionTriggersDeadlineAbort) {
  WorkloadOptions workload;
  workload.nodes = 3;
  workload.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(workload);

  Testbed::Options options;
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 20'000;
  options.node.reliability.max_retries = 12;
  options.node.reliability.flow_deadline_us = 500'000;
  Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated, options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();

  // Silent partition between n1 and n2: the link eats everything but no
  // pipe-closed notification fires, so deficit toward n2 can only be
  // released by retry exhaustion — long after the root's deadline.
  ASSERT_TRUE(
      bed.value()->SetFault("n1", "n2", FaultProfile::Partition()).ok());

  Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.value()->AllComplete(update.value()));

  // Partial coverage: the root imported n1's data but never n2's.
  EXPECT_EQ(bed.value()->node("n0")->database().Find("d")->size(), 4u);

  // The abort is visible in the report and the metrics, and the normal
  // termination callback did NOT also fire (exactly-once).
  const UpdateReport* report =
      bed.value()->node("n0")->statistics().FindReport(update.value());
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->aborted);
  EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.aborted"), 1u);
  EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.root_terminations"), 0u);
}

// Churn torture: a lossy, duplicating, reordering network AND silent
// node deaths, with the membership layer running. The detector must walk
// a line: every dead peer is evicted by exactly its trackers, and no
// live peer is ever evicted no matter how many beacons the network eats
// (false *suspicions* are allowed — they recover; false *evictions* are
// not). suspect_after_periods is widened to 3 so detection needs several
// consecutive losses before even suspecting.
TEST(FaultTortureTest, ChurnUnderDropsEvictsTheDeadAndOnlyTheDead) {
  WorkloadOptions workload;
  workload.nodes = 6;
  workload.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(workload);

  for (uint64_t seed : {7u, 8u, 9u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultProfile profile;
    profile.drop_rate = 0.10;
    profile.duplicate_rate = 0.05;
    profile.reorder_rate = 0.2;
    profile.jitter_us = 2000;
    profile.seed = seed;

    Testbed::Options options;
    options.fault = profile;
    options.node.reliability.enabled = true;
    options.node.reliability.retransmit_base_us = 20'000;
    options.node.reliability.max_retries = 10;
    options.membership = true;
    options.membership_options.period_us = 200'000;
    options.membership_options.suspect_after_periods = 3.0;
    Result<std::unique_ptr<Testbed>> testbed =
        Testbed::Create(generated, options);
    ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
    Testbed& bed = *testbed.value();
    const int64_t period = options.membership_options.period_us;

    // Quiet cruising under faults: beacons get dropped, nobody dies, and
    // nobody gets evicted.
    bed.network().RunFor(8 * period);
    for (const auto& node : bed.nodes()) {
      EXPECT_EQ(node->membership()->counters().evictions, 0u)
          << node->name();
    }

    // A full update torture pass rides alongside the beacon traffic.
    Result<FlowId> first = bed.RunGlobalUpdate("n0");
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_TRUE(bed.AllComplete(first.value()));

    // Two silent deaths: one mid-chain (splits it), one at the tail.
    PeerId dead2 = bed.node("n2")->id();
    PeerId dead5 = bed.node("n5")->id();
    ASSERT_TRUE(bed.SilentKillNode("n2").ok());
    ASSERT_TRUE(bed.SilentKillNode("n5").ok());
    bed.network().RunFor(12 * period);

    // The dead are evicted by exactly their chain neighbours (n1, n3 for
    // n2; n4 for n5) — and nobody else got evicted by anybody.
    EXPECT_FALSE(bed.node("n1")->IsPresumedAlive(dead2));
    EXPECT_FALSE(bed.node("n3")->IsPresumedAlive(dead2));
    EXPECT_FALSE(bed.node("n4")->IsPresumedAlive(dead5));
    uint64_t evictions = 0;
    for (const auto& node : bed.nodes()) {
      evictions += node->membership()->counters().evictions;
    }
    EXPECT_EQ(evictions, 3u) << "a live peer was evicted";
    for (const char* pair : {"n0", "n1", "n3", "n4"}) {
      for (const char* other : {"n0", "n1", "n3", "n4"}) {
        EXPECT_TRUE(
            bed.node(pair)->IsPresumedAlive(bed.node(other)->id()))
            << pair << " wrongly distrusts " << other;
      }
    }

    // Life goes on: an update over the splintered topology terminates on
    // the reachable component instead of waiting on corpses.
    Result<FlowId> second = bed.RunGlobalUpdate("n0");
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_TRUE(bed.AllComplete(second.value()));
  }
}

// Incremental-update torture: the semi-naive path rides the same
// reliability machinery as the full update, so a lossy, duplicating,
// reordering ring must converge to exactly the stores a fault-free
// incremental run produces — same baseline update, same delta, same
// initiator — with exactly-once termination for both flows and no aborts.
TEST(FaultTortureTest, IncrementalUpdateConvergesUnderSeedMatrix) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 3;
  GeneratedNetwork generated = MakeRing(workload);

  // n0 owns keys [0, 10000); the delta keys live past the seeded prefix.
  const std::vector<Tuple> delta = {
      Tuple{Value::Int(1001), Value::Int(11)},
      Tuple{Value::Int(1002), Value::Int(22)},
      Tuple{Value::Int(1003), Value::Int(33)}};

  auto run_incremental = [&](Testbed& bed) {
    Result<FlowId> baseline = bed.RunGlobalUpdate("n0");
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_TRUE(bed.AllComplete(baseline.value()));
    ASSERT_TRUE(bed.node("n0")->InsertLocal("d", delta).ok());
    Result<FlowId> update = bed.RunIncrementalUpdate("n0");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    EXPECT_TRUE(bed.AllComplete(update.value()));
  };

  // Fault-free incremental reference.
  NetworkInstance reference;
  {
    Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    run_incremental(*bed.value());
    reference = Normalized(bed.value()->Snapshot());
  }

  auto mixed = [](uint64_t seed) {
    FaultProfile p;
    p.drop_rate = 0.03;
    p.duplicate_rate = 0.03;
    p.reorder_rate = 0.2;
    p.jitter_us = 2000;
    p.seed = seed;
    return p;
  };

  uint64_t total_drops = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    struct TortureCase {
      const char* name;
      FaultProfile profile;
    };
    std::vector<TortureCase> cases = {
        {"drop5pct", FaultProfile::Drop(0.05, seed)},
        {"dup5pct", FaultProfile::Duplicate(0.05, seed)},
        {"reorder", FaultProfile::Reorder(0.5, /*jitter_us=*/2000, seed)},
        {"mixed", mixed(seed)},
    };
    for (const TortureCase& c : cases) {
      SCOPED_TRACE(std::string(c.name) + " seed " + std::to_string(seed));
      Testbed::Options options;
      options.fault = c.profile;
      options.node.reliability.enabled = true;
      options.node.reliability.retransmit_base_us = 20'000;
      options.node.reliability.max_retries = 10;
      Result<std::unique_ptr<Testbed>> bed =
          Testbed::Create(generated, options);
      ASSERT_TRUE(bed.ok()) << bed.status().ToString();

      run_incremental(*bed.value());
      EXPECT_EQ(Normalized(bed.value()->Snapshot()), reference);
      // Baseline + incremental: two clean root terminations, no aborts,
      // and the incremental flag counted exactly once.
      EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.root_terminations"),
                2u);
      EXPECT_EQ(CounterSum(*bed.value(), "update.aborted"), 0u);
      EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.incremental"), 1u);
      total_drops += bed.value()->network().stats().injected_drops();
    }
  }
  EXPECT_GT(total_drops, 0u);
}

// A peer dying silently in the middle of an incremental update: the flow
// cannot finish cleanly (the victim holds a deficit forever), so the
// root's deadline must abort it — with the completion callback firing
// exactly once — while the surviving prefix of the chain keeps the delta
// it already imported.
TEST(FaultTortureTest, MidIncrementalSilentDeathAbortsExactlyOnce) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 2;
  GeneratedNetwork generated = MakeChain(workload);

  Testbed::Options options;
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 20'000;
  options.node.reliability.max_retries = 12;
  options.node.reliability.flow_deadline_us = 500'000;
  options.membership = true;
  options.membership_options.period_us = 200'000;
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  Testbed& bed = *testbed.value();

  Result<FlowId> baseline = bed.RunGlobalUpdate("n3");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(bed.AllComplete(baseline.value()));

  const Tuple delta_row{Value::Int(31001), Value::Int(9)};
  ASSERT_TRUE(bed.node("n3")->InsertLocal("d", {delta_row}).ok());

  int fired = 0;
  Result<FlowId> flow = bed.node("n3")->StartIncrementalUpdate(
      [&fired](const FlowId&) { ++fired; });
  ASSERT_TRUE(flow.ok()) << flow.status().ToString();
  // The kill lands 2.5ms into the flow (hop latency is 1ms): n3→n2 has
  // delivered and n2 has engaged n1, and every message toward the corpse
  // — including retransmissions — now vanishes.
  bed.network().ScheduleAfter(2'500, [&bed] {
    ASSERT_TRUE(bed.SilentKillNode("n1").ok());
  });
  bed.network().Run();

  EXPECT_EQ(fired, 1) << "completion callback must fire exactly once";
  // The root aborted and the reachable side of the break learned it; n0,
  // stranded behind the corpse, can never receive the completion flood —
  // if the request beat the kill across n1 it stays joined-but-incomplete
  // (exactly what the membership layer exists to clean up).
  EXPECT_TRUE(bed.node("n3")->update_manager()->IsComplete(flow.value()));
  EXPECT_TRUE(bed.node("n2")->update_manager()->IsComplete(flow.value()));
  EXPECT_FALSE(bed.node("n0")->update_manager()->IsComplete(flow.value()));
  const UpdateReport* report =
      bed.node("n3")->statistics().FindReport(flow.value());
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->aborted);
  // The surviving neighbour imported the delta before the chain snapped.
  const Relation* at_n2 = bed.node("n2")->database().Find("d");
  ASSERT_NE(at_n2, nullptr);
  EXPECT_TRUE(at_n2->Contains(delta_row));
}

// One torture pass on the threaded runtime: real threads, real timers,
// same convergence guarantee. Small rates and a short retransmit base
// keep the wall-clock cost of each repair in the milliseconds.
TEST(FaultTortureTest, ThreadedRuntimeConvergesUnderDrops) {
  WorkloadOptions workload;
  workload.nodes = 4;
  workload.tuples_per_node = 2;
  GeneratedNetwork generated = MakeRing(workload);

  NetworkInstance baseline;
  {
    Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    baseline = Normalized(bed.value()->Snapshot());
  }

  Testbed::Options options;
  options.threaded = true;
  options.fault = FaultProfile::Drop(0.05, /*seed=*/11);
  options.node.reliability.enabled = true;
  options.node.reliability.retransmit_base_us = 5'000;
  options.node.reliability.max_retries = 10;
  Result<std::unique_ptr<Testbed>> bed = Testbed::Create(generated, options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();

  Result<FlowId> update = bed.value()->RunGlobalUpdate("n0");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_TRUE(bed.value()->AllComplete(update.value()));
  EXPECT_EQ(Normalized(bed.value()->Snapshot()), baseline);
  EXPECT_EQ(CounterAt(*bed.value(), "n0", "update.root_terminations"), 1u);
}

}  // namespace
}  // namespace codb
