// Tests of the durable storage subsystem: CRC32C, the segmented file WAL
// (rotation, pruning, torn-tail truncation), checkpoint write/load with
// corruption fallback, recovery, and the DurableStorage façade. The
// corruption battery proves recovery never crashes on damaged input: it
// recovers the durable prefix and reports what it cut.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "relation/database.h"
#include "storage/checkpoint.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"
#include "storage/recovery.h"
#include "storage/storage.h"
#include "storage/wal_file.h"

namespace codb {
namespace {

RelationSchema DSchema() {
  return RelationSchema("d", {{"k", ValueType::kInt},
                              {"v", ValueType::kInt}});
}

// A per-test scratch directory, emptied of any previous run's files.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "codb_storage_" + name;
  Result<std::vector<std::string>> stale = ListDirectory(dir);
  if (stale.ok()) {
    for (const std::string& file : stale.value()) {
      EXPECT_TRUE(RemoveFile(dir + "/" + file).ok());
    }
  }
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  return dir;
}

StorageOptions OptionsFor(const std::string& dir) {
  StorageOptions options;
  options.directory = dir;
  return options;
}

Tuple T(int k, int v) { return Tuple{Value::Int(k), Value::Int(v)}; }

// Flips one byte of a file in place, `from_end` bytes before EOF.
void FlipByte(const std::string& path, long from_end) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fseek(file, -from_end, SEEK_END), 0);
  int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, -1, SEEK_CUR), 0);
  std::fputc(byte ^ 0xFF, file);
  std::fclose(file);
}

uint64_t FileSize(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  EXPECT_TRUE(bytes.ok()) << path;
  return bytes.ok() ? bytes.value().size() : 0;
}

TEST(Crc32cTest, KnownAnswerAndSeeding) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32c(digits, sizeof digits), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);

  // Incremental computation over two halves matches the full buffer.
  uint32_t first = Crc32c(digits, 4);
  EXPECT_EQ(Crc32c(digits + 4, 5, first), 0xE3069283u);

  std::vector<uint8_t> vec(digits, digits + sizeof digits);
  EXPECT_EQ(Crc32c(vec), 0xE3069283u);
}

TEST(FileWalTest, RoundTripCountersAndRotation) {
  std::string dir = FreshDir("roundtrip");
  StorageOptions options = OptionsFor(dir);
  options.segment_bytes = 64;  // a few records per segment

  Result<std::unique_ptr<FileWal>> wal = FileWal::Open(options, 1);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.value()->Append("d", T(i, i * 10)).ok());
  }
  EXPECT_EQ(wal.value()->appended_records(), 10u);
  EXPECT_GT(wal.value()->segments_created(), 1u);
  EXPECT_EQ(wal.value()->next_lsn(), 11u);
  wal.value().reset();  // close

  Result<FileWal::ReplayResult> replay = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay.value().records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    const WalRecord& record = replay.value().records[i];
    EXPECT_EQ(record.lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(record.relation, "d");
    EXPECT_EQ(record.tuple, T(i, i * 10));
  }
  EXPECT_EQ(replay.value().next_lsn, 11u);
  EXPECT_FALSE(replay.value().tail_truncated);
  EXPECT_FALSE(replay.value().stopped_early);

  // Replay past a checkpoint high-water mark: only the tail comes back.
  Result<FileWal::ReplayResult> tail = FileWal::ReadAll(dir, 7);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail.value().records.size(), 3u);
  EXPECT_EQ(tail.value().records[0].lsn, 8u);
}

TEST(FileWalTest, PruneKeepsCoveredTail) {
  std::string dir = FreshDir("prune");
  StorageOptions options = OptionsFor(dir);
  options.segment_bytes = 1;  // one record per segment

  Result<std::unique_ptr<FileWal>> wal = FileWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wal.value()->Append("d", T(i, i)).ok());
  }
  // A checkpoint covering lsn <= 4 makes segments 1..4 disposable.
  ASSERT_TRUE(wal.value()->PruneThrough(4).ok());
  wal.value().reset();

  Result<FileWal::ReplayResult> replay = FileWal::ReadAll(dir, 4);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 2u);
  EXPECT_EQ(replay.value().records[0].lsn, 5u);
  EXPECT_EQ(replay.value().next_lsn, 7u);
}

TEST(FileWalTest, InjectedTornTailIsTruncatedAndPrefixRecovered) {
  std::string dir = FreshDir("torn");

  // Dry run to learn the per-record frame size (records here are
  // identically shaped, so the total divides evenly).
  uint64_t record_bytes = 0;
  {
    std::string probe = FreshDir("torn_probe");
    Result<std::unique_ptr<FileWal>> wal =
        FileWal::Open(OptionsFor(probe), 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.value()->Append("d", T(i, i)).ok());
    }
    record_bytes = wal.value()->appended_bytes() / 3;
  }

  StorageOptions options = OptionsFor(dir);
  // Header (16 bytes) + two full records + half of the third.
  options.fault.wal_fail_after_bytes =
      16 + static_cast<long long>(record_bytes * 2 + record_bytes / 2);

  Result<std::unique_ptr<FileWal>> wal = FileWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("d", T(0, 0)).ok());
  ASSERT_TRUE(wal.value()->Append("d", T(1, 1)).ok());
  Status torn = wal.value()->Append("d", T(2, 2));
  EXPECT_FALSE(torn.ok());
  EXPECT_NE(torn.ToString().find("injected"), std::string::npos);
  // The fault is persistent, as a dead disk would be.
  EXPECT_FALSE(wal.value()->Append("d", T(3, 3)).ok());
  wal.value().reset();

  // Recovery: the torn third record is cut off, the prefix survives.
  Result<FileWal::ReplayResult> replay = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay.value().records.size(), 2u);
  EXPECT_TRUE(replay.value().tail_truncated);
  EXPECT_GT(replay.value().truncated_bytes, 0u);
  EXPECT_EQ(replay.value().next_lsn, 3u);

  // The truncation is physical: a second replay sees a clean log.
  Result<FileWal::ReplayResult> again = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().records.size(), 2u);
  EXPECT_FALSE(again.value().tail_truncated);

  // And the log accepts appends again after reopening past the damage.
  Result<std::unique_ptr<FileWal>> reopened =
      FileWal::Open(OptionsFor(dir), replay.value().next_lsn);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened.value()->Append("d", T(2, 2)).ok());
  reopened.value().reset();
  Result<FileWal::ReplayResult> final_replay = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(final_replay.ok());
  EXPECT_EQ(final_replay.value().records.size(), 3u);
}

TEST(FileWalTest, FlippedCrcByteInNewestSegmentTruncates) {
  std::string dir = FreshDir("crcflip");
  Result<std::unique_ptr<FileWal>> wal = FileWal::Open(OptionsFor(dir), 1);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wal.value()->Append("d", T(i, i)).ok());
  }
  wal.value().reset();

  // Corrupt the last record's payload: its CRC no longer matches.
  std::string path = dir + "/" + FileWal::SegmentName(1);
  FlipByte(path, 1);

  Result<FileWal::ReplayResult> replay = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.size(), 3u);
  EXPECT_TRUE(replay.value().tail_truncated);
  EXPECT_EQ(replay.value().next_lsn, 4u);
}

TEST(FileWalTest, CorruptionInOlderSegmentStopsReplayKeepsFiles) {
  std::string dir = FreshDir("oldflip");
  StorageOptions options = OptionsFor(dir);
  options.segment_bytes = 1;  // one record per segment

  Result<std::unique_ptr<FileWal>> wal = FileWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.value()->Append("d", T(i, i)).ok());
  }
  wal.value().reset();

  std::string second = dir + "/" + FileWal::SegmentName(2);
  std::string third = dir + "/" + FileWal::SegmentName(3);
  uint64_t third_size = FileSize(third);
  FlipByte(second, 1);

  // LSN continuity is broken at segment 2: only segment 1's record is
  // recovered, and nothing on disk is deleted or truncated.
  Result<FileWal::ReplayResult> replay = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), 1u);
  EXPECT_EQ(replay.value().records[0].lsn, 1u);
  EXPECT_TRUE(replay.value().stopped_early);
  EXPECT_FALSE(replay.value().tail_truncated);
  EXPECT_EQ(replay.value().next_lsn, 2u);
  EXPECT_EQ(FileSize(third), third_size);
}

TEST(FileWalTest, EmptySegmentFileIsSkipped) {
  std::string dir = FreshDir("emptyseg");
  std::FILE* empty =
      std::fopen((dir + "/" + FileWal::SegmentName(1)).c_str(), "wb");
  ASSERT_NE(empty, nullptr);
  std::fclose(empty);

  Result<FileWal::ReplayResult> replay = FileWal::ReadAll(dir, 0);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_FALSE(replay.value().tail_truncated);
  EXPECT_FALSE(replay.value().stopped_early);
  EXPECT_EQ(replay.value().next_lsn, 1u);
}

TEST(CheckpointTest, WriteLoadRoundTripAndRetention) {
  std::string dir = FreshDir("ckpt");
  StorageOptions options = OptionsFor(dir);
  options.checkpoints_to_keep = 2;
  CheckpointWriter writer(options);

  CheckpointData first;
  first.wal_lsn = 5;
  first.snapshot["d"] = {T(1, 10)};
  ASSERT_TRUE(writer.Write(first).ok());

  CheckpointData second;
  second.wal_lsn = 9;
  second.snapshot["d"] = {T(1, 10), T(2, 20)};
  Result<uint64_t> seq = writer.Write(second);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 2u);

  Result<CheckpointWriter::LoadResult> loaded =
      CheckpointWriter::LoadNewest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().data.wal_lsn, 9u);
  EXPECT_EQ(loaded.value().data.snapshot.at("d").size(), 2u);
  EXPECT_FALSE(loaded.value().fell_back);

  // A third write retires the first file (keep = 2).
  CheckpointData third;
  third.wal_lsn = 12;
  ASSERT_TRUE(writer.Write(third).ok());
  EXPECT_GT(FileSize(dir + "/" + CheckpointWriter::FileName(3)), 0u);
  Result<std::vector<uint8_t>> gone =
      ReadFileBytes(dir + "/" + CheckpointWriter::FileName(1));
  EXPECT_FALSE(gone.ok());
}

TEST(CheckpointTest, CorruptNewestFallsBackToOlder) {
  std::string dir = FreshDir("ckptfall");
  CheckpointWriter writer(OptionsFor(dir));

  CheckpointData good;
  good.wal_lsn = 3;
  good.snapshot["d"] = {T(1, 1)};
  ASSERT_TRUE(writer.Write(good).ok());
  CheckpointData newer;
  newer.wal_lsn = 7;
  newer.snapshot["d"] = {T(1, 1), T(2, 2)};
  ASSERT_TRUE(writer.Write(newer).ok());

  FlipByte(dir + "/" + CheckpointWriter::FileName(2), 1);

  Result<CheckpointWriter::LoadResult> loaded =
      CheckpointWriter::LoadNewest(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().fell_back);
  EXPECT_EQ(loaded.value().seq, 1u);
  EXPECT_EQ(loaded.value().data.wal_lsn, 3u);
}

TEST(CheckpointTest, AllCorruptReportsCorruptNotFound) {
  std::string dir = FreshDir("ckptbad");
  CheckpointWriter writer(OptionsFor(dir));
  CheckpointData data;
  data.wal_lsn = 1;
  ASSERT_TRUE(writer.Write(data).ok());
  FlipByte(dir + "/" + CheckpointWriter::FileName(1), 1);

  Result<CheckpointWriter::LoadResult> loaded =
      CheckpointWriter::LoadNewest(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("corrupt"), std::string::npos);
}

TEST(CheckpointTest, InjectedWriteFailureLeavesNoVisibleCheckpoint) {
  std::string dir = FreshDir("ckptfault");
  StorageOptions options = OptionsFor(dir);
  options.fault.checkpoint_fail_after_bytes = 10;
  CheckpointWriter writer(options);

  CheckpointData data;
  data.wal_lsn = 4;
  data.snapshot["d"] = {T(1, 1)};
  Status written = writer.Write(data).status();
  EXPECT_FALSE(written.ok());
  EXPECT_NE(written.ToString().find("injected"), std::string::npos);

  // Only an ignorable temp file exists; the loader sees nothing.
  Result<CheckpointWriter::LoadResult> loaded =
      CheckpointWriter::LoadNewest(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(loaded.status().message().find("corrupt"), std::string::npos);
}

TEST(RecoveryTest, UnknownRelationInWalIsAnErrorNotACrash) {
  std::string dir = FreshDir("ghostrel");
  Result<std::unique_ptr<FileWal>> wal = FileWal::Open(OptionsFor(dir), 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append("ghost", T(1, 1)).ok());
  wal.value().reset();

  Database db;
  ASSERT_TRUE(db.CreateRelation(DSchema()).ok());
  Result<RecoveryOutcome> outcome = RecoveryManager::Recover(dir, db);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(db.Find("d")->size(), 0u);
}

TEST(RecoveryTest, EmptyDirectoryYieldsEmptyOutcome) {
  std::string dir = FreshDir("empty");
  Database db;
  ASSERT_TRUE(db.CreateRelation(DSchema()).ok());
  Result<RecoveryOutcome> outcome = RecoveryManager::Recover(dir, db);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome.value().checkpoint_loaded);
  EXPECT_EQ(outcome.value().wal_records_replayed, 0u);
  EXPECT_EQ(outcome.value().next_lsn, 1u);
  EXPECT_EQ(db.Find("d")->size(), 0u);
}

TEST(DurableStorageTest, SurvivesRestartViaCheckpointAndWalTail) {
  std::string dir = FreshDir("facade");
  StorageOptions options = OptionsFor(dir);
  options.checkpoint_every = 4;
  options.segment_bytes = 1;  // one record per segment, exercises pruning
  DurabilityStats stats;

  {
    Database db;
    ASSERT_TRUE(db.CreateRelation(DSchema()).ok());
    db.Find("d")->Insert(T(100, 100));  // "seeded" before durability

    Result<std::unique_ptr<DurableStorage>> storage =
        DurableStorage::Open(options, &db, &stats);
    ASSERT_TRUE(storage.ok()) << storage.status().ToString();
    // First enablement checkpoints the seed.
    EXPECT_EQ(stats.checkpoints_written, 1u);

    for (int i = 0; i < 6; ++i) {
      db.Find("d")->Insert(T(i, i));
      storage.value()->LogInsert("d", T(i, i));
    }
    EXPECT_TRUE(storage.value()->last_error().ok());
    // 6 appends with checkpoint_every = 4: one automatic checkpoint.
    EXPECT_EQ(stats.checkpoints_written, 2u);
    EXPECT_EQ(stats.wal_records_appended, 6u);
  }

  // Restart: a fresh database recovers seed + imports from disk.
  Database revived;
  ASSERT_TRUE(revived.CreateRelation(DSchema()).ok());
  Result<std::unique_ptr<DurableStorage>> storage =
      DurableStorage::Open(options, &revived, &stats);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(revived.Find("d")->size(), 7u);
  EXPECT_TRUE(revived.Find("d")->Contains(T(100, 100)));
  EXPECT_TRUE(revived.Find("d")->Contains(T(5, 5)));

  const RecoveryOutcome& recovery = storage.value()->recovery();
  EXPECT_TRUE(recovery.checkpoint_loaded);
  EXPECT_FALSE(recovery.checkpoint_fell_back);
  // The automatic checkpoint at lsn 4 bounds replay to records 5 and 6.
  EXPECT_EQ(recovery.checkpoint_lsn, 4u);
  EXPECT_EQ(recovery.wal_records_replayed, 2u);
  EXPECT_EQ(recovery.next_lsn, 7u);
  EXPECT_EQ(stats.recoveries, 2u);
}

TEST(DurableStorageTest, CorruptCheckpointFallsBackToFullWalReplay) {
  std::string dir = FreshDir("facadefall");
  StorageOptions options = OptionsFor(dir);
  options.checkpoints_to_keep = 1;

  {
    Database db;
    ASSERT_TRUE(db.CreateRelation(DSchema()).ok());
    Result<std::unique_ptr<DurableStorage>> storage =
        DurableStorage::Open(options, &db, nullptr);
    ASSERT_TRUE(storage.ok());
    for (int i = 0; i < 3; ++i) {
      db.Find("d")->Insert(T(i, i));
      storage.value()->LogInsert("d", T(i, i));
    }
  }

  // Damage the only checkpoint. Its content (the empty initial snapshot)
  // is unusable, but every insert is in the WAL: full replay rebuilds it.
  FlipByte(dir + "/" + CheckpointWriter::FileName(1), 1);

  Database revived;
  ASSERT_TRUE(revived.CreateRelation(DSchema()).ok());
  Result<std::unique_ptr<DurableStorage>> storage =
      DurableStorage::Open(options, &revived, nullptr);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(revived.Find("d")->size(), 3u);
  EXPECT_FALSE(storage.value()->recovery().checkpoint_loaded);
  EXPECT_TRUE(storage.value()->recovery().checkpoint_fell_back);
  EXPECT_EQ(storage.value()->recovery().wal_records_replayed, 3u);
}

}  // namespace
}  // namespace codb
