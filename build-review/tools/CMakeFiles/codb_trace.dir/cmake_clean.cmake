file(REMOVE_RECURSE
  "CMakeFiles/codb_trace.dir/codb_trace.cc.o"
  "CMakeFiles/codb_trace.dir/codb_trace.cc.o.d"
  "codb_trace"
  "codb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
