
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/codb_trace.cc" "tools/CMakeFiles/codb_trace.dir/codb_trace.cc.o" "gcc" "tools/CMakeFiles/codb_trace.dir/codb_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/obs/CMakeFiles/codb_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/relation/CMakeFiles/codb_relation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
