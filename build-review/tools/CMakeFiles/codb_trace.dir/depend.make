# Empty dependencies file for codb_trace.
# This may be replaced when dependencies are built.
