file(REMOVE_RECURSE
  "CMakeFiles/durability_and_refresh.dir/durability_and_refresh.cpp.o"
  "CMakeFiles/durability_and_refresh.dir/durability_and_refresh.cpp.o.d"
  "durability_and_refresh"
  "durability_and_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_and_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
