# Empty dependencies file for durability_and_refresh.
# This may be replaced when dependencies are built.
