file(REMOVE_RECURSE
  "CMakeFiles/dynamic_topology.dir/dynamic_topology.cpp.o"
  "CMakeFiles/dynamic_topology.dir/dynamic_topology.cpp.o.d"
  "dynamic_topology"
  "dynamic_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
