# Empty dependencies file for dynamic_topology.
# This may be replaced when dependencies are built.
