# Empty dependencies file for cyclic_ring.
# This may be replaced when dependencies are built.
