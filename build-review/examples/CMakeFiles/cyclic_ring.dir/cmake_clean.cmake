file(REMOVE_RECURSE
  "CMakeFiles/cyclic_ring.dir/cyclic_ring.cpp.o"
  "CMakeFiles/cyclic_ring.dir/cyclic_ring.cpp.o.d"
  "cyclic_ring"
  "cyclic_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
