file(REMOVE_RECURSE
  "CMakeFiles/university_network.dir/university_network.cpp.o"
  "CMakeFiles/university_network.dir/university_network.cpp.o.d"
  "university_network"
  "university_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
