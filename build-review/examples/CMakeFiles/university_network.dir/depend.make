# Empty dependencies file for university_network.
# This may be replaced when dependencies are built.
