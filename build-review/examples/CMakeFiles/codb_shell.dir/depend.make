# Empty dependencies file for codb_shell.
# This may be replaced when dependencies are built.
