file(REMOVE_RECURSE
  "CMakeFiles/codb_shell.dir/codb_shell.cpp.o"
  "CMakeFiles/codb_shell.dir/codb_shell.cpp.o.d"
  "codb_shell"
  "codb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
