# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_university_network "/root/repo/build-review/examples/university_network")
set_tests_properties(example_university_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cyclic_ring "/root/repo/build-review/examples/cyclic_ring")
set_tests_properties(example_cyclic_ring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_topology "/root/repo/build-review/examples/dynamic_topology")
set_tests_properties(example_dynamic_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_durability_and_refresh "/root/repo/build-review/examples/durability_and_refresh")
set_tests_properties(example_durability_and_refresh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_capture "/root/repo/build-review/examples/trace_capture")
set_tests_properties(example_trace_capture PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_codb_shell "sh" "-c" "printf 'config
node a
  relation d(k:int)
node b
  relation d(k:int)
rule r a <- b : d(K) :- d(K).
end
seed b d 1
update a
show a d
explain a q(K) :- d(K).
stats
quit
' | /root/repo/build-review/examples/codb_shell")
set_tests_properties(example_codb_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
