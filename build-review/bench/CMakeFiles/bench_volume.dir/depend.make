# Empty dependencies file for bench_volume.
# This may be replaced when dependencies are built.
