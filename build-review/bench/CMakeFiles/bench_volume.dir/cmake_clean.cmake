file(REMOVE_RECURSE
  "CMakeFiles/bench_volume.dir/bench_volume.cc.o"
  "CMakeFiles/bench_volume.dir/bench_volume.cc.o.d"
  "bench_volume"
  "bench_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
