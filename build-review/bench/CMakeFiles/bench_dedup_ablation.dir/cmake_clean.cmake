file(REMOVE_RECURSE
  "CMakeFiles/bench_dedup_ablation.dir/bench_dedup_ablation.cc.o"
  "CMakeFiles/bench_dedup_ablation.dir/bench_dedup_ablation.cc.o.d"
  "bench_dedup_ablation"
  "bench_dedup_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dedup_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
