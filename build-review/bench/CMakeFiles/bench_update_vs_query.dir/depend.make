# Empty dependencies file for bench_update_vs_query.
# This may be replaced when dependencies are built.
