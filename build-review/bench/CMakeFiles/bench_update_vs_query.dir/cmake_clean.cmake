file(REMOVE_RECURSE
  "CMakeFiles/bench_update_vs_query.dir/bench_update_vs_query.cc.o"
  "CMakeFiles/bench_update_vs_query.dir/bench_update_vs_query.cc.o.d"
  "bench_update_vs_query"
  "bench_update_vs_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_vs_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
