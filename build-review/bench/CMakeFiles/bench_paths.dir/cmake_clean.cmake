file(REMOVE_RECURSE
  "CMakeFiles/bench_paths.dir/bench_paths.cc.o"
  "CMakeFiles/bench_paths.dir/bench_paths.cc.o.d"
  "bench_paths"
  "bench_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
