# Empty dependencies file for bench_paths.
# This may be replaced when dependencies are built.
