# Empty dependencies file for bench_batching.
# This may be replaced when dependencies are built.
