file(REMOVE_RECURSE
  "CMakeFiles/bench_batching.dir/bench_batching.cc.o"
  "CMakeFiles/bench_batching.dir/bench_batching.cc.o.d"
  "bench_batching"
  "bench_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
