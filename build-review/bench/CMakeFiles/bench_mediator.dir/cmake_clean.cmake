file(REMOVE_RECURSE
  "CMakeFiles/bench_mediator.dir/bench_mediator.cc.o"
  "CMakeFiles/bench_mediator.dir/bench_mediator.cc.o.d"
  "bench_mediator"
  "bench_mediator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mediator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
