# Empty dependencies file for bench_mediator.
# This may be replaced when dependencies are built.
