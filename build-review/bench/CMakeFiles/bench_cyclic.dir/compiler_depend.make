# Empty compiler generated dependencies file for bench_cyclic.
# This may be replaced when dependencies are built.
