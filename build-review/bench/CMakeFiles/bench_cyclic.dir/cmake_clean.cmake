file(REMOVE_RECURSE
  "CMakeFiles/bench_cyclic.dir/bench_cyclic.cc.o"
  "CMakeFiles/bench_cyclic.dir/bench_cyclic.cc.o.d"
  "bench_cyclic"
  "bench_cyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
