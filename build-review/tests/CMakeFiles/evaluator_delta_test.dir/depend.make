# Empty dependencies file for evaluator_delta_test.
# This may be replaced when dependencies are built.
