file(REMOVE_RECURSE
  "CMakeFiles/evaluator_delta_test.dir/evaluator_delta_test.cc.o"
  "CMakeFiles/evaluator_delta_test.dir/evaluator_delta_test.cc.o.d"
  "evaluator_delta_test"
  "evaluator_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
