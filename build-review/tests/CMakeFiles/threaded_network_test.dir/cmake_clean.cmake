file(REMOVE_RECURSE
  "CMakeFiles/threaded_network_test.dir/threaded_network_test.cc.o"
  "CMakeFiles/threaded_network_test.dir/threaded_network_test.cc.o.d"
  "threaded_network_test"
  "threaded_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
