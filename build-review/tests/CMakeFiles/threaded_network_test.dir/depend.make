# Empty dependencies file for threaded_network_test.
# This may be replaced when dependencies are built.
