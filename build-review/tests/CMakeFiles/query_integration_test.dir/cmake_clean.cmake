file(REMOVE_RECURSE
  "CMakeFiles/query_integration_test.dir/query_integration_test.cc.o"
  "CMakeFiles/query_integration_test.dir/query_integration_test.cc.o.d"
  "query_integration_test"
  "query_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
