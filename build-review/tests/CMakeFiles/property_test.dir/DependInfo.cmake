
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/workload/CMakeFiles/codb_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/codb_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/wrapper/CMakeFiles/codb_wrapper.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/codb_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/query/CMakeFiles/codb_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/codb_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/relation/CMakeFiles/codb_relation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/codb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
