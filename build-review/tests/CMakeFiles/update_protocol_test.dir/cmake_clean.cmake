file(REMOVE_RECURSE
  "CMakeFiles/update_protocol_test.dir/update_protocol_test.cc.o"
  "CMakeFiles/update_protocol_test.dir/update_protocol_test.cc.o.d"
  "update_protocol_test"
  "update_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
