# Empty compiler generated dependencies file for superpeer_test.
# This may be replaced when dependencies are built.
