file(REMOVE_RECURSE
  "CMakeFiles/superpeer_test.dir/superpeer_test.cc.o"
  "CMakeFiles/superpeer_test.dir/superpeer_test.cc.o.d"
  "superpeer_test"
  "superpeer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superpeer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
