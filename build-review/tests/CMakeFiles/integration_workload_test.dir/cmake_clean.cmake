file(REMOVE_RECURSE
  "CMakeFiles/integration_workload_test.dir/integration_workload_test.cc.o"
  "CMakeFiles/integration_workload_test.dir/integration_workload_test.cc.o.d"
  "integration_workload_test"
  "integration_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
