# Empty dependencies file for net_units_test.
# This may be replaced when dependencies are built.
