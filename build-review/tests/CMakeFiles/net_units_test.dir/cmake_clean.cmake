file(REMOVE_RECURSE
  "CMakeFiles/net_units_test.dir/net_units_test.cc.o"
  "CMakeFiles/net_units_test.dir/net_units_test.cc.o.d"
  "net_units_test"
  "net_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
