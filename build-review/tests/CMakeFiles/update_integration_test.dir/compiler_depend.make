# Empty compiler generated dependencies file for update_integration_test.
# This may be replaced when dependencies are built.
