file(REMOVE_RECURSE
  "CMakeFiles/update_integration_test.dir/update_integration_test.cc.o"
  "CMakeFiles/update_integration_test.dir/update_integration_test.cc.o.d"
  "update_integration_test"
  "update_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
