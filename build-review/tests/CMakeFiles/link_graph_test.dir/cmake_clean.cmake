file(REMOVE_RECURSE
  "CMakeFiles/link_graph_test.dir/link_graph_test.cc.o"
  "CMakeFiles/link_graph_test.dir/link_graph_test.cc.o.d"
  "link_graph_test"
  "link_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
