file(REMOVE_RECURSE
  "CMakeFiles/wrapper_test.dir/wrapper_test.cc.o"
  "CMakeFiles/wrapper_test.dir/wrapper_test.cc.o.d"
  "wrapper_test"
  "wrapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
