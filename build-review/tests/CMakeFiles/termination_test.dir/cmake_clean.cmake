file(REMOVE_RECURSE
  "CMakeFiles/termination_test.dir/termination_test.cc.o"
  "CMakeFiles/termination_test.dir/termination_test.cc.o.d"
  "termination_test"
  "termination_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/termination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
