file(REMOVE_RECURSE
  "libcodb_obs.a"
)
