file(REMOVE_RECURSE
  "CMakeFiles/codb_obs.dir/json.cc.o"
  "CMakeFiles/codb_obs.dir/json.cc.o.d"
  "CMakeFiles/codb_obs.dir/metrics.cc.o"
  "CMakeFiles/codb_obs.dir/metrics.cc.o.d"
  "CMakeFiles/codb_obs.dir/trace.cc.o"
  "CMakeFiles/codb_obs.dir/trace.cc.o.d"
  "libcodb_obs.a"
  "libcodb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
