# Empty dependencies file for codb_obs.
# This may be replaced when dependencies are built.
