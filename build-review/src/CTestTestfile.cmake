# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("relation")
subdirs("obs")
subdirs("storage")
subdirs("query")
subdirs("net")
subdirs("wrapper")
subdirs("core")
subdirs("workload")
