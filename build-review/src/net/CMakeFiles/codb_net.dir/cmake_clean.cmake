file(REMOVE_RECURSE
  "CMakeFiles/codb_net.dir/discovery.cc.o"
  "CMakeFiles/codb_net.dir/discovery.cc.o.d"
  "CMakeFiles/codb_net.dir/network.cc.o"
  "CMakeFiles/codb_net.dir/network.cc.o.d"
  "CMakeFiles/codb_net.dir/pipe.cc.o"
  "CMakeFiles/codb_net.dir/pipe.cc.o.d"
  "CMakeFiles/codb_net.dir/threaded_network.cc.o"
  "CMakeFiles/codb_net.dir/threaded_network.cc.o.d"
  "CMakeFiles/codb_net.dir/transport_stats.cc.o"
  "CMakeFiles/codb_net.dir/transport_stats.cc.o.d"
  "libcodb_net.a"
  "libcodb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
