# Empty dependencies file for codb_net.
# This may be replaced when dependencies are built.
