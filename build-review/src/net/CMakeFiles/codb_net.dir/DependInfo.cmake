
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/discovery.cc" "src/net/CMakeFiles/codb_net.dir/discovery.cc.o" "gcc" "src/net/CMakeFiles/codb_net.dir/discovery.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/codb_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/codb_net.dir/network.cc.o.d"
  "/root/repo/src/net/pipe.cc" "src/net/CMakeFiles/codb_net.dir/pipe.cc.o" "gcc" "src/net/CMakeFiles/codb_net.dir/pipe.cc.o.d"
  "/root/repo/src/net/threaded_network.cc" "src/net/CMakeFiles/codb_net.dir/threaded_network.cc.o" "gcc" "src/net/CMakeFiles/codb_net.dir/threaded_network.cc.o.d"
  "/root/repo/src/net/transport_stats.cc" "src/net/CMakeFiles/codb_net.dir/transport_stats.cc.o" "gcc" "src/net/CMakeFiles/codb_net.dir/transport_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/relation/CMakeFiles/codb_relation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/codb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
