file(REMOVE_RECURSE
  "libcodb_net.a"
)
