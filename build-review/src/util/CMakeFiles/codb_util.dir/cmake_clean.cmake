file(REMOVE_RECURSE
  "CMakeFiles/codb_util.dir/logging.cc.o"
  "CMakeFiles/codb_util.dir/logging.cc.o.d"
  "CMakeFiles/codb_util.dir/random.cc.o"
  "CMakeFiles/codb_util.dir/random.cc.o.d"
  "CMakeFiles/codb_util.dir/status.cc.o"
  "CMakeFiles/codb_util.dir/status.cc.o.d"
  "CMakeFiles/codb_util.dir/string_util.cc.o"
  "CMakeFiles/codb_util.dir/string_util.cc.o.d"
  "libcodb_util.a"
  "libcodb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
