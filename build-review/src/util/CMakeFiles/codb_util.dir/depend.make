# Empty dependencies file for codb_util.
# This may be replaced when dependencies are built.
