file(REMOVE_RECURSE
  "libcodb_util.a"
)
