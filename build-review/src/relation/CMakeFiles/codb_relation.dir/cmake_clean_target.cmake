file(REMOVE_RECURSE
  "libcodb_relation.a"
)
