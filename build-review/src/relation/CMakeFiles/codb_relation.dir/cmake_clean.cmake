file(REMOVE_RECURSE
  "CMakeFiles/codb_relation.dir/database.cc.o"
  "CMakeFiles/codb_relation.dir/database.cc.o.d"
  "CMakeFiles/codb_relation.dir/intern.cc.o"
  "CMakeFiles/codb_relation.dir/intern.cc.o.d"
  "CMakeFiles/codb_relation.dir/printer.cc.o"
  "CMakeFiles/codb_relation.dir/printer.cc.o.d"
  "CMakeFiles/codb_relation.dir/relation.cc.o"
  "CMakeFiles/codb_relation.dir/relation.cc.o.d"
  "CMakeFiles/codb_relation.dir/schema.cc.o"
  "CMakeFiles/codb_relation.dir/schema.cc.o.d"
  "CMakeFiles/codb_relation.dir/tuple.cc.o"
  "CMakeFiles/codb_relation.dir/tuple.cc.o.d"
  "CMakeFiles/codb_relation.dir/value.cc.o"
  "CMakeFiles/codb_relation.dir/value.cc.o.d"
  "CMakeFiles/codb_relation.dir/wal.cc.o"
  "CMakeFiles/codb_relation.dir/wal.cc.o.d"
  "CMakeFiles/codb_relation.dir/wire.cc.o"
  "CMakeFiles/codb_relation.dir/wire.cc.o.d"
  "libcodb_relation.a"
  "libcodb_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
