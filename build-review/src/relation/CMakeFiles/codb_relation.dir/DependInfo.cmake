
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/database.cc" "src/relation/CMakeFiles/codb_relation.dir/database.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/database.cc.o.d"
  "/root/repo/src/relation/intern.cc" "src/relation/CMakeFiles/codb_relation.dir/intern.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/intern.cc.o.d"
  "/root/repo/src/relation/printer.cc" "src/relation/CMakeFiles/codb_relation.dir/printer.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/printer.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/relation/CMakeFiles/codb_relation.dir/relation.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/relation.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/relation/CMakeFiles/codb_relation.dir/schema.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/schema.cc.o.d"
  "/root/repo/src/relation/tuple.cc" "src/relation/CMakeFiles/codb_relation.dir/tuple.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/tuple.cc.o.d"
  "/root/repo/src/relation/value.cc" "src/relation/CMakeFiles/codb_relation.dir/value.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/value.cc.o.d"
  "/root/repo/src/relation/wal.cc" "src/relation/CMakeFiles/codb_relation.dir/wal.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/wal.cc.o.d"
  "/root/repo/src/relation/wire.cc" "src/relation/CMakeFiles/codb_relation.dir/wire.cc.o" "gcc" "src/relation/CMakeFiles/codb_relation.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
