# Empty dependencies file for codb_relation.
# This may be replaced when dependencies are built.
