file(REMOVE_RECURSE
  "CMakeFiles/codb_workload.dir/testbed.cc.o"
  "CMakeFiles/codb_workload.dir/testbed.cc.o.d"
  "CMakeFiles/codb_workload.dir/topology_gen.cc.o"
  "CMakeFiles/codb_workload.dir/topology_gen.cc.o.d"
  "libcodb_workload.a"
  "libcodb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
