file(REMOVE_RECURSE
  "libcodb_workload.a"
)
