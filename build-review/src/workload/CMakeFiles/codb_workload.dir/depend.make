# Empty dependencies file for codb_workload.
# This may be replaced when dependencies are built.
