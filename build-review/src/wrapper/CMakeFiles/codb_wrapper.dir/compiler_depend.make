# Empty compiler generated dependencies file for codb_wrapper.
# This may be replaced when dependencies are built.
