file(REMOVE_RECURSE
  "libcodb_wrapper.a"
)
