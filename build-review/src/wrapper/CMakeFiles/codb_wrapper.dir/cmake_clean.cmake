file(REMOVE_RECURSE
  "CMakeFiles/codb_wrapper.dir/dbs_repository.cc.o"
  "CMakeFiles/codb_wrapper.dir/dbs_repository.cc.o.d"
  "CMakeFiles/codb_wrapper.dir/wrapper.cc.o"
  "CMakeFiles/codb_wrapper.dir/wrapper.cc.o.d"
  "libcodb_wrapper.a"
  "libcodb_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
