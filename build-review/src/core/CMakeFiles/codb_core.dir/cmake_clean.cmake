file(REMOVE_RECURSE
  "CMakeFiles/codb_core.dir/config.cc.o"
  "CMakeFiles/codb_core.dir/config.cc.o.d"
  "CMakeFiles/codb_core.dir/consistency.cc.o"
  "CMakeFiles/codb_core.dir/consistency.cc.o.d"
  "CMakeFiles/codb_core.dir/link_graph.cc.o"
  "CMakeFiles/codb_core.dir/link_graph.cc.o.d"
  "CMakeFiles/codb_core.dir/node.cc.o"
  "CMakeFiles/codb_core.dir/node.cc.o.d"
  "CMakeFiles/codb_core.dir/oracle.cc.o"
  "CMakeFiles/codb_core.dir/oracle.cc.o.d"
  "CMakeFiles/codb_core.dir/protocol.cc.o"
  "CMakeFiles/codb_core.dir/protocol.cc.o.d"
  "CMakeFiles/codb_core.dir/query_manager.cc.o"
  "CMakeFiles/codb_core.dir/query_manager.cc.o.d"
  "CMakeFiles/codb_core.dir/statistics.cc.o"
  "CMakeFiles/codb_core.dir/statistics.cc.o.d"
  "CMakeFiles/codb_core.dir/super_peer.cc.o"
  "CMakeFiles/codb_core.dir/super_peer.cc.o.d"
  "CMakeFiles/codb_core.dir/termination.cc.o"
  "CMakeFiles/codb_core.dir/termination.cc.o.d"
  "CMakeFiles/codb_core.dir/update_manager.cc.o"
  "CMakeFiles/codb_core.dir/update_manager.cc.o.d"
  "libcodb_core.a"
  "libcodb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
