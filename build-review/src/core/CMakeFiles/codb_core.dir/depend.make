# Empty dependencies file for codb_core.
# This may be replaced when dependencies are built.
