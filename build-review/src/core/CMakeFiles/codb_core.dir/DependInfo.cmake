
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/codb_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/config.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/codb_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/link_graph.cc" "src/core/CMakeFiles/codb_core.dir/link_graph.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/link_graph.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/codb_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/node.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/codb_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/codb_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/query_manager.cc" "src/core/CMakeFiles/codb_core.dir/query_manager.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/query_manager.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/core/CMakeFiles/codb_core.dir/statistics.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/statistics.cc.o.d"
  "/root/repo/src/core/super_peer.cc" "src/core/CMakeFiles/codb_core.dir/super_peer.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/super_peer.cc.o.d"
  "/root/repo/src/core/termination.cc" "src/core/CMakeFiles/codb_core.dir/termination.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/termination.cc.o.d"
  "/root/repo/src/core/update_manager.cc" "src/core/CMakeFiles/codb_core.dir/update_manager.cc.o" "gcc" "src/core/CMakeFiles/codb_core.dir/update_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/net/CMakeFiles/codb_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/query/CMakeFiles/codb_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/relation/CMakeFiles/codb_relation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/codb_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/wrapper/CMakeFiles/codb_wrapper.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/codb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
