file(REMOVE_RECURSE
  "libcodb_core.a"
)
