file(REMOVE_RECURSE
  "CMakeFiles/codb_query.dir/ast.cc.o"
  "CMakeFiles/codb_query.dir/ast.cc.o.d"
  "CMakeFiles/codb_query.dir/containment.cc.o"
  "CMakeFiles/codb_query.dir/containment.cc.o.d"
  "CMakeFiles/codb_query.dir/evaluator.cc.o"
  "CMakeFiles/codb_query.dir/evaluator.cc.o.d"
  "CMakeFiles/codb_query.dir/homomorphism.cc.o"
  "CMakeFiles/codb_query.dir/homomorphism.cc.o.d"
  "CMakeFiles/codb_query.dir/minimize.cc.o"
  "CMakeFiles/codb_query.dir/minimize.cc.o.d"
  "CMakeFiles/codb_query.dir/parser.cc.o"
  "CMakeFiles/codb_query.dir/parser.cc.o.d"
  "CMakeFiles/codb_query.dir/rule.cc.o"
  "CMakeFiles/codb_query.dir/rule.cc.o.d"
  "libcodb_query.a"
  "libcodb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
