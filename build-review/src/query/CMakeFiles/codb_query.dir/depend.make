# Empty dependencies file for codb_query.
# This may be replaced when dependencies are built.
