file(REMOVE_RECURSE
  "libcodb_query.a"
)
