
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/codb_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/ast.cc.o.d"
  "/root/repo/src/query/containment.cc" "src/query/CMakeFiles/codb_query.dir/containment.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/containment.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/query/CMakeFiles/codb_query.dir/evaluator.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/evaluator.cc.o.d"
  "/root/repo/src/query/homomorphism.cc" "src/query/CMakeFiles/codb_query.dir/homomorphism.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/homomorphism.cc.o.d"
  "/root/repo/src/query/minimize.cc" "src/query/CMakeFiles/codb_query.dir/minimize.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/minimize.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/codb_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/parser.cc.o.d"
  "/root/repo/src/query/rule.cc" "src/query/CMakeFiles/codb_query.dir/rule.cc.o" "gcc" "src/query/CMakeFiles/codb_query.dir/rule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/relation/CMakeFiles/codb_relation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/codb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
