
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checkpoint.cc" "src/storage/CMakeFiles/codb_storage.dir/checkpoint.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/checkpoint.cc.o.d"
  "/root/repo/src/storage/crc32c.cc" "src/storage/CMakeFiles/codb_storage.dir/crc32c.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/crc32c.cc.o.d"
  "/root/repo/src/storage/durability_stats.cc" "src/storage/CMakeFiles/codb_storage.dir/durability_stats.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/durability_stats.cc.o.d"
  "/root/repo/src/storage/fs_util.cc" "src/storage/CMakeFiles/codb_storage.dir/fs_util.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/fs_util.cc.o.d"
  "/root/repo/src/storage/recovery.cc" "src/storage/CMakeFiles/codb_storage.dir/recovery.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/recovery.cc.o.d"
  "/root/repo/src/storage/storage.cc" "src/storage/CMakeFiles/codb_storage.dir/storage.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/storage.cc.o.d"
  "/root/repo/src/storage/wal_file.cc" "src/storage/CMakeFiles/codb_storage.dir/wal_file.cc.o" "gcc" "src/storage/CMakeFiles/codb_storage.dir/wal_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/relation/CMakeFiles/codb_relation.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/codb_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/codb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
