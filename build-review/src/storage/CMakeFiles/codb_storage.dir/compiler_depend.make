# Empty compiler generated dependencies file for codb_storage.
# This may be replaced when dependencies are built.
