file(REMOVE_RECURSE
  "CMakeFiles/codb_storage.dir/checkpoint.cc.o"
  "CMakeFiles/codb_storage.dir/checkpoint.cc.o.d"
  "CMakeFiles/codb_storage.dir/crc32c.cc.o"
  "CMakeFiles/codb_storage.dir/crc32c.cc.o.d"
  "CMakeFiles/codb_storage.dir/durability_stats.cc.o"
  "CMakeFiles/codb_storage.dir/durability_stats.cc.o.d"
  "CMakeFiles/codb_storage.dir/fs_util.cc.o"
  "CMakeFiles/codb_storage.dir/fs_util.cc.o.d"
  "CMakeFiles/codb_storage.dir/recovery.cc.o"
  "CMakeFiles/codb_storage.dir/recovery.cc.o.d"
  "CMakeFiles/codb_storage.dir/storage.cc.o"
  "CMakeFiles/codb_storage.dir/storage.cc.o.d"
  "CMakeFiles/codb_storage.dir/wal_file.cc.o"
  "CMakeFiles/codb_storage.dir/wal_file.cc.o.d"
  "libcodb_storage.a"
  "libcodb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
