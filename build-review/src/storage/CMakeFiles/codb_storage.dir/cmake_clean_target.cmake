file(REMOVE_RECURSE
  "libcodb_storage.a"
)
