// codb_profile — render cost-ledger and queue-profiler snapshots.
//
// Input is JSON in any of the shapes the observability layer produces:
//   * a bench `--json` scenario array (bench_topologies etc.) — scenarios
//     carrying "cost"/"profile" members are profiled; pick one with
//     --scenario <substring>, default is the first that has cost data;
//   * a combined capture ({"codb_bench_set":1, "benches": {...}}) from
//     bench/compare_bench.py capture;
//   * a single object with "cost"/"profile"/"metrics" members;
//   * a flat metrics object (cost.* / queue.* keys), e.g. a
//     MetricsSnapshot::ToJson() dump.
//
// The text mode prints the per-class byte breakdown (same renderer as the
// super-peer's final report) followed by the event-loop profile: queue
// sojourn and handler service time per class, queue-depth watermarks and
// scheduled-timer lag. --json emits the normalized
// {"scenario", "cost", "queue"} object instead.
//
// Usage: codb_profile <bench.json|-> [--scenario <substr>] [--json]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cost_ledger.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace codb {
namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// One profile-bearing record extracted from the input: its display name
// plus the flat cost.* and queue.* entries.
struct ProfileRecord {
  std::string name;
  std::map<std::string, JsonValue> cost;
  std::map<std::string, JsonValue> queue;

  bool has_data() const { return !cost.empty() || !queue.empty(); }
};

// Splits a flat metrics-style object into the record's cost/queue maps.
void AbsorbFlat(const JsonValue& object, ProfileRecord* record) {
  if (!object.is_object()) return;
  for (const auto& [key, value] : object.members()) {
    if (StartsWith(key, "cost.")) {
      record->cost.emplace(key, value);
    } else if (StartsWith(key, "queue.")) {
      record->queue.emplace(key, value);
    }
  }
}

ProfileRecord RecordFromScenario(const JsonValue& scenario) {
  ProfileRecord record;
  record.name = scenario.GetString("scenario", "(unnamed)");
  if (const JsonValue* cost = scenario.Find("cost")) AbsorbFlat(*cost, &record);
  if (const JsonValue* profile = scenario.Find("profile")) {
    AbsorbFlat(*profile, &record);
  }
  if (const JsonValue* metrics = scenario.Find("metrics")) {
    AbsorbFlat(*metrics, &record);
  }
  // A flat scenario (or a raw metrics dump) carries the keys directly.
  AbsorbFlat(scenario, &record);
  return record;
}

std::vector<ProfileRecord> ExtractRecords(const JsonValue& doc) {
  std::vector<ProfileRecord> records;
  if (doc.is_array()) {
    for (const JsonValue& scenario : doc.items()) {
      records.push_back(RecordFromScenario(scenario));
    }
    return records;
  }
  if (doc.is_object() && doc.Find("codb_bench_set") != nullptr) {
    if (const JsonValue* benches = doc.Find("benches")) {
      for (const auto& [bench, scenarios] : benches->members()) {
        if (!scenarios.is_array()) continue;
        for (const JsonValue& scenario : scenarios.items()) {
          ProfileRecord record = RecordFromScenario(scenario);
          record.name = bench + "/" + record.name;
          records.push_back(std::move(record));
        }
      }
    }
    return records;
  }
  records.push_back(RecordFromScenario(doc));
  return records;
}

// Rebuilds a MetricsSnapshot from the record's cost counters so the text
// rendering reuses RenderCostBreakdown — the same table the super-peer's
// final report prints.
MetricsSnapshot CostSnapshot(const ProfileRecord& record) {
  MetricsSnapshot snapshot;
  for (const auto& [key, value] : record.cost) {
    if (!value.is_number()) continue;
    snapshot.SetCounter(key, static_cast<uint64_t>(value.AsNumber()));
  }
  return snapshot;
}

void PrintHistogramLine(const std::string& label, const JsonValue& hist) {
  double count = hist.GetNumber("count");
  if (count <= 0) {
    std::printf("    %-28s (empty)\n", label.c_str());
    return;
  }
  std::printf("    %-28s count %10.0f  mean %8.1f  p50 %8.0f  p99 %8.0f\n",
              label.c_str(), count, hist.GetNumber("mean"),
              hist.GetNumber("p50"), hist.GetNumber("p99"));
}

void PrintQueueSection(const ProfileRecord& record, const char* title,
                       const char* prefix) {
  bool printed_title = false;
  for (const auto& [key, value] : record.queue) {
    if (!StartsWith(key, prefix) || !value.is_object()) continue;
    if (!printed_title) {
      std::printf("  %s (us):\n", title);
      printed_title = true;
    }
    PrintHistogramLine(key.substr(std::strlen(prefix)), value);
  }
}

void PrintText(const ProfileRecord& record) {
  std::printf("profile: %s\n", record.name.c_str());

  std::string cost = RenderCostBreakdown(CostSnapshot(record), "    ");
  if (!cost.empty()) {
    std::printf("  wire cost (bytes by class):\n%s", cost.c_str());
  }

  PrintQueueSection(record, "queue sojourn", "queue.sojourn_us.");
  PrintQueueSection(record, "handler service time", "queue.service_us.");
  if (const auto it = record.queue.find("queue.timer_lag_us");
      it != record.queue.end() && it->second.is_object()) {
    std::printf("  timer lag (us):\n");
    PrintHistogramLine("timer_lag", it->second);
  }

  double depth_fg = -1, depth_maint = -1;
  if (auto it = record.queue.find("queue.depth.fg");
      it != record.queue.end() && it->second.is_number()) {
    depth_fg = it->second.AsNumber();
  }
  if (auto it = record.queue.find("queue.depth.maint");
      it != record.queue.end() && it->second.is_number()) {
    depth_maint = it->second.AsNumber();
  }
  if (depth_fg >= 0 || depth_maint >= 0) {
    std::printf("  queue depth watermarks: foreground %.0f, maintenance "
                "%.0f\n",
                depth_fg < 0 ? 0 : depth_fg,
                depth_maint < 0 ? 0 : depth_maint);
  }
  std::printf("\n");
}

JsonValue ToJsonRecord(const ProfileRecord& record) {
  JsonValue out = JsonValue::Object();
  out.Set("scenario", JsonValue::Str(record.name));
  JsonValue cost = JsonValue::Object();
  for (const auto& [key, value] : record.cost) cost.Set(key, value);
  out.Set("cost", std::move(cost));
  JsonValue queue = JsonValue::Object();
  for (const auto& [key, value] : record.queue) queue.Set(key, value);
  out.Set("queue", std::move(queue));
  return out;
}

int Main(int argc, char** argv) {
  std::string path;
  std::string scenario_filter;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_mode = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: codb_profile <bench.json|-> [--scenario <substr>] "
                 "[--json]\n");
    return 2;
  }

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  Result<JsonValue> doc = ParseJson(text);
  if (!doc.ok()) {
    std::fprintf(stderr, "bad json: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  std::vector<ProfileRecord> selected;
  for (ProfileRecord& record : ExtractRecords(doc.value())) {
    if (!record.has_data()) continue;
    if (!scenario_filter.empty() &&
        record.name.find(scenario_filter) == std::string::npos) {
      continue;
    }
    selected.push_back(std::move(record));
    // Without a filter only the first profiled scenario prints, so the
    // common case (one capture, one deployment of interest) stays terse.
    if (scenario_filter.empty()) break;
  }
  if (selected.empty()) {
    std::string matching = scenario_filter.empty()
                               ? ""
                               : " matching '" + scenario_filter + "'";
    std::fprintf(stderr, "no scenarios with cost/profile data%s\n",
                 matching.c_str());
    return 1;
  }

  if (json_mode) {
    JsonValue out = JsonValue::Array();
    for (const ProfileRecord& record : selected) {
      out.Push(ToJsonRecord(record));
    }
    std::printf("%s\n", out.Dump().c_str());
  } else {
    for (const ProfileRecord& record : selected) PrintText(record);
  }
  return 0;
}

}  // namespace
}  // namespace codb

int main(int argc, char** argv) { return codb::Main(argc, argv); }
