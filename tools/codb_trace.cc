// codb_trace — inspect a trace captured by the obs flow tracer.
//
// Reads either export format (Chrome trace_event JSON with a
// "traceEvents" array, or the JSONL stream — detected from the first
// non-space byte) and prints, per flow, the span tree with virtual-time
// offsets and durations, followed by the flow's critical path: the
// parent chain ending at the span that finishes last, which is the
// sequence of hops and handler executions that bounded the flow's
// completion time.
//
// With --profile <metrics.json>, critical-path spans are annotated with
// the queue-sojourn p50/p99 of their cost class, read from a queue
// profiler snapshot (bench `--json` output, a codb_profile dump, or a raw
// MetricsSnapshot::ToJson()) — so the hop a flow stalls on can be compared
// against what the network queues were doing at the time.
//
// Usage: codb_trace <trace.json|trace.jsonl|-> [--flow <substring>]
//                   [--profile <metrics.json>]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "net/message.h"
#include "obs/cost_ledger.h"
#include "obs/json.h"

namespace codb {
namespace {

struct SpanRow {
  uint64_t id = 0;
  uint64_t parent = 0;
  uint64_t node = 0;
  std::string name;
  std::string flow;
  // Wire type of a net.deliver span ("UPDATE_DATA", ...), empty for
  // handler spans; drives the --profile cost-class annotation.
  std::string msg_type;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  bool instant = false;
};

// queue-sojourn p50/p99 per cost-class name, loaded from --profile.
struct SojournStats {
  double p50 = 0;
  double p99 = 0;
};
using ProfileMap = std::map<std::string, SojournStats>;

// Reads one parsed event object (either format uses the same member
// names once Chrome's "args" is flattened) into a SpanRow.
SpanRow RowFromChromeEvent(const JsonValue& event) {
  SpanRow row;
  row.name = event.GetString("name");
  row.node = static_cast<uint64_t>(event.GetNumber("pid"));
  row.ts_us = static_cast<int64_t>(event.GetNumber("ts"));
  row.dur_us = static_cast<int64_t>(event.GetNumber("dur"));
  row.instant = event.GetString("ph") == "i";
  if (const JsonValue* args = event.Find("args")) {
    row.id = static_cast<uint64_t>(args->GetNumber("span"));
    row.parent = static_cast<uint64_t>(args->GetNumber("parent"));
    row.flow = args->GetString("flow");
    row.msg_type = args->GetString("type");
  }
  return row;
}

struct Trace {
  std::vector<SpanRow> spans;
  std::map<uint64_t, std::string> node_names;
};

bool LoadChrome(const JsonValue& doc, Trace* trace) {
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return false;
  for (const JsonValue& event : events->items()) {
    std::string ph = event.GetString("ph");
    if (ph == "M" && event.GetString("name") == "process_name") {
      if (const JsonValue* args = event.Find("args")) {
        trace->node_names[static_cast<uint64_t>(
            event.GetNumber("pid"))] = args->GetString("name");
      }
      continue;
    }
    if (ph != "X" && ph != "i") continue;  // skip flow arrows s/f
    trace->spans.push_back(RowFromChromeEvent(event));
  }
  return true;
}

bool LoadJsonl(const std::string& text, Trace* trace) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad jsonl line: %s\n",
                   parsed.status().ToString().c_str());
      return false;
    }
    const JsonValue& event = parsed.value();
    std::string type = event.GetString("type");
    if (type != "span" && type != "instant") continue;
    SpanRow row;
    row.id = static_cast<uint64_t>(event.GetNumber("id"));
    row.parent = static_cast<uint64_t>(event.GetNumber("parent"));
    row.node = static_cast<uint64_t>(event.GetNumber("node"));
    row.name = event.GetString("name");
    row.flow = event.GetString("flow");
    if (const JsonValue* args = event.Find("args")) {
      row.msg_type = args->GetString("type");
    }
    row.ts_us = static_cast<int64_t>(event.GetNumber("ts_us"));
    row.dur_us = static_cast<int64_t>(event.GetNumber("dur_us"));
    row.instant = type == "instant";
    trace->spans.push_back(row);
  }
  return true;
}

std::string NodeLabel(const Trace& trace, uint64_t node) {
  auto it = trace.node_names.find(node);
  if (it != trace.node_names.end()) return it->second;
  return "node" + std::to_string(node);
}

// Maps a wire-type name back to its cost-class label through the same
// classifier the ledger uses, so the annotation cannot drift from the
// accounting.
std::string ClassOfTypeName(const std::string& type_name) {
  static const MessageType kAllTypes[] = {
      MessageType::kAdvertisement,  MessageType::kConfigBroadcast,
      MessageType::kUpdateRequest,  MessageType::kUpdateData,
      MessageType::kLinkClosed,     MessageType::kUpdateAck,
      MessageType::kUpdateComplete, MessageType::kQueryRequest,
      MessageType::kQueryResult,    MessageType::kQueryDone,
      MessageType::kStatsRequest,   MessageType::kStatsReport,
      MessageType::kDeliveryAck,    MessageType::kHeartbeat,
      MessageType::kHeartbeatAck,   MessageType::kFederationReport,
      MessageType::kConfigSlice,    MessageType::kConfigDelta,
      MessageType::kConfigFetch,    MessageType::kConfigAck,
  };
  for (MessageType type : kAllTypes) {
    if (type_name == MessageTypeName(type)) {
      return CostClassName(ClassifyMessage(type, /*retransmit=*/false));
    }
  }
  return "";
}

// The cost class a span's queue behaviour is looked up under: net.deliver
// spans carry their wire type; update/query handler spans ride the data
// class.
std::string SpanClass(const SpanRow& span) {
  if (!span.msg_type.empty()) return ClassOfTypeName(span.msg_type);
  if (span.name.rfind("update.", 0) == 0 ||
      span.name.rfind("query.", 0) == 0) {
    return "data";
  }
  return "";
}

std::string ProfileAnnotation(const SpanRow& span,
                              const ProfileMap& profile) {
  if (profile.empty()) return "";
  std::string cls = SpanClass(span);
  if (cls.empty()) return "";
  auto it = profile.find(cls);
  if (it == profile.end()) return "";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  [%s queue p50 %.0f p99 %.0f us]",
                cls.c_str(), it->second.p50, it->second.p99);
  return buf;
}

// Walks the profile document (any shape codb_profile accepts — bench
// scenario arrays, combined captures, raw metrics dumps) and pulls every
// queue.sojourn_us.<class> histogram's p50/p99.
void CollectSojourns(const JsonValue& value, ProfileMap* out) {
  if (value.is_array()) {
    for (const JsonValue& item : value.items()) CollectSojourns(item, out);
    return;
  }
  if (!value.is_object()) return;
  constexpr char kPrefix[] = "queue.sojourn_us.";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  for (const auto& [key, member] : value.members()) {
    if (member.is_object() && key.rfind(kPrefix, 0) == 0) {
      SojournStats stats;
      stats.p50 = member.GetNumber("p50");
      stats.p99 = member.GetNumber("p99");
      (*out)[key.substr(kPrefixLen)] = stats;
    } else {
      CollectSojourns(member, out);
    }
  }
}

// One flow's spans, indexed for tree printing.
struct FlowView {
  std::vector<const SpanRow*> spans;           // sorted by (ts, id)
  std::map<uint64_t, const SpanRow*> by_id;
  std::map<uint64_t, std::vector<const SpanRow*>> children;
};

void PrintTree(const Trace& trace, const FlowView& view,
               const SpanRow& span, int depth, int64_t origin) {
  std::printf("  %*s%-24s %-8s +%-8lld %8lld us%s\n", depth * 2, "",
              span.name.c_str(), NodeLabel(trace, span.node).c_str(),
              static_cast<long long>(span.ts_us - origin),
              static_cast<long long>(span.dur_us),
              span.instant ? "  (instant)" : "");
  auto kids = view.children.find(span.id);
  if (kids == view.children.end()) return;
  for (const SpanRow* child : kids->second) {
    PrintTree(trace, view, *child, depth + 1, origin);
  }
}

void PrintFlow(const Trace& trace, const std::string& flow,
               const std::vector<const SpanRow*>& spans,
               const ProfileMap& profile) {
  // The flow's handler spans are stitched together by untagged transport
  // spans (net.deliver carries no flow — the network layer never parses
  // payloads). Pull every ancestor of a tagged span into the view so the
  // tree shows the actual causal chain, rooted at the initiating span.
  std::map<uint64_t, const SpanRow*> all_by_id;
  for (const SpanRow& span : trace.spans) all_by_id[span.id] = &span;
  std::map<uint64_t, const SpanRow*> selected;
  for (const SpanRow* span : spans) selected[span->id] = span;
  for (const SpanRow* span : spans) {
    uint64_t parent = span->parent;
    size_t hops = 0;
    while (parent != 0 && selected.count(parent) == 0 &&
           hops++ < trace.spans.size()) {
      auto it = all_by_id.find(parent);
      if (it == all_by_id.end()) break;
      selected[parent] = it->second;
      parent = it->second->parent;
    }
  }

  FlowView view;
  for (const auto& [id, span] : selected) view.spans.push_back(span);
  std::sort(view.spans.begin(), view.spans.end(),
            [](const SpanRow* a, const SpanRow* b) {
              if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
              return a->id < b->id;
            });
  for (const SpanRow* span : view.spans) view.by_id[span->id] = span;
  for (const SpanRow* span : view.spans) {
    if (span->parent != 0 && view.by_id.count(span->parent) > 0) {
      view.children[span->parent].push_back(span);
    }
  }

  int64_t origin = view.spans.front()->ts_us;
  int64_t end = origin;
  const SpanRow* last = view.spans.front();
  for (const SpanRow* span : view.spans) {
    int64_t finish = span->ts_us + span->dur_us;
    if (finish > end) {
      end = finish;
      last = span;
    }
  }

  std::printf("flow %s: %zu spans (%zu linking), %lld us\n",
              flow.empty() ? "(untagged)" : flow.c_str(), spans.size(),
              view.spans.size() - spans.size(),
              static_cast<long long>(end - origin));

  // The tree: every span whose parent is absent from this flow is a root
  // (cross-flow or untraced parents truncate cleanly).
  for (const SpanRow* span : view.spans) {
    if (span->parent == 0 || view.by_id.count(span->parent) == 0) {
      PrintTree(trace, view, *span, 0, origin);
    }
  }

  // Critical path: parent chain of the last-finishing span.
  std::vector<const SpanRow*> path;
  for (const SpanRow* span = last; span != nullptr;) {
    path.push_back(span);
    auto it = view.by_id.find(span->parent);
    span = it != view.by_id.end() ? it->second : nullptr;
    if (path.size() > view.spans.size()) break;  // defensive: cycles
  }
  std::reverse(path.begin(), path.end());
  std::printf("  critical path (%zu spans):\n", path.size());
  for (const SpanRow* span : path) {
    std::printf("    %-24s %-8s +%-8lld %8lld us%s\n", span->name.c_str(),
                NodeLabel(trace, span->node).c_str(),
                static_cast<long long>(span->ts_us - origin),
                static_cast<long long>(span->dur_us),
                ProfileAnnotation(*span, profile).c_str());
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  std::string path;
  std::string flow_filter;
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--flow") == 0 && i + 1 < argc) {
      flow_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: codb_trace <trace.json|trace.jsonl|-> "
                 "[--flow <substr>] [--profile <metrics.json>]\n");
    return 2;
  }

  ProfileMap profile;
  if (!profile_path.empty()) {
    std::ifstream in(profile_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", profile_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<JsonValue> doc = ParseJson(buffer.str());
    if (!doc.ok()) {
      std::fprintf(stderr, "bad profile json: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    CollectSojourns(doc.value(), &profile);
    if (profile.empty()) {
      std::fprintf(stderr,
                   "warning: %s carries no queue.sojourn_us.* histograms\n",
                   profile_path.c_str());
    }
  }

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  Trace trace;
  size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{' &&
      text.find("\"traceEvents\"") != std::string::npos) {
    Result<JsonValue> doc = ParseJson(text);
    if (!doc.ok()) {
      std::fprintf(stderr, "bad trace json: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    if (!LoadChrome(doc.value(), &trace)) {
      std::fprintf(stderr, "no traceEvents array in %s\n", path.c_str());
      return 1;
    }
  } else if (!LoadJsonl(text, &trace)) {
    return 1;
  }

  // Group by flow; untagged spans come last.
  std::map<std::string, std::vector<const SpanRow*>> by_flow;
  for (const SpanRow& span : trace.spans) by_flow[span.flow].push_back(&span);

  size_t printed = 0;
  for (const auto& [flow, spans] : by_flow) {
    if (flow.empty() && by_flow.size() > 1 && flow_filter.empty()) {
      continue;  // skip untagged noise unless it is all there is
    }
    if (!flow_filter.empty() &&
        flow.find(flow_filter) == std::string::npos) {
      continue;
    }
    PrintFlow(trace, flow, spans, profile);
    ++printed;
  }
  if (printed == 0) {
    std::fprintf(stderr, "no matching flows (%zu spans total)\n",
                 trace.spans.size());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace codb

int main(int argc, char** argv) { return codb::Main(argc, argv); }
