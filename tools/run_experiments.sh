#!/bin/sh
# Regenerates the experiment outputs recorded in EXPERIMENTS.md:
#   test_output.txt  — the full ctest run
#   bench_output.txt — every experiment harness, in order
# Usage: tools/run_experiments.sh [build-dir]
set -e
BUILD="${1:-build}"
ROOT="$(dirname "$0")/.."

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$ROOT/bench_output.txt"
  "$b" 2>&1 | tee -a "$ROOT/bench_output.txt"
  echo | tee -a "$ROOT/bench_output.txt"
done
