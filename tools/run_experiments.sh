#!/bin/sh
# Regenerates the experiment outputs recorded in EXPERIMENTS.md:
#   test_output.txt   — the full ctest run
#   bench_output.txt  — every experiment harness, in order (human tables)
#   bench/BENCH_<name>.json — the same scenarios, machine-readable (--json)
# Usage: tools/run_experiments.sh [build-dir]
set -e
BUILD="${1:-build}"
ROOT="$(dirname "$0")/.."

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "===== $name =====" | tee -a "$ROOT/bench_output.txt"
  "$b" 2>&1 | tee -a "$ROOT/bench_output.txt"
  echo | tee -a "$ROOT/bench_output.txt"
  # Same scenarios again, as one JSON document per harness.
  "$b" --json > "$ROOT/bench/BENCH_${name#bench_}.json"
done
