// Experiment E2 — batch update vs query-time answering (paper, sections
// 1 and 3: after a global update, "subsequent local queries [are] answered
// locally within a node, without fetching data from other nodes at query
// time").
//
// For chains of growing length we measure
//   * the virtual latency of one distributed (cold) query,
//   * the cost of a one-time global update,
//   * the latency of a local query afterwards (zero network),
// and the break-even query count: how many queries amortize the update.
//
// Expected shape: cold-query latency grows with path length; local-query
// latency is flat and near zero; the crossover favours the batch update
// after a handful of queries.

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"
#include "util/stopwatch.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print(
      "E2: query-time answering vs global update + local query (chains)\n");
  Print("%5s | %12s %12s | %12s %12s | %9s\n", "nodes",
              "coldQ virt", "coldQ msgs", "update virt", "localQ wall",
              "x10");

  for (int n : {2, 4, 8, 16}) {
    WorkloadOptions options;
    options.nodes = n;
    options.tuples_per_node = 50;
    GeneratedNetwork generated = MakeChain(options);

    ConjunctiveQuery query =
        ParseQuery("q(K, V) :- d(K, V).").value();

    // -- cold: distributed query at query time ---------------------------
    int64_t cold_virtual = 0;
    uint64_t cold_messages = 0;
    {
      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      uint64_t base = bed->network().stats().total_messages();
      int64_t start = bed->network().now_us();
      FlowId id = bed->node("n0")->StartQuery(query).value();
      bed->network().Run();
      (void)id;
      cold_virtual = bed->network().now_us() - start;
      cold_messages = bed->network().stats().total_messages() - base;
    }

    // -- warm: global update once, then local queries --------------------
    int64_t update_virtual = 0;
    double update_wall_ms = 0;
    double local_wall_us = 0;
    {
      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      int64_t start = bed->network().now_us();
      Stopwatch update_wall;
      bed->node("n0")->StartGlobalUpdate().value();
      bed->network().Run();
      update_wall_ms = update_wall.ElapsedSeconds() * 1000.0;
      update_virtual = bed->network().now_us() - start;

      Stopwatch wall;
      constexpr int kRepetitions = 100;
      for (int i = 0; i < kRepetitions; ++i) {
        bed->node("n0")->LocalQuery(query).value();
      }
      local_wall_us =
          static_cast<double>(wall.ElapsedMicros()) / kRepetitions;
    }

    // Ten queries each way: cold pays the fetch every time, warm pays the
    // update once and answers locally afterwards.
    int64_t ten_cold = 10 * cold_virtual;
    int64_t ten_warm = update_virtual;  // + ~0 network for local queries
    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario", JsonValue::Str("chain/" + std::to_string(n)));
      obj.Set("cold_query_virtual_us", JsonValue::Int(cold_virtual));
      obj.Set("cold_query_messages", JsonValue::Uint(cold_messages));
      obj.Set("update_virtual_us", JsonValue::Int(update_virtual));
      obj.Set("update_wall_ms", JsonValue::Number(update_wall_ms));
      obj.Set("local_query_wall_us", JsonValue::Number(local_wall_us));
      obj.Set("amortization_x10",
              JsonValue::Number(ten_warm > 0
                                    ? static_cast<double>(ten_cold) /
                                          static_cast<double>(ten_warm)
                                    : 0.0));
      RecordJson(std::move(obj));
    }
    Print("%5d | %10lldus %10llu | %10lldus %10.1fus | %8.1fx\n", n,
                static_cast<long long>(cold_virtual),
                static_cast<unsigned long long>(cold_messages),
                static_cast<long long>(update_virtual), local_wall_us,
                ten_warm > 0 ? static_cast<double>(ten_cold) /
                                   static_cast<double>(ten_warm)
                             : 0.0);
  }
  Print(
      "\nx10 = (10 cold queries) / (one update + 10 local queries), in\n"
      "virtual network time: one distributed fetch costs about as much as\n"
      "the whole batch update, so every repeated query amortizes it.\n");

  // -- heavy scenarios: the evaluator-bound update ------------------------
  // Join-copy chains write both body relations of a join rule at every
  // importer, so each delta batch re-probes relations that were just
  // inserted into — the insert→probe fixpoint pattern whose cost is pure
  // engine wall time (virtual network time barely moves). These are the
  // scenarios the perf-smoke comparison watches.
  Print("\nheavy (join-copy chains): engine-bound update wall time\n");
  Print("%16s | %12s %12s | %12s\n", "scenario", "update wall",
        "update virt", "tuples");
  struct Heavy {
    int nodes;
    int tuples;
  };
  for (Heavy heavy : {Heavy{8, 200}, Heavy{12, 400}, Heavy{16, 800}}) {
    WorkloadOptions options;
    options.nodes = heavy.nodes;
    options.tuples_per_node = heavy.tuples;
    options.style = RuleStyle::kJoinCopy;
    GeneratedNetwork generated = MakeChain(options);
    UpdateMetrics metrics = RunUpdate(generated, "n0");
    std::string scenario = "joincopy/" + std::to_string(heavy.nodes) + "x" +
                           std::to_string(heavy.tuples);
    if (JsonMode()) {
      JsonValue obj = ToJson(metrics);
      obj.Set("scenario", JsonValue::Str(scenario));
      RecordJson(std::move(obj));
    }
    Print("%16s | %10.1fms %10lldus | %12llu\n", scenario.c_str(),
          metrics.wall_ms, static_cast<long long>(metrics.virtual_us),
          static_cast<unsigned long long>(metrics.tuples_moved));
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
