// Experiment E2 — batch update vs query-time answering (paper, sections
// 1 and 3: after a global update, "subsequent local queries [are] answered
// locally within a node, without fetching data from other nodes at query
// time").
//
// For chains of growing length we measure
//   * the virtual latency of one distributed (cold) query,
//   * the cost of a one-time global update,
//   * the latency of a local query afterwards (zero network),
// and the break-even query count: how many queries amortize the update.
//
// Expected shape: cold-query latency grows with path length; local-query
// latency is flat and near zero; the crossover favours the batch update
// after a handful of queries.

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"
#include "util/stopwatch.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print(
      "E2: query-time answering vs global update + local query (chains)\n");
  Print("%5s | %12s %12s | %12s %12s | %9s\n", "nodes",
              "coldQ virt", "coldQ msgs", "update virt", "localQ wall",
              "x10");

  for (int n : {2, 4, 8, 16}) {
    WorkloadOptions options;
    options.nodes = n;
    options.tuples_per_node = 50;
    GeneratedNetwork generated = MakeChain(options);

    ConjunctiveQuery query =
        ParseQuery("q(K, V) :- d(K, V).").value();

    // -- cold: distributed query at query time ---------------------------
    int64_t cold_virtual = 0;
    uint64_t cold_messages = 0;
    {
      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      uint64_t base = bed->network().stats().total_messages();
      int64_t start = bed->network().now_us();
      FlowId id = bed->node("n0")->StartQuery(query).value();
      bed->network().Run();
      (void)id;
      cold_virtual = bed->network().now_us() - start;
      cold_messages = bed->network().stats().total_messages() - base;
    }

    // -- warm: global update once, then local queries --------------------
    int64_t update_virtual = 0;
    double update_wall_ms = 0;
    double local_wall_us = 0;
    {
      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      int64_t start = bed->network().now_us();
      Stopwatch update_wall;
      bed->node("n0")->StartGlobalUpdate().value();
      bed->network().Run();
      update_wall_ms = update_wall.ElapsedSeconds() * 1000.0;
      update_virtual = bed->network().now_us() - start;

      Stopwatch wall;
      constexpr int kRepetitions = 100;
      for (int i = 0; i < kRepetitions; ++i) {
        bed->node("n0")->LocalQuery(query).value();
      }
      local_wall_us =
          static_cast<double>(wall.ElapsedMicros()) / kRepetitions;
    }

    // Ten queries each way: cold pays the fetch every time, warm pays the
    // update once and answers locally afterwards.
    int64_t ten_cold = 10 * cold_virtual;
    int64_t ten_warm = update_virtual;  // + ~0 network for local queries
    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario", JsonValue::Str("chain/" + std::to_string(n)));
      obj.Set("cold_query_virtual_us", JsonValue::Int(cold_virtual));
      obj.Set("cold_query_messages", JsonValue::Uint(cold_messages));
      obj.Set("update_virtual_us", JsonValue::Int(update_virtual));
      obj.Set("update_wall_ms", JsonValue::Number(update_wall_ms));
      obj.Set("local_query_wall_us", JsonValue::Number(local_wall_us));
      obj.Set("amortization_x10",
              JsonValue::Number(ten_warm > 0
                                    ? static_cast<double>(ten_cold) /
                                          static_cast<double>(ten_warm)
                                    : 0.0));
      RecordJson(std::move(obj));
    }
    Print("%5d | %10lldus %10llu | %10lldus %10.1fus | %8.1fx\n", n,
                static_cast<long long>(cold_virtual),
                static_cast<unsigned long long>(cold_messages),
                static_cast<long long>(update_virtual), local_wall_us,
                ten_warm > 0 ? static_cast<double>(ten_cold) /
                                   static_cast<double>(ten_warm)
                             : 0.0);
  }
  Print(
      "\nx10 = (10 cold queries) / (one update + 10 local queries), in\n"
      "virtual network time: one distributed fetch costs about as much as\n"
      "the whole batch update, so every repeated query amortizes it.\n");

  // -- heavy scenarios: the evaluator-bound update ------------------------
  // Join-copy chains write both body relations of a join rule at every
  // importer, so each delta batch re-probes relations that were just
  // inserted into — the insert→probe fixpoint pattern whose cost is pure
  // engine wall time (virtual network time barely moves). These are the
  // scenarios the perf-smoke comparison watches.
  Print("\nheavy (join-copy chains): engine-bound update wall time\n");
  Print("%16s | %12s %12s | %12s\n", "scenario", "update wall",
        "update virt", "tuples");
  struct Heavy {
    int nodes;
    int tuples;
  };
  for (Heavy heavy : {Heavy{8, 200}, Heavy{12, 400}, Heavy{16, 800}}) {
    WorkloadOptions options;
    options.nodes = heavy.nodes;
    options.tuples_per_node = heavy.tuples;
    options.style = RuleStyle::kJoinCopy;
    GeneratedNetwork generated = MakeChain(options);
    UpdateMetrics metrics = RunUpdate(generated, "n0");
    std::string scenario = "joincopy/" + std::to_string(heavy.nodes) + "x" +
                           std::to_string(heavy.tuples);
    if (JsonMode()) {
      JsonValue obj = ToJson(metrics);
      obj.Set("scenario", JsonValue::Str(scenario));
      RecordJson(std::move(obj));
    }
    Print("%16s | %10.1fms %10lldus | %12llu\n", scenario.c_str(),
          metrics.wall_ms, static_cast<long long>(metrics.virtual_us),
          static_cast<unsigned long long>(metrics.tuples_moved));
  }

  // -- E17: semi-naive incremental update, delta-size sweep ---------------
  // A chain whose stores total ~100k rows, synchronized once; then one
  // incremental update per delta size. The work metric is
  // update.eval_rows, charged with full body-relation scans on the full
  // path and with delta row counts on the semi-naive path — so the ratio
  // is the paper-level claim "update work proportional to the delta, not
  // the database". The binary gates itself: if the 10-row delta does not
  // beat the full recompute by 10x in eval rows, exit non-zero.
  Print("\nE17: incremental (semi-naive) update vs full recompute"
        " (chain 5x20000)\n");
  Print("%8s | %12s %12s | %12s %12s | %8s\n", "delta", "incr wall",
        "incr virt", "incr rows", "full rows", "ratio");
  constexpr int kIncrNodes = 5;
  constexpr int kIncrTuples = 20000;  // ~100k rows network-wide
  uint64_t gate_full = 0;
  uint64_t gate_incr = 0;
  for (int delta_size : {1, 10, 100, 10000}) {
    WorkloadOptions options;
    options.nodes = kIncrNodes;
    options.tuples_per_node = kIncrTuples;
    options.style = RuleStyle::kCopy;
    GeneratedNetwork generated = MakeChain(options);
    std::unique_ptr<Testbed> bed =
        std::move(Testbed::Create(generated)).value();
    const std::string initiator = NodeName(kIncrNodes - 1);
    auto eval_rows = [&bed] {
      uint64_t total = 0;
      for (const auto& node : bed->nodes()) {
        total += node->statistics()
                     .metrics()
                     .GetCounter("update.eval_rows")
                     ->value();
      }
      return total;
    };

    // The synchronizing full update IS the full-recompute cost: every
    // incoming link scans its body relations end to end.
    bed->node(initiator)->StartGlobalUpdate().value();
    bed->network().Run();
    const uint64_t full_rows = eval_rows();

    // Fresh keys clear of every node's seeded range.
    std::vector<Tuple> delta;
    delta.reserve(static_cast<size_t>(delta_size));
    for (int64_t j = 0; j < delta_size; ++j) {
      delta.push_back(
          Tuple{Value::Int(10'000'000 + j), Value::Int(j % 100)});
    }
    if (!bed->node(initiator)->InsertLocal("d", delta).ok()) {
      std::fprintf(stderr, "E17: InsertLocal failed\n");
      std::exit(1);
    }

    int64_t start_virtual = bed->network().now_us();
    Stopwatch wall;
    bed->node(initiator)->StartIncrementalUpdate().value();
    bed->network().Run();
    double incr_wall_ms = wall.ElapsedSeconds() * 1000.0;
    int64_t incr_virtual = bed->network().now_us() - start_virtual;
    const uint64_t incr_rows = eval_rows() - full_rows;
    const double ratio =
        incr_rows > 0 ? static_cast<double>(full_rows) /
                            static_cast<double>(incr_rows)
                      : 0.0;
    if (delta_size == 10) {
      gate_full = full_rows;
      gate_incr = incr_rows;
    }

    std::string scenario = "incremental/delta" + std::to_string(delta_size);
    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario", JsonValue::Str(scenario));
      obj.Set("update_wall_ms", JsonValue::Number(incr_wall_ms));
      obj.Set("virtual_us", JsonValue::Int(incr_virtual));
      obj.Set("incr_eval_rows", JsonValue::Uint(incr_rows));
      obj.Set("full_eval_rows", JsonValue::Uint(full_rows));
      obj.Set("delta_rows", JsonValue::Uint(delta.size()));
      obj.Set("eval_rows_ratio", JsonValue::Number(ratio));
      RecordJson(std::move(obj));
    }
    Print("%8d | %10.1fms %10lldus | %12llu %12llu | %7.0fx\n", delta_size,
          incr_wall_ms, static_cast<long long>(incr_virtual),
          static_cast<unsigned long long>(incr_rows),
          static_cast<unsigned long long>(full_rows), ratio);
  }
  Print("\nincr rows = update.eval_rows charged to the incremental run;\n"
        "semi-naive work tracks the delta while the full recompute scans\n"
        "the whole store.\n");
  if (gate_incr == 0 || gate_full < 10 * gate_incr) {
    std::fprintf(stderr,
                 "E17 GATE FAILED: 10-row delta eval rows %llu vs full "
                 "recompute %llu (need >= 10x)\n",
                 static_cast<unsigned long long>(gate_incr),
                 static_cast<unsigned long long>(gate_full));
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
