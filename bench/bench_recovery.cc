// Experiment E12 — durability cost and recovery speed.
//
// Two tables: (1) checkpoint write/load throughput as the store grows,
// (2) restart recovery rate as a function of how much WAL tail must be
// replayed past the last checkpoint (the knob StorageOptions::
// checkpoint_every trades against runtime overhead).
//
// Expected shape: checkpoint throughput is flat (sequential I/O, CRC-
// bound); recovery time grows linearly with the replayed tail, which is
// why periodic checkpoints bound restart latency.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "relation/database.h"
#include "storage/checkpoint.h"
#include "storage/fs_util.h"
#include "storage/recovery.h"
#include "storage/wal_file.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace codb {
namespace bench {
namespace {

RelationSchema DSchema() {
  return RelationSchema("d", {{"k", ValueType::kInt},
                              {"v", ValueType::kInt}});
}

std::string ScratchDir(const std::string& tag) {
  std::string dir = StrFormat("/tmp/codb_bench_recovery_%d/%s",
                              static_cast<int>(getpid()), tag.c_str());
  if (!EnsureDirectory(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    std::exit(1);
  }
  return dir;
}

void CleanDir(const std::string& dir) {
  Result<std::vector<std::string>> names = ListDirectory(dir);
  if (!names.ok()) return;
  for (const std::string& name : names.value()) {
    RemoveFile(dir + "/" + name);
  }
}

void BenchCheckpoint() {
  Print("E12a: checkpoint write/load throughput\n");
  Print("%8s | %10s %10s %10s %10s\n", "tuples", "bytes",
              "write ms", "MB/s", "load ms");

  for (int tuples : {1'000, 10'000, 50'000, 200'000}) {
    std::string dir = ScratchDir(StrFormat("ckpt_%d", tuples));
    CleanDir(dir);

    CheckpointData data;
    data.wal_lsn = static_cast<uint64_t>(tuples);
    auto& rows = data.snapshot["d"];
    rows.reserve(tuples);
    for (int i = 0; i < tuples; ++i) {
      rows.push_back(Tuple{Value::Int(i), Value::Int(i * 7)});
    }

    StorageOptions options;
    options.directory = dir;
    CheckpointWriter writer(options);
    Stopwatch write_watch;
    if (!writer.Write(data).ok()) {
      std::fprintf(stderr, "checkpoint write failed\n");
      std::exit(1);
    }
    double write_ms = write_watch.ElapsedSeconds() * 1000.0;

    Stopwatch load_watch;
    Result<CheckpointWriter::LoadResult> loaded =
        CheckpointWriter::LoadNewest(dir);
    double load_ms = load_watch.ElapsedSeconds() * 1000.0;
    if (!loaded.ok() ||
        loaded.value().data.snapshot.at("d").size() != rows.size()) {
      std::fprintf(stderr, "checkpoint load failed\n");
      std::exit(1);
    }

    double mb = static_cast<double>(writer.bytes_written()) / 1e6;
    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario",
              JsonValue::Str("checkpoint/" + std::to_string(tuples)));
      obj.Set("bytes", JsonValue::Uint(writer.bytes_written()));
      obj.Set("write_ms", JsonValue::Number(write_ms));
      obj.Set("load_ms", JsonValue::Number(load_ms));
      RecordJson(std::move(obj));
    }
    Print("%8d | %10llu %10.2f %10.1f %10.2f\n", tuples,
                static_cast<unsigned long long>(writer.bytes_written()),
                write_ms, write_ms > 0 ? mb / (write_ms / 1000.0) : 0.0,
                load_ms);
  }
  Print("\n");
}

void BenchWalReplay() {
  Print("E12b: restart recovery vs WAL tail length\n");
  Print("%8s | %10s %10s %12s %10s\n", "records", "append ms",
              "recover ms", "tuples/s", "segments");

  for (int records : {1'000, 10'000, 50'000, 200'000}) {
    std::string dir = ScratchDir(StrFormat("wal_%d", records));
    CleanDir(dir);

    StorageOptions options;
    options.directory = dir;
    options.segment_bytes = 1 << 20;
    options.flush_each_append = false;  // batch flush, like a busy node

    uint64_t segments = 0;
    Stopwatch append_watch;
    {
      Result<std::unique_ptr<FileWal>> wal = FileWal::Open(options, 1);
      if (!wal.ok()) {
        std::fprintf(stderr, "wal open failed\n");
        std::exit(1);
      }
      for (int i = 0; i < records; ++i) {
        if (!wal.value()
                 ->Append("d", Tuple{Value::Int(i), Value::Int(i * 7)})
                 .ok()) {
          std::fprintf(stderr, "wal append failed\n");
          std::exit(1);
        }
      }
      wal.value()->Flush();
      segments = wal.value()->segments_created();
    }
    double append_ms = append_watch.ElapsedSeconds() * 1000.0;

    Database db;
    if (!db.CreateRelation(DSchema()).ok()) std::exit(1);
    Stopwatch recover_watch;
    Result<RecoveryOutcome> outcome = RecoveryManager::Recover(dir, db);
    double recover_ms = recover_watch.ElapsedSeconds() * 1000.0;
    if (!outcome.ok() ||
        outcome.value().wal_records_replayed !=
            static_cast<uint64_t>(records)) {
      std::fprintf(stderr, "recovery failed\n");
      std::exit(1);
    }

    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario",
              JsonValue::Str("wal_replay/" + std::to_string(records)));
      obj.Set("append_ms", JsonValue::Number(append_ms));
      obj.Set("recover_ms", JsonValue::Number(recover_ms));
      obj.Set("segments", JsonValue::Uint(segments));
      RecordJson(std::move(obj));
    }
    Print("%8d | %10.2f %10.2f %12.0f %10llu\n", records, append_ms,
                recover_ms,
                recover_ms > 0 ? records / (recover_ms / 1000.0) : 0.0,
                static_cast<unsigned long long>(segments));
  }
  Print("\n");
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, [] {
    codb::bench::BenchCheckpoint();
    codb::bench::BenchWalReplay();
  });
}
