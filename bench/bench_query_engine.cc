// Experiment Q1 — microbenchmarks of the conjunctive-query engine and the
// wire layer (google-benchmark). These are the per-node building blocks
// whose cost the distributed experiments aggregate.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "relation/wire.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/rule.h"
#include "relation/database.h"
#include "util/random.h"

namespace codb {
namespace {

// Builds r(a,b) with `rows` rows, keys dense, b in [0, fanout).
Database MakeDb(int64_t rows, int64_t fanout) {
  Database db;
  db.CreateRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  db.CreateRelation(RelationSchema(
      "s", {{"b", ValueType::kInt}, {"c", ValueType::kInt}}));
  Rng rng(1);
  Relation* r = db.Find("r");
  Relation* s = db.Find("s");
  for (int64_t i = 0; i < rows; ++i) {
    r->Insert(Tuple{Value::Int(i),
                    Value::Int(static_cast<int64_t>(rng.Uniform(
                        static_cast<uint64_t>(fanout))))});
    s->Insert(Tuple{Value::Int(i % fanout), Value::Int(i)});
  }
  return db;
}

void BM_ScanFilter(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 100);
  CompiledQuery q = std::move(CompiledQuery::Compile(
                                  ParseQuery("q(A) :- r(A, B), B < 50.")
                                      .value(),
                                  db.Schema(), {"A"}))
                        .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanFilter)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 100);
  CompiledQuery q = std::move(CompiledQuery::Compile(
                                  ParseQuery("q(A, C) :- r(A, B), s(B, C).")
                                      .value(),
                                  db.Schema(), {"A", "C"}))
                        .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(1000)->Arg(10000);

void BM_DeltaEvaluation(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 100);
  CompiledQuery q = std::move(CompiledQuery::Compile(
                                  ParseQuery("q(A, C) :- r(A, B), s(B, C).")
                                      .value(),
                                  db.Schema(), {"A", "C"}))
                        .value();
  std::vector<Tuple> delta = {Tuple{Value::Int(-1), Value::Int(5)}};
  db.Find("r")->Insert(delta[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.EvaluateDelta(db, "r", delta));
  }
}
BENCHMARK(BM_DeltaEvaluation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RuleFrontierAndInstantiate(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 100);
  DatabaseSchema importer;
  importer.AddRelation(RelationSchema(
      "d", {{"a", ValueType::kInt}, {"z", ValueType::kInt}}));
  CoordinationRule rule(
      "r1", "importer", "exporter",
      ParseQuery("d(A, Z) :- r(A, B).").value());
  rule.Compile(db.Schema(), importer);
  NullMinter minter(1);
  for (auto _ : state) {
    std::vector<Tuple> frontiers = rule.EvaluateFrontier(db);
    size_t produced = 0;
    for (const Tuple& f : frontiers) {
      produced += rule.InstantiateHead(f, minter).size();
    }
    benchmark::DoNotOptimize(produced);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RuleFrontierAndInstantiate)->Arg(1000)->Arg(10000);

void BM_WireTupleRoundTrip(benchmark::State& state) {
  std::vector<Tuple> tuples;
  Rng rng(2);
  for (int64_t i = 0; i < state.range(0); ++i) {
    tuples.push_back(Tuple{Value::Int(i), Value::String(rng.RandomString(8)),
                           Value::Null(1, static_cast<uint64_t>(i))});
  }
  for (auto _ : state) {
    WireWriter writer;
    writer.WriteTuples(tuples);
    std::vector<uint8_t> bytes = writer.Take();
    WireReader reader(bytes);
    benchmark::DoNotOptimize(reader.ReadTuples());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireTupleRoundTrip)->Arg(100)->Arg(1000);

// Join with string keys: r(a, b:str) ⋈ s(b:str, c). Against BM_HashJoin
// (identical shape, int keys) this isolates the cost of string
// equality/hashing on the join hot path — the gap interning closes.
void BM_StringHashJoin(benchmark::State& state) {
  Database db;
  db.CreateRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kString}}));
  db.CreateRelation(RelationSchema(
      "s", {{"b", ValueType::kString}, {"c", ValueType::kInt}}));
  Rng rng(3);
  Relation* r = db.Find("r");
  Relation* s = db.Find("s");
  constexpr int64_t kFanout = 100;
  std::vector<std::string> keys;
  for (int64_t k = 0; k < kFanout; ++k) {
    // Long common prefix: byte-wise comparisons must walk the whole key.
    keys.push_back("warehouse/region-7/shelf-" + std::to_string(k));
  }
  for (int64_t i = 0; i < state.range(0); ++i) {
    r->Insert(Tuple{Value::Int(i),
                    Value::String(
                        keys[rng.Uniform(static_cast<uint64_t>(kFanout))])});
    s->Insert(Tuple{Value::String(keys[static_cast<uint64_t>(i) % kFanout]),
                    Value::Int(i)});
  }
  CompiledQuery q = std::move(CompiledQuery::Compile(
                                  ParseQuery("q(A, C) :- r(A, B), s(B, C).")
                                      .value(),
                                  db.Schema(), {"A", "C"}))
                        .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StringHashJoin)->Arg(1000)->Arg(10000);

// The fixpoint pattern of the global-update algorithm: every incoming
// delta batch inserts into a relation and immediately probes it again for
// the next semi-naive pass. With invalidate-on-insert each probe rebuilds
// the whole index (quadratic in delta count); with append-on-insert the
// loop is near-linear — compare total time across the 10x/100x Args.
void BM_InsertProbeFixpoint(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Relation r(RelationSchema(
        "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    state.ResumeTiming();
    size_t matched = 0;
    for (int64_t i = 0; i < state.range(0); ++i) {
      r.Insert(Tuple{Value::Int(i % 16), Value::Int(i)});
      matched += r.Probe(0, Value::Int(i % 16)).size();
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsertProbeFixpoint)->Arg(100)->Arg(1000)->Arg(10000);

// Multi-bound probe: after t(A,B,C) binds A and B, u(A,B) has *two* bound
// columns. A single-column index scans the whole bucket and filters
// tuple-by-tuple; a composite index jumps straight to the matches.
void BM_MultiBoundProbe(benchmark::State& state) {
  Database db;
  db.CreateRelation(RelationSchema("t", {{"a", ValueType::kInt},
                                         {"b", ValueType::kInt},
                                         {"c", ValueType::kInt}}));
  db.CreateRelation(RelationSchema(
      "u", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  Relation* t = db.Find("t");
  Relation* u = db.Find("u");
  // Few distinct `a` values -> huge single-column buckets; (a, b) pairs
  // are selective.
  for (int64_t i = 0; i < state.range(0); ++i) {
    t->Insert(Tuple{Value::Int(i % 4), Value::Int(i), Value::Int(i)});
    u->Insert(Tuple{Value::Int(i % 4), Value::Int(i)});
  }
  CompiledQuery q = std::move(CompiledQuery::Compile(
                                  ParseQuery("q(C) :- t(A, B, C), u(A, B).")
                                      .value(),
                                  db.Schema(), {"C"}))
                        .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(db));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MultiBoundProbe)->Arg(1000)->Arg(10000);

// Primitive-level composite probe vs single-column probe + filter, on the
// same data shape as BM_MultiBoundProbe (selective pair, fat single-column
// bucket). Isolates the index from the join machinery around it.
void BM_CompositeProbePrimitive(benchmark::State& state) {
  Relation u(RelationSchema(
      "u", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  for (int64_t i = 0; i < state.range(0); ++i) {
    u.Insert(Tuple{Value::Int(i % 4), Value::Int(i)});
  }
  const std::vector<int> columns = {0, 1};
  size_t matched = 0;
  for (auto _ : state) {
    for (int64_t i = 0; i < state.range(0); ++i) {
      if (state.range(1) != 0) {
        matched +=
            u.ProbeComposite(columns, {Value::Int(i % 4), Value::Int(i)})
                .size();
      } else {
        for (uint32_t row : u.Probe(0, Value::Int(i % 4))) {
          if (u.rows()[row].at(1) == Value::Int(i)) ++matched;
        }
      }
    }
  }
  benchmark::DoNotOptimize(matched);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompositeProbePrimitive)
    ->ArgsProduct({{1000, 10000}, {0, 1}});

void BM_RelationInsertNew(benchmark::State& state) {
  std::vector<Tuple> batch;
  for (int64_t i = 0; i < state.range(0); ++i) {
    batch.push_back(Tuple{Value::Int(i), Value::Int(i)});
  }
  for (auto _ : state) {
    state.PauseTiming();
    Relation r(RelationSchema(
        "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
    state.ResumeTiming();
    benchmark::DoNotOptimize(r.InsertNew(batch));
    benchmark::DoNotOptimize(r.InsertNew(batch));  // all-duplicate pass
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_RelationInsertNew)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace codb

// Like BENCHMARK_MAIN(), but maps the harness-wide --json flag onto
// google-benchmark's native JSON reporter so run_experiments.sh can treat
// every bench uniformly.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char format_flag[] = "--benchmark_format=json";
  for (char*& arg : args) {
    if (std::strcmp(arg, "--json") == 0) arg = format_flag;
  }
  int forwarded = static_cast<int>(args.size());
  benchmark::Initialize(&forwarded, args.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
