// Experiment E13 — intra-node parallel evaluation scaling.
//
// One fixed workload (joincopy rules on a 16-node chain, 800 tuples per
// node: the heaviest per-node join work of the suite) run at node thread
// counts 1, 2, 4 and 8. Every run must complete and produce the same
// store sizes — the differential suite proves byte-identical results;
// this bench measures what the parallelism buys in wall time.
//
// Expected shape: update_wall_ms falls as threads grow *when the host has
// cores to back them*; on a single-core host the thread counts collapse
// onto the sequential time (the pool parks workers on a condition
// variable, so oversubscription costs little — but buys nothing).

#include <cstdio>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E13: intra-node parallel scaling (joincopy chain, 16x800)\n");
  Print("  %-24s %14s %10s %12s\n", "scenario", "update_ms", "speedup",
        "tuples");

  WorkloadOptions options;
  options.nodes = 16;
  options.tuples_per_node = 800;
  options.style = RuleStyle::kJoinCopy;
  GeneratedNetwork generated = MakeChain(options);

  double baseline_ms = 0;
  for (int threads : {1, 2, 4, 8}) {
    Testbed::Options testbed_options;
    testbed_options.node_threads = threads;
    UpdateMetrics metrics = RunUpdate(generated, "n0", testbed_options);
    if (threads == 1) baseline_ms = metrics.wall_ms;
    double speedup =
        metrics.wall_ms > 0 ? baseline_ms / metrics.wall_ms : 0.0;

    std::string scenario =
        "joincopy/16x800/threads=" + std::to_string(threads);
    if (JsonMode()) {
      JsonValue obj = ToJson(metrics);
      obj.Set("scenario", JsonValue::Str(scenario));
      obj.Set("threads", JsonValue::Int(threads));
      obj.Set("update_wall_ms", JsonValue::Number(metrics.wall_ms));
      obj.Set("speedup_vs_sequential", JsonValue::Number(speedup));
      RecordJson(std::move(obj));
    }
    Print("  %-24s %14.1f %9.2fx %12llu\n", scenario.c_str(),
          metrics.wall_ms, speedup,
          static_cast<unsigned long long>(metrics.tuples_moved));
    if (!metrics.completed) {
      std::fprintf(stderr, "update did not complete at threads=%d\n",
                   threads);
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
