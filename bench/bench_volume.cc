// Experiment E3 — per-rule message and volume statistics (paper, section
// 4: "number of query result messages received per coordination rule and
// the volume of the data in each message").
//
// Sweeps the data size on a fixed 6-node chain and reports, per
// coordination rule, the data messages, tuples, and bytes it carried.
//
// Expected shape: bytes grow linearly with tuples/node; message counts are
// independent of data size (results are batched per rule activation) and
// grow with the rule's distance from the chain tail (rule r0, closest to
// the initiator, relays everything).

#include <cstdio>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E3: per-rule traffic vs data volume (6-node chain)\n");

  for (int tuples : {10, 100, 1000, 10000}) {
    WorkloadOptions options;
    options.nodes = 6;
    options.tuples_per_node = tuples;
    GeneratedNetwork generated = MakeChain(options);

    std::unique_ptr<Testbed> bed =
        std::move(Testbed::Create(generated)).value();
    FlowId update = bed->node("n0")->StartGlobalUpdate().value();
    bed->network().Run();

    // Aggregate the per-rule receive statistics across nodes (the
    // super-peer's view).
    std::map<std::string, RuleTrafficStats> per_rule;
    for (const auto& node : bed->nodes()) {
      const UpdateReport* report =
          node->statistics().FindReport(update);
      if (report == nullptr) continue;
      for (const auto& [rule, traffic] : report->received_per_rule) {
        per_rule[rule].messages += traffic.messages;
        per_rule[rule].tuples += traffic.tuples;
        per_rule[rule].bytes += traffic.bytes;
      }
    }

    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario",
              JsonValue::Str("tuples_per_node=" + std::to_string(tuples)));
      JsonValue rules = JsonValue::Object();
      for (const auto& [rule, traffic] : per_rule) {
        JsonValue entry = JsonValue::Object();
        entry.Set("messages", JsonValue::Uint(traffic.messages));
        entry.Set("tuples", JsonValue::Uint(traffic.tuples));
        entry.Set("bytes", JsonValue::Uint(traffic.bytes));
        rules.Set(rule, std::move(entry));
      }
      obj.Set("per_rule", std::move(rules));
      RecordJson(std::move(obj));
    }
    Print("\ntuples/node = %d\n", tuples);
    Print("  %-6s %8s %10s %12s %14s\n", "rule", "msgs", "tuples",
                "bytes", "bytes/msg");
    for (const auto& [rule, traffic] : per_rule) {
      Print("  %-6s %8llu %10llu %12llu %14.1f\n", rule.c_str(),
                  static_cast<unsigned long long>(traffic.messages),
                  static_cast<unsigned long long>(traffic.tuples),
                  static_cast<unsigned long long>(traffic.bytes),
                  traffic.messages > 0
                      ? static_cast<double>(traffic.bytes) /
                            static_cast<double>(traffic.messages)
                      : 0.0);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
