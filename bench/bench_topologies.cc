// Experiment E1 — "measure the performance of various networks arranged
// in different topologies" (paper, section 4).
//
// For each topology and network size, runs one global update and reports
// the statistics the demo's super-peer aggregates: total execution time
// (virtual network time + real compute), data/control message counts,
// bytes moved, and the longest update-propagation path.
//
// Expected shape: cost grows with network diameter — star flattest, chain
// and ring steepest; the ring pays extra for cycle closure.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  struct TopologyCase {
    const char* name;
    std::function<GeneratedNetwork(const WorkloadOptions&)> make;
  };
  const std::vector<TopologyCase> topologies = {
      {"chain", MakeChain}, {"ring", MakeRing},   {"star", MakeStar},
      {"tree", MakeTree},   {"grid", MakeGrid},   {"random", MakeRandom},
  };
  const int sizes[] = {4, 8, 16, 32};

  Print(
      "E1: global update across topologies (tuples/node=20, copy rules)\n");
  Print(
      "%-8s %5s | %9s %9s %7s %7s %10s %8s %5s\n", "topology", "nodes",
      "virt(us)", "wall(ms)", "dataM", "ctrlM", "bytes", "tuples", "path");

  for (const TopologyCase& topology : topologies) {
    for (int n : sizes) {
      WorkloadOptions options;
      options.nodes = n;
      options.tuples_per_node = 20;
      options.seed = 42;
      if (topology.name == std::string("grid")) {
        options.grid_rows = n <= 4 ? 2 : 4;
        options.grid_cols = n / options.grid_rows;
      }
      options.edge_probability = 3.0 / n;  // keep random graphs sparse
      UpdateMetrics metrics = RunUpdate(topology.make(options), "n0");
      RecordScenario(std::string(topology.name) + "/" + std::to_string(n),
                     metrics);
      Print(
          "%-8s %5d | %9lld %9.2f %7llu %7llu %10llu %8llu %5u%s\n",
          topology.name, n, static_cast<long long>(metrics.virtual_us),
          metrics.wall_ms,
          static_cast<unsigned long long>(metrics.data_messages),
          static_cast<unsigned long long>(metrics.control_messages),
          static_cast<unsigned long long>(metrics.data_bytes),
          static_cast<unsigned long long>(metrics.tuples_moved),
          metrics.longest_path, metrics.completed ? "" : "  INCOMPLETE");
    }
    Print("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
