// Experiment E1 — "measure the performance of various networks arranged
// in different topologies" (paper, section 4) — and experiment E14 —
// membership at scale (DESIGN.md §11).
//
// E1: for each topology and network size, runs one global update and
// reports the statistics the demo's super-peer aggregates: total
// execution time (virtual network time + real compute), data/control
// message counts, bytes moved, and the longest update-propagation path.
//
// Expected shape: cost grows with network diameter — star flattest, chain
// and ring steepest; the ring pays extra for cycle closure.
//
// E14: stands up trees of 100–1000 peers under federated super-peers
// (one per ~250 nodes) with the membership layer on, silently kills three
// peers mid-update, and reports how fast the survivors detect the deaths.
// The bench FAILS (exit 1) if any live peer is evicted, if detection
// takes longer than the protocol bound, if the update does not
// terminate on the surviving topology, or if the config-distribution
// volume (slices + deltas + fetches + acks) fails the sub-quadratic
// scaling fit or the absolute cap at n=1000 (DESIGN.md §13).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

// E14 beacon period. Detection worst case (membership.h): suspicion
// crosses at 1.5 periods of silence and is seen at the tracker's next
// tick (+1), eviction 1 period later, seen at the next tick (+1) —
// ~4.5 periods from the kill. The probe polls in half-period steps, so
// anything past 6 measured periods means the detector is broken.
constexpr int64_t kPeriodUs = 200'000;
constexpr double kDetectBoundPeriods = 6.0;

void RunMembershipScale() {
  Print("E14: membership at scale (binary tree, federated supers, 3 silent"
        " kills mid-update)\n");
  Print("%6s %6s | %9s %7s %7s %7s %8s %8s %10s %9s\n", "nodes", "supers",
        "completed", "evict", "expect", "false", "det-avg", "det-max",
        "cfg-bytes", "wall(ms)");

  // Measured config-class bytes (slices, deltas, fetches, acks) per
  // deployment size, for the scaling gate at n=1000: the delta/projected
  // distribution (DESIGN.md §13) ships each peer only its slice, so total
  // config volume must fit a SUB-quadratic power law — the full-file
  // broadcast it replaced was n messages of size Θ(n), i.e. exponent 2.
  std::map<int, uint64_t> cfg_by_n;

  // Gate thresholds: fitted exponent cfg(n) ~ n^e between n=100 and
  // n=1000 must stay below 1.5, and the absolute volume at n=1000 below
  // 21.6 MB — a ≥5x drop from the ~108 MB the full-file broadcast cost.
  constexpr double kMaxConfigScalingExponent = 1.5;
  constexpr uint64_t kMaxConfigBytesAt1000 = 21'600'000;

  const MessageType kConfigTypes[] = {
      MessageType::kConfigBroadcast, MessageType::kConfigSlice,
      MessageType::kConfigDelta, MessageType::kConfigFetch,
      MessageType::kConfigAck,
  };

  for (int n : {100, 250, 1000}) {
    WorkloadOptions options;
    options.nodes = n;
    options.tuples_per_node = 2;
    options.seed = 42;
    GeneratedNetwork generated = MakeTree(options);

    Testbed::Options bed_options;
    // Discovery's announcement flood is O(n·E) — the first wall a
    // thousand-peer deployment hits; membership does not need it.
    bed_options.node.quiet_discovery = true;
    // Retransmission backoff past the detection window: completion must
    // come from eviction cancelling the dead peers' deficits.
    bed_options.node.reliability.enabled = true;
    bed_options.node.reliability.retransmit_base_us = 2'000'000;
    bed_options.membership = true;
    bed_options.membership_options.period_us = kPeriodUs;
    bed_options.super_peers = std::max(1, n / 250);
    // The profile pass (E15): global cost ledger + event-loop profiler on
    // for the whole deployment, including the settle-phase config
    // broadcast the cost model exists to expose.
    bed_options.profiling = true;

    Stopwatch wall;
    Result<std::unique_ptr<Testbed>> testbed =
        Testbed::Create(generated, bed_options);
    if (!testbed.ok()) {
      std::fprintf(stderr, "testbed: %s\n",
                   testbed.status().ToString().c_str());
      std::exit(1);
    }
    Testbed& bed = *testbed.value();
    NetworkBase& net = bed.network();

    // Let tracking establish everywhere (grace is 2 periods).
    net.RunFor(5 * kPeriodUs);

    // Three victims spread across the tree: an internal node, the last
    // leaf, and a node in the upper half — never the initiator. The kills
    // land 0.5–3ms into the update flood, while requests and data are
    // still in flight.
    ChurnProbe probe(bed);
    probe.ScheduleKill(NodeName(n / 2), 500);
    probe.ScheduleKill(NodeName(n - 1), 1'500);
    probe.ScheduleKill(NodeName(n / 4 + 1), 3'000);

    Result<FlowId> update = bed.node("n0")->StartGlobalUpdate();
    if (!update.ok()) {
      std::fprintf(stderr, "update: %s\n",
                   update.status().ToString().c_str());
      std::exit(1);
    }
    probe.AwaitDetection(kPeriodUs / 2, 15 * kPeriodUs);
    // Evictions have cancelled every deficit toward the corpses by now;
    // drain the remaining completion wave.
    net.Run();
    bool completed = bed.AllComplete(update.value());

    // Federation still yields the network-wide view over the survivors.
    size_t nodes_reporting = 0;
    if (bed.CollectStats().ok()) {
      std::vector<AggregatedUpdateStats> federated =
          bed.super_peer(0).FederatedAggregate();
      if (!federated.empty()) nodes_reporting = federated[0].nodes_reporting;
    }

    double detect_mean = probe.MeanDetectPeriods(kPeriodUs);
    double detect_max = probe.MaxDetectPeriods(kPeriodUs);
    uint64_t config_bytes = 0;
    for (MessageType type : kConfigTypes) {
      config_bytes += net.stats().BytesOfType(type);
    }
    double wall_ms = wall.ElapsedSeconds() * 1000.0;
    cfg_by_n[n] = config_bytes;

    const CostLedger& cost = bed.cost();

    Print("%6d %6d | %9s %7llu %7llu %7llu %8.2f %8.2f %10llu %9.2f\n", n,
          bed_options.super_peers, completed ? "yes" : "NO",
          static_cast<unsigned long long>(probe.Evictions()),
          static_cast<unsigned long long>(probe.ExpectedEvictions()),
          static_cast<unsigned long long>(probe.FalseEvictions()),
          detect_mean, detect_max,
          static_cast<unsigned long long>(config_bytes), wall_ms);
    Print("       bytes by class:");
    for (size_t c = 0; c < kCostClassCount; ++c) {
      CostClass cls = static_cast<CostClass>(c);
      uint64_t bytes = cost.SentBytes(cls);
      if (bytes == 0) continue;
      Print(" %s=%llu", CostClassName(cls),
            static_cast<unsigned long long>(bytes));
    }
    Print("\n");

    // The ledger's config class and the transport's per-type byte count
    // observe the same sends through different code paths; any difference
    // means the classification or recording hooks drifted.
    if (cost.SentBytes(CostClass::kConfig) != config_bytes) {
      std::fprintf(stderr,
                   "E14 FAILED at n=%d: ledger config bytes %llu != "
                   "transport config bytes %llu\n",
                   n,
                   static_cast<unsigned long long>(
                       cost.SentBytes(CostClass::kConfig)),
                   static_cast<unsigned long long>(config_bytes));
      std::exit(1);
    }

    // At n=1000, fit cfg(n) ~ n^e from the n=100 endpoint: the projected
    // slice protocol must scale sub-quadratically (per-peer slices are
    // O(degree), so the total is near-linear on bounded-degree trees) and
    // stay under the ≥5x-drop absolute cap.
    double config_scaling_exponent = 0;
    if (n == 1000) {
      config_scaling_exponent =
          std::log(static_cast<double>(config_bytes) /
                   static_cast<double>(cfg_by_n[100])) /
          std::log(1000.0 / 100.0);
      Print("       config scaling check: cfg(100)=%llu cfg(1000)=%llu "
            "=> exponent %.2f (gate <= %.2f, cap %llu bytes)\n",
            static_cast<unsigned long long>(cfg_by_n[100]),
            static_cast<unsigned long long>(config_bytes),
            config_scaling_exponent, kMaxConfigScalingExponent,
            static_cast<unsigned long long>(kMaxConfigBytesAt1000));
      if (config_scaling_exponent > kMaxConfigScalingExponent) {
        std::fprintf(stderr,
                     "E14 FAILED at n=1000: config bytes scale as n^%.2f "
                     "(gate n^%.2f) — distribution regressed toward the "
                     "O(n^2) full-file broadcast\n",
                     config_scaling_exponent, kMaxConfigScalingExponent);
        std::exit(1);
      }
      if (config_bytes > kMaxConfigBytesAt1000) {
        std::fprintf(stderr,
                     "E14 FAILED at n=1000: config bytes %llu exceed the "
                     "%llu cap (>= 5x drop from the full-file broadcast)\n",
                     static_cast<unsigned long long>(config_bytes),
                     static_cast<unsigned long long>(kMaxConfigBytesAt1000));
        std::exit(1);
      }
    }

    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario",
              JsonValue::Str("membership/tree/" + std::to_string(n)));
      obj.Set("nodes", JsonValue::Int(n));
      obj.Set("super_peers", JsonValue::Int(bed_options.super_peers));
      obj.Set("kills", JsonValue::Int(3));
      obj.Set("completed", JsonValue::Bool(completed));
      obj.Set("all_detected", JsonValue::Bool(probe.AllDetected()));
      obj.Set("evictions", JsonValue::Uint(probe.Evictions()));
      obj.Set("expected_evictions",
              JsonValue::Uint(probe.ExpectedEvictions()));
      obj.Set("false_evictions", JsonValue::Uint(probe.FalseEvictions()));
      obj.Set("false_suspicions", JsonValue::Uint(probe.FalseSuspicions()));
      obj.Set("detect_mean_periods", JsonValue::Number(detect_mean));
      obj.Set("detect_max_periods", JsonValue::Number(detect_max));
      obj.Set("nodes_reporting", JsonValue::Uint(nodes_reporting));
      obj.Set("config_broadcast_bytes", JsonValue::Uint(config_bytes));
      // Flat per-class send bytes (compare_bench.py diffs these), plus
      // the full ledger and event-loop profile for codb_profile.
      for (size_t c = 0; c < kCostClassCount; ++c) {
        CostClass cls = static_cast<CostClass>(c);
        obj.Set(std::string("cost_") + CostClassName(cls) + "_bytes",
                JsonValue::Uint(cost.SentBytes(cls)));
      }
      if (n == 1000) {
        obj.Set("config_scaling_exponent",
                JsonValue::Number(config_scaling_exponent));
      }
      obj.Set("cost", cost.Snapshot().ToJson());
      obj.Set("profile", net.profiler().Snapshot().ToJson());
      obj.Set("wall_ms", JsonValue::Number(wall_ms));
      RecordJson(std::move(obj));
    }

    // The acceptance gates, enforced by the bench itself: the update
    // terminates, every dead peer is detected within the protocol bound,
    // and no live peer is ever evicted.
    if (!completed || !probe.AllDetected() ||
        probe.FalseEvictions() != 0 ||
        detect_max > kDetectBoundPeriods) {
      std::fprintf(stderr,
                   "E14 FAILED at n=%d: completed=%d all_detected=%d "
                   "false_evictions=%llu detect_max=%.2f periods\n",
                   n, completed ? 1 : 0, probe.AllDetected() ? 1 : 0,
                   static_cast<unsigned long long>(probe.FalseEvictions()),
                   detect_max);
      std::exit(1);
    }
  }
  Print("\n");
}

void Run() {
  struct TopologyCase {
    const char* name;
    std::function<GeneratedNetwork(const WorkloadOptions&)> make;
  };
  const std::vector<TopologyCase> topologies = {
      {"chain", MakeChain}, {"ring", MakeRing},   {"star", MakeStar},
      {"tree", MakeTree},   {"grid", MakeGrid},   {"random", MakeRandom},
  };
  const int sizes[] = {4, 8, 16, 32};

  Print(
      "E1: global update across topologies (tuples/node=20, copy rules)\n");
  Print(
      "%-8s %5s | %9s %9s %7s %7s %10s %8s %5s\n", "topology", "nodes",
      "virt(us)", "wall(ms)", "dataM", "ctrlM", "bytes", "tuples", "path");

  for (const TopologyCase& topology : topologies) {
    for (int n : sizes) {
      WorkloadOptions options;
      options.nodes = n;
      options.tuples_per_node = 20;
      options.seed = 42;
      if (topology.name == std::string("grid")) {
        options.grid_rows = n <= 4 ? 2 : 4;
        options.grid_cols = n / options.grid_rows;
      }
      options.edge_probability = 3.0 / n;  // keep random graphs sparse
      UpdateMetrics metrics = RunUpdate(topology.make(options), "n0");
      RecordScenario(std::string(topology.name) + "/" + std::to_string(n),
                     metrics);
      Print(
          "%-8s %5d | %9lld %9.2f %7llu %7llu %10llu %8llu %5u%s\n",
          topology.name, n, static_cast<long long>(metrics.virtual_us),
          metrics.wall_ms,
          static_cast<unsigned long long>(metrics.data_messages),
          static_cast<unsigned long long>(metrics.control_messages),
          static_cast<unsigned long long>(metrics.data_bytes),
          static_cast<unsigned long long>(metrics.tuples_moved),
          metrics.longest_path, metrics.completed ? "" : "  INCOMPLETE");
    }
    Print("\n");
  }

  RunMembershipScale();
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
