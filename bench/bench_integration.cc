// Experiment E11 (extension) — heterogeneous data integration at scale.
//
// The paper's introduction motivates coDB with data-integration networks
// of autonomous databases with different schemas. This harness scales the
// number of sources feeding one registry (GLAV renamings, joins,
// comparison filters and existential projections mixed), with and without
// mediator relays, and reports the integration cost.
//
// Expected shape: star-shaped flows keep the virtual time flat in the
// source count (all sources export concurrently); messages and tuples
// grow linearly; mediators add one relay hop for their sources.

#include <cstdio>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print(
      "E11: data-integration scaling (registry <- sources, 20 "
      "tuples/source)\n");
  Print("%8s %10s | %9s %7s %9s %12s\n", "sources", "mediators",
              "virt(us)", "dataM", "tuples", "reg. tuples");

  for (bool with_mediators : {false, true}) {
    for (int sources : {3, 6, 12, 24}) {
      WorkloadOptions options;
      options.tuples_per_node = 20;
      options.seed = 42;
      GeneratedNetwork generated =
          MakeIntegration(options, sources, with_mediators);
      UpdateMetrics metrics = RunUpdate(generated, "registry");
      RecordScenario(std::string(with_mediators ? "mediated/" : "direct/") +
                         std::to_string(sources),
                     metrics);
      Print("%8d %10s | %9lld %7llu %9llu %12zu%s\n", sources,
                  with_mediators ? "yes" : "no",
                  static_cast<long long>(metrics.virtual_us),
                  static_cast<unsigned long long>(metrics.data_messages),
                  static_cast<unsigned long long>(metrics.tuples_moved),
                  metrics.initiator_tuples,
                  metrics.completed ? "" : "  INCOMPLETE");
    }
    Print("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
