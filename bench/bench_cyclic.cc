// Experiment E5 — cyclic rule sets and the distributed fixpoint (paper,
// section 1: "rules can be cyclic, i.e., a fix-point computation may be
// needed among the nodes"; section 3: termination guarantee).
//
// Sweeps ring sizes with plain (GAV copy) and existential (GLAV project)
// rules, verifying termination and — for the copy rings, whose derivations
// are unique — exact agreement with the path-bounded oracle.
//
// Expected shape: work grows quadratically with ring size for copy rules
// (every tuple travels up to N-1 hops); existential rings terminate too,
// which an unbounded chase would not.

#include <cstdio>

#include "bench_util.h"
#include "core/oracle.h"
#include "query/homomorphism.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E5: fixpoint on cyclic rings\n");
  Print("%-9s %5s | %9s %7s %8s %6s %10s %8s\n", "style", "ring",
              "virt(us)", "dataM", "tuples", "path", "terminated",
              "oracle");

  for (RuleStyle style : {RuleStyle::kCopy, RuleStyle::kProject}) {
    for (int n : {3, 5, 8, 12}) {
      WorkloadOptions options;
      options.nodes = n;
      options.tuples_per_node = 10;
      options.style = style;
      GeneratedNetwork generated = MakeRing(options);

      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      int64_t start = bed->network().now_us();
      FlowId update = bed->node("n0")->StartGlobalUpdate().value();
      bed->network().Run();
      bool terminated = bed->AllComplete(update);

      uint64_t data_messages = bed->network().stats().MessagesOfType(
          MessageType::kUpdateData);
      uint64_t tuples = 0;
      uint32_t path = 0;
      for (const auto& node : bed->nodes()) {
        const UpdateReport* report =
            node->statistics().FindReport(update);
        if (report == nullptr) continue;
        tuples += report->tuples_added;
        path = std::max(path, report->longest_path_nodes);
      }

      // Oracle check: certain parts must match (unique derivations on a
      // directed ring).
      bool oracle_ok = true;
      Result<NetworkInstance> oracle =
          Oracle::PathBounded(generated.config, generated.seeds);
      if (oracle.ok()) {
        NetworkInstance actual = bed->Snapshot();
        for (const auto& [node, instance] : oracle.value()) {
          if (CertainPart(instance) != CertainPart(actual.at(node))) {
            oracle_ok = false;
          }
        }
      } else {
        oracle_ok = false;
      }

      if (JsonMode()) {
        JsonValue obj = JsonValue::Object();
        obj.Set("scenario", JsonValue::Str(
                                std::string(style == RuleStyle::kCopy
                                                ? "copy/ring="
                                                : "project/ring=") +
                                std::to_string(n)));
        obj.Set("virtual_us",
                JsonValue::Int(bed->network().now_us() - start));
        obj.Set("data_messages", JsonValue::Uint(data_messages));
        obj.Set("tuples_moved", JsonValue::Uint(tuples));
        obj.Set("longest_path", JsonValue::Uint(path));
        obj.Set("terminated", JsonValue::Bool(terminated));
        obj.Set("oracle_match", JsonValue::Bool(oracle_ok));
        RecordJson(std::move(obj));
      }
      Print("%-9s %5d | %9lld %7llu %8llu %6u %10s %8s\n",
                  style == RuleStyle::kCopy ? "copy" : "project", n,
                  static_cast<long long>(bed->network().now_us() - start),
                  static_cast<unsigned long long>(data_messages),
                  static_cast<unsigned long long>(tuples), path,
                  terminated ? "yes" : "NO",
                  oracle_ok ? "match" : "MISMATCH");
    }
    Print("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
