// Experiment E7 — dynamic networks (paper, section 1(c): "the topology of
// the network may dynamically change"; the algorithm must still terminate
// with a sound and complete result w.r.t. the surviving topology).
//
// Runs updates on a chain while cutting a varying number of pipes at
// random times mid-update, and reports completion and how much of the
// network's data still reached the initiator.
//
// Expected shape: the update always terminates; delivered data degrades
// gracefully with the number of cuts (never below the initiator's own
// share).
//
// The second half repeats the exercise against the membership layer
// (DESIGN.md §11): instead of orderly pipe cuts, peers die *silently* —
// no pipe event — and the survivors must detect the deaths through
// suspicion and eviction. Reported per scenario: evictions vs. the
// expected tracker count, false suspicions, and detection latency in
// beacon periods.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "util/random.h"

namespace codb {
namespace bench {
namespace {

void RunMembershipChurn() {
  const int64_t period = 200'000;
  Print("E7b: silent-death churn (12-node chain, membership on)\n");
  Print("%5s %6s | %10s %7s %7s %7s %8s %8s\n", "kills", "seed",
        "terminated", "evict", "expect", "false", "det-avg", "det-max");

  for (int kills : {1, 2}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      WorkloadOptions options;
      options.nodes = 12;
      options.tuples_per_node = 20;
      GeneratedNetwork generated = MakeChain(options);

      Testbed::Options bed_options;
      bed_options.membership = true;
      bed_options.membership_options.period_us = period;
      // Backoff past the detection window: only eviction can unblock the
      // survivors' deficits toward the corpses.
      bed_options.node.reliability.enabled = true;
      bed_options.node.reliability.retransmit_base_us = 2'000'000;
      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated, bed_options)).value();
      Rng rng(seed);

      // Tracking settles (grace = 2 periods), then `kills` distinct
      // victims — never the initiator — die silently within the first
      // 5ms of the update.
      bed->network().RunFor(5 * period);
      ChurnProbe probe(*bed);
      std::set<int> victims;
      while (victims.size() < static_cast<size_t>(kills)) {
        victims.insert(1 + static_cast<int>(rng.Uniform(options.nodes - 1)));
      }
      for (int victim : victims) {
        probe.ScheduleKill(NodeName(victim),
                           static_cast<int64_t>(rng.Uniform(5'000)));
      }

      FlowId update = bed->node("n0")->StartGlobalUpdate().value();
      probe.AwaitDetection(period / 2, 15 * period);
      bed->network().Run();

      bool terminated =
          bed->node("n0")->update_manager()->IsComplete(update);
      double detect_mean = probe.MeanDetectPeriods(period);
      double detect_max = probe.MaxDetectPeriods(period);
      if (JsonMode()) {
        JsonValue obj = JsonValue::Object();
        obj.Set("scenario",
                JsonValue::Str("membership/kills=" + std::to_string(kills) +
                               "/seed=" + std::to_string(seed)));
        obj.Set("terminated", JsonValue::Bool(terminated));
        obj.Set("all_detected", JsonValue::Bool(probe.AllDetected()));
        obj.Set("evictions", JsonValue::Uint(probe.Evictions()));
        obj.Set("expected_evictions",
                JsonValue::Uint(probe.ExpectedEvictions()));
        obj.Set("false_evictions", JsonValue::Uint(probe.FalseEvictions()));
        obj.Set("false_suspicions",
                JsonValue::Uint(probe.FalseSuspicions()));
        obj.Set("detect_mean_periods", JsonValue::Number(detect_mean));
        obj.Set("detect_max_periods", JsonValue::Number(detect_max));
        RecordJson(std::move(obj));
      }
      Print("%5d %6llu | %10s %7llu %7llu %7llu %8.2f %8.2f\n", kills,
            static_cast<unsigned long long>(seed),
            terminated ? "yes" : "NO",
            static_cast<unsigned long long>(probe.Evictions()),
            static_cast<unsigned long long>(probe.ExpectedEvictions()),
            static_cast<unsigned long long>(probe.FalseEvictions()),
            detect_mean, detect_max);
    }
  }
}

void Run() {
  Print("E7: updates under churn (12-node chain, 20 tuples/node)\n");
  Print("%5s %6s | %10s %12s %14s\n", "cuts", "seed", "terminated",
              "tuples@n0", "of max 240");

  for (int cuts : {0, 1, 2, 4}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      WorkloadOptions options;
      options.nodes = 12;
      options.tuples_per_node = 20;
      GeneratedNetwork generated = MakeChain(options);

      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      Rng rng(seed);

      // Schedule `cuts` random pipe cuts within the first 20ms (virtual).
      for (int i = 0; i < cuts; ++i) {
        int link = static_cast<int>(rng.Uniform(options.nodes - 1));
        int64_t when = static_cast<int64_t>(rng.Uniform(20'000));
        bed->network().ScheduleAfter(when, [&bed, link] {
          Node* a = bed->node(NodeName(link));
          Node* b = bed->node(NodeName(link + 1));
          bed->network().ClosePipe(a->id(), b->id());
        });
      }

      FlowId update = bed->node("n0")->StartGlobalUpdate().value();
      bed->network().Run();

      bool terminated =
          bed->node("n0")->update_manager()->IsComplete(update);
      size_t delivered = bed->node("n0")->database().Find("d")->size();
      if (JsonMode()) {
        JsonValue obj = JsonValue::Object();
        obj.Set("scenario",
                JsonValue::Str("cuts=" + std::to_string(cuts) +
                               "/seed=" + std::to_string(seed)));
        obj.Set("terminated", JsonValue::Bool(terminated));
        obj.Set("tuples_delivered", JsonValue::Uint(delivered));
        obj.Set("max_tuples", JsonValue::Int(240));
        RecordJson(std::move(obj));
      }
      Print("%5d %6llu | %10s %12zu %13.0f%%\n", cuts,
                  static_cast<unsigned long long>(seed),
                  terminated ? "yes" : "NO", delivered,
                  100.0 * static_cast<double>(delivered) / 240.0);
    }
  }

  Print("\n");
  RunMembershipChurn();
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
