// Experiment E7 — dynamic networks (paper, section 1(c): "the topology of
// the network may dynamically change"; the algorithm must still terminate
// with a sound and complete result w.r.t. the surviving topology).
//
// Runs updates on a chain while cutting a varying number of pipes at
// random times mid-update, and reports completion and how much of the
// network's data still reached the initiator.
//
// Expected shape: the update always terminates; delivered data degrades
// gracefully with the number of cuts (never below the initiator's own
// share).

#include <cstdio>

#include "bench_util.h"
#include "util/random.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E7: updates under churn (12-node chain, 20 tuples/node)\n");
  Print("%5s %6s | %10s %12s %14s\n", "cuts", "seed", "terminated",
              "tuples@n0", "of max 240");

  for (int cuts : {0, 1, 2, 4}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      WorkloadOptions options;
      options.nodes = 12;
      options.tuples_per_node = 20;
      GeneratedNetwork generated = MakeChain(options);

      std::unique_ptr<Testbed> bed =
          std::move(Testbed::Create(generated)).value();
      Rng rng(seed);

      // Schedule `cuts` random pipe cuts within the first 20ms (virtual).
      for (int i = 0; i < cuts; ++i) {
        int link = static_cast<int>(rng.Uniform(options.nodes - 1));
        int64_t when = static_cast<int64_t>(rng.Uniform(20'000));
        bed->network().ScheduleAfter(when, [&bed, link] {
          Node* a = bed->node(NodeName(link));
          Node* b = bed->node(NodeName(link + 1));
          bed->network().ClosePipe(a->id(), b->id());
        });
      }

      FlowId update = bed->node("n0")->StartGlobalUpdate().value();
      bed->network().Run();

      bool terminated =
          bed->node("n0")->update_manager()->IsComplete(update);
      size_t delivered = bed->node("n0")->database().Find("d")->size();
      if (JsonMode()) {
        JsonValue obj = JsonValue::Object();
        obj.Set("scenario",
                JsonValue::Str("cuts=" + std::to_string(cuts) +
                               "/seed=" + std::to_string(seed)));
        obj.Set("terminated", JsonValue::Bool(terminated));
        obj.Set("tuples_delivered", JsonValue::Uint(delivered));
        obj.Set("max_tuples", JsonValue::Int(240));
        RecordJson(std::move(obj));
      }
      Print("%5d %6llu | %10s %12zu %13.0f%%\n", cuts,
                  static_cast<unsigned long long>(seed),
                  terminated ? "yes" : "NO", delivered,
                  100.0 * static_cast<double>(delivered) / 240.0);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
