// Shared helpers for the experiment harness binaries (see DESIGN.md §3):
// running a global update over a generated network and collecting the
// aggregate metrics each experiment reports.

#ifndef CODB_BENCH_BENCH_UTIL_H_
#define CODB_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace bench {

struct UpdateMetrics {
  bool completed = false;
  int64_t virtual_us = 0;     // network-wide start -> initiator completion
  double wall_ms = 0;         // real compute for the whole simulation
  uint64_t events = 0;        // simulator events processed
  uint64_t data_messages = 0; // kUpdateData messages network-wide
  uint64_t data_bytes = 0;
  uint64_t control_messages = 0;  // request/ack/link-closed/complete
  uint64_t tuples_moved = 0;      // sum of tuples_added across nodes
  uint32_t longest_path = 0;      // max propagation path (nodes)
  size_t initiator_tuples = 0;    // initiator store size afterwards
  // Every node's metric registry merged with the transport counters, so a
  // scenario's machine-readable record carries the full instrument set.
  MetricsSnapshot registry;
};

// --- machine-readable output -------------------------------------------
// Every harness accepts --json: the human tables are suppressed and one
// JSON object per scenario is accumulated instead, emitted as a single
// JSON array on stdout when the bench finishes (tools/run_experiments.sh
// redirects that into bench/BENCH_<name>.json).

inline bool& JsonModeFlag() {
  static bool mode = false;
  return mode;
}

inline bool JsonMode() { return JsonModeFlag(); }

// printf that goes quiet in --json mode; benches route their tables
// through this so stdout stays pure JSON on the machine path.
inline void Print(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline void Print(const char* fmt, ...) {
  if (JsonMode()) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
}

inline JsonValue& JsonScenarios() {
  static JsonValue scenarios = JsonValue::Array();
  return scenarios;
}

inline JsonValue ToJson(const UpdateMetrics& m) {
  JsonValue obj = JsonValue::Object();
  obj.Set("completed", JsonValue::Bool(m.completed));
  obj.Set("virtual_us", JsonValue::Int(m.virtual_us));
  obj.Set("wall_ms", JsonValue::Number(m.wall_ms));
  obj.Set("events", JsonValue::Uint(m.events));
  obj.Set("data_messages", JsonValue::Uint(m.data_messages));
  obj.Set("data_bytes", JsonValue::Uint(m.data_bytes));
  obj.Set("control_messages", JsonValue::Uint(m.control_messages));
  obj.Set("tuples_moved", JsonValue::Uint(m.tuples_moved));
  obj.Set("longest_path", JsonValue::Uint(m.longest_path));
  obj.Set("initiator_tuples", JsonValue::Uint(m.initiator_tuples));
  obj.Set("metrics", m.registry.ToJson());
  return obj;
}

// Records one scenario (encode parameters into the name: "chain/8").
inline void RecordScenario(const std::string& scenario,
                           const UpdateMetrics& metrics) {
  if (!JsonMode()) return;
  JsonValue obj = ToJson(metrics);
  obj.Set("scenario", JsonValue::Str(scenario));
  JsonScenarios().Push(std::move(obj));
}

// Records a hand-built object, for benches whose scenarios are not a
// plain RunUpdate (recovery, runtime comparisons, ...).
inline void RecordJson(JsonValue obj) {
  if (!JsonMode()) return;
  JsonScenarios().Push(std::move(obj));
}

// Shared main body: parses --json, runs the bench, emits the scenarios.
inline int BenchMain(int argc, char** argv, void (*run)()) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) JsonModeFlag() = true;
  }
  run();
  if (JsonMode()) {
    std::printf("%s\n", JsonScenarios().Dump().c_str());
  }
  return 0;
}

// Builds a testbed, runs one global update from `initiator`, and collects
// the metrics. Exits with a message on setup failure (benches treat setup
// errors as fatal).
inline UpdateMetrics RunUpdate(const GeneratedNetwork& generated,
                               const std::string& initiator,
                               Testbed::Options options = {}) {
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  if (!testbed.ok()) {
    std::fprintf(stderr, "testbed: %s\n",
                 testbed.status().ToString().c_str());
    std::exit(1);
  }
  Testbed& bed = *testbed.value();

  // Exclude setup traffic from the measured counters.
  uint64_t base_total = bed.network().stats().total_messages();
  int64_t start_virtual = bed.network().now_us();

  Stopwatch wall;
  Result<FlowId> update = bed.node(initiator)->StartGlobalUpdate();
  if (!update.ok()) {
    std::fprintf(stderr, "update: %s\n",
                 update.status().ToString().c_str());
    std::exit(1);
  }
  UpdateMetrics metrics;
  metrics.events = bed.network().Run();
  metrics.wall_ms = wall.ElapsedSeconds() * 1000.0;
  metrics.completed = bed.AllComplete(update.value());
  metrics.virtual_us = bed.network().now_us() - start_virtual;

  const TransportStats& stats = bed.network().stats();
  metrics.data_messages = stats.MessagesOfType(MessageType::kUpdateData);
  metrics.data_bytes = stats.BytesOfType(MessageType::kUpdateData);
  metrics.control_messages =
      stats.total_messages() - base_total - metrics.data_messages;

  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    metrics.registry.Merge(node->statistics().metrics().Snapshot());
    if (report == nullptr) continue;
    metrics.tuples_moved += report->tuples_added;
    if (report->longest_path_nodes > metrics.longest_path) {
      metrics.longest_path = report->longest_path_nodes;
    }
  }
  metrics.registry.Merge(stats.Snapshot());
  metrics.initiator_tuples =
      bed.node(initiator)->database().TotalTuples();
  return metrics;
}

}  // namespace bench
}  // namespace codb

#endif  // CODB_BENCH_BENCH_UTIL_H_
