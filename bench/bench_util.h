// Shared helpers for the experiment harness binaries (see DESIGN.md §3):
// running a global update over a generated network and collecting the
// aggregate metrics each experiment reports.

#ifndef CODB_BENCH_BENCH_UTIL_H_
#define CODB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/stopwatch.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace bench {

struct UpdateMetrics {
  bool completed = false;
  int64_t virtual_us = 0;     // network-wide start -> initiator completion
  double wall_ms = 0;         // real compute for the whole simulation
  uint64_t events = 0;        // simulator events processed
  uint64_t data_messages = 0; // kUpdateData messages network-wide
  uint64_t data_bytes = 0;
  uint64_t control_messages = 0;  // request/ack/link-closed/complete
  uint64_t tuples_moved = 0;      // sum of tuples_added across nodes
  uint32_t longest_path = 0;      // max propagation path (nodes)
  size_t initiator_tuples = 0;    // initiator store size afterwards
};

// Builds a testbed, runs one global update from `initiator`, and collects
// the metrics. Exits with a message on setup failure (benches treat setup
// errors as fatal).
inline UpdateMetrics RunUpdate(const GeneratedNetwork& generated,
                               const std::string& initiator,
                               Testbed::Options options = {}) {
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  if (!testbed.ok()) {
    std::fprintf(stderr, "testbed: %s\n",
                 testbed.status().ToString().c_str());
    std::exit(1);
  }
  Testbed& bed = *testbed.value();

  // Exclude setup traffic from the measured counters.
  uint64_t base_total = bed.network().stats().total_messages();
  int64_t start_virtual = bed.network().now_us();

  Stopwatch wall;
  Result<FlowId> update = bed.node(initiator)->StartGlobalUpdate();
  if (!update.ok()) {
    std::fprintf(stderr, "update: %s\n",
                 update.status().ToString().c_str());
    std::exit(1);
  }
  UpdateMetrics metrics;
  metrics.events = bed.network().Run();
  metrics.wall_ms = wall.ElapsedSeconds() * 1000.0;
  metrics.completed = bed.AllComplete(update.value());
  metrics.virtual_us = bed.network().now_us() - start_virtual;

  const TransportStats& stats = bed.network().stats();
  metrics.data_messages = stats.MessagesOfType(MessageType::kUpdateData);
  metrics.data_bytes = stats.BytesOfType(MessageType::kUpdateData);
  metrics.control_messages =
      stats.total_messages() - base_total - metrics.data_messages;

  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    if (report == nullptr) continue;
    metrics.tuples_moved += report->tuples_added;
    if (report->longest_path_nodes > metrics.longest_path) {
      metrics.longest_path = report->longest_path_nodes;
    }
  }
  metrics.initiator_tuples =
      bed.node(initiator)->database().TotalTuples();
  return metrics;
}

}  // namespace bench
}  // namespace codb

#endif  // CODB_BENCH_BENCH_UTIL_H_
