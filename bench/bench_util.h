// Shared helpers for the experiment harness binaries (see DESIGN.md §3):
// running a global update over a generated network and collecting the
// aggregate metrics each experiment reports.

#ifndef CODB_BENCH_BENCH_UTIL_H_
#define CODB_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace codb {
namespace bench {

struct UpdateMetrics {
  bool completed = false;
  int64_t virtual_us = 0;     // network-wide start -> initiator completion
  double wall_ms = 0;         // real compute for the whole simulation
  uint64_t events = 0;        // simulator events processed
  uint64_t data_messages = 0; // kUpdateData messages network-wide
  uint64_t data_bytes = 0;
  uint64_t control_messages = 0;  // request/ack/link-closed/complete
  uint64_t tuples_moved = 0;      // sum of tuples_added across nodes
  uint32_t longest_path = 0;      // max propagation path (nodes)
  size_t initiator_tuples = 0;    // initiator store size afterwards
  // Every node's metric registry merged with the transport counters, so a
  // scenario's machine-readable record carries the full instrument set.
  MetricsSnapshot registry;
};

// --- machine-readable output -------------------------------------------
// Every harness accepts --json: the human tables are suppressed and one
// JSON object per scenario is accumulated instead, emitted as a single
// JSON array on stdout when the bench finishes (tools/run_experiments.sh
// redirects that into bench/BENCH_<name>.json).

inline bool& JsonModeFlag() {
  static bool mode = false;
  return mode;
}

inline bool JsonMode() { return JsonModeFlag(); }

// printf that goes quiet in --json mode; benches route their tables
// through this so stdout stays pure JSON on the machine path.
inline void Print(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline void Print(const char* fmt, ...) {
  if (JsonMode()) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
}

inline JsonValue& JsonScenarios() {
  static JsonValue scenarios = JsonValue::Array();
  return scenarios;
}

inline JsonValue ToJson(const UpdateMetrics& m) {
  JsonValue obj = JsonValue::Object();
  obj.Set("completed", JsonValue::Bool(m.completed));
  obj.Set("virtual_us", JsonValue::Int(m.virtual_us));
  obj.Set("wall_ms", JsonValue::Number(m.wall_ms));
  obj.Set("events", JsonValue::Uint(m.events));
  obj.Set("data_messages", JsonValue::Uint(m.data_messages));
  obj.Set("data_bytes", JsonValue::Uint(m.data_bytes));
  obj.Set("control_messages", JsonValue::Uint(m.control_messages));
  obj.Set("tuples_moved", JsonValue::Uint(m.tuples_moved));
  obj.Set("longest_path", JsonValue::Uint(m.longest_path));
  obj.Set("initiator_tuples", JsonValue::Uint(m.initiator_tuples));
  obj.Set("metrics", m.registry.ToJson());
  return obj;
}

// Records one scenario (encode parameters into the name: "chain/8").
inline void RecordScenario(const std::string& scenario,
                           const UpdateMetrics& metrics) {
  if (!JsonMode()) return;
  JsonValue obj = ToJson(metrics);
  obj.Set("scenario", JsonValue::Str(scenario));
  JsonScenarios().Push(std::move(obj));
}

// Records a hand-built object, for benches whose scenarios are not a
// plain RunUpdate (recovery, runtime comparisons, ...).
inline void RecordJson(JsonValue obj) {
  if (!JsonMode()) return;
  JsonScenarios().Push(std::move(obj));
}

// Shared main body: parses --json, runs the bench, emits the scenarios.
inline int BenchMain(int argc, char** argv, void (*run)()) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) JsonModeFlag() = true;
  }
  run();
  if (JsonMode()) {
    std::printf("%s\n", JsonScenarios().Dump().c_str());
  }
  return 0;
}

// --- membership churn probe --------------------------------------------
// Schedules silent kills against a membership-enabled testbed and measures
// how long the survivors take to *detect* each death (DESIGN.md §11,
// experiment E14). A victim counts as detected once every one of its
// surviving trackers — its pipe neighbours, nodes and super-peers alike —
// has evicted it. Detection is probed by polling between RunFor slices,
// so the measured latency overshoots the true one by at most one step.

class ChurnProbe {
 public:
  explicit ChurnProbe(Testbed& bed) : bed_(bed) {
    for (const auto& node : bed.nodes()) {
      if (node->membership() != nullptr) {
        sessions_[node->id().value] = node->membership();
      }
    }
    for (size_t s = 0; s < bed.super_peer_count(); ++s) {
      if (bed.super_peer(s).membership() != nullptr) {
        sessions_[bed.super_peer(s).id().value] =
            bed.super_peer(s).membership();
      }
    }
  }

  // Snapshots `name`'s tracker set now and schedules its silent kill
  // `after_us` from now (through the event queue, so it lands mid-run).
  void ScheduleKill(const std::string& name, int64_t after_us) {
    Node* victim = bed_.node(name);
    if (victim == nullptr) {
      std::fprintf(stderr, "churn probe: no node named %s\n", name.c_str());
      std::exit(1);
    }
    Victim v;
    v.name = name;
    v.id = victim->id().value;
    for (PeerId tracker : bed_.network().Neighbors(victim->id())) {
      v.trackers.push_back(tracker.value);
    }
    victim_ids_.insert(v.id);
    victims_.push_back(std::move(v));
    size_t index = victims_.size() - 1;
    bed_.network().ScheduleAfter(after_us, [this, index, name] {
      (void)bed_.SilentKillNode(name);
      victims_[index].killed_at_us = bed_.network().now_us();
    });
  }

  // Advances the network in `step_us` slices until every victim has been
  // detected or `horizon_us` has elapsed.
  void AwaitDetection(int64_t step_us, int64_t horizon_us) {
    int64_t deadline = bed_.network().now_us() + horizon_us;
    while (bed_.network().now_us() < deadline) {
      bed_.network().RunFor(step_us);
      bool all = true;
      for (Victim& victim : victims_) {
        if (victim.detected_at_us >= 0) continue;
        if (victim.killed_at_us < 0 || !Detected(victim)) {
          all = false;
          continue;
        }
        victim.detected_at_us = bed_.network().now_us();
      }
      if (all) break;
    }
  }

  bool AllDetected() const {
    for (const Victim& victim : victims_) {
      if (victim.detected_at_us < 0) return false;
    }
    return !victims_.empty();
  }

  double MeanDetectPeriods(int64_t period_us) const {
    double sum = 0;
    size_t count = 0;
    for (const Victim& victim : victims_) {
      if (victim.detected_at_us < 0) continue;
      sum += Periods(victim, period_us);
      ++count;
    }
    return count == 0 ? 0 : sum / static_cast<double>(count);
  }

  double MaxDetectPeriods(int64_t period_us) const {
    double max = 0;
    for (const Victim& victim : victims_) {
      if (victim.detected_at_us < 0) continue;
      if (Periods(victim, period_us) > max) max = Periods(victim, period_us);
    }
    return max;
  }

  // Every eviction a surviving tracker SHOULD have issued: one per
  // (victim, live tracker) pair.
  uint64_t ExpectedEvictions() const {
    uint64_t expected = 0;
    for (const Victim& victim : victims_) {
      for (uint32_t tracker : victim.trackers) {
        if (victim_ids_.count(tracker) != 0) continue;
        if (sessions_.count(tracker) != 0) ++expected;
      }
    }
    return expected;
  }

  // Evictions actually issued network-wide (survivors only; a victim's
  // own frozen counters are excluded).
  uint64_t Evictions() const {
    uint64_t total = 0;
    for (const auto& [id, session] : sessions_) {
      if (victim_ids_.count(id) != 0) continue;
      total += session->counters().evictions;
    }
    return total;
  }

  // Evictions beyond the expected set — i.e. evictions of LIVE peers.
  uint64_t FalseEvictions() const {
    uint64_t expected = ExpectedEvictions();
    uint64_t actual = Evictions();
    return actual > expected ? actual - expected : 0;
  }

  uint64_t FalseSuspicions() const {
    uint64_t total = 0;
    for (const auto& [id, session] : sessions_) {
      if (victim_ids_.count(id) != 0) continue;
      total += session->counters().false_suspicions;
    }
    return total;
  }

 private:
  struct Victim {
    std::string name;
    uint32_t id = 0;
    std::vector<uint32_t> trackers;
    int64_t killed_at_us = -1;
    int64_t detected_at_us = -1;
  };

  bool Detected(const Victim& victim) const {
    for (uint32_t tracker : victim.trackers) {
      if (victim_ids_.count(tracker) != 0) continue;  // dead trackers
      auto it = sessions_.find(tracker);
      if (it == sessions_.end()) continue;  // peer without a session
      if (it->second->IsPresumedAlive(PeerId(victim.id))) return false;
    }
    return true;
  }

  double Periods(const Victim& victim, int64_t period_us) const {
    return static_cast<double>(victim.detected_at_us - victim.killed_at_us) /
           static_cast<double>(period_us);
  }

  Testbed& bed_;
  std::map<uint32_t, HeartbeatSession*> sessions_;
  std::set<uint32_t> victim_ids_;
  std::vector<Victim> victims_;
};

// Builds a testbed, runs one global update from `initiator`, and collects
// the metrics. Exits with a message on setup failure (benches treat setup
// errors as fatal).
inline UpdateMetrics RunUpdate(const GeneratedNetwork& generated,
                               const std::string& initiator,
                               Testbed::Options options = {}) {
  Result<std::unique_ptr<Testbed>> testbed =
      Testbed::Create(generated, options);
  if (!testbed.ok()) {
    std::fprintf(stderr, "testbed: %s\n",
                 testbed.status().ToString().c_str());
    std::exit(1);
  }
  Testbed& bed = *testbed.value();

  // Exclude setup traffic from the measured counters.
  uint64_t base_total = bed.network().stats().total_messages();
  int64_t start_virtual = bed.network().now_us();

  Stopwatch wall;
  Result<FlowId> update = bed.node(initiator)->StartGlobalUpdate();
  if (!update.ok()) {
    std::fprintf(stderr, "update: %s\n",
                 update.status().ToString().c_str());
    std::exit(1);
  }
  UpdateMetrics metrics;
  metrics.events = bed.network().Run();
  metrics.wall_ms = wall.ElapsedSeconds() * 1000.0;
  metrics.completed = bed.AllComplete(update.value());
  metrics.virtual_us = bed.network().now_us() - start_virtual;

  const TransportStats& stats = bed.network().stats();
  metrics.data_messages = stats.MessagesOfType(MessageType::kUpdateData);
  metrics.data_bytes = stats.BytesOfType(MessageType::kUpdateData);
  metrics.control_messages =
      stats.total_messages() - base_total - metrics.data_messages;

  for (const auto& node : bed.nodes()) {
    const UpdateReport* report =
        node->statistics().FindReport(update.value());
    metrics.registry.Merge(node->statistics().metrics().Snapshot());
    if (report == nullptr) continue;
    metrics.tuples_moved += report->tuples_added;
    if (report->longest_path_nodes > metrics.longest_path) {
      metrics.longest_path = report->longest_path_nodes;
    }
  }
  metrics.registry.Merge(stats.Snapshot());
  metrics.initiator_tuples =
      bed.node(initiator)->database().TotalTuples();
  return metrics;
}

}  // namespace bench
}  // namespace codb

#endif  // CODB_BENCH_BENCH_UTIL_H_
