#!/usr/bin/env python3
"""Capture and diff machine-readable bench results.

Two bench JSON dialects exist in this repo:

  * harness benches (bench_update_vs_query, ...): a JSON array of scenario
    objects, each carrying a "scenario" key and wall-time fields
    (wall_ms / update_wall_ms / local_query_wall_us);
  * google-benchmark benches (bench_query_engine): an object whose
    "benchmarks" array has "name" and "real_time" entries.

`capture` runs a set of bench binaries with --json and stores everything in
one combined JSON file; `diff` compares two such files (or two single-bench
JSON files) and prints per-scenario wall-time deltas, optionally failing on
regressions beyond a threshold — the CI perf-smoke job runs exactly that
against the committed BENCH_baseline.json.

Usage:
  compare_bench.py capture BUILD_DIR -o OUT.json [--benches a,b,...]
  compare_bench.py diff BASELINE.json CURRENT.json [--threshold PCT]
                    [--warn-only]
"""

import argparse
import json
import os
import subprocess
import sys

# Benches the perf-smoke job watches by default. topologies and churn
# carry the membership scenarios (E14 scale sweep, E7b silent-death
# churn), whose binaries self-enforce the liveness acceptance gates —
# a capture run doubles as the membership smoke test.
DEFAULT_BENCHES = ["query_engine", "update_vs_query", "topologies", "churn"]

# Wall-time fields of harness scenario objects, in preference order. The
# first present and positive one is the scenario's headline number.
WALL_FIELDS = ["update_wall_ms", "wall_ms", "local_query_wall_us"]

# Quality fields: not wall time, but still diffed — membership detection
# latency in beacon periods (bench_topologies E14, bench_churn E7b). A
# capture-over-capture increase beyond the threshold is a regression of
# the failure detector, not of the machine the bench ran on.
QUALITY_FIELDS = ["detect_mean_periods", "detect_max_periods"]

# Per-class wire-byte fields from the cost ledger (bench_topologies E14).
# Deterministic in the simulator, so any drift is a protocol change, not
# noise. The config-class fields GATE the diff: the delta/projected
# distribution (DESIGN.md §13) took config traffic from 90% of settle
# bytes to a sub-quadratic sliver, and silently growing it back is
# exactly the regression the gate exists to catch. The other classes
# move legitimately with protocol work and stay ADVISORY.
BYTE_FIELDS = [
    "config_broadcast_bytes",
    "cost_config_bytes",
    "cost_data_bytes",
    "cost_retx_bytes",
    "cost_membership_bytes",
]
GATING_BYTE_FIELDS = frozenset([
    "config_broadcast_bytes",
    "cost_config_bytes",
])

# Evaluation-work fields from the semi-naive update sweep (E17 in
# bench_update_vs_query). Deterministic row counts, so these GATE the
# diff like wall time does: growth in incr_eval_rows means the
# incremental path started re-scanning stores instead of deltas — the
# regression the semi-naive machinery exists to prevent.
WORK_FIELDS = ["incr_eval_rows"]


def extract_scenarios(name, doc):
    """Flattens one bench document into {scenario_label: (value, unit)}."""
    out = {}
    if isinstance(doc, dict) and "benchmarks" in doc:
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            label = "%s/%s" % (name, bench["name"])
            out[label] = (float(bench["real_time"]),
                          bench.get("time_unit", "ns"))
        return out
    if isinstance(doc, list):
        for scenario in doc:
            if not isinstance(scenario, dict) or "scenario" not in scenario:
                continue
            label = "%s/%s" % (name, scenario["scenario"])
            for field in WALL_FIELDS + QUALITY_FIELDS + BYTE_FIELDS \
                    + WORK_FIELDS:
                value = scenario.get(field)
                if isinstance(value, (int, float)) and value > 0:
                    if field in QUALITY_FIELDS:
                        unit = "periods"
                    elif field in BYTE_FIELDS:
                        unit = "bytes"
                    elif field in WORK_FIELDS:
                        unit = "rows"
                    else:
                        unit = "us" if field.endswith("_us") else "ms"
                    out["%s:%s" % (label, field)] = (float(value), unit)
        return out
    return out


def load_set(path):
    """Loads a combined capture file or a single-bench JSON file."""
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and "codb_bench_set" in doc:
        flat = {}
        for name, sub in doc["benches"].items():
            flat.update(extract_scenarios(name, sub))
        return flat
    name = os.path.basename(path)
    for prefix in ("BENCH_",):
        if name.startswith(prefix):
            name = name[len(prefix):]
    name = name.rsplit(".", 1)[0]
    return extract_scenarios(name, doc)


def capture(args):
    benches = args.benches.split(",") if args.benches else DEFAULT_BENCHES
    combined = {"codb_bench_set": 1, "benches": {}}
    for bench in benches:
        binary = os.path.join(args.build_dir, "bench", "bench_" + bench)
        if not os.path.exists(binary):
            print("capture: missing %s" % binary, file=sys.stderr)
            return 1
        result = subprocess.run([binary, "--json"], capture_output=True,
                                text=True, check=True)
        combined["benches"][bench] = json.loads(result.stdout)
    with open(args.output, "w") as f:
        json.dump(combined, f, indent=1)
        f.write("\n")
    print("captured %d benches -> %s" % (len(benches), args.output))
    return 0


def diff(args):
    baseline = load_set(args.baseline)
    current = load_set(args.current)
    rows = []
    regressions = []
    for label in sorted(set(baseline) | set(current)):
        if label not in baseline:
            rows.append((label, None, current[label][0], current[label][1],
                         "new"))
            continue
        if label not in current:
            rows.append((label, baseline[label][0], None, baseline[label][1],
                         "gone"))
            continue
        base, unit = baseline[label]
        cur = current[label][0]
        pct = (cur - base) / base * 100.0 if base > 0 else 0.0
        note = "%+.1f%%" % pct
        if args.threshold is not None and pct > args.threshold:
            field = label.rsplit(":", 1)[-1]
            if unit == "bytes" and field not in GATING_BYTE_FIELDS:
                note += "  ADVISORY"
            else:
                note += "  REGRESSION"
                regressions.append(label)
        rows.append((label, base, cur, unit, note))

    width = max((len(r[0]) for r in rows), default=8)
    print("%-*s | %12s | %12s | %s" % (width, "scenario", "baseline",
                                       "current", "delta"))
    for label, base, cur, unit, note in rows:
        fmt = lambda v: "%10.2f%s" % (v, unit) if v is not None else "-"
        print("%-*s | %12s | %12s | %s" % (width, label, fmt(base),
                                           fmt(cur), note))
    if regressions:
        print("\n%d scenario(s) regressed beyond %.0f%%:" %
              (len(regressions), args.threshold))
        for label in regressions:
            print("  " + label)
        return 0 if args.warn_only else 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_capture = sub.add_parser("capture")
    p_capture.add_argument("build_dir")
    p_capture.add_argument("-o", "--output", required=True)
    p_capture.add_argument("--benches",
                           help="comma-separated bench names (without "
                                "the bench_ prefix)")
    p_capture.set_defaults(func=capture)

    p_diff = sub.add_parser("diff")
    p_diff.add_argument("baseline")
    p_diff.add_argument("current")
    p_diff.add_argument("--threshold", type=float,
                        help="fail if any scenario slows down by more "
                             "than this percentage")
    p_diff.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    p_diff.set_defaults(func=diff)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
