// Experiment E9 (extension) — result batching.
//
// The paper ships each rule activation's results as one message; real
// transports cap message sizes. This harness sweeps the per-message tuple
// cap and reports the message count / byte overhead / completion-time
// trade-off on a data-heavy chain.
//
// Expected shape: smaller batches mean proportionally more messages and
// a little fixed-header overhead — but *faster* completion: the importer
// starts recomputing (and forwarding) as soon as the first batch lands,
// pipelining the chain instead of waiting for whole-result messages.
// Final stores are identical in all configurations.

#include <cstdio>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print(
      "E9: result batching (6-node chain, 500 tuples/node, copy rules)\n");
  Print("%22s | %8s %12s %10s %11s\n", "batch cap", "dataM",
              "bytes", "virt(us)", "bytes/msg");

  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 500;
  GeneratedNetwork generated = MakeChain(options);

  // `lossy` repeats the sweep over a 1%-drop network with at-least-once
  // delivery enabled: bigger batches now risk bigger retransmissions, so
  // the sweet spot shifts toward smaller caps.
  for (bool lossy : {false, true}) {
    for (size_t cap : {0u, 1000u, 250u, 50u, 10u}) {
      Testbed::Options testbed_options;
      testbed_options.node.update.max_batch_tuples = cap;
      if (lossy) {
        testbed_options.fault = FaultProfile::Drop(0.01, /*seed=*/42);
        testbed_options.node.reliability.enabled = true;
        testbed_options.node.reliability.retransmit_base_us = 20'000;
        testbed_options.node.reliability.max_retries = 10;
      }
      UpdateMetrics metrics = RunUpdate(generated, "n0", testbed_options);
      char label[40];
      if (cap == 0) {
        std::snprintf(label, sizeof label, "unlimited%s",
                      lossy ? "/lossy1pct" : "");
      } else {
        std::snprintf(label, sizeof label, "%zu%s", cap,
                      lossy ? "/lossy1pct" : "");
      }
      RecordScenario(std::string("batch_cap/") + label, metrics);
      Print("%22s | %8llu %12llu %10lld %11.1f%s\n", label,
                  static_cast<unsigned long long>(metrics.data_messages),
                  static_cast<unsigned long long>(metrics.data_bytes),
                  static_cast<long long>(metrics.virtual_us),
                  metrics.data_messages > 0
                      ? static_cast<double>(metrics.data_bytes) /
                            static_cast<double>(metrics.data_messages)
                      : 0.0,
                  metrics.completed ? "" : "  INCOMPLETE");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
