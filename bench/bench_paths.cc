// Experiment E4 — update-propagation paths (paper, section 3 footnote 1:
// maximal simple dependency paths; section 4: "longest update propagation
// path" statistic).
//
// Sweeps grid shapes and random-graph densities and compares the longest
// propagation path *observed* during a global update with the longest
// simple path in the static link-dependency graph (its upper bound).
//
// Expected shape: observed <= bound, where a simple path of L edges in
// the link graph chains L+1 rules and therefore spans L+2 nodes; both
// grow with graph density, saturating near the node count.

#include <cstdio>

#include "bench_util.h"
#include "core/link_graph.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E4: propagation paths vs link-graph bound\n");
  Print("%-14s %6s %6s | %10s %12s\n", "network", "nodes", "rules",
              "observed", "graph bound");

  // Grids.
  for (auto [rows, cols] : {std::pair{2, 2}, {2, 4}, {3, 3}, {4, 4}}) {
    WorkloadOptions options;
    options.grid_rows = rows;
    options.grid_cols = cols;
    options.tuples_per_node = 5;
    GeneratedNetwork generated = MakeGrid(options);
    LinkGraph graph = LinkGraph::Build(generated.config);
    UpdateMetrics metrics = RunUpdate(generated, "n0");
    int bound = graph.LongestSimplePath() + 2;
    if (JsonMode()) {
      JsonValue obj = ToJson(metrics);
      obj.Set("scenario", JsonValue::Str("grid/" + std::to_string(rows) +
                                         "x" + std::to_string(cols)));
      obj.Set("graph_bound", JsonValue::Int(bound));
      RecordJson(std::move(obj));
    }
    Print("%-11s%dx%d %6d %6zu | %10u %12d\n", "grid ", rows, cols,
                rows * cols, generated.config.rules().size(),
                metrics.longest_path, bound);
  }

  // Random graphs with growing density.
  for (double p : {0.15, 0.3, 0.5, 0.8}) {
    WorkloadOptions options;
    options.nodes = 10;
    options.tuples_per_node = 5;
    options.edge_probability = p;
    options.seed = 7;
    GeneratedNetwork generated = MakeRandom(options);
    LinkGraph graph = LinkGraph::Build(generated.config);
    UpdateMetrics metrics = RunUpdate(generated, "n0");
    int bound = graph.LongestSimplePath(/*max_explored=*/2'000'000) + 2;
    if (JsonMode()) {
      JsonValue obj = ToJson(metrics);
      obj.Set("scenario",
              JsonValue::Str("random/p=" + std::to_string(p)));
      obj.Set("graph_bound", JsonValue::Int(bound));
      RecordJson(std::move(obj));
    }
    Print("%-9s p=%.2f %6d %6zu | %10u %12d\n", "random", p,
                options.nodes, generated.config.rules().size(),
                metrics.longest_path, bound);
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
