// Experiment E4 — update-propagation paths (paper, section 3 footnote 1:
// maximal simple dependency paths; section 4: "longest update propagation
// path" statistic).
//
// Sweeps grid shapes and random-graph densities and compares the longest
// propagation path *observed* during a global update with the longest
// simple path in the static link-dependency graph (its upper bound).
//
// Expected shape: observed <= bound, where a simple path of L edges in
// the link graph chains L+1 rules and therefore spans L+2 nodes; both
// grow with graph density, saturating near the node count.

#include <cstdio>

#include "bench_util.h"
#include "core/link_graph.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  std::printf("E4: propagation paths vs link-graph bound\n");
  std::printf("%-14s %6s %6s | %10s %12s\n", "network", "nodes", "rules",
              "observed", "graph bound");

  // Grids.
  for (auto [rows, cols] : {std::pair{2, 2}, {2, 4}, {3, 3}, {4, 4}}) {
    WorkloadOptions options;
    options.grid_rows = rows;
    options.grid_cols = cols;
    options.tuples_per_node = 5;
    GeneratedNetwork generated = MakeGrid(options);
    LinkGraph graph = LinkGraph::Build(generated.config);
    UpdateMetrics metrics = RunUpdate(generated, "n0");
    std::printf("%-11s%dx%d %6d %6zu | %10u %12d\n", "grid ", rows, cols,
                rows * cols, generated.config.rules().size(),
                metrics.longest_path, graph.LongestSimplePath() + 2);
  }

  // Random graphs with growing density.
  for (double p : {0.15, 0.3, 0.5, 0.8}) {
    WorkloadOptions options;
    options.nodes = 10;
    options.tuples_per_node = 5;
    options.edge_probability = p;
    options.seed = 7;
    GeneratedNetwork generated = MakeRandom(options);
    LinkGraph graph = LinkGraph::Build(generated.config);
    UpdateMetrics metrics = RunUpdate(generated, "n0");
    std::printf("%-9s p=%.2f %6d %6zu | %10u %12d\n", "random", p,
                options.nodes, generated.config.rules().size(),
                metrics.longest_path,
                graph.LongestSimplePath(/*max_explored=*/2'000'000) + 2);
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main() {
  codb::bench::Run();
  return 0;
}
