// Experiment E6 — dedup ablation (paper, section 3: "For performance
// reasons, it is important to avoid duplication in producing and
// propagating data", which motivates both the receiver-side T' = T \ R
// dedup and the per-link sent-sets).
//
// Runs the same grid update under all four dedup configurations and
// reports the traffic each produces. Grids deliver the same data along
// multiple simple paths, which is exactly the duplication the two
// mechanisms suppress.
//
// Expected shape: full dedup is the floor; disabling both explodes the
// data-message count while final stores stay identical (set semantics).

#include <cstdio>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E6: dedup ablation (4x4 grid, 20 tuples/node)\n");
  Print("%-22s | %7s %10s %9s %9s\n", "configuration", "dataM",
              "bytes", "virt(us)", "wall(ms)");

  WorkloadOptions options;
  options.grid_rows = 4;
  options.grid_cols = 4;
  options.tuples_per_node = 20;
  GeneratedNetwork generated = MakeGrid(options);

  struct Case {
    const char* name;
    bool dedup_received;
    bool dedup_sent;
  };
  const Case cases[] = {
      {"full dedup (paper)", true, true},
      {"no T'=T\\R dedup", false, true},
      {"no sent-set dedup", true, false},
      {"no dedup at all", false, false},
  };

  for (const Case& c : cases) {
    Testbed::Options testbed_options;
    testbed_options.node.update.dedup_received = c.dedup_received;
    testbed_options.node.update.dedup_sent = c.dedup_sent;
    UpdateMetrics metrics = RunUpdate(generated, "n0", testbed_options);
    RecordScenario(c.name, metrics);
    Print("%-22s | %7llu %10llu %9lld %9.2f%s\n", c.name,
                static_cast<unsigned long long>(metrics.data_messages),
                static_cast<unsigned long long>(metrics.data_bytes),
                static_cast<long long>(metrics.virtual_us),
                metrics.wall_ms,
                metrics.completed ? "" : "  INCOMPLETE");
  }
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
