// Experiment E10 (extension) — simulator vs. real-thread runtime.
//
// Runs the same global update over the deterministic discrete-event
// simulator and over the ThreadedNetwork (one delivery thread per peer,
// wall-clock latencies) and compares outcomes and wall time. The data
// outcome must be identical (ring derivations are order-independent);
// the threaded runtime pays real latency waits, the simulator skips them.

#include <cstdio>

#include "bench_util.h"
#include "util/stopwatch.h"

namespace codb {
namespace bench {
namespace {

struct Outcome {
  double wall_ms = 0;
  bool completed = false;
  size_t tuples_at_n0 = 0;
  uint64_t data_messages = 0;
};

Outcome RunOnce(const GeneratedNetwork& generated, bool threaded) {
  Testbed::Options options;
  options.threaded = threaded;
  options.node.link_profile.latency_us = 200;
  options.node.link_profile.bandwidth_bpus = 0;
  std::unique_ptr<Testbed> bed =
      std::move(Testbed::Create(generated, options)).value();

  Stopwatch wall;
  FlowId update = bed->node("n0")->StartGlobalUpdate().value();
  bed->network().Run();
  Outcome outcome;
  outcome.wall_ms = wall.ElapsedSeconds() * 1000.0;
  outcome.completed = bed->AllComplete(update);
  outcome.tuples_at_n0 = bed->node("n0")->database().Find("d")->size();
  outcome.data_messages =
      bed->network().stats().MessagesOfType(MessageType::kUpdateData);
  return outcome;
}

void Run() {
  Print(
      "E10: simulator vs threaded runtime (rings, 10 tuples/node, "
      "200us links)\n");
  Print("%5s | %12s %12s | %10s %10s | %8s\n", "nodes", "sim wall",
              "thr wall", "sim msgs", "thr msgs", "match");

  for (int n : {4, 8, 12}) {
    WorkloadOptions options;
    options.nodes = n;
    options.tuples_per_node = 10;
    GeneratedNetwork generated = MakeRing(options);

    Outcome sim = RunOnce(generated, /*threaded=*/false);
    Outcome thr = RunOnce(generated, /*threaded=*/true);
    bool match = sim.completed && thr.completed &&
                 sim.tuples_at_n0 == thr.tuples_at_n0;
    if (JsonMode()) {
      JsonValue obj = JsonValue::Object();
      obj.Set("scenario", JsonValue::Str("ring/" + std::to_string(n)));
      obj.Set("sim_wall_ms", JsonValue::Number(sim.wall_ms));
      obj.Set("thr_wall_ms", JsonValue::Number(thr.wall_ms));
      obj.Set("sim_data_messages", JsonValue::Uint(sim.data_messages));
      obj.Set("thr_data_messages", JsonValue::Uint(thr.data_messages));
      obj.Set("match", JsonValue::Bool(match));
      RecordJson(std::move(obj));
    }
    Print("%5d | %10.2fms %10.2fms | %10llu %10llu | %8s\n", n,
                sim.wall_ms, thr.wall_ms,
                static_cast<unsigned long long>(sim.data_messages),
                static_cast<unsigned long long>(thr.data_messages),
                match ? "yes" : "NO");
  }
  Print(
      "\nsame messages, same final stores; the threaded runtime pays the\n"
      "real 200us link latencies the simulator only accounts virtually.\n");
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
