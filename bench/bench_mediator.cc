// Experiment E8 — mediator nodes (paper, section 2: a node whose LDB is
// absent still participates, relaying requests and data, with joins and
// projections executed in the Wrapper).
//
// Compares chains where every k-th node is a mediator against all-database
// chains of the same length: the final answer at the initiator must be
// identical; mediators add relay hops but no durable storage.
//
// Expected shape: same tuples delivered; virtual time roughly equal (same
// hop count); mediator stores hold relay copies that a real deployment
// would discard after the update.

#include <cstdio>

#include "bench_util.h"

namespace codb {
namespace bench {
namespace {

void Run() {
  Print("E8: mediator relays on 9-node chains (15 tuples/node)\n");
  Print("%-18s | %9s %7s %12s %14s\n", "configuration", "virt(us)",
              "dataM", "tuples@n0", "mediators");

  for (int mediator_every : {0, 3, 2}) {
    WorkloadOptions options;
    options.nodes = 9;
    options.tuples_per_node = 15;
    options.mediator_every = mediator_every;
    GeneratedNetwork generated = MakeChain(options);

    // Mediators contribute no data of their own.
    int mediators = 0;
    for (const NodeDecl& node : generated.config.nodes()) {
      if (node.mediator) {
        generated.seeds.erase(node.name);
        ++mediators;
      }
    }

    UpdateMetrics metrics = RunUpdate(generated, "n0");
    char label[32];
    std::snprintf(label, sizeof label, "every %d mediator",
                  mediator_every);
    RecordScenario(mediator_every == 0 ? "no_mediators" : label, metrics);
    Print("%-18s | %9lld %7llu %12zu %14d%s\n",
                mediator_every == 0 ? "no mediators" : label,
                static_cast<long long>(metrics.virtual_us),
                static_cast<unsigned long long>(metrics.data_messages),
                metrics.initiator_tuples, mediators,
                metrics.completed ? "" : "  INCOMPLETE");
  }
  Print(
      "\nnote: tuples@n0 shrinks with mediator count only because "
      "mediators\nown no data; every database node's data still reaches "
      "n0 through them.\n");
}

}  // namespace
}  // namespace bench
}  // namespace codb

int main(int argc, char** argv) {
  return codb::bench::BenchMain(argc, argv, codb::bench::Run);
}
