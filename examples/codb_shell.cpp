// codb_shell: a scriptable driver for a simulated coDB network.
//
// Reads commands from stdin (one per line; '#' starts a comment):
//
//   config            begin a coordination-rules file; lines until 'end'
//   seed NODE REL v1 v2 ..     insert one tuple (types from the schema)
//   update NODE               run a global update rooted at NODE
//   refresh NODE               refresh update (re-derive; deletions
//                              at sources propagate)
//   delete NODE REL v1 v2 ..   delete one tuple from a local relation
//   query NODE QUERY...        distributed query, streams results
//   local NODE QUERY...        local-only query
//   explain NODE QUERY...      print the local execution plan
//   show NODE REL              print a relation
//   report NODE                the node's update report
//   discover NODE              the node's discovery view
//   stats                      collect + print the final report
//   quit
//
// Flags: --node-threads N gives every node an N-way evaluator pool
// (DESIGN.md §10); results are identical at any N, only wall time moves.
//
// Example session:
//
//   build/examples/codb_shell <<'EOF'
//   config
//   node left
//     relation d(k:int, v:string)
//   node right
//     relation d(k:int, v:string)
//   rule pull left <- right : d(K, V) :- d(K, V).
//   end
//   seed right d 1 'hello'
//   seed right d 2 'world'
//   update left
//   show left d
//   stats
//   quit
//   EOF

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/super_peer.h"
#include "net/network.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "relation/printer.h"
#include "util/string_util.h"

namespace codb {
namespace {

class Shell {
 public:
  void set_node_threads(int threads) {
    node_options_.exec.num_threads = threads;
  }

  int RunFrom(std::istream& in) {
    super_peer_ = SuperPeer::Create(&network_);
    std::string line;
    while (std::getline(in, line)) {
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed == "quit") break;
      if (!Dispatch(std::string(trimmed), in)) return 1;
    }
    return 0;
  }

 private:
  bool Fail(const std::string& message) {
    std::cerr << "error: " << message << "\n";
    return false;
  }

  Node* FindNode(const std::string& name) {
    for (auto& node : nodes_) {
      if (node->name() == name) return node.get();
    }
    return nullptr;
  }

  bool Dispatch(const std::string& line, std::istream& in) {
    std::istringstream words(line);
    std::string command;
    words >> command;

    if (command == "config") return DoConfig(in);
    if (command == "seed") return DoSeed(words);
    if (command == "delete") return DoDelete(words);
    if (command == "update") return DoUpdate(words, /*refresh=*/false);
    if (command == "refresh") return DoUpdate(words, /*refresh=*/true);
    if (command == "query") return DoQuery(words, /*local=*/false);
    if (command == "local") return DoQuery(words, /*local=*/true);
    if (command == "explain") return DoExplain(words);
    if (command == "show") return DoShow(words);
    if (command == "report") return DoReport(words);
    if (command == "discover") return DoDiscover(words);
    if (command == "stats") return DoStats();
    return Fail("unknown command '" + command + "'");
  }

  bool DoConfig(std::istream& in) {
    std::string text;
    std::string line;
    while (std::getline(in, line)) {
      if (Trim(line) == "end") break;
      text += line;
      text += "\n";
    }
    Result<NetworkConfig> config = NetworkConfig::Parse(text);
    if (!config.ok()) return Fail(config.status().ToString());

    // Create any nodes we have not seen yet.
    for (const NodeDecl& decl : config.value().nodes()) {
      if (FindNode(decl.name) != nullptr) continue;
      DatabaseSchema schema;
      for (const RelationSchema& rel : decl.relations) {
        Status added = schema.AddRelation(rel);
        if (!added.ok()) return Fail(added.ToString());
      }
      Result<std::unique_ptr<Node>> node =
          Node::Create(&network_, decl.name, std::move(schema),
                       decl.mediator, node_options_);
      if (!node.ok()) return Fail(node.status().ToString());
      nodes_.push_back(std::move(node).value());
    }
    Status loaded = super_peer_->LoadConfig(config.value());
    if (!loaded.ok()) return Fail(loaded.ToString());
    Status broadcast = super_peer_->BroadcastConfig();
    if (!broadcast.ok()) return Fail(broadcast.ToString());
    network_.Run();
    std::cout << "configured " << config.value().nodes().size()
              << " node(s), " << config.value().rules().size()
              << " rule(s)\n";
    return true;
  }

  bool DoSeed(std::istringstream& words) {
    std::string node_name;
    std::string relation;
    words >> node_name >> relation;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    Relation* rel = node->database().Find(relation);
    if (rel == nullptr) return Fail("no relation '" + relation + "'");

    std::vector<Value> values;
    std::string token;
    for (int i = 0; i < rel->arity() && (words >> token); ++i) {
      const Attribute& attr =
          rel->schema().attributes()[static_cast<size_t>(i)];
      switch (attr.type) {
        case ValueType::kInt:
          values.push_back(Value::Int(std::stoll(token)));
          break;
        case ValueType::kDouble:
          values.push_back(Value::Double(std::stod(token)));
          break;
        case ValueType::kString: {
          std::string s = token;
          if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
            s = s.substr(1, s.size() - 2);
          }
          values.push_back(Value::String(std::move(s)));
          break;
        }
        case ValueType::kNull:
          return Fail("cannot seed marked nulls");
      }
    }
    if (static_cast<int>(values.size()) != rel->arity()) {
      return Fail("expected " + std::to_string(rel->arity()) + " values");
    }
    rel->Insert(Tuple(std::move(values)));
    return true;
  }

  bool DoDelete(std::istringstream& words) {
    std::string node_name;
    std::string relation;
    words >> node_name >> relation;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    Relation* rel = node->database().Find(relation);
    if (rel == nullptr) return Fail("no relation '" + relation + "'");
    std::vector<Value> values;
    std::string token;
    for (int i = 0; i < rel->arity() && (words >> token); ++i) {
      const Attribute& attr =
          rel->schema().attributes()[static_cast<size_t>(i)];
      switch (attr.type) {
        case ValueType::kInt:
          values.push_back(Value::Int(std::stoll(token)));
          break;
        case ValueType::kDouble:
          values.push_back(Value::Double(std::stod(token)));
          break;
        case ValueType::kString: {
          std::string s = token;
          if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
            s = s.substr(1, s.size() - 2);
          }
          values.push_back(Value::String(std::move(s)));
          break;
        }
        case ValueType::kNull:
          return Fail("cannot name marked nulls");
      }
    }
    Tuple victim(std::move(values));
    std::vector<Tuple> kept;
    for (const Tuple& t : rel->rows()) {
      if (!(t == victim)) kept.push_back(t);
    }
    if (kept.size() == rel->size()) return Fail("tuple not found");
    rel->Clear();
    for (const Tuple& t : kept) rel->Insert(t);
    return true;
  }

  bool DoUpdate(std::istringstream& words, bool refresh) {
    std::string node_name;
    words >> node_name;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    Result<FlowId> update =
        refresh ? node->StartGlobalRefresh() : node->StartGlobalUpdate();
    if (!update.ok()) return Fail(update.status().ToString());
    network_.Run();
    std::cout << update.value().ToString() << " "
              << (node->update_manager()->IsComplete(update.value())
                      ? "complete"
                      : "INCOMPLETE")
              << "\n";
    return true;
  }

  bool DoQuery(std::istringstream& words, bool local) {
    std::string node_name;
    words >> node_name;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    std::string text;
    std::getline(words, text);
    Result<ConjunctiveQuery> query = ParseQuery(text);
    if (!query.ok()) return Fail(query.status().ToString());

    Result<std::vector<Tuple>> answers = Status::Internal("unset");
    if (local) {
      answers = node->LocalQuery(query.value());
    } else {
      Result<FlowId> id = node->StartQuery(query.value());
      if (!id.ok()) return Fail(id.status().ToString());
      network_.Run();
      answers = node->QueryAnswers(id.value());
    }
    if (!answers.ok()) return Fail(answers.status().ToString());

    std::vector<std::string> header;
    for (const Term& term : query.value().head[0].terms) {
      header.push_back(term.is_var() ? term.var() : term.ToString());
    }
    std::cout << FormatTable(header, answers.value());
    return true;
  }

  bool DoExplain(std::istringstream& words) {
    std::string node_name;
    words >> node_name;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    std::string text;
    std::getline(words, text);
    Result<ConjunctiveQuery> query = ParseQuery(text);
    if (!query.ok()) return Fail(query.status().ToString());
    std::vector<std::string> output;
    for (const Term& term : query.value().head[0].terms) {
      if (term.is_var()) output.push_back(term.var());
    }
    Result<CompiledQuery> compiled = CompiledQuery::Compile(
        query.value(), node->database().Schema(), output);
    if (!compiled.ok()) return Fail(compiled.status().ToString());
    std::cout << compiled.value().ExplainPlan(node->database());
    return true;
  }

  bool DoShow(std::istringstream& words) {
    std::string node_name;
    std::string relation;
    words >> node_name >> relation;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    const Relation* rel = node->database().Find(relation);
    if (rel == nullptr) return Fail("no relation '" + relation + "'");
    std::cout << FormatRelation(*rel);
    return true;
  }

  bool DoReport(std::istringstream& words) {
    std::string node_name;
    words >> node_name;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    std::cout << node->Report();
    return true;
  }

  bool DoDiscover(std::istringstream& words) {
    std::string node_name;
    words >> node_name;
    Node* node = FindNode(node_name);
    if (node == nullptr) return Fail("no node '" + node_name + "'");
    std::cout << node->DiscoveryView();
    return true;
  }

  bool DoStats() {
    Status requested = super_peer_->RequestStats();
    if (!requested.ok()) return Fail(requested.ToString());
    network_.Run();
    std::cout << super_peer_->FinalReport();
    return true;
  }

  Network network_;
  Node::Options node_options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<SuperPeer> super_peer_;
};

}  // namespace
}  // namespace codb

int main(int argc, char** argv) {
  codb::Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--node-threads" && i + 1 < argc) {
      shell.set_node_threads(std::stoi(argv[++i]));
    } else if (arg.rfind("--node-threads=", 0) == 0) {
      shell.set_node_threads(
          std::stoi(arg.substr(std::string("--node-threads=").size())));
    } else {
      std::cerr << "unknown flag '" << arg
                << "' (supported: --node-threads N)\n";
      return 1;
    }
  }
  return shell.RunFrom(std::cin);
}
