// Quickstart: the smallest complete coDB deployment.
//
// Two database peers with different schemas, one GLAV coordination rule, a
// super-peer that broadcasts the rule file, one global update, and a local
// query that afterwards needs no network at all.
//
//   build/examples/quickstart

#include <iostream>

#include "core/node.h"
#include "core/super_peer.h"
#include "net/network.h"
#include "query/parser.h"
#include "relation/printer.h"

using codb::ConjunctiveQuery;
using codb::Database;
using codb::DatabaseSchema;
using codb::FlowId;
using codb::Network;
using codb::NetworkConfig;
using codb::Node;
using codb::ParseQuery;
using codb::ParseSchema;
using codb::Relation;
using codb::Result;
using codb::SuperPeer;
using codb::Tuple;
using codb::Value;

namespace {

// Aborts with a message if a Status/Result is not OK.
template <typename T>
T Check(codb::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const codb::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  Network network;

  // -- 1. Two peers with different schemas ---------------------------------
  DatabaseSchema warehouse_schema;
  Check(warehouse_schema.AddRelation(
            Check(ParseSchema("stock(sku:int, quantity:int)"), "schema")),
        "add relation");

  DatabaseSchema shop_schema;
  Check(shop_schema.AddRelation(
            Check(ParseSchema("available(sku:int)"), "schema")),
        "add relation");

  auto warehouse = Check(
      Node::Create(&network, "warehouse", warehouse_schema), "warehouse");
  auto shop = Check(Node::Create(&network, "shop", shop_schema), "shop");

  // Seed the warehouse.
  Relation* stock = warehouse->database().Find("stock");
  stock->Insert(Tuple{Value::Int(100), Value::Int(3)});
  stock->Insert(Tuple{Value::Int(101), Value::Int(0)});
  stock->Insert(Tuple{Value::Int(102), Value::Int(12)});

  // -- 2. The coordination-rules file --------------------------------------
  // The shop imports the SKUs the warehouse actually has in stock. This is
  // a GLAV rule: head over the shop's schema, body (with a comparison)
  // over the warehouse's schema.
  const char* rules = R"(
node warehouse
  relation stock(sku:int, quantity:int)
node shop
  relation available(sku:int)
rule in_stock shop <- warehouse : available(S) :- stock(S, Q), Q > 0.
)";

  std::unique_ptr<SuperPeer> super_peer = SuperPeer::Create(&network);
  Check(super_peer->LoadConfigText(rules), "load rules");
  Check(super_peer->BroadcastConfig(), "broadcast");
  network.Run();  // let the configuration and pipes settle

  // -- 3. Global update: materialize the imports ---------------------------
  FlowId update = Check(shop->StartGlobalUpdate(), "start update");
  network.Run();

  std::cout << "update " << update.ToString() << " complete: "
            << std::boolalpha
            << shop->update_manager()->IsComplete(update) << "\n\n";

  // -- 4. Query locally: no network involved any more ----------------------
  ConjunctiveQuery query =
      Check(ParseQuery("q(S) :- available(S)."), "parse query");
  std::vector<Tuple> answers =
      Check(shop->LocalQuery(query), "local query");

  std::cout << "SKUs available at the shop (queried locally):\n";
  std::cout << codb::FormatTable({"sku"}, answers);

  // -- 5. The node report ("UI" of Figure 1) -------------------------------
  std::cout << "\n" << shop->Report();
  std::cout << "\n" << codb::FormatRelation(
      *shop->database().Find("available"));
  return 0;
}
