// Trace capture: record a distributed flow trace of one global update.
//
// Builds a three-node chain (n0 <- n1 <- n2, copy rules), switches the
// flow tracer on, runs the update, and writes both export formats:
//
//   trace_capture.json   — Chrome trace_event; load in chrome://tracing
//                          or https://ui.perfetto.dev (one process per
//                          peer, flow arrows on every message hop)
//   trace_capture.jsonl  — one structured event per line
//
// Inspect the span tree and critical path in the terminal with
//   build/tools/codb_trace trace_capture.json
//
//   build/examples/trace_capture

#include <iostream>

#include "obs/trace.h"
#include "workload/testbed.h"
#include "workload/topology_gen.h"

int main() {
  codb::WorkloadOptions options;
  options.nodes = 3;
  options.tuples_per_node = 4;
  codb::GeneratedNetwork generated = codb::MakeChain(options);

  codb::Result<std::unique_ptr<codb::Testbed>> testbed =
      codb::Testbed::Create(generated);
  if (!testbed.ok()) {
    std::cerr << "testbed: " << testbed.status().ToString() << "\n";
    return 1;
  }
  codb::Testbed& bed = *testbed.value();

  // Tracing is off by default; switch it on only around the region of
  // interest (setup traffic above is not recorded).
  codb::Tracer& tracer = codb::Tracer::Global();
  tracer.Enable();

  codb::Result<codb::FlowId> update =
      bed.node("n0")->StartGlobalUpdate();
  if (!update.ok()) {
    std::cerr << "update: " << update.status().ToString() << "\n";
    return 1;
  }
  bed.network().Run();
  tracer.Disable();

  std::cout << "update " << update.value().ToString() << " complete: "
            << std::boolalpha << bed.AllComplete(update.value()) << "\n"
            << "recorded " << tracer.FinishedSpans().size() << " spans, "
            << tracer.Edges().size() << " message hops\n";

  codb::Status written = tracer.WriteChromeTrace("trace_capture.json");
  if (!written.ok()) {
    std::cerr << "write: " << written.ToString() << "\n";
    return 1;
  }
  written = tracer.WriteJsonl("trace_capture.jsonl");
  if (!written.ok()) {
    std::cerr << "write: " << written.ToString() << "\n";
    return 1;
  }

  std::cout << "wrote trace_capture.json (chrome://tracing) and "
               "trace_capture.jsonl\n"
               "next: build/tools/codb_trace trace_capture.json\n";
  return 0;
}
