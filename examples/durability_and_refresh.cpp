// Durability and maintenance: the write-ahead journal, crash recovery,
// refresh updates (deletion propagation), and key-constraint handling —
// the operational side of running a coDB node for real.
//
//   build/examples/durability_and_refresh

#include <cstdio>
#include <iostream>

#include "core/node.h"
#include "core/super_peer.h"
#include "net/network.h"
#include "query/parser.h"
#include "relation/printer.h"
#include "relation/wal.h"

namespace {

template <typename T>
T Check(codb::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const codb::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

codb::DatabaseSchema AccountSchema() {
  codb::DatabaseSchema schema;
  Check(schema.AddRelation(
            Check(codb::ParseSchema("account(id:int, balance:int)"),
                  "schema")),
        "add");
  return schema;
}

}  // namespace

int main() {
  using codb::Node;
  using codb::Tuple;
  using codb::Value;

  codb::Network network;
  auto branch = Check(Node::Create(&network, "branch", AccountSchema()),
                      "branch");
  auto hq = Check(Node::Create(&network, "hq", AccountSchema()), "hq");

  branch->database().Find("account")->Insert(
      Tuple{Value::Int(1), Value::Int(100)});
  branch->database().Find("account")->Insert(
      Tuple{Value::Int(2), Value::Int(250)});

  // hq mirrors the branch; hq declares the account id as a key.
  const char* rules = R"(
node branch
  relation account(id:int, balance:int)
node hq
  relation account(id:int, balance:int)
  key account(id)
rule mirror hq <- branch : account(I, B) :- account(I, B).
)";
  std::unique_ptr<codb::SuperPeer> super_peer =
      codb::SuperPeer::Create(&network);
  Check(super_peer->LoadConfigText(rules), "rules");
  Check(super_peer->BroadcastConfig(), "broadcast");
  network.Run();

  // -- 1. Journal every import at hq ---------------------------------------
  codb::WriteAheadLog journal;
  hq->AttachJournal(&journal);

  Check(hq->StartGlobalUpdate(), "update");
  network.Run();
  std::cout << "after update, hq mirrors "
            << hq->database().Find("account")->size()
            << " accounts; journal has " << journal.entry_count()
            << " entries\n";

  // Persist the journal as a file, as a real deployment would.
  std::string path = "/tmp/codb_demo.journal";
  Check(journal.SaveToFile(path), "save journal");

  // -- 2. Crash and recover -------------------------------------------------
  // Simulate hq losing its in-memory store: rebuild from schema + journal.
  codb::Database recovered;
  codb::DatabaseSchema schema = AccountSchema();
  for (const codb::RelationSchema& rel : schema.relations()) {
    Check(recovered.CreateRelation(rel), "create");
  }
  codb::WriteAheadLog reloaded =
      Check(codb::WriteAheadLog::LoadFromFile(path), "load journal");
  Check(reloaded.ReplayInto(recovered), "replay");
  std::cout << "recovered store from the journal:\n"
            << codb::FormatRelation(*recovered.Find("account")) << "\n";
  std::remove(path.c_str());

  // -- 3. Deletion propagation via a refresh update -------------------------
  // The branch closes account 2.
  codb::Relation* accounts = branch->database().Find("account");
  std::vector<Tuple> kept;
  for (const Tuple& t : accounts->rows()) {
    if (!(t.at(0) == Value::Int(2))) kept.push_back(t);
  }
  accounts->Clear();
  for (const Tuple& t : kept) accounts->Insert(t);

  Check(hq->StartGlobalRefresh(), "refresh");
  network.Run();
  std::cout << "after the branch closed account 2 and hq refreshed:\n"
            << codb::FormatRelation(*hq->database().Find("account"))
            << "\n";

  // -- 4. Key constraints: inconsistency does not propagate -----------------
  // The branch (no key declared there) ends up with two balances for
  // account 1 — but hq declares account(id) as a key, so if hq itself
  // were inconsistent it would stop exporting. Here the violation is at
  // hq after importing both rows? No: hq's set-semantics import would
  // violate its key, so let's show the check directly.
  branch->database().Find("account")->Insert(
      Tuple{Value::Int(1), Value::Int(999)});
  Check(hq->StartGlobalRefresh(), "refresh 2");
  network.Run();

  std::cout << "hq consistency check after importing conflicting rows:\n";
  for (const std::string& violation : hq->ConsistencyViolations()) {
    std::cout << "  VIOLATION: " << violation << "\n";
  }
  std::cout << "hq now exports nothing until repaired "
            << "(local inconsistency does not propagate).\n";
  return 0;
}
