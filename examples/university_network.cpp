// University network: the classic P2P data-integration scenario the coDB
// papers motivate — autonomous university databases with different
// schemas, connected by GLAV coordination rules, including a mediator
// node with no database of its own.
//
// Topology:
//
//   registry  <--  trento        (students + exams, Italian schema)
//   registry  <--  bolzano       (enrolment, German-style schema)
//   registry  <--  hub (mediator) <-- manchester (researchers)
//
// The example runs a *query-time* distributed query with streaming
// results (the paper's Figure 2 interaction), then a global update, and
// shows that afterwards the same query is answered locally.
//
//   build/examples/university_network

#include <iostream>

#include "core/node.h"
#include "core/super_peer.h"
#include "net/network.h"
#include "query/parser.h"
#include "relation/printer.h"

namespace {

template <typename T>
T Check(codb::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const codb::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

codb::DatabaseSchema Schema(std::initializer_list<const char*> relations) {
  codb::DatabaseSchema schema;
  for (const char* text : relations) {
    Check(schema.AddRelation(Check(codb::ParseSchema(text), "schema")),
          "add relation");
  }
  return schema;
}

}  // namespace

int main() {
  using codb::Node;
  using codb::Tuple;
  using codb::Value;

  codb::Network network;

  // -- schemas (deliberately heterogeneous) --------------------------------
  auto trento = Check(
      Node::Create(&network, "trento",
                   Schema({"studente(matricola:int, nome:string)",
                           "esame(matricola:int, corso:string, voto:int)"})),
      "trento");
  auto bolzano = Check(
      Node::Create(&network, "bolzano",
                   Schema({"student(id:int, name:string, jahr:int)"})),
      "bolzano");
  auto manchester = Check(
      Node::Create(&network, "manchester",
                   Schema({"researcher(id:int, name:string)"})),
      "manchester");
  // The hub is a mediator: DBS only, no local database.
  auto hub = Check(
      Node::Create(&network, "hub",
                   Schema({"person(id:int, name:string)"}),
                   /*mediator=*/true),
      "hub");
  auto registry = Check(
      Node::Create(&network, "registry",
                   Schema({"enrolled(id:int, name:string)",
                           "graded(id:int, course:string)"})),
      "registry");

  // -- seed data ------------------------------------------------------------
  auto* studente = trento->database().Find("studente");
  studente->Insert(Tuple{Value::Int(1), Value::String("anna")});
  studente->Insert(Tuple{Value::Int(2), Value::String("bruno")});
  auto* esame = trento->database().Find("esame");
  esame->Insert(
      Tuple{Value::Int(1), Value::String("databases"), Value::Int(30)});
  esame->Insert(
      Tuple{Value::Int(2), Value::String("logic"), Value::Int(17)});

  auto* student = bolzano->database().Find("student");
  student->Insert(
      Tuple{Value::Int(10), Value::String("clara"), Value::Int(2003)});
  student->Insert(
      Tuple{Value::Int(11), Value::String("dieter"), Value::Int(2004)});

  auto* researcher = manchester->database().Find("researcher");
  researcher->Insert(Tuple{Value::Int(20), Value::String("edward")});

  // -- coordination rules (GLAV) -------------------------------------------
  const char* rules = R"(
node trento
  relation studente(matricola:int, nome:string)
  relation esame(matricola:int, corso:string, voto:int)
node bolzano
  relation student(id:int, name:string, jahr:int)
node manchester
  relation researcher(id:int, name:string)
node hub mediator
  relation person(id:int, name:string)
node registry
  relation enrolled(id:int, name:string)
  relation graded(id:int, course:string)

# The registry imports every Trento student, and the courses they passed
# (voto >= 18 is a pass in the Italian system).
rule tr_students registry <- trento : enrolled(M, N) :- studente(M, N).
rule tr_exams registry <- trento : graded(M, C) :- esame(M, C, V), V >= 18.

# Bolzano enrolment after 2003, projecting the year away.
rule bz_students registry <- bolzano : enrolled(I, N) :- student(I, N, J), J > 2003.

# Manchester researchers flow through the mediator hub...
rule mn_hub hub <- manchester : person(I, N) :- researcher(I, N).
# ...and from the hub into the registry.
rule hub_reg registry <- hub : enrolled(I, N) :- person(I, N).
)";

  std::unique_ptr<codb::SuperPeer> super_peer =
      codb::SuperPeer::Create(&network);
  Check(super_peer->LoadConfigText(rules), "load rules");
  Check(super_peer->BroadcastConfig(), "broadcast");
  network.Run();

  // -- 1. Query-time distributed answering with streaming results ----------
  codb::ConjunctiveQuery who =
      Check(codb::ParseQuery("q(I, N) :- enrolled(I, N)."), "parse");
  std::cout << "querying registry at query time (cold network):\n";
  codb::FlowId query = Check(
      registry->StartQuery(
          who,
          [&](const codb::QueryManager::QueryProgress& progress) {
            if (progress.done) {
              std::cout << "  [query complete]\n";
            } else {
              std::cout << "  ... " << progress.new_tuples
                        << " new tuple(s) streamed in at t="
                        << network.now_us() << "us\n";
            }
          }),
      "start query");
  network.Run();
  std::vector<Tuple> streamed =
      Check(registry->QueryAnswers(query), "answers");
  std::cout << codb::FormatTable({"id", "name"}, streamed) << "\n";

  // The registry's own database is still empty: query-time fetch uses a
  // per-query overlay.
  std::cout << "registry stored tuples before update: "
            << registry->database().TotalTuples() << "\n\n";

  // -- 2. Global update: materialize everything ----------------------------
  codb::FlowId update = Check(registry->StartGlobalUpdate(), "update");
  network.Run();
  std::cout << "global update "
            << (registry->update_manager()->IsComplete(update)
                    ? "complete"
                    : "INCOMPLETE")
            << "; registry now stores "
            << registry->database().TotalTuples() << " tuples\n\n";

  std::cout << codb::FormatRelation(*registry->database().Find("enrolled"))
            << "\n";
  std::cout << codb::FormatRelation(*registry->database().Find("graded"))
            << "\n";

  // -- 3. The same query is now purely local -------------------------------
  std::vector<Tuple> local = Check(registry->LocalQuery(who), "local");
  std::cout << "local query after update returns " << local.size()
            << " rows (no network traffic)\n\n";

  // -- 4. Statistics, as the super-peer collects them ----------------------
  Check(super_peer->RequestStats(), "stats");
  network.Run();
  std::cout << super_peer->FinalReport();
  return 0;
}
