// Cyclic coordination rules with existential variables.
//
// Three peers in a directed ring, each importing the previous peer's
// contact list but *projecting away* the phone column — a true GLAV rule
// whose head invents a witness (a fresh marked null) per imported row.
// The rule set is cyclic, so the global update is a distributed fixpoint;
// the path-labelled propagation guarantees termination, and the link
// dependency graph shows which links had to wait for global quiescence.
//
//   build/examples/cyclic_ring

#include <iostream>

#include "core/node.h"
#include "core/super_peer.h"
#include "net/network.h"
#include "query/parser.h"
#include "relation/printer.h"

namespace {

template <typename T>
T Check(codb::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const codb::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using codb::Node;
  using codb::Tuple;
  using codb::Value;

  codb::Network network;

  codb::DatabaseSchema schema;
  Check(schema.AddRelation(
            Check(codb::ParseSchema("contact(name:string, phone:int)"),
                  "schema")),
        "add");

  auto alpha = Check(Node::Create(&network, "alpha", schema), "alpha");
  auto beta = Check(Node::Create(&network, "beta", schema), "beta");
  auto gamma = Check(Node::Create(&network, "gamma", schema), "gamma");

  alpha->database().Find("contact")->Insert(
      Tuple{Value::String("ada"), Value::Int(555100)});
  beta->database().Find("contact")->Insert(
      Tuple{Value::String("bob"), Value::Int(555200)});
  gamma->database().Find("contact")->Insert(
      Tuple{Value::String("cyd"), Value::Int(555300)});

  // Each node knows its neighbours' contacts exist, but not their private
  // phone numbers: the head variable P is existential.
  const char* rules = R"(
node alpha
  relation contact(name:string, phone:int)
node beta
  relation contact(name:string, phone:int)
node gamma
  relation contact(name:string, phone:int)
rule ab alpha <- beta  : contact(N, P) :- contact(N, Q).
rule bc beta  <- gamma : contact(N, P) :- contact(N, Q).
rule ca gamma <- alpha : contact(N, P) :- contact(N, Q).
)";

  std::unique_ptr<codb::SuperPeer> super_peer =
      codb::SuperPeer::Create(&network);
  Check(super_peer->LoadConfigText(rules), "rules");
  Check(super_peer->BroadcastConfig(), "broadcast");
  network.Run();

  std::cout << "link dependency graph (note: every link is cyclic):\n"
            << alpha->link_graph()->ToString() << "\n";

  codb::FlowId update = Check(alpha->StartGlobalUpdate(), "update");
  uint64_t events = network.Run();

  std::cout << "fixpoint reached after " << events
            << " network events; update "
            << (alpha->update_manager()->IsComplete(update)
                    ? "complete"
                    : "INCOMPLETE")
            << " at every node: " << std::boolalpha
            << (beta->update_manager()->IsComplete(update) &&
                gamma->update_manager()->IsComplete(update))
            << "\n\n";

  // Every node ends with all three names; foreign phones are marked nulls
  // minted by the exporting peer (labels #peer:counter).
  for (const auto* node : {alpha.get(), beta.get(), gamma.get()}) {
    std::cout << "--- " << node->name() << " ---\n"
              << codb::FormatRelation(*node->database().Find("contact"))
              << "\n";
  }

  // The defining property of the path-bounded semantics: ada's entry went
  // all the way around to gamma and beta, but alpha did NOT get a
  // reflected null-copy of its own 'ada' row (alpha->gamma->beta->alpha
  // would revisit alpha).
  const codb::Relation* contacts = alpha->database().Find("contact");
  int ada_rows = 0;
  for (const Tuple& t : contacts->rows()) {
    if (t.at(0) == Value::String("ada")) ++ada_rows;
  }
  std::cout << "alpha's rows for 'ada': " << ada_rows
            << " (own row only; no reflected copy)\n";

  // A local query, post-update: who is reachable from alpha?
  std::vector<Tuple> names = Check(
      alpha->LocalQuery(
          Check(codb::ParseQuery("q(N) :- contact(N, P)."), "parse")),
      "query");
  std::cout << "\nnames known at alpha:\n"
            << codb::FormatTable({"name"}, names);
  return 0;
}
