// Dynamic networks: discovery, super-peer reconfiguration at runtime, and
// an update that keeps terminating while the topology churns underneath
// it — the paper's Figure 3 scenario plus design goal (c).
//
//   build/examples/dynamic_topology

#include <iostream>

#include "workload/testbed.h"
#include "workload/topology_gen.h"

namespace {

template <typename T>
T Check(codb::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const codb::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  using codb::GeneratedNetwork;
  using codb::Testbed;
  using codb::WorkloadOptions;

  // Start as a 6-node chain.
  WorkloadOptions options;
  options.nodes = 6;
  options.tuples_per_node = 10;
  GeneratedNetwork chain = codb::MakeChain(options);

  std::unique_ptr<Testbed> bed =
      Check(Testbed::Create(chain), "testbed");

  // -- 1. Discovery: every peer knows every other, acquainted or not ------
  std::cout << bed->node("n0")->DiscoveryView() << "\n";

  // -- 2. Update under churn: cut a pipe while data is in flight ----------
  codb::NetworkBase& network = bed->network();
  network.ScheduleAfter(2000, [&] {
    std::cout << "[t=" << network.now_us()
              << "us] churn: cutting pipe n3 -- n4\n";
    network.ClosePipe(bed->node("n3")->id(), bed->node("n4")->id());
  });

  codb::FlowId update =
      Check(bed->node("n0")->StartGlobalUpdate(), "update");
  network.Run();
  std::cout << "update under churn "
            << (bed->node("n0")->update_manager()->IsComplete(update)
                    ? "completed"
                    : "DID NOT complete")
            << "; n0 now stores "
            << bed->node("n0")->database().Find("d")->size()
            << " d-tuples (cut cost us the far end)\n\n";

  // -- 3. Super-peer rewires the network at runtime ------------------------
  // New rule file: a star pulling everything directly into n0.
  WorkloadOptions star_options = options;
  GeneratedNetwork star = codb::MakeStar(star_options);
  Check(bed->super_peer().LoadConfig(star.config), "load");
  Check(bed->super_peer().BroadcastConfig(), "broadcast");
  network.Run();
  std::cout << "rebroadcast done: topology is now a star\n";
  std::cout << bed->node("n0")->DiscoveryView() << "\n";

  codb::FlowId second =
      Check(bed->node("n0")->StartGlobalUpdate(), "update 2");
  network.Run();
  std::cout << "update over the star "
            << (bed->node("n0")->update_manager()->IsComplete(second)
                    ? "completed"
                    : "DID NOT complete")
            << "; n0 now stores "
            << bed->node("n0")->database().Find("d")->size()
            << " d-tuples (all 6 nodes x 10)\n\n";

  // -- 4. Final statistics collected by the super-peer ---------------------
  Check(bed->super_peer().RequestStats(), "stats");
  network.Run();
  std::cout << bed->super_peer().FinalReport();
  std::cout << "\n" << network.stats().Report();
  return 0;
}
