#include "membership/heartbeat.h"

#include <algorithm>

#include "util/logging.h"

namespace codb {

namespace {

// Spreads session phases over the period so a whole deployment's beacons
// do not land on the same virtual instant (a knuth-hash of the peer id).
int64_t PhaseOf(PeerId self, int64_t period_us) {
  uint64_t h = static_cast<uint64_t>(self.value) * 2654435761u;
  return static_cast<int64_t>(h % static_cast<uint64_t>(period_us));
}

}  // namespace

std::vector<uint8_t> HeartbeatPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(incarnation);
  writer.WriteU64(seq);
  writer.WriteI64(send_time_us);
  writer.WriteU32(static_cast<uint32_t>(digest.size()));
  for (const HeartbeatDigestEntry& entry : digest) {
    writer.WriteU32(entry.peer);
    writer.WriteU64(entry.incarnation);
    writer.WriteU8(static_cast<uint8_t>(entry.health));
  }
  return writer.Take();
}

Result<HeartbeatPayload> HeartbeatPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  HeartbeatPayload out;
  CODB_ASSIGN_OR_RETURN(out.incarnation, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.seq, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.send_time_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  out.digest.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HeartbeatDigestEntry entry;
    CODB_ASSIGN_OR_RETURN(entry.peer, reader.ReadU32());
    CODB_ASSIGN_OR_RETURN(entry.incarnation, reader.ReadU64());
    CODB_ASSIGN_OR_RETURN(uint8_t health, reader.ReadU8());
    if (health > static_cast<uint8_t>(PeerHealth::kDead)) {
      return Status::ParseError("bad digest health value");
    }
    entry.health = static_cast<PeerHealth>(health);
    out.digest.push_back(entry);
  }
  return out;
}

std::vector<uint8_t> HeartbeatAckPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(incarnation);
  writer.WriteU64(seq);
  writer.WriteI64(echo_send_time_us);
  return writer.Take();
}

Result<HeartbeatAckPayload> HeartbeatAckPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  HeartbeatAckPayload out;
  CODB_ASSIGN_OR_RETURN(out.incarnation, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.seq, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.echo_send_time_us, reader.ReadI64());
  return out;
}

Result<Message> MakeHeartbeatAck(const Message& beacon, PeerId self,
                                 uint64_t incarnation, int64_t now_us) {
  (void)now_us;
  CODB_ASSIGN_OR_RETURN(HeartbeatPayload parsed,
                        HeartbeatPayload::Deserialize(beacon.payload));
  HeartbeatAckPayload ack;
  ack.incarnation = incarnation;
  ack.seq = parsed.seq;
  ack.echo_send_time_us = parsed.send_time_us;
  Message reply;
  reply.src = self;
  reply.dst = beacon.src;
  reply.type = MessageType::kHeartbeatAck;
  reply.payload = ack.Serialize();
  reply.maintenance = true;
  return reply;
}

std::shared_ptr<HeartbeatSession> HeartbeatSession::Create(
    NetworkBase* network, PeerId self, MembershipOptions options,
    MetricsRegistry* metrics) {
  return std::shared_ptr<HeartbeatSession>(
      new HeartbeatSession(network, self, options, metrics));
}

HeartbeatSession::HeartbeatSession(NetworkBase* network, PeerId self,
                                   MembershipOptions options,
                                   MetricsRegistry* metrics)
    : network_(network),
      self_(self),
      options_(options),
      timeouts_([&options] {
        FailureDetector::Timeouts t;
        const double period = static_cast<double>(options.period_us);
        t.suspect_us = std::max<int64_t>(
            static_cast<int64_t>(options.suspect_after_periods * period),
            options.min_suspect_timeout_us);
        t.evict_us = std::max<int64_t>(
            static_cast<int64_t>(options.evict_after_periods * period), 1);
        t.grace_us =
            static_cast<int64_t>(options.grace_periods * period);
        return t;
      }()),
      detector_(timeouts_),
      incarnation_(options.incarnation),
      metrics_(metrics) {
  if (metrics_ != nullptr) {
    m_beacons_out_ = metrics_->GetCounter("membership.beacons_out");
    m_beacons_in_ = metrics_->GetCounter("membership.beacons_in");
    m_acks_in_ = metrics_->GetCounter("membership.acks_in");
    m_suspicions_ = metrics_->GetCounter("membership.suspicions");
    m_false_suspicions_ =
        metrics_->GetCounter("membership.false_suspicions");
    m_evictions_ = metrics_->GetCounter("membership.evictions");
    m_stale_ = metrics_->GetCounter("membership.stale_rejected");
    m_alive_peers_ = metrics_->GetGauge("membership.alive_peers");
    m_rtt_hist_ = metrics_->GetHistogram("membership.rtt_us");
  }
}

void HeartbeatSession::AddListener(MembershipListener* listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.push_back(listener);
}

void HeartbeatSession::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  ArmTick(PhaseOf(self_, options_.period_us));
}

void HeartbeatSession::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void HeartbeatSession::ArmTick(int64_t delay_us) {
  std::weak_ptr<HeartbeatSession> weak = weak_from_this();
  network_->ScheduleMaintenance(delay_us, [weak] {
    if (auto self = weak.lock()) self->Tick();
  });
}

void HeartbeatSession::Tick() {
  std::vector<FailureDetector::Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    const int64_t now = network_->now_us();
    SendBeacons(now);
    events = detector_.Tick(now);
    if (m_alive_peers_ != nullptr) {
      m_alive_peers_->Set(
          static_cast<int64_t>(detector_.AlivePeers().size()));
    }
  }
  // Outside the lock: listeners (the node's eviction fan-out) call back
  // into the managers, whose cleanup consults IsPresumedAlive() on this
  // session — re-entry under a held non-recursive mutex would deadlock.
  Dispatch(events);
  ArmTick(options_.period_us);
}

void HeartbeatSession::SendBeacons(int64_t now_us) {
  std::vector<HeartbeatDigestEntry> digest =
      options_.gossip ? BuildDigest() : std::vector<HeartbeatDigestEntry>();
  for (PeerId neighbor : network_->Neighbors(self_)) {
    if (detector_.IsTracked(neighbor) &&
        detector_.HealthOf(neighbor) == PeerHealth::kDead) {
      continue;  // no traffic to the evicted
    }
    detector_.Track(neighbor, now_us);
    HeartbeatPayload beacon;
    beacon.incarnation = incarnation_;
    beacon.seq = ++beacon_seq_;
    beacon.send_time_us = now_us;
    beacon.digest = digest;
    Message message;
    message.src = self_;
    message.dst = neighbor;
    message.type = MessageType::kHeartbeat;
    message.payload = beacon.Serialize();
    message.maintenance = true;
    if (network_->Send(std::move(message)).ok()) {
      ++beacons_out_;
      if (m_beacons_out_ != nullptr) m_beacons_out_->Add();
    }
  }
}

std::vector<HeartbeatDigestEntry> HeartbeatSession::BuildDigest() {
  // Non-alive verdicts first (bad news must travel); alive entries fill
  // the remaining slots starting at a rotating offset so every peer's
  // incarnation eventually reaches everyone.
  std::vector<HeartbeatDigestEntry> bad;
  std::vector<HeartbeatDigestEntry> good;
  for (PeerId peer : detector_.Tracked()) {
    HeartbeatDigestEntry entry;
    entry.peer = peer.value;
    entry.incarnation = detector_.IncarnationOf(peer);
    entry.health = detector_.HealthOf(peer);
    (entry.health == PeerHealth::kAlive ? good : bad).push_back(entry);
  }
  std::vector<HeartbeatDigestEntry> out;
  const size_t cap = options_.digest_max_entries;
  for (const HeartbeatDigestEntry& entry : bad) {
    if (out.size() >= cap) break;
    out.push_back(entry);
  }
  if (!good.empty()) {
    const size_t start = digest_rotation_++ % good.size();
    for (size_t i = 0; i < good.size() && out.size() < cap; ++i) {
      out.push_back(good[(start + i) % good.size()]);
    }
  }
  return out;
}

void HeartbeatSession::HandleBeacon(const Message& message) {
  auto parsed = HeartbeatPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << "membership: malformed beacon from "
                       << message.src.ToString();
    return;
  }
  const HeartbeatPayload& beacon = parsed.value();
  std::vector<FailureDetector::Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t now = network_->now_us();
    ++beacons_in_;
    if (m_beacons_in_ != nullptr) m_beacons_in_->Add();

    if (detector_.IsTracked(message.src) &&
        beacon.incarnation < detector_.IncarnationOf(message.src)) {
      // Stale incarnation: a zombie of a peer we know restarted (or a
      // long-delayed duplicate). No liveness credit, no ack.
      ++stale_beacons_;
      if (m_stale_ != nullptr) m_stale_->Add();
      return;
    }

    events = detector_.HeardFrom(message.src, beacon.incarnation, now);
    if (options_.gossip) ProcessDigest(beacon, now, events);
    // Traffic-driven evaluation: an arriving beacon is also a chance to
    // notice that some OTHER tracked peer crossed its silence threshold.
    // In an active deployment this makes detection converge on the
    // protocol threshold itself instead of paying up to a full period of
    // tick quantization per transition; a session with no live
    // neighbours still falls back to the tick cadence.
    std::vector<FailureDetector::Event> due = detector_.Tick(now);
    events.insert(events.end(), due.begin(), due.end());

    HeartbeatAckPayload ack;
    ack.incarnation = incarnation_;
    ack.seq = beacon.seq;
    ack.echo_send_time_us = beacon.send_time_us;
    Message reply;
    reply.src = self_;
    reply.dst = message.src;
    reply.type = MessageType::kHeartbeatAck;
    reply.payload = ack.Serialize();
    reply.maintenance = true;
    // Best-effort: a failed ack send just looks like silence to the peer.
    Status ignored = network_->Send(std::move(reply));
    (void)ignored;
  }
  Dispatch(events);  // outside the lock; see Tick()
}

void HeartbeatSession::ProcessDigest(
    const HeartbeatPayload& beacon, int64_t now_us,
    std::vector<FailureDetector::Event>& events) {
  for (const HeartbeatDigestEntry& entry : beacon.digest) {
    if (entry.peer == self_.value) {
      // Someone thinks we are suspect or dead. Refute by outliving the
      // claim: adopt a strictly higher incarnation, which every future
      // beacon carries (SWIM's incarnation bump).
      if (entry.health != PeerHealth::kAlive &&
          entry.incarnation >= incarnation_) {
        incarnation_ = entry.incarnation + 1;
      }
      continue;
    }
    std::vector<FailureDetector::Event> claim_events = detector_.OnClaim(
        PeerId(entry.peer), entry.incarnation, entry.health, now_us);
    events.insert(events.end(), claim_events.begin(), claim_events.end());
  }
}

void HeartbeatSession::HandleAck(const Message& message) {
  auto parsed = HeartbeatAckPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << "membership: malformed heartbeat ack from "
                       << message.src.ToString();
    return;
  }
  const HeartbeatAckPayload& ack = parsed.value();
  std::vector<FailureDetector::Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t now = network_->now_us();
    ++acks_in_;
    if (m_acks_in_ != nullptr) m_acks_in_->Add();

    if (detector_.IsTracked(message.src) &&
        ack.incarnation < detector_.IncarnationOf(message.src)) {
      ++stale_beacons_;
      if (m_stale_ != nullptr) m_stale_->Add();
      return;
    }

    events = detector_.HeardFrom(message.src, ack.incarnation, now);
    // Same traffic-driven evaluation as HandleBeacon.
    std::vector<FailureDetector::Event> due = detector_.Tick(now);
    events.insert(events.end(), due.begin(), due.end());

    const int64_t sample = now - ack.echo_send_time_us;
    RttEstimator& estimator = rtt_[message.src];
    estimator.AddSample(sample);
    if (m_rtt_hist_ != nullptr) {
      m_rtt_hist_->Record(static_cast<uint64_t>(std::max<int64_t>(
          sample, 0)));
    }
    if (metrics_ != nullptr) {
      metrics_
          ->GetGauge("membership.rtt_us." + network_->NameOf(message.src))
          ->Set(estimator.srtt_us());
    }
    UpdateSuspectTimeout(message.src);
  }
  Dispatch(events);  // outside the lock; see Tick()
}

void HeartbeatSession::UpdateSuspectTimeout(PeerId peer) {
  auto it = rtt_.find(peer);
  if (it == rtt_.end() || !it->second.HasSample()) return;
  // Adaptive suspicion: base silence budget plus the RTO-style margin, so
  // a peer behind a slow link earns proportionally more patience.
  const int64_t margin = it->second.RetransmitTimeout(0);
  detector_.SetSuspectTimeout(peer, timeouts_.suspect_us + margin);
}

void HeartbeatSession::Forget(PeerId other) {
  std::lock_guard<std::mutex> lock(mutex_);
  detector_.Forget(other);
  rtt_.erase(other);
}

bool HeartbeatSession::IsPresumedAlive(PeerId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!detector_.IsTracked(peer)) return true;
  return detector_.HealthOf(peer) != PeerHealth::kDead;
}

uint64_t HeartbeatSession::incarnation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return incarnation_;
}

PeerHealth HeartbeatSession::HealthOf(PeerId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return detector_.IsTracked(peer) ? detector_.HealthOf(peer)
                                   : PeerHealth::kAlive;
}

int64_t HeartbeatSession::SrttOf(PeerId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rtt_.find(peer);
  return it == rtt_.end() ? 0 : it->second.srtt_us();
}

HeartbeatSession::Counters HeartbeatSession::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters out;
  out.beacons_out = beacons_out_;
  out.beacons_in = beacons_in_;
  out.acks_in = acks_in_;
  out.stale_rejected = stale_beacons_ + detector_.stale_rejected();
  out.suspicions = detector_.suspicions();
  out.false_suspicions = detector_.false_suspicions();
  out.evictions = detector_.evictions();
  return out;
}

void HeartbeatSession::Dispatch(
    const std::vector<FailureDetector::Event>& events) {
  for (const FailureDetector::Event& event : events) {
    switch (event.kind) {
      case FailureDetector::Event::kSuspected:
        if (m_suspicions_ != nullptr) m_suspicions_->Add();
        CODB_LOG(kDebug) << "membership: " << self_.ToString()
                         << " suspects " << event.peer.ToString();
        for (MembershipListener* listener : listeners_) {
          listener->OnPeerSuspected(event.peer, event.at_us);
        }
        break;
      case FailureDetector::Event::kRecovered:
        if (m_false_suspicions_ != nullptr) m_false_suspicions_->Add();
        CODB_LOG(kDebug) << "membership: " << self_.ToString()
                         << " clears suspicion of "
                         << event.peer.ToString();
        for (MembershipListener* listener : listeners_) {
          listener->OnPeerRecovered(event.peer, event.at_us);
        }
        break;
      case FailureDetector::Event::kEvicted:
        if (m_evictions_ != nullptr) m_evictions_->Add();
        CODB_LOG(kDebug) << "membership: " << self_.ToString()
                         << " evicts " << event.peer.ToString()
                         << " after " << event.silent_for_us
                         << "us of silence";
        for (MembershipListener* listener : listeners_) {
          listener->OnPeerEvicted(event.peer, event.at_us);
        }
        break;
    }
  }
}

}  // namespace codb
