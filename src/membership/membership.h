// Membership & liveness layer (DESIGN.md §11).
//
// The protocols below this layer only ever *observe* churn: a pipe dies
// and the termination detector patches deficits after the fact. A peer
// that dies silently — process crash behind a partition, for instance —
// produces no pipe event at all, and every in-flight flow towards it
// burns the full retransmission give-up window. This subsystem turns
// "unreachable" into a first-class state:
//
//   * HeartbeatSession (heartbeat.h) beacons over the existing
//     NetworkInterface on a configurable period, piggybacking incarnation
//     numbers and a compact digest of the sender's view of its peers;
//   * RttEstimator (rtt.h) keeps an EWMA + variance per peer (à la
//     TCP / zg_choir's PZGRoundTripTimeAverager) and feeds adaptive
//     suspicion timeouts plus per-peer RTT gauges;
//   * FailureDetector (failure_detector.h) runs the suspicion →
//     confirmation → eviction state machine, deterministic under the
//     virtual clock, and fans eviction events out through
//     MembershipListener into the node's managers, termination detector
//     and reliability layer.
//
// Everything is off by default: a node without an enabled session sends
// no beacons and keeps the historical behaviour bit-for-bit.

#ifndef CODB_MEMBERSHIP_MEMBERSHIP_H_
#define CODB_MEMBERSHIP_MEMBERSHIP_H_

#include <cstdint>

#include "net/peer_id.h"

namespace codb {

// Tri-state liveness verdict a tracker holds about a tracked peer.
enum class PeerHealth : uint8_t {
  kAlive = 0,    // heard from it within the suspicion timeout
  kSuspect = 1,  // silent too long; confirmation window running
  kDead = 2,     // evicted (terminal for this incarnation)
};

const char* PeerHealthName(PeerHealth health);

struct MembershipOptions {
  // Beacon period. Everything else scales with it; the defaults aim at a
  // detection latency of ~3 periods for a silently killed peer.
  int64_t period_us = 1'000'000;

  // A peer is suspected once nothing was heard from it for
  // `suspect_after_periods` beacon periods plus its adaptive RTT margin
  // (srtt + 4*rttvar). 1.5 periods = one lost beacon plus slack.
  double suspect_after_periods = 1.5;

  // A suspect is evicted after this much additional silence. Thresholds
  // are evaluated on every beacon tick AND on every arriving beacon/ack,
  // so in an active deployment detection lands close to
  // (suspect_after + evict_after) periods after the last beacon; a peer
  // with no other live neighbours pays up to one extra period per
  // transition for tick quantization.
  double evict_after_periods = 1.0;

  // A freshly tracked peer cannot be suspected for this many periods
  // (it may still be settling in; its first beacon may be in flight).
  double grace_periods = 2.0;

  // Hard floor of the suspicion timeout, whatever the RTT estimate says.
  int64_t min_suspect_timeout_us = 100'000;

  // Beacons carry at most this many digest entries (non-alive verdicts
  // first, so bad news travels).
  size_t digest_max_entries = 16;

  // When false, digests are sent empty and third-party claims are
  // ignored: detection is strictly first-hand.
  bool gossip = true;

  // This node's incarnation number. A restarted node should come back
  // with a higher incarnation; beacons with a lower incarnation than the
  // highest one seen for that peer are rejected as stale.
  uint64_t incarnation = 1;
};

// Fan-out interface for membership transitions. Implemented by the node
// (to cancel retransmissions, deficits and link state towards dead
// peers), by the super-peer (to drop dead region members from statistics
// collection), and by tests/benches (to log detection latencies).
// Callbacks run on the session's handler context — for a node that is
// its message-handler context, so the usual locking rules apply.
class MembershipListener {
 public:
  virtual ~MembershipListener() = default;
  virtual void OnPeerSuspected(PeerId peer, int64_t at_us) {
    (void)peer;
    (void)at_us;
  }
  // A suspected peer was heard from again (a false suspicion).
  virtual void OnPeerRecovered(PeerId peer, int64_t at_us) {
    (void)peer;
    (void)at_us;
  }
  virtual void OnPeerEvicted(PeerId peer, int64_t at_us) {
    (void)peer;
    (void)at_us;
  }
};

inline const char* PeerHealthName(PeerHealth health) {
  switch (health) {
    case PeerHealth::kAlive:
      return "alive";
    case PeerHealth::kSuspect:
      return "suspect";
    case PeerHealth::kDead:
      return "dead";
  }
  return "unknown";
}

}  // namespace codb

#endif  // CODB_MEMBERSHIP_MEMBERSHIP_H_
