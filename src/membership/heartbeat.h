// HeartbeatSession: the active half of the membership layer.
//
// Every period the session beacons a kHeartbeat to each pipe neighbour,
// carrying its incarnation number, a beacon sequence, the send timestamp,
// and a compact digest of its view of other peers (non-alive verdicts
// first, alive entries rotating — bad news always travels, good news
// round-robins). Receivers echo a kHeartbeatAck with the timestamp, which
// closes the RTT loop: one RttEstimator per peer feeds a per-peer gauge
// into the metrics registry and widens that peer's suspicion timeout by
// srtt + 4*rttvar, so a slow-but-alive peer is not confused with a dead
// one.
//
// All beacon traffic and the tick timer are *maintenance* events
// (net/message.h): they never hold Run() open, so protocol code above
// is untouched by the beacon loop. Tests and benches advance membership
// time explicitly with RunUntil/RunFor.
//
// Threading: all entry points serialize on an internal mutex. Listener
// callbacks fire AFTER that mutex is dropped: the node's eviction fan-out
// calls into the managers, whose cleanup consults IsPresumedAlive() on
// this very session — dispatching under the (non-recursive) lock would
// self-deadlock. Listeners must be registered before Start(), so the
// listener list itself is immutable while events flow.

#ifndef CODB_MEMBERSHIP_HEARTBEAT_H_
#define CODB_MEMBERSHIP_HEARTBEAT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "membership/failure_detector.h"
#include "membership/membership.h"
#include "membership/rtt.h"
#include "net/network_interface.h"
#include "obs/metrics.h"
#include "relation/wire.h"
#include "util/status.h"

namespace codb {

// One digest entry: "I believe peer <peer> (incarnation <incarnation>)
// is <health>".
struct HeartbeatDigestEntry {
  uint32_t peer = 0;
  uint64_t incarnation = 0;
  PeerHealth health = PeerHealth::kAlive;
};

struct HeartbeatPayload {
  uint64_t incarnation = 0;
  uint64_t seq = 0;
  int64_t send_time_us = 0;
  std::vector<HeartbeatDigestEntry> digest;

  std::vector<uint8_t> Serialize() const;
  static Result<HeartbeatPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

struct HeartbeatAckPayload {
  uint64_t incarnation = 0;
  uint64_t seq = 0;
  // The beacon's send_time_us, echoed verbatim: RTT = now - echo.
  int64_t echo_send_time_us = 0;

  std::vector<uint8_t> Serialize() const;
  static Result<HeartbeatAckPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Builds a stateless kHeartbeatAck for `beacon`. Peers that do not run a
// session of their own (a super-peer towards nodes outside its region, a
// node in a mixed deployment) still answer beacons with this, so they are
// never falsely suspected just for not participating.
Result<Message> MakeHeartbeatAck(const Message& beacon, PeerId self,
                                 uint64_t incarnation, int64_t now_us);

class HeartbeatSession
    : public std::enable_shared_from_this<HeartbeatSession> {
 public:
  static std::shared_ptr<HeartbeatSession> Create(
      NetworkBase* network, PeerId self, MembershipOptions options,
      MetricsRegistry* metrics);

  HeartbeatSession(const HeartbeatSession&) = delete;
  HeartbeatSession& operator=(const HeartbeatSession&) = delete;

  // Listeners must be registered before Start() and outlive the session.
  void AddListener(MembershipListener* listener);

  // Arms the first beacon tick (phase-staggered by peer id so a thousand
  // sessions do not all fire on the same instant). Idempotent.
  void Start();
  // Disarms future ticks. Pending maintenance events become no-ops via a
  // liveness check against this object.
  void Stop();

  // Message entry points, called by the owning peer's HandleMessage.
  void HandleBeacon(const Message& message);
  void HandleAck(const Message& message);

  // The pipe to `other` closed in an orderly way — stop tracking it (this
  // is departure, not failure; no eviction event fires).
  void Forget(PeerId other);

  // Liveness predicate for the protocol layers: false only for peers this
  // session has evicted. Untracked peers are presumed alive.
  bool IsPresumedAlive(PeerId peer) const;

  uint64_t incarnation() const;
  PeerHealth HealthOf(PeerId peer) const;
  int64_t SrttOf(PeerId peer) const;  // 0 before the first sample

  struct Counters {
    uint64_t beacons_out = 0;
    uint64_t beacons_in = 0;
    uint64_t acks_in = 0;
    uint64_t stale_rejected = 0;
    uint64_t suspicions = 0;
    uint64_t false_suspicions = 0;
    uint64_t evictions = 0;
  };
  Counters counters() const;

  const MembershipOptions& options() const { return options_; }

 private:
  HeartbeatSession(NetworkBase* network, PeerId self,
                   MembershipOptions options, MetricsRegistry* metrics);

  void ArmTick(int64_t delay_us);
  void Tick();
  void SendBeacons(int64_t now_us);
  std::vector<HeartbeatDigestEntry> BuildDigest();
  void ProcessDigest(const HeartbeatPayload& beacon, int64_t now_us,
                     std::vector<FailureDetector::Event>& events);
  void Dispatch(const std::vector<FailureDetector::Event>& events);
  void UpdateSuspectTimeout(PeerId peer);

  NetworkBase* network_;
  const PeerId self_;
  MembershipOptions options_;
  FailureDetector::Timeouts timeouts_;

  mutable std::mutex mutex_;
  FailureDetector detector_;
  std::map<PeerId, RttEstimator> rtt_;
  std::vector<MembershipListener*> listeners_;
  uint64_t incarnation_;
  uint64_t beacon_seq_ = 0;
  size_t digest_rotation_ = 0;
  bool running_ = false;
  uint64_t beacons_out_ = 0;
  uint64_t beacons_in_ = 0;
  uint64_t acks_in_ = 0;
  uint64_t stale_beacons_ = 0;

  // Cached instruments (may all be null when metrics is null).
  Counter* m_beacons_out_ = nullptr;
  Counter* m_beacons_in_ = nullptr;
  Counter* m_acks_in_ = nullptr;
  Counter* m_suspicions_ = nullptr;
  Counter* m_false_suspicions_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_stale_ = nullptr;
  Gauge* m_alive_peers_ = nullptr;
  Histogram* m_rtt_hist_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace codb

#endif  // CODB_MEMBERSHIP_HEARTBEAT_H_
