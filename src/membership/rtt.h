// Round-trip-time estimator: exponentially weighted moving average plus
// mean deviation, the TCP (RFC 6298) shape also used by zg_choir's
// PZGRoundTripTimeAverager. One instance per tracked peer; samples come
// from heartbeat-ack echoes of the beacon's send timestamp.
//
// The estimate feeds two consumers:
//   * adaptive suspicion timeouts — a slow-but-alive peer earns a wider
//     margin (srtt + 4*rttvar) before suspicion fires;
//   * per-peer RTT gauges in the metrics registry (wired by the
//     heartbeat session, not here: the estimator itself is pure math so
//     it stays trivially unit-testable).

#ifndef CODB_MEMBERSHIP_RTT_H_
#define CODB_MEMBERSHIP_RTT_H_

#include <cstdint>

namespace codb {

class RttEstimator {
 public:
  // alpha: gain for the smoothed RTT; beta: gain for the deviation.
  // Defaults follow RFC 6298 (1/8 and 1/4).
  explicit RttEstimator(double alpha = 0.125, double beta = 0.25)
      : alpha_(alpha), beta_(beta) {}

  // Feeds one measured round-trip in microseconds. Non-positive samples
  // are clamped to 1us (a virtual-clock ack can echo back in the same
  // microsecond).
  void AddSample(int64_t rtt_us);

  bool HasSample() const { return samples_ > 0; }
  uint64_t samples() const { return samples_; }

  // Smoothed RTT and deviation, in microseconds. Zero before any sample.
  int64_t srtt_us() const { return static_cast<int64_t>(srtt_); }
  int64_t rttvar_us() const { return static_cast<int64_t>(rttvar_); }
  int64_t last_sample_us() const { return last_sample_us_; }

  // srtt + 4*rttvar clamped below by `floor_us` — the classic RTO
  // formula, reused here as the adaptive component of the suspicion
  // timeout.
  int64_t RetransmitTimeout(int64_t floor_us) const;

 private:
  double alpha_;
  double beta_;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  int64_t last_sample_us_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace codb

#endif  // CODB_MEMBERSHIP_RTT_H_
