#include "membership/rtt.h"

namespace codb {

void RttEstimator::AddSample(int64_t rtt_us) {
  if (rtt_us < 1) rtt_us = 1;
  const double sample = static_cast<double>(rtt_us);
  if (samples_ == 0) {
    // RFC 6298 §2.2: first measurement seeds srtt directly and the
    // deviation at half of it.
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    const double err = sample - srtt_;
    rttvar_ = (1.0 - beta_) * rttvar_ + beta_ * (err < 0 ? -err : err);
    srtt_ = (1.0 - alpha_) * srtt_ + alpha_ * sample;
  }
  last_sample_us_ = rtt_us;
  ++samples_;
}

int64_t RttEstimator::RetransmitTimeout(int64_t floor_us) const {
  const double rto = srtt_ + 4.0 * rttvar_;
  const int64_t rto_us = static_cast<int64_t>(rto);
  return rto_us < floor_us ? floor_us : rto_us;
}

}  // namespace codb
