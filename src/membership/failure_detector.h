// FailureDetector: the suspicion → confirmation → eviction state machine.
//
// Pure virtual-time logic — it never touches the network or the clock
// itself; the heartbeat session feeds it HeardFrom()/OnClaim() facts and
// calls Tick(now) on every beacon period, collecting the transitions it
// should act on. That split keeps detection deterministic under the
// discrete-event simulator (fault-injection runs stay seed-reproducible)
// and the machine unit-testable without any network at all.
//
// Per-peer life cycle:
//
//                    HeardFrom (fresh incarnation)
//        ┌────────────────────────────────────────────┐
//        ▼                                            │
//   ┌─────────┐  silent > suspect timeout  ┌─────────┐│
//   │  ALIVE  │ ─────────────────────────▶ │ SUSPECT │┘
//   └─────────┘                            └─────────┘
//        ▲                                      │ silent further
//        │   HeardFrom → kRecovered             │ > evict timeout
//        │   (false suspicion)                  ▼
//        │                                 ┌─────────┐
//        └──── higher incarnation ──────── │  DEAD   │  (terminal per
//              (peer restarted)            └─────────┘   incarnation)
//
// Third-party claims (gossip digests) can accelerate the machine — a
// dead-claim about a peer we already suspect confirms the eviction
// immediately, a dead/suspect claim about an alive peer starts the
// suspicion window — but a mere alive-claim never refreshes last_heard:
// liveness is strictly first-hand, otherwise relayed staleness would
// stretch detection latency past the bound the bench asserts.

#ifndef CODB_MEMBERSHIP_FAILURE_DETECTOR_H_
#define CODB_MEMBERSHIP_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "membership/membership.h"
#include "net/peer_id.h"

namespace codb {

class FailureDetector {
 public:
  struct Timeouts {
    int64_t suspect_us = 1'500'000;  // silence before suspicion
    int64_t evict_us = 1'000'000;    // further silence before eviction
    int64_t grace_us = 2'000'000;    // immunity after Track()
  };

  struct Event {
    enum Kind { kSuspected, kRecovered, kEvicted } kind;
    PeerId peer;
    int64_t at_us = 0;
    // For kEvicted: how long the peer had been silent when the verdict
    // landed (detection latency from its last first-hand sign of life).
    int64_t silent_for_us = 0;
  };

  explicit FailureDetector(Timeouts timeouts) : timeouts_(timeouts) {}

  // Starts tracking `peer`. Idempotent; a re-Track of a dead peer with
  // the same incarnation stays dead.
  void Track(PeerId peer, int64_t now_us);
  void Forget(PeerId peer);

  // First-hand sign of life (beacon or ack received directly from the
  // peer) carrying its self-declared incarnation. Returns the resulting
  // events (at most one kRecovered). A message with an incarnation lower
  // than the highest seen for this peer is stale: ignored and counted.
  std::vector<Event> HeardFrom(PeerId peer, uint64_t incarnation,
                               int64_t now_us);

  // Third-party claim from a gossip digest. Never refreshes liveness;
  // may escalate (alive → suspect on a suspect/dead claim, suspect →
  // dead on a dead claim) or resurrect (strictly higher incarnation
  // resets the peer to alive pending first-hand contact).
  std::vector<Event> OnClaim(PeerId peer, uint64_t incarnation,
                             PeerHealth claimed, int64_t now_us);

  // Evaluates every tracked peer's silence against its timeouts.
  // Deterministic: peers are visited in PeerId order.
  std::vector<Event> Tick(int64_t now_us);

  // Overrides the suspicion timeout for one peer (adaptive: base +
  // srtt + 4*rttvar, maintained by the heartbeat session).
  void SetSuspectTimeout(PeerId peer, int64_t timeout_us);

  PeerHealth HealthOf(PeerId peer) const;
  bool IsTracked(PeerId peer) const;
  // Highest incarnation seen for `peer` (0 if untracked).
  uint64_t IncarnationOf(PeerId peer) const;
  std::vector<PeerId> Tracked() const;
  std::vector<PeerId> AlivePeers() const;

  // Lifetime counters, for metrics and bench JSON.
  uint64_t suspicions() const { return suspicions_; }
  uint64_t false_suspicions() const { return false_suspicions_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t stale_rejected() const { return stale_rejected_; }

 private:
  struct PeerState {
    PeerHealth health = PeerHealth::kAlive;
    uint64_t incarnation = 0;
    int64_t last_heard_us = 0;    // last FIRST-HAND sign of life
    int64_t suspected_at_us = 0;  // when the suspicion window opened
    int64_t tracked_since_us = 0;
    int64_t suspect_timeout_us = 0;  // 0 = use the configured default
  };

  int64_t SuspectTimeoutFor(const PeerState& state) const;
  Event Suspect(PeerId peer, PeerState& state, int64_t now_us);
  Event Evict(PeerId peer, PeerState& state, int64_t now_us);

  Timeouts timeouts_;
  std::map<PeerId, PeerState> peers_;
  uint64_t suspicions_ = 0;
  uint64_t false_suspicions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t stale_rejected_ = 0;
};

}  // namespace codb

#endif  // CODB_MEMBERSHIP_FAILURE_DETECTOR_H_
