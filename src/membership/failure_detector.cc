#include "membership/failure_detector.h"

#include <algorithm>

namespace codb {

void FailureDetector::Track(PeerId peer, int64_t now_us) {
  auto [it, inserted] = peers_.try_emplace(peer);
  if (!inserted) return;
  it->second.tracked_since_us = now_us;
  it->second.last_heard_us = now_us;
}

void FailureDetector::Forget(PeerId peer) { peers_.erase(peer); }

std::vector<FailureDetector::Event> FailureDetector::HeardFrom(
    PeerId peer, uint64_t incarnation, int64_t now_us) {
  std::vector<Event> events;
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    Track(peer, now_us);
    it = peers_.find(peer);
  }
  PeerState& state = it->second;
  if (incarnation < state.incarnation) {
    ++stale_rejected_;
    return events;
  }
  if (state.health == PeerHealth::kDead) {
    // Dead is terminal per incarnation: only a strictly newer incarnation
    // (the peer restarted) resurrects it.
    if (incarnation <= state.incarnation) {
      ++stale_rejected_;
      return events;
    }
    state.health = PeerHealth::kAlive;
    state.tracked_since_us = now_us;
  }
  state.incarnation = std::max(state.incarnation, incarnation);
  state.last_heard_us = now_us;
  if (state.health == PeerHealth::kSuspect) {
    state.health = PeerHealth::kAlive;
    ++false_suspicions_;
    events.push_back({Event::kRecovered, peer, now_us, 0});
  }
  return events;
}

std::vector<FailureDetector::Event> FailureDetector::OnClaim(
    PeerId peer, uint64_t incarnation, PeerHealth claimed, int64_t now_us) {
  std::vector<Event> events;
  auto it = peers_.find(peer);
  if (it == peers_.end()) return events;  // not ours to track
  PeerState& state = it->second;
  if (incarnation < state.incarnation) {
    ++stale_rejected_;
    return events;
  }
  if (incarnation > state.incarnation) {
    // The peer restarted with a newer incarnation. Whatever we believed
    // about the old incarnation is void; await first-hand contact.
    state.incarnation = incarnation;
    if (state.health == PeerHealth::kDead) {
      state.health = PeerHealth::kAlive;
      state.tracked_since_us = now_us;
      state.last_heard_us = now_us;
    }
  }
  if (state.health == PeerHealth::kDead) return events;
  switch (claimed) {
    case PeerHealth::kAlive:
      // Deliberately NOT refreshing last_heard: liveness is first-hand.
      break;
    case PeerHealth::kSuspect:
      if (state.health == PeerHealth::kAlive) {
        events.push_back(Suspect(peer, state, now_us));
      }
      break;
    case PeerHealth::kDead:
      if (state.health == PeerHealth::kSuspect) {
        events.push_back(Evict(peer, state, now_us));
      } else {
        // Someone confirmed death we had not even begun to suspect.
        // Open our own suspicion window rather than trusting outright:
        // a single faulty accuser must not kill a live peer.
        events.push_back(Suspect(peer, state, now_us));
      }
      break;
  }
  return events;
}

std::vector<FailureDetector::Event> FailureDetector::Tick(int64_t now_us) {
  std::vector<Event> events;
  for (auto& [peer, state] : peers_) {
    switch (state.health) {
      case PeerHealth::kAlive: {
        if (now_us - state.tracked_since_us < timeouts_.grace_us) break;
        if (now_us - state.last_heard_us > SuspectTimeoutFor(state)) {
          events.push_back(Suspect(peer, state, now_us));
        }
        break;
      }
      case PeerHealth::kSuspect: {
        if (now_us - state.suspected_at_us > timeouts_.evict_us) {
          events.push_back(Evict(peer, state, now_us));
        }
        break;
      }
      case PeerHealth::kDead:
        break;
    }
  }
  return events;
}

void FailureDetector::SetSuspectTimeout(PeerId peer, int64_t timeout_us) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) it->second.suspect_timeout_us = timeout_us;
}

PeerHealth FailureDetector::HealthOf(PeerId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? PeerHealth::kDead : it->second.health;
}

bool FailureDetector::IsTracked(PeerId peer) const {
  return peers_.count(peer) != 0;
}

uint64_t FailureDetector::IncarnationOf(PeerId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.incarnation;
}

std::vector<PeerId> FailureDetector::Tracked() const {
  std::vector<PeerId> out;
  out.reserve(peers_.size());
  for (const auto& [peer, state] : peers_) out.push_back(peer);
  return out;
}

std::vector<PeerId> FailureDetector::AlivePeers() const {
  std::vector<PeerId> out;
  for (const auto& [peer, state] : peers_) {
    if (state.health != PeerHealth::kDead) out.push_back(peer);
  }
  return out;
}

int64_t FailureDetector::SuspectTimeoutFor(const PeerState& state) const {
  return state.suspect_timeout_us > 0 ? state.suspect_timeout_us
                                      : timeouts_.suspect_us;
}

FailureDetector::Event FailureDetector::Suspect(PeerId peer,
                                                PeerState& state,
                                                int64_t now_us) {
  state.health = PeerHealth::kSuspect;
  state.suspected_at_us = now_us;
  ++suspicions_;
  return {Event::kSuspected, peer, now_us, now_us - state.last_heard_us};
}

FailureDetector::Event FailureDetector::Evict(PeerId peer, PeerState& state,
                                              int64_t now_us) {
  state.health = PeerHealth::kDead;
  ++evictions_;
  return {Event::kEvicted, peer, now_us, now_us - state.last_heard_us};
}

}  // namespace codb
