// A coDB database peer: the first-level architecture of Figure 1.
//
//   Node = P2P layer (UI surface + DBM + JXTA layer + Wrapper)
//        + Local Database (optional: mediator nodes have none)
//        + Database Schema (always present)
//
// The DBM (database manager) is realized by the update and query managers;
// the JXTA layer is the Network binding plus discovery; the UI is the
// Report()/DiscoveryView() text surface the examples print. Nodes connect
// to the network by creating pipes to the nodes they have coordination
// rules with — several rules share one pipe, and a pipe without rules is
// closed (paper, section 3).

#ifndef CODB_CORE_NODE_H_
#define CODB_CORE_NODE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/flow_executor.h"
#include "core/link_graph.h"
#include "core/query_manager.h"
#include "core/statistics.h"
#include "core/update_manager.h"
#include "membership/heartbeat.h"
#include "membership/membership.h"
#include "net/discovery.h"
#include "net/network_interface.h"
#include "storage/storage.h"
#include "util/thread_pool.h"
#include "wrapper/wrapper.h"

namespace codb {

// Intra-node execution (DESIGN.md §10). Defaults keep the historical
// single-threaded node: sequential evaluator, flow handlers inline.
// (Namespace scope, not nested: nested-class member initializers are
// late-parsed and cannot back a default argument of the enclosing class.)
struct NodeExecOptions {
  // Worker fan-out of the partitioned-join evaluator; 1 = the
  // byte-identical sequential path.
  int num_threads = 1;
  // Admit several flows at once: flow-scoped messages run on per-flow
  // strands of the node's pool instead of inline, so query flows and
  // the update flow overlap. Only honored on runtimes that support
  // background work (the threaded network); the deterministic
  // simulator always handles inline.
  bool concurrent_flows = false;
  // Smallest probe-side candidate count worth forking for.
  size_t min_parallel_rows = 32;
};

class Node : public NetworkPeer {
 public:
  using ExecOptions = NodeExecOptions;

  struct Options {
    UpdateManager::Options update;
    LinkProfile link_profile;  // profile of the pipes this node opens
    // At-least-once delivery for both managers (core/reliability.h).
    // `update.reliability` is overwritten with this value so one knob
    // configures the whole node.
    ReliabilityOptions reliability;
    ExecOptions exec;
    // Skip the discovery announcement flood. Discovery costs O(n·E)
    // messages and O(n) advertisement cache per node — the first wall a
    // thousand-peer deployment hits — and membership-era benches do not
    // need the discovery view.
    bool quiet_discovery = false;
  };

  // Creates the node, joins the network, and announces itself. `schema`
  // becomes both the LDB catalog and the exported DBS (mediators get a
  // transient store instead of an LDB). (Overload instead of a defaulted
  // Options argument: Options has member initializers, which are
  // late-parsed and cannot back a default argument of the enclosing
  // class — same reason NodeExecOptions is namespace scope.)
  static Result<std::unique_ptr<Node>> Create(NetworkBase* network,
                                              const std::string& name,
                                              DatabaseSchema schema,
                                              bool mediator, Options options);
  static Result<std::unique_ptr<Node>> Create(NetworkBase* network,
                                              const std::string& name,
                                              DatabaseSchema schema,
                                              bool mediator = false) {
    return Create(network, name, std::move(schema), mediator, Options());
  }

  ~Node() override;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  PeerId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool is_mediator() const { return wrapper_->is_mediator(); }

  // The node's store, for seeding experiment data. Touch it only while
  // the network is quiescent (before traffic starts / after Run()); the
  // node's own handlers mutate it concurrently otherwise.
  Database& database() { return wrapper_->storage(); }
  const Database& database() const { return wrapper_->storage(); }

  // Applies a network configuration locally: drops rules/pipes that
  // disappeared, opens pipes for rules involving this node, rebuilds the
  // link graph and the DBM. Older versions than the current one are
  // ignored. (The super-peer delivers per-node slices via kConfigSlice and
  // kConfigDelta — DESIGN.md §13; tests and examples may still call this
  // directly with a full config, or send legacy kConfigBroadcast.)
  Status ApplyConfig(const NetworkConfig& config, uint64_t version);

  bool has_config() const { return config_ != nullptr; }
  const NetworkConfig* config() const { return config_.get(); }
  const LinkGraph* link_graph() const { return link_graph_.get(); }
  // Version of the currently applied configuration (0 before the first).
  uint64_t config_version() const;

  // -- DBM operations ------------------------------------------------------

  // Batch materialization: starts a global update rooted here. The
  // optional callback fires exactly once, when the diffusing computation
  // terminates at this root.
  Result<FlowId> StartGlobalUpdate(
      UpdateManager::CompletionFn on_complete = nullptr);

  // Refresh update: every node first drops its imported tuples, then the
  // network re-derives everything — the batch form of deletion
  // propagation (data deleted at its source does not come back). Also
  // resets the export memory network-wide, restating every export.
  Result<FlowId> StartGlobalRefresh(
      UpdateManager::CompletionFn on_complete = nullptr);

  // Inserts rows into a local base relation, remembered as the pending
  // delta for the next incremental update (Wrapper::InsertLocal). Touch
  // only while this node is not mid-flow, like database().
  Status InsertLocal(const std::string& relation,
                     const std::vector<Tuple>& rows);

  // Incremental (semi-naive) global update seeded by the pending delta
  // accumulated through InsertLocal: work proportional to the delta, not
  // the store (DESIGN.md §14). Requires a prior full/refresh update to
  // have synchronized the network; `refresh` remains the full-semantics
  // oracle. An empty pending delta is legal (the flood still runs and
  // completes).
  Result<FlowId> StartIncrementalUpdate(
      UpdateManager::CompletionFn on_complete = nullptr);

  // Query-time answering: distributed fetch + local evaluation.
  Result<FlowId> StartQuery(const ConjunctiveQuery& query,
                            QueryManager::ProgressFn on_progress = nullptr);
  bool QueryDone(const FlowId& query) const;
  Result<std::vector<Tuple>> QueryAnswers(const FlowId& query) const;
  // Null-free (certain) answers only; see QueryManager::CertainAnswers.
  Result<std::vector<Tuple>> CertainQueryAnswers(const FlowId& query) const;

  // Purely local evaluation (what a query costs after a global update).
  Result<std::vector<Tuple>> LocalQuery(const ConjunctiveQuery& query) const;

  // Violations of this node's own key constraints (empty = consistent).
  // While non-empty the node exports nothing (paper principle (d)).
  std::vector<std::string> ConsistencyViolations() const;

  // Attaches a journal sink recording every imported tuple; see
  // relation/wal.h. The sink is not owned and must outlive the node.
  void AttachJournal(JournalSink* journal) {
    wrapper_->AttachJournal(journal);
  }

  // Turns on durable, crash-safe persistence: the store is recovered from
  // options.directory (checkpoint + WAL tail), imported tuples are logged
  // to the file-backed WAL from then on, and checkpoints are cut per
  // `options.checkpoint_every`. Mediators hold only transient relay data
  // and refuse. Call after Create and after seeding local base data —
  // the first enablement cuts a checkpoint covering the seed.
  Status EnableDurability(const StorageOptions& options);
  DurableStorage* durable_storage() { return durable_.get(); }
  const DurableStorage* durable_storage() const { return durable_.get(); }

  // -- membership ----------------------------------------------------------

  // Turns on the liveness layer: a HeartbeatSession beaconing to every
  // pipe neighbour, with this node wired in as the eviction fan-out (an
  // evicted peer is treated exactly like a closed pipe: both managers
  // cancel retransmissions and deficits toward it, and it stops counting
  // as an acquaintance for new flows). Call after Create, before traffic;
  // the session starts beaconing immediately (maintenance events only —
  // Run() semantics for existing tests are unchanged).
  Status EnableMembership(const MembershipOptions& options);
  HeartbeatSession* membership() { return membership_.get(); }
  const HeartbeatSession* membership() const { return membership_.get(); }

  // False only for peers the membership layer evicted (always true when
  // membership is off). The managers consult this before counting a peer
  // as a reachable acquaintance.
  bool IsPresumedAlive(PeerId peer) const;

  // -- observability -------------------------------------------------------

  // Attaches the node's cost ledger (statistics().cost()) to the network,
  // so every message this node sends or receives is classified and its
  // bytes accounted per subsystem class (obs/cost_ledger.h). The per-class
  // totals then ride the kStatsReport trailer to the super-peer. Call
  // after Create, while the network is quiescent; off by default.
  void EnableProfiling();

  // -- introspection -------------------------------------------------------

  UpdateManager* update_manager() { return update_manager_.get(); }
  const UpdateManager* update_manager() const {
    return update_manager_.get();
  }
  QueryManager* query_manager() { return query_manager_.get(); }
  StatisticsModule& statistics() { return statistics_; }
  const StatisticsModule& statistics() const { return statistics_; }
  DiscoveryService& discovery() { return *discovery_; }
  // Flow strands currently in flight (0 once the node is quiescent; the
  // concurrency tests assert this at teardown).
  size_t ActiveFlows() const {
    return flow_exec_ != nullptr ? flow_exec_->ActiveFlows() : 0;
  }

  // The textual "UI": schema, pipes, links, per-update reports (Figure 1's
  // UI module / Figure 2's query window).
  std::string Report() const;
  // Acquaintances vs merely-discovered peers (Figure 3's window).
  std::string DiscoveryView() const;

  // -- NetworkPeer ----------------------------------------------------------

  void HandleMessage(const Message& message) override;
  void HandlePipeClosed(PeerId other) override;

 private:
  // Adapter fanning membership transitions into the node. A separate
  // object (not Node inheriting MembershipListener) so the listener
  // surface stays out of the node's public API.
  struct MembershipFanout : MembershipListener {
    explicit MembershipFanout(Node* n) : node(n) {}
    void OnPeerEvicted(PeerId peer, int64_t at_us) override;
    Node* node;
  };

  Node(NetworkBase* network, std::string name);

  void AnnounceSelf();

  // ApplyConfig body, mutex_ held. `cyclic_rules`/`has_any_cycle` carry
  // the super-peer's cycle closure for a projected slice (the slice alone
  // cannot see cycles running through other regions of the network);
  // nullptr means `config` is a full configuration and the link graph
  // computes its own SCCs.
  Status ApplyConfigLocked(const NetworkConfig& config, uint64_t version,
                           const std::set<std::string>* cyclic_rules,
                           bool has_any_cycle);

  // Handlers of the delta/projected distribution protocol (DESIGN.md §13).
  void HandleConfigSlice(const Message& message);
  void HandleConfigDelta(const Message& message);
  // Reports the currently-held slice state back to the super-peer.
  void SendConfigAck(PeerId to);
  // Asks `to` for a catch-up (gap or checksum divergence detected).
  void SendConfigFetch(PeerId to);

  // Re-attempts pipes that failed to open (or whose acquaintance was not
  // on the network yet) during the last ApplyConfig; called on discovery
  // and membership traffic, mutex_ held.
  void RetryPendingPipes();

  // Eviction fan-out: same cleanup as a pipe-closed notification — both
  // managers cancel retransmissions/deficits toward the dead peer.
  void OnPeerEvicted(PeerId peer);

  // True when flow-scoped messages go to per-flow strands instead of
  // running inline under mutex_.
  bool ConcurrentFlows() const;

  // Routes a flow-scoped message to its manager, either inline or on the
  // flow's strand. `to_update` picks the manager.
  void DispatchFlowMessage(const Message& message, bool to_update);

  // Publishes the exec.* gauges (pool + store-lock health) into the
  // metrics registry; called when a stats report is cut.
  void SampleExecMetrics();

  // Serializes the public API against the node's own message handlers:
  // on the threaded runtime an initiator keeps receiving replies while
  // StartGlobalUpdate / StartQuery are still mutating its state.
  // Recursive because the single-threaded simulator delivers pipe-closed
  // notifications synchronously from within a handler.
  mutable std::recursive_mutex mutex_;

  NetworkBase* network_;
  std::string name_;
  PeerId id_;

  std::unique_ptr<Database> ldb_;  // null for mediators
  // Set once in EnableMembership (before traffic), then immutable: the
  // heartbeat paths read it without mutex_ so the session→node lock
  // order is never reversed.
  std::shared_ptr<HeartbeatSession> membership_;
  std::unique_ptr<MembershipFanout> membership_fanout_;
  std::unique_ptr<Wrapper> wrapper_;
  std::unique_ptr<DurableStorage> durable_;  // null until EnableDurability
  std::unique_ptr<DiscoveryService> discovery_;
  StatisticsModule statistics_;
  std::unique_ptr<NullMinter> minter_;
  Options options_;

  uint64_t config_version_ = 0;
  // Canonical checksum of config_ — the patch base identity the node
  // reports in acks/fetches and verifies deltas against.
  uint64_t config_checksum_ = 0;
  std::unique_ptr<NetworkConfig> config_;
  std::unique_ptr<LinkGraph> link_graph_;
  // Acquaintances whose pipe could not be opened (or who were not on the
  // network) at ApplyConfig time; retried on discovery/membership events.
  std::set<std::string> pending_pipe_retries_;
  // Mirror of !pending_pipe_retries_.empty(), readable without mutex_ so
  // the heartbeat fast path can skip the lock.
  std::atomic<bool> has_pending_pipe_retries_{false};
  // shared_ptr: strand tasks capture the manager at dispatch, so a
  // reconfiguration can swap managers while old flows finish safely.
  std::shared_ptr<UpdateManager> update_manager_;
  std::shared_ptr<QueryManager> query_manager_;
  uint64_t update_seq_ = 0;  // survive manager rebuilds: ids stay unique
  uint64_t query_seq_ = 0;
  // Cross-update export memory (DESIGN.md §14): node-owned for the same
  // reason as update_seq_ — reconfigurations rebuild the manager, but
  // what was already exported to each importer must not be forgotten.
  ExportMemory export_memory_;
  std::set<uint32_t> rule_pipes_;  // peers we opened pipes to, per config
  // Declared after the managers and pool_ before flow_exec_: destruction
  // runs flow_exec_ first (draining in-flight strand tasks, which still
  // use the managers and the pool), then the pool, then the managers.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<FlowExecutor> flow_exec_;
};

}  // namespace codb

#endif  // CODB_CORE_NODE_H_
