// The per-node statistical module (paper, section 4).
//
// "This module accumulates various information about global updates such
// as: total execution time of an update, number of query result messages
// received per coordination rule and the volume of the data in each
// message, longest update propagation path, and so on."
//
// Each node accumulates an UpdateReport per global update; a super-peer
// can collect every node's reports at any time and aggregate them into the
// final statistical report (core/super_peer.h). Times come in two axes:
// virtual microseconds (network cost, from the event simulator) and wall
// microseconds (real compute spent in this node's handlers).

#ifndef CODB_CORE_STATISTICS_H_
#define CODB_CORE_STATISTICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "obs/cost_ledger.h"
#include "obs/metrics.h"
#include "storage/durability_stats.h"
#include "util/status.h"

namespace codb {

// Traffic observed on one coordination rule at this node.
struct RuleTrafficStats {
  uint64_t messages = 0;
  uint64_t tuples = 0;
  uint64_t bytes = 0;
};

struct UpdateReport {
  FlowId update;

  int64_t start_virtual_us = -1;     // node joined the update
  int64_t closed_virtual_us = -1;    // all outgoing links closed
  int64_t complete_virtual_us = -1;  // global completion observed
  double wall_micros = 0;            // compute spent in handlers

  uint64_t tuples_added = 0;
  uint64_t data_messages_received = 0;
  uint64_t data_bytes_received = 0;
  uint64_t data_messages_sent = 0;
  uint64_t data_bytes_sent = 0;

  // Nodes on the longest update-propagation path observed at this node
  // (the path label of a received data message, plus this node).
  uint32_t longest_path_nodes = 0;

  // Flow-deadline expiry: the root gave up waiting and completed the flow
  // with partial coverage (core/reliability.h).
  bool aborted = false;

  // Per outgoing link: query-result messages received through it.
  std::map<std::string, RuleTrafficStats> received_per_rule;
  // Per incoming link: data shipped through it.
  std::map<std::string, RuleTrafficStats> sent_per_rule;

  // "which acquaintances have been queried and to which nodes query
  // results have been sent" (peer ids).
  std::set<uint32_t> acquaintances_queried;
  std::set<uint32_t> result_destinations;

  void SerializeTo(WireWriter& writer) const;
  static Result<UpdateReport> DeserializeFrom(WireReader& reader);

  // The per-update "global update processing report" shown to the user.
  std::string Render() const;
};

// Everything a kStatsReport payload carries: the per-update reports, the
// node's durability counters (zero-valued when the node runs without
// durable storage), and the node's metric registry snapshot (empty on
// nodes that never touched an instrument).
struct StatsBundle {
  std::vector<UpdateReport> reports;
  DurabilityStats durability;
  MetricsSnapshot metrics;
};

// Thread-safety: the report *map* is guarded by an internal mutex (the
// update and query managers insert reports from different flow strands).
// The UpdateReport& that ReportFor hands out stays valid forever
// (std::map nodes are stable) and is mutated without the lock — safe
// because a report's fields are only written by its own flow, whose
// handlers the owning manager serializes (DESIGN.md §10).
class StatisticsModule {
 public:
  // Creates (if needed) and returns the report for an update.
  UpdateReport& ReportFor(const FlowId& update);

  const UpdateReport* FindReport(const FlowId& update) const;
  // Unguarded view for quiescent inspection (reports/tests after Run()).
  const std::map<FlowId, UpdateReport>& reports() const { return reports_; }

  // WAL/checkpoint/recovery counters; DurableStorage writes into this.
  DurabilityStats& durability() { return durability_; }
  const DurabilityStats& durability() const { return durability_; }

  // The node's metric registry: every subsystem on the node registers its
  // counters/gauges/histograms here, and the whole registry ships to the
  // super-peer as a snapshot trailer of the kStatsReport payload.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // The node's wire-cost ledger. The node attaches it to the network
  // (NetworkBase::AttachCostLedger) when profiling is enabled; until then
  // it stays empty and contributes nothing to the serialized bundle, so
  // the kStatsReport payload is byte-identical to the unprofiled build.
  CostLedger& cost() { return cost_; }
  const CostLedger& cost() const { return cost_; }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    reports_.clear();
  }

  // Payload body of a kStatsReport message: every accumulated report plus
  // the durability counters.
  std::vector<uint8_t> SerializeAll() const;
  static Result<StatsBundle> DeserializeBundle(
      const std::vector<uint8_t>& payload);
  // Compatibility shim: the reports only.
  static Result<std::vector<UpdateReport>> DeserializeAll(
      const std::vector<uint8_t>& payload);

 private:
  mutable std::mutex mu_;  // guards the structure of reports_
  std::map<FlowId, UpdateReport> reports_;
  DurabilityStats durability_;
  MetricsRegistry metrics_;
  CostLedger cost_;
};

}  // namespace codb

#endif  // CODB_CORE_STATISTICS_H_
