// Delta/projected config distribution (DESIGN.md §13).
//
// The paper's super-peer "broadcasts the coordination-rule file" to every
// peer; shipping the full text to n peers costs O(n²) bytes and was
// measured at >90% of all wire traffic at n = 1000. This module replaces
// the full-text broadcast with two mechanisms:
//
//   * Projection — each peer receives only its *slice* of the
//     configuration: its own NodeDecl, its acquaintances' decls, and its
//     incident rules (NetworkConfig::ProjectFor). The slice is a valid
//     NetworkConfig and reproduces every LinkGraph answer the peer's
//     managers consult (RelevantFor/DependentOn are 1-hop-closed over
//     incident rules); only the cycle flags need global knowledge, so the
//     super-peer computes them once and ships them alongside.
//
//   * Deltas — re-broadcasts ship a version-keyed patch between the
//     peer's last acknowledged slice and the new one, guarded by
//     pre/post-state checksums (NetworkConfig::CanonicalChecksum). A
//     receiver that detects a version gap or checksum mismatch issues a
//     kConfigFetch back-order request and the super-peer answers with a
//     patch from the requested version or a full slice.
//
// Wire payloads live here rather than core/protocol.h because they carry
// config-layer types (patches, cycle closures) the generic protocol
// header has no business knowing about.

#ifndef CODB_CORE_CONFIG_DISTRIBUTION_H_
#define CODB_CORE_CONFIG_DISTRIBUTION_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/link_graph.h"
#include "util/status.h"

namespace codb {

// Global cycle information a slice cannot compute locally: which of the
// peer's incident rules lie on a network-wide dependency cycle, and
// whether the network has any cycle at all (UpdateManager::CheckClosing
// consults HasAnyCycle for the global-quiescence fallback).
struct CycleClosure {
  std::vector<std::string> cyclic_rules;
  bool has_any_cycle = false;
};

// One peer's projected view plus everything needed to verify and ack it.
struct ConfigSlice {
  NetworkConfig config;
  CycleClosure cycles;
  uint64_t checksum = 0;  // config.CanonicalChecksum()
};

// Builds `node_name`'s slice from the full configuration and its link
// graph (which supplies the global cycle flags).
ConfigSlice MakeSlice(const NetworkConfig& config, const LinkGraph& graph,
                      const std::string& node_name);

// A version-keyed patch between two slices of the same peer. Declarations
// travel as config-text fragments (NodeDeclText / RuleText), so the patch
// format needs no second serialization of schemas or queries.
struct ConfigPatch {
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  uint64_t pre_checksum = 0;   // canonical checksum of the base slice
  uint64_t post_checksum = 0;  // canonical checksum of the patched slice
  std::vector<std::string> removed_nodes;   // names
  std::vector<std::string> upserted_nodes;  // NodeDeclText fragments
  std::vector<std::string> removed_rules;   // rule ids
  std::vector<std::string> upserted_rules;  // RuleText lines

  bool Empty() const {
    return removed_nodes.empty() && upserted_nodes.empty() &&
           removed_rules.empty() && upserted_rules.empty();
  }
};

// Computes the patch turning `from` into `to` (checksums filled in,
// versions left to the caller).
ConfigPatch DiffSlices(const NetworkConfig& from, const NetworkConfig& to);

// Applies `patch` to a copy of `base` and returns the patched config.
// Fails — leaving the caller's config untouched — when the base checksum
// does not match (the receiver diverged from what the sender diffed
// against) or the patched result misses the post-state checksum; the
// receiver then falls back to a kConfigFetch.
Result<NetworkConfig> ApplyPatch(const NetworkConfig& base,
                                 const ConfigPatch& patch);

// -- wire payloads -----------------------------------------------------------

// kConfigSlice: full per-peer slice (initial distribution, catch-up).
struct ConfigSlicePayload {
  uint64_t version = 0;
  std::string config_text;  // the slice, serialized
  CycleClosure cycles;
  uint64_t checksum = 0;

  std::vector<uint8_t> Serialize() const;
  static Result<ConfigSlicePayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// kConfigDelta: patch from the peer's acknowledged version, plus the
// post-state cycle closure.
struct ConfigDeltaPayload {
  ConfigPatch patch;
  CycleClosure cycles;

  std::vector<uint8_t> Serialize() const;
  static Result<ConfigDeltaPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// kConfigFetch: receiver -> super-peer back-order request. `have_version`
// is 0 for a peer with no configuration (fresh join, restart).
struct ConfigFetchPayload {
  uint64_t have_version = 0;
  uint64_t have_checksum = 0;

  std::vector<uint8_t> Serialize() const;
  static Result<ConfigFetchPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// kConfigAck: receiver -> super-peer applied-version receipt.
struct ConfigAckPayload {
  uint64_t version = 0;
  uint64_t checksum = 0;

  std::vector<uint8_t> Serialize() const;
  static Result<ConfigAckPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

}  // namespace codb

#endif  // CODB_CORE_CONFIG_DISTRIBUTION_H_
