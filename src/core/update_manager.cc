#include "core/update_manager.h"

#include "core/consistency.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace codb {

UpdateManager::UpdateManager(NetworkBase* network, PeerId self,
                             std::string node_name, Wrapper* wrapper,
                             const NetworkConfig* config,
                             const LinkGraph* link_graph,
                             StatisticsModule* stats, NullMinter* minter,
                             uint64_t* update_seq,
                             ExportMemory* export_memory, Options options)
    : network_(network),
      self_(self),
      node_name_(std::move(node_name)),
      wrapper_(wrapper),
      config_(config),
      link_graph_(link_graph),
      stats_(stats),
      minter_(minter),
      options_(options),
      m_started_(stats->metrics().GetCounter("update.started")),
      m_requests_in_(stats->metrics().GetCounter("update.requests_in")),
      m_data_in_(stats->metrics().GetCounter("update.data_in")),
      m_data_out_(stats->metrics().GetCounter("update.data_out")),
      m_link_closed_in_(
          stats->metrics().GetCounter("update.link_closed_in")),
      m_acks_in_(stats->metrics().GetCounter("update.acks_in")),
      m_completes_in_(stats->metrics().GetCounter("update.completes_in")),
      m_rule_evals_(stats->metrics().GetCounter("update.rule_evals")),
      m_tuples_shipped_(
          stats->metrics().GetCounter("update.tuples_shipped")),
      m_dups_suppressed_(
          stats->metrics().GetCounter("update.dups_suppressed")),
      m_root_terminations_(
          stats->metrics().GetCounter("update.root_terminations")),
      m_aborted_(stats->metrics().GetCounter("update.aborted")),
      m_incremental_(stats->metrics().GetCounter("update.incremental")),
      m_delta_rows_(stats->metrics().GetCounter("update.delta_rows")),
      m_eval_rows_(stats->metrics().GetCounter("update.eval_rows")),
      m_memory_suppressed_(
          stats->metrics().GetCounter("update.memory_suppressed")),
      m_handler_us_(stats->metrics().GetHistogram("update.handler_us")),
      m_data_tuples_(stats->metrics().GetHistogram("update.data_tuples")),
      termination_(self, [this](PeerId to, const FlowId& flow) {
        Tracer::Global().Instant(self_.value, "term.ack", flow.ToString());
        AckPayload ack{flow};
        // The D-S ack is sequenced and retransmitted: losing it would
        // permanently wedge the receiver's deficit. It is not a basic
        // message (no deficit of its own). Send failures are handled by
        // the peer-lost path.
        reliable_.Send(MakeMessage(self_, to, MessageType::kUpdateAck,
                                   ack.Serialize()),
                       flow, /*basic=*/false);
      }),
      reliable_(network, options.reliability,
                [this](const FlowId& flow, PeerId dst, bool basic) {
                  // Retry budget exhausted: the D-S ack for that basic
                  // message will never come, so cancel its deficit unit
                  // or the flow would hang at the root forever. Runs from
                  // a retransmit timer, i.e. outside HandleMessage — take
                  // the monitor (the sender releases its own mutex before
                  // invoking give-up callbacks, so ordering holds).
                  std::lock_guard<std::recursive_mutex> lock(mu_);
                  if (basic) termination_.CancelOne(flow, dst);
                  termination_.MaybeQuiesce();
                },
                stats->metrics().GetCounter("update.retransmits"),
                stats->metrics().GetCounter("update.send_give_ups"),
                stats->metrics().GetCounter("net.retx.bytes")),
      update_seq_(update_seq),
      export_memory_(export_memory) {}

Status UpdateManager::Init() {
  for (const CoordinationRule* rule : config_->IncomingOf(node_name_)) {
    CoordinationRule compiled = *rule;
    CODB_RETURN_IF_ERROR(
        compiled.Compile(config_->SchemaOf(rule->exporter()),
                         config_->SchemaOf(rule->importer())));
    compiled_incoming_.emplace(rule->id(), std::move(compiled));
  }
  if (export_memory_ != nullptr) {
    // A changed rule definition invalidates its recorded exports; the
    // fingerprint is the full rule text.
    std::map<std::string, std::string> fingerprints;
    for (const auto& [rule_id, rule] : compiled_incoming_) {
      fingerprints.emplace(rule_id, rule.ToString());
    }
    export_memory_->SyncRules(fingerprints);
  }
  if (options_.skip_subsumed) {
    for (const auto& [subsumed, subsuming] :
         config_->FindSubsumedRules()) {
      if (compiled_incoming_.find(subsumed) != compiled_incoming_.end()) {
        CODB_LOG(kInfo) << node_name_ << ": rule " << subsumed
                        << " subsumed by " << subsuming
                        << "; skipping its evaluation";
        subsumed_incoming_.insert(subsumed);
      }
    }
  }
  return Status::Ok();
}

Result<PeerId> UpdateManager::ResolvePeer(const std::string& node_name) const {
  auto it = peer_cache_.find(node_name);
  if (it != peer_cache_.end()) return it->second;
  CODB_ASSIGN_OR_RETURN(PeerId id, network_->FindByName(node_name));
  peer_cache_.emplace(node_name, id);
  return id;
}

UpdateManager::UpdateState& UpdateManager::StateOf(const FlowId& update) {
  auto [it, inserted] = updates_.try_emplace(update);
  if (inserted) {
    for (const CoordinationRule* rule : config_->IncomingOf(node_name_)) {
      it->second.incoming.emplace(rule->id(), IncomingLinkState());
    }
    for (const CoordinationRule* rule : config_->OutgoingOf(node_name_)) {
      it->second.outgoing.emplace(rule->id(), OutgoingLinkState());
    }
  }
  return it->second;
}

FlowId UpdateManager::StartUpdate(bool refresh, CompletionFn on_complete) {
  return StartUpdateInternal(refresh, /*incremental=*/false,
                             /*delta=*/nullptr, std::move(on_complete));
}

FlowId UpdateManager::StartIncrementalUpdate(DeltaMap delta,
                                             CompletionFn on_complete) {
  return StartUpdateInternal(/*refresh=*/false, /*incremental=*/true,
                             &delta, std::move(on_complete));
}

FlowId UpdateManager::StartUpdateInternal(bool refresh, bool incremental,
                                          const DeltaMap* delta,
                                          CompletionFn on_complete) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FlowId update{FlowId::Scope::kUpdate, self_.value, (*update_seq_)++};
  m_started_->Add();
  if (incremental) {
    m_incremental_->Add();
    size_t delta_rows = 0;
    if (delta != nullptr) {
      for (const auto& [relation, rows] : *delta) delta_rows += rows.size();
    }
    m_delta_rows_->Add(delta_rows);
  }
  if (on_complete != nullptr) {
    completions_[update] = std::move(on_complete);
  }
  // Root span of the whole diffusing computation: every other span of this
  // flow descends from it via message-hop edges.
  ScopedSpan span(Tracer::Global().BeginSpan(self_.value, "update.start",
                                             update.ToString()));
  termination_.StartRoot(update, [this](const FlowId& flow) {
    m_root_terminations_->Add();
    Complete(flow, /*via=*/PeerId());
  });
  if (options_.reliability.enabled &&
      options_.reliability.flow_deadline_us > 0) {
    // Guarded by the sender's liveness token: if a reconfiguration
    // rebuilds the manager before the deadline, the timer must not touch
    // the dead instance.
    std::weak_ptr<void> alive = reliable_.liveness();
    network_->ScheduleAfter(
        options_.reliability.flow_deadline_us, [this, alive, update] {
          if (alive.expired()) return;
          AbortIfIncomplete(update);
        });
  }
  Join(update, /*via=*/PeerId(), refresh, incremental, delta);
  termination_.MaybeQuiesce();
  return update;
}

void UpdateManager::AbortIfIncomplete(const FlowId& update) {
  // Entered from the flow-deadline timer, outside HandleMessage.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  UpdateState& state = StateOf(update);
  if (state.complete) return;
  CODB_LOG(kWarning) << node_name_ << ": deadline expired for "
                     << update.ToString() << "; aborting with partial data";
  m_aborted_->Add();
  stats_->ReportFor(update).aborted = true;
  termination_.Abort(update);
  // Completion still floods so cyclic links close and per-flow state is
  // dropped network-wide; the report carries the aborted flag.
  Complete(update, /*via=*/PeerId());
}

void UpdateManager::Join(const FlowId& update, PeerId via, bool refresh,
                         bool incremental, const DeltaMap* delta) {
  UpdateState& state = StateOf(update);
  if (state.joined) return;
  state.joined = true;
  state.incremental = incremental;

  UpdateReport& report = stats_->ReportFor(update);
  report.start_virtual_us = network_->now_us();

  // Local inconsistency does not propagate: an inconsistent node keeps
  // its links running (termination is unaffected) but ships no data.
  state.exports_suppressed = LocallyInconsistent();
  if (state.exports_suppressed) {
    CODB_LOG(kWarning) << node_name_
                       << ": locally inconsistent; exports suppressed for "
                       << update.ToString();
  }

  // A refresh drops previously imported data before re-deriving it; what
  // the sources no longer provide simply never returns. It also restates
  // every export from scratch, so the export memory starts over.
  if (refresh) {
    wrapper_->DropImported();
    if (export_memory_ != nullptr) export_memory_->Reset();
  }

  // "These acquaintances ... propagate the global update to their
  // acquaintances" — flood the request, skipping where it came from.
  UpdateRequestPayload request{update, refresh, incremental};
  for (PeerId neighbor : Acquaintances()) {
    if (neighbor == via) continue;
    SendBasic(update, neighbor, MessageType::kUpdateRequest,
              request.Serialize());
  }

  // Initial link evaluations. Full/refresh updates evaluate every
  // incoming link over the whole local store; an incremental update fires
  // only at the initiator (delta != null), seeded by its delta batch —
  // every other node contributes nothing until deltas reach it.
  for (auto& [rule_id, link] : state.incoming) {
    if (!incremental) {
      FireInitial(update, state, rule_id);
    } else if (delta != nullptr && !delta->empty()) {
      FireInitialDelta(update, state, rule_id, *delta);
    }
    link.initial_fired = true;
  }
  CheckClosing(update, state);
}

void UpdateManager::FireInitial(const FlowId& update, UpdateState& state,
                                const std::string& rule_id) {
  if (state.exports_suppressed) return;
  if (subsumed_incoming_.find(rule_id) != subsumed_incoming_.end()) return;
  const CoordinationRule& rule = compiled_incoming_.at(rule_id);
  m_rule_evals_->Add();
  ScopedSpan span(
      Tracer::Global().BeginSpanHere("update.rule_eval", update.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", rule_id);
  std::vector<Tuple> frontiers;
  {
    // Rule evaluation composes direct storage() reads, so the caller
    // brackets them (wrapper locking contract): shared on every shard,
    // excluding concurrent writers but not other readers.
    ShardedRWLock::ReadAllGuard read_guard(wrapper_->store_lock());
    // Work accounting for the semi-naive comparison (E17): a full eval
    // reads every body relation end to end.
    size_t input_rows = 0;
    for (const std::string& relation : rule.BodyRelations()) {
      const Relation* body = wrapper_->storage().Find(relation);
      if (body != nullptr) input_rows += body->size();
    }
    m_eval_rows_->Add(input_rows);
    frontiers = rule.EvaluateFrontier(wrapper_->storage(), options_.eval);
  }
  span.End();
  ShipFrontiers(update, state, rule_id, std::move(frontiers),
                /*path=*/{self_.value});
}

void UpdateManager::FireInitialDelta(const FlowId& update,
                                     UpdateState& state,
                                     const std::string& rule_id,
                                     const DeltaMap& delta) {
  if (state.exports_suppressed) return;
  if (subsumed_incoming_.find(rule_id) != subsumed_incoming_.end()) return;
  const CoordinationRule& rule = compiled_incoming_.at(rule_id);
  m_rule_evals_->Add();
  ScopedSpan span(
      Tracer::Global().BeginSpanHere("update.rule_eval", update.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", rule_id);
  std::vector<Tuple> frontiers;
  for (const auto& [relation, rows] : delta) {
    bool referenced =
        std::find_if(rule.query().body.begin(), rule.query().body.end(),
                     [&](const Atom& atom) {
                       return atom.predicate == relation;
                     }) != rule.query().body.end();
    if (!referenced || rows.empty()) continue;
    m_eval_rows_->Add(rows.size());
    ShardedRWLock::ReadAllGuard read_guard(wrapper_->store_lock());
    std::vector<Tuple> partial = rule.EvaluateFrontierDelta(
        wrapper_->storage(), relation, rows, options_.eval);
    frontiers.insert(frontiers.end(), partial.begin(), partial.end());
  }
  span.End();
  ShipFrontiers(update, state, rule_id, std::move(frontiers),
                /*path=*/{self_.value});
}

void UpdateManager::ShipFrontiers(const FlowId& update, UpdateState& state,
                                  const std::string& rule_id,
                                  std::vector<Tuple> frontiers,
                                  const std::vector<uint32_t>& path) {
  IncomingLinkState& link = state.incoming.at(rule_id);
  const CoordinationRule& rule = compiled_incoming_.at(rule_id);

  ScopedSpan span(
      Tracer::Global().BeginSpanHere("update.ship", update.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", rule_id);

  // Cross-update export memory (DESIGN.md §14): recorded for every update
  // (so later incremental updates know what full updates shipped), but
  // only *deduped against* for incremental updates — full updates keep
  // their historical per-update dedup, re-shipping across updates as they
  // always did. Disabled together with dedup_sent (ablation E6).
  const bool use_memory =
      export_memory_ != nullptr && options_.dedup_sent;
  std::vector<Tuple> fresh;
  fresh.reserve(frontiers.size());
  if (options_.dedup_sent) {
    // Geometric growth only — an exact-size reserve per shipment would
    // force a full rehash of the dedup set on every call.
    size_t needed = link.sent_frontiers.size() + frontiers.size();
    size_t ceiling = static_cast<size_t>(
        static_cast<float>(link.sent_frontiers.bucket_count()) *
        link.sent_frontiers.max_load_factor());
    if (needed > ceiling) {
      link.sent_frontiers.reserve(std::max(needed, ceiling * 2));
    }
  }
  for (Tuple& frontier : frontiers) {
    if (use_memory && state.incremental &&
        export_memory_->Seen(rule_id, frontier)) {
      m_memory_suppressed_->Add();
      continue;  // a previous update already exported it
    }
    if (options_.dedup_sent) {
      if (!link.sent_frontiers.insert(frontier).second) continue;
    }
    if (use_memory) export_memory_->Record(rule_id, frontier);
    fresh.push_back(std::move(frontier));
  }
  if (fresh.empty()) return;

  Result<PeerId> importer = ResolvePeer(rule.importer());
  if (!importer.ok()) {
    // Importer gone; nothing was shipped, so nothing may stay recorded.
    if (use_memory) export_memory_->Forget(rule_id, fresh);
    return;
  }

  std::vector<HeadTuple> tuples;
  tuples.reserve(fresh.size());
  for (const Tuple& frontier : fresh) {
    rule.InstantiateHeadInto(frontier, *minter_, tuples);
  }

  // Split into batches of max_batch_tuples (0 = everything in one
  // message). Consecutive batches travel the same FIFO pipe, so the
  // importer sees them in order.
  size_t total = tuples.size();
  size_t batch_size =
      options_.max_batch_tuples > 0 ? options_.max_batch_tuples : total;
  UpdateReport& report = stats_->ReportFor(update);
  for (size_t begin = 0; begin < total; begin += batch_size) {
    size_t end = std::min(begin + batch_size, total);
    UpdateDataPayload data;
    data.update = update;
    data.rule_id = rule_id;
    data.path = path;
    if (begin == 0 && end == total) {
      // Single batch (the default, max_batch_tuples == 0): hand the whole
      // vector over instead of copying it.
      data.tuples = std::move(tuples);
    } else {
      data.tuples.assign(tuples.begin() + static_cast<long>(begin),
                         tuples.begin() + static_cast<long>(end));
    }

    std::vector<uint8_t> payload = data.Serialize();
    size_t bytes = payload.size() + Message::kHeaderBytes;
    Status sent = reliable_.Send(MakeMessage(self_, importer.value(),
                                             MessageType::kUpdateData,
                                             std::move(payload)),
                                 update, /*basic=*/true);
    if (!sent.ok()) {
      CODB_LOG(kDebug) << node_name_ << ": data ship on " << rule_id
                       << " failed: " << sent.ToString();
      // Conservative un-record of the whole batch: the frontiers that DID
      // ship get re-derived and re-shipped by a later update, which the
      // importer's set semantics absorbs; a frontier silently recorded as
      // exported but never delivered would be missed forever.
      if (use_memory) export_memory_->Forget(rule_id, fresh);
      return;
    }
    termination_.OnSent(update, importer.value());
    m_data_out_->Add();
    m_tuples_shipped_->Add(data.tuples.size());

    ++report.data_messages_sent;
    report.data_bytes_sent += bytes;
    RuleTrafficStats& traffic = report.sent_per_rule[rule_id];
    ++traffic.messages;
    traffic.tuples += data.tuples.size();
    traffic.bytes += bytes;
  }
  report.result_destinations.insert(importer.value().value);
}

bool UpdateManager::AcceptDelivery(const Message& message) {
  if (message.seq == 0) return true;  // unsequenced sender
  Result<FlowId> flow = PeekFlowId(message.payload);
  if (!flow.ok()) return true;  // let the normal parse path report it
  // Receipt first, whatever the verdict: the sender may be retransmitting
  // precisely because the previous receipt was lost, and a parked message
  // is safely buffered here.
  DeliveryAckPayload receipt{flow.value(), message.seq};
  network_->Send(MakeMessage(self_, message.src, MessageType::kDeliveryAck,
                             receipt.Serialize()));
  switch (dup_filter_.Check(flow.value(), message.src, message.seq)) {
    case DupFilter::Verdict::kDeliver:
      return true;
    case DupFilter::Verdict::kDuplicate:
      // Already processed. Crucially this also protects the termination
      // detector: a duplicated engaging message must not trigger a second
      // D-S ack while the first engagement is still pending.
      m_dups_suppressed_->Add();
      return false;
    case DupFilter::Verdict::kHold:
      // A gap precedes it: the retransmission of a dropped message is on
      // its way. Processing out of order would let e.g. a LinkClosed
      // overtake the data sent before it, so park until the gap fills.
      dup_filter_.Hold(flow.value(), message.src, message);
      return false;
  }
  return false;
}

void UpdateManager::DrainReady(const Message& delivered) {
  if (delivered.seq == 0) return;
  Result<FlowId> flow = PeekFlowId(delivered.payload);
  if (!flow.ok()) return;
  while (std::optional<Message> ready =
             dup_filter_.NextReady(flow.value(), delivered.src)) {
    // Re-enters HandleMessage, where Check() now classifies it as the
    // in-order delivery it has become.
    HandleMessage(*ready);
  }
}

void UpdateManager::HandleMessage(const Message& message) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Stopwatch wall;
  if (message.type == MessageType::kDeliveryAck) {
    Result<DeliveryAckPayload> receipt =
        DeliveryAckPayload::Deserialize(message.payload);
    if (receipt.ok()) {
      reliable_.OnDeliveryAck(receipt.value().flow, message.src,
                              receipt.value().acked_seq);
    }
    return;
  }
  if (!AcceptDelivery(message)) return;
  switch (message.type) {
    case MessageType::kUpdateRequest:
      OnRequest(message);
      break;
    case MessageType::kUpdateData:
      OnData(message);
      break;
    case MessageType::kLinkClosed:
      OnLinkClosed(message);
      break;
    case MessageType::kUpdateComplete:
      OnComplete(message);
      break;
    case MessageType::kUpdateAck: {
      Result<AckPayload> ack = AckPayload::Deserialize(message.payload);
      if (ack.ok()) {
        m_acks_in_->Add();
        ScopedSpan span(Tracer::Global().BeginSpanHere(
            "update.ack", ack.value().flow.ToString()));
        termination_.OnAck(ack.value().flow, message.src);
      }
      break;
    }
    default:
      CODB_LOG(kWarning) << node_name_ << ": update manager got unexpected "
                         << MessageTypeName(message.type);
      break;
  }
  termination_.MaybeQuiesce();
  m_handler_us_->Record(wall.ElapsedMicros());
  // Wall time is attributed to the most recently touched update inside the
  // handlers; approximating with "all active updates" would double-count,
  // so handlers record into the report directly where needed. Here we only
  // account the envelope-level cost for data messages (the dominant cost).
  if (message.type == MessageType::kUpdateData) {
    Result<UpdateDataPayload> parsed =
        UpdateDataPayload::Deserialize(message.payload);
    if (parsed.ok()) {
      stats_->ReportFor(parsed.value().update).wall_micros +=
          static_cast<double>(wall.ElapsedMicros());
    }
  }
  // This delivery may have filled the gap in front of parked arrivals.
  DrainReady(message);
}

void UpdateManager::OnRequest(const Message& message) {
  Result<UpdateRequestPayload> parsed =
      UpdateRequestPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << node_name_ << ": bad update request: "
                       << parsed.status().ToString();
    return;
  }
  const FlowId update = parsed.value().update;
  m_requests_in_->Add();
  ScopedSpan span(
      Tracer::Global().BeginSpanHere("update.request", update.ToString()));
  termination_.OnBasicMessage(update, message.src);
  Join(update, message.src, parsed.value().refresh,
       parsed.value().incremental);
}

void UpdateManager::OnData(const Message& message) {
  Result<UpdateDataPayload> parsed =
      UpdateDataPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << node_name_ << ": bad update data: "
                       << parsed.status().ToString();
    return;
  }
  UpdateDataPayload data = std::move(parsed).value();
  const FlowId update = data.update;
  m_data_in_->Add();
  m_data_tuples_->Record(data.tuples.size());
  // Exactly one flow-tagged "update.data" span per delivered data message;
  // the golden trace test matches their count against the statistics
  // module's data_messages_received.
  ScopedSpan span(
      Tracer::Global().BeginSpanHere("update.data", update.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", data.rule_id);
  termination_.OnBasicMessage(update, message.src);
  // Data can only come from a joined acquaintance, which always floods the
  // request first on the same FIFO pipe — but a pipe created mid-update
  // (dynamic topology) can skip that, so join defensively (the refresh
  // and incremental flags, if any, arrived with the request on the same
  // pipe).
  Join(update, message.src, /*refresh=*/false, /*incremental=*/false);
  UpdateState& state = StateOf(update);

  // Statistics for this data message.
  UpdateReport& report = stats_->ReportFor(update);
  ++report.data_messages_received;
  report.data_bytes_received += message.WireSize();
  report.longest_path_nodes =
      std::max(report.longest_path_nodes,
               static_cast<uint32_t>(data.path.size() + 1));
  report.acquaintances_queried.insert(message.src.value);
  RuleTrafficStats& traffic = report.received_per_rule[data.rule_id];
  ++traffic.messages;
  traffic.tuples += data.tuples.size();
  traffic.bytes += message.WireSize();

  // T' = T \ R ; R += T'. The wrapper's set semantics performs the fused
  // version; with dedup_received off the full batch is used as the delta.
  Result<std::map<std::string, std::vector<Tuple>>> applied =
      wrapper_->ApplyHeadTuples(data.tuples);
  if (!applied.ok()) {
    CODB_LOG(kError) << node_name_ << ": applying update data failed: "
                     << applied.status().ToString();
    return;
  }
  std::map<std::string, std::vector<Tuple>> delta =
      std::move(applied).value();
  for (const auto& [relation, rows] : delta) {
    report.tuples_added += rows.size();
  }
  if (!options_.dedup_received) {
    delta.clear();
    for (const HeadTuple& ht : data.tuples) {
      delta[ht.relation].push_back(ht.tuple);
    }
  }
  if (delta.empty()) {
    CheckClosing(update, state);
    return;
  }

  if (state.exports_suppressed) {
    CheckClosing(update, state);
    return;
  }

  // Recompute the incoming links dependent on this outgoing link,
  // substituting the delta, and forward along simple paths only.
  std::vector<uint32_t> extended_path = data.path;
  extended_path.push_back(self_.value);

  for (const std::string& dependent : link_graph_->DependentOn(data.rule_id)) {
    if (subsumed_incoming_.find(dependent) != subsumed_incoming_.end()) {
      continue;
    }
    auto link_it = state.incoming.find(dependent);
    if (link_it == state.incoming.end()) continue;  // stale config
    if (link_it->second.closed) {
      // Cannot happen while a relevant outgoing link still delivers; keep
      // the protocol honest if it does.
      CODB_LOG(kWarning) << node_name_ << ": data for closed link "
                         << dependent;
      continue;
    }
    const CoordinationRule& rule = compiled_incoming_.at(dependent);
    Result<PeerId> importer = ResolvePeer(rule.importer());
    if (!importer.ok()) continue;
    // Simple-path constraint: never forward to a node already on the path.
    if (std::find(data.path.begin(), data.path.end(),
                  importer.value().value) != data.path.end()) {
      continue;
    }

    m_rule_evals_->Add();
    ScopedSpan eval_span(Tracer::Global().BeginSpanHere(
        "update.rule_eval", update.ToString()));
    Tracer::Global().AddArg(eval_span.id(), "rule", dependent);
    std::vector<Tuple> frontiers;
    for (const auto& [relation, rows] : delta) {
      bool referenced =
          std::find_if(rule.query().body.begin(), rule.query().body.end(),
                       [&](const Atom& atom) {
                         return atom.predicate == relation;
                       }) != rule.query().body.end();
      if (!referenced) continue;
      m_eval_rows_->Add(rows.size());
      ShardedRWLock::ReadAllGuard read_guard(wrapper_->store_lock());
      std::vector<Tuple> partial = rule.EvaluateFrontierDelta(
          wrapper_->storage(), relation, rows, options_.eval);
      frontiers.insert(frontiers.end(), partial.begin(), partial.end());
    }
    eval_span.End();
    ShipFrontiers(update, state, dependent, std::move(frontiers),
                  extended_path);
  }
  CheckClosing(update, state);
}

void UpdateManager::OnLinkClosed(const Message& message) {
  Result<LinkClosedPayload> parsed =
      LinkClosedPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << node_name_ << ": bad link-closed: "
                       << parsed.status().ToString();
    return;
  }
  const FlowId update = parsed.value().update;
  m_link_closed_in_->Add();
  ScopedSpan span(Tracer::Global().BeginSpanHere("update.link_closed",
                                                 update.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", parsed.value().rule_id);
  termination_.OnBasicMessage(update, message.src);
  Join(update, message.src, /*refresh=*/false, /*incremental=*/false);
  UpdateState& state = StateOf(update);
  auto it = state.outgoing.find(parsed.value().rule_id);
  if (it != state.outgoing.end()) {
    it->second.closed = true;
  }
  CheckClosing(update, state);
}

bool UpdateManager::OutgoingQuiet(const UpdateState& state,
                                  const std::string& rule_id) const {
  auto it = state.outgoing.find(rule_id);
  if (it == state.outgoing.end()) return true;  // not ours / stale
  if (it->second.closed) return true;
  const CoordinationRule* rule = config_->FindRule(rule_id);
  if (rule == nullptr) return true;
  // Churn: an unreachable exporter can never deliver again.
  Result<PeerId> exporter = ResolvePeer(rule->exporter());
  if (!exporter.ok()) return true;
  // Membership eviction counts as unreachable even while the pipe object
  // lingers (silent death never snaps the pipe).
  return !network_->HasPipe(self_, exporter.value()) ||
         !network_->IsAlive(exporter.value()) ||
         (presumed_alive_ != nullptr && !presumed_alive_(exporter.value()));
}

void UpdateManager::CheckClosing(const FlowId& update, UpdateState& state) {
  if (!state.joined) return;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [rule_id, link] : state.incoming) {
      if (link.closed || !link.initial_fired) continue;
      // Links on dependency cycles wait for global quiescence.
      if (link_graph_->IsCyclic(rule_id)) continue;
      bool all_quiet = true;
      for (const std::string& relevant : link_graph_->RelevantFor(rule_id)) {
        if (!OutgoingQuiet(state, relevant)) {
          all_quiet = false;
          break;
        }
      }
      if (!all_quiet) continue;

      link.closed = true;
      progressed = true;
      const CoordinationRule& rule = compiled_incoming_.at(rule_id);
      Result<PeerId> importer = ResolvePeer(rule.importer());
      if (importer.ok() && network_->HasPipe(self_, importer.value())) {
        LinkClosedPayload closed{update, rule_id};
        SendBasic(update, importer.value(), MessageType::kLinkClosed,
                  closed.Serialize());
      }
    }
  }

  // Node-level closed state: all outgoing links quiet.
  UpdateReport& report = stats_->ReportFor(update);
  if (report.closed_virtual_us < 0) {
    bool all_closed = true;
    for (const auto& [rule_id, link] : state.outgoing) {
      if (!OutgoingQuiet(state, rule_id)) {
        all_closed = false;
        break;
      }
    }
    if (all_closed) report.closed_virtual_us = network_->now_us();
  }
}

void UpdateManager::Complete(const FlowId& update, PeerId via) {
  UpdateState& state = StateOf(update);
  if (state.complete) return;
  state.complete = true;

  // Force-close everything still open (cyclic links close here).
  for (auto& [rule_id, link] : state.incoming) link.closed = true;
  for (auto& [rule_id, link] : state.outgoing) link.closed = true;

  UpdateReport& report = stats_->ReportFor(update);
  if (report.closed_virtual_us < 0) {
    report.closed_virtual_us = network_->now_us();
  }
  report.complete_virtual_us = network_->now_us();

  // Flood completion (not a basic message; the computation is over). The
  // flood is still sequenced + retransmitted: a lost completion would
  // leave cyclic links open forever on the receiving side.
  UpdateCompletePayload payload{update};
  for (PeerId neighbor : Acquaintances()) {
    if (neighbor == via) continue;
    reliable_.Send(MakeMessage(self_, neighbor, MessageType::kUpdateComplete,
                               payload.Serialize()),
                   update, /*basic=*/false);
  }
  CODB_LOG(kInfo) << node_name_ << ": " << update.ToString() << " complete";

  // Root-side completion callback, exactly once: the state.complete guard
  // above makes a second Complete() a no-op, and the callback is erased
  // before it runs so a re-entrant call cannot find it again.
  auto callback = completions_.find(update);
  if (callback != completions_.end()) {
    CompletionFn fn = std::move(callback->second);
    completions_.erase(callback);
    if (fn != nullptr) fn(update);
  }
}

void UpdateManager::OnComplete(const Message& message) {
  Result<UpdateCompletePayload> parsed =
      UpdateCompletePayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << node_name_ << ": bad update-complete: "
                       << parsed.status().ToString();
    return;
  }
  m_completes_in_->Add();
  ScopedSpan span(Tracer::Global().BeginSpanHere(
      "update.complete", parsed.value().update.ToString()));
  Complete(parsed.value().update, message.src);
}

void UpdateManager::HandlePipeClosed(PeerId other) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  reliable_.OnPeerLost(other);
  termination_.OnPeerLost(other);
  for (auto& [update, state] : updates_) {
    if (!state.complete) CheckClosing(update, state);
  }
  termination_.MaybeQuiesce();
}

void UpdateManager::SendBasic(const FlowId& update, PeerId dst,
                              MessageType type,
                              std::vector<uint8_t> payload) {
  Status sent = reliable_.Send(
      MakeMessage(self_, dst, type, std::move(payload)), update,
      /*basic=*/true);
  if (sent.ok()) {
    termination_.OnSent(update, dst);
  } else {
    CODB_LOG(kDebug) << node_name_ << ": send " << MessageTypeName(type)
                     << " to " << dst.ToString()
                     << " failed: " << sent.ToString();
  }
}

std::vector<PeerId> UpdateManager::Acquaintances() const {
  std::vector<PeerId> out;
  for (const std::string& name : config_->AcquaintancesOf(node_name_)) {
    Result<PeerId> peer = ResolvePeer(name);
    if (peer.ok() && network_->IsAlive(peer.value()) &&
        network_->HasPipe(self_, peer.value()) &&
        (presumed_alive_ == nullptr || presumed_alive_(peer.value()))) {
      out.push_back(peer.value());
    }
  }
  return out;
}

bool UpdateManager::LocallyInconsistent() const {
  const NodeDecl* decl = config_->FindNode(node_name_);
  if (decl == nullptr || decl->keys.empty()) return false;
  ShardedRWLock::ReadAllGuard read_guard(wrapper_->store_lock());
  return !FindKeyViolations(wrapper_->storage(), decl->keys).empty();
}

bool UpdateManager::IsJoined(const FlowId& update) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = updates_.find(update);
  return it != updates_.end() && it->second.joined;
}

bool UpdateManager::IsClosed(const FlowId& update) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = updates_.find(update);
  if (it == updates_.end()) return false;
  for (const auto& [rule_id, link] : it->second.outgoing) {
    if (!OutgoingQuiet(it->second, rule_id)) return false;
  }
  return it->second.joined;
}

bool UpdateManager::IsComplete(const FlowId& update) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = updates_.find(update);
  return it != updates_.end() && it->second.complete;
}

bool UpdateManager::OutgoingLinkClosed(const FlowId& update,
                                       const std::string& rule_id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = updates_.find(update);
  if (it == updates_.end()) return false;
  auto link = it->second.outgoing.find(rule_id);
  return link != it->second.outgoing.end() && link->second.closed;
}

bool UpdateManager::IncomingLinkClosed(const FlowId& update,
                                       const std::string& rule_id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = updates_.find(update);
  if (it == updates_.end()) return false;
  auto link = it->second.incoming.find(rule_id);
  return link != it->second.incoming.end() && link->second.closed;
}

std::vector<std::string> UpdateManager::OutgoingLinkIds() const {
  std::vector<std::string> ids;
  for (const CoordinationRule* rule : config_->OutgoingOf(node_name_)) {
    ids.push_back(rule->id());
  }
  return ids;
}

std::vector<std::string> UpdateManager::IncomingLinkIds() const {
  std::vector<std::string> ids;
  for (const CoordinationRule* rule : config_->IncomingOf(node_name_)) {
    ids.push_back(rule->id());
  }
  return ids;
}

}  // namespace codb
