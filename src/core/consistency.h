// Local-inconsistency detection (paper, design principle (d): "local
// inconsistency does not propagate").
//
// A node is *locally inconsistent* when its own store violates one of its
// declared key constraints — two tuples agreeing on the key columns but
// differing elsewhere. The update and query managers consult this check
// and suppress the node's exports while it is inconsistent: its links
// still open and close normally (termination is unaffected), but they
// carry no data, so the inconsistency stays local.

#ifndef CODB_CORE_CONSISTENCY_H_
#define CODB_CORE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "relation/database.h"

namespace codb {

// Human-readable descriptions of every violated constraint, e.g.
// "key d(k) violated by (1, 2) and (1, 3)". Empty = consistent.
// Constraints referencing unknown relations or columns are reported as
// violations too (a misconfigured node must not silently export).
std::vector<std::string> FindKeyViolations(
    const Database& db, const std::vector<KeyConstraint>& constraints);

}  // namespace codb

#endif  // CODB_CORE_CONSISTENCY_H_
