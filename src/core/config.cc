#include "core/config.h"

#include <algorithm>
#include <set>

#include "query/containment.h"
#include "query/parser.h"
#include "util/string_util.h"

namespace codb {

std::string KeyConstraint::ToString() const {
  std::string out = "key " + relation + "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i];
  }
  out += ")";
  return out;
}

Result<NetworkConfig> NetworkConfig::Parse(const std::string& text) {
  NetworkConfig config;
  NodeDecl* current = nullptr;
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto line_error = [&](const std::string& message) {
      return Status::ParseError("config line " + std::to_string(line_no) +
                                ": " + message);
    };

    if (StartsWith(line, "node ")) {
      std::string rest(Trim(line.substr(5)));
      bool mediator = false;
      if (rest.size() > 9 && rest.substr(rest.size() - 9) == " mediator") {
        mediator = true;
        rest = std::string(Trim(rest.substr(0, rest.size() - 9)));
      }
      if (rest.empty()) return line_error("node declaration without a name");
      config.nodes_.push_back({rest, mediator, {}, {}});
      current = &config.nodes_.back();
      continue;
    }

    if (StartsWith(line, "relation ")) {
      if (current == nullptr) {
        return line_error("relation declaration outside a node block");
      }
      Result<RelationSchema> schema = ParseSchema(line.substr(9));
      if (!schema.ok()) return line_error(schema.status().ToString());
      current->relations.push_back(std::move(schema).value());
      continue;
    }

    if (StartsWith(line, "key ")) {
      if (current == nullptr) {
        return line_error("key declaration outside a node block");
      }
      std::string rest(Trim(line.substr(4)));
      size_t open = rest.find('(');
      size_t close = rest.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        return line_error("key declaration needs 'key relation(col, ..)'");
      }
      KeyConstraint key;
      key.relation = std::string(Trim(rest.substr(0, open)));
      for (const std::string& col :
           Split(rest.substr(open + 1, close - open - 1), ',')) {
        std::string name(Trim(col));
        if (name.empty()) return line_error("empty key column");
        key.columns.push_back(std::move(name));
      }
      if (key.relation.empty() || key.columns.empty()) {
        return line_error("key declaration needs a relation and columns");
      }
      current->keys.push_back(std::move(key));
      continue;
    }

    if (StartsWith(line, "rule ")) {
      Result<CoordinationRule> rule = ParseRuleText(std::string(line));
      if (!rule.ok()) return line_error(rule.status().ToString());
      config.rules_.push_back(std::move(rule).value());
      current = nullptr;
      continue;
    }

    return line_error("unrecognized declaration: " + std::string(line));
  }
  CODB_RETURN_IF_ERROR(config.Validate());
  return config;
}

std::string NodeDeclText(const NodeDecl& node) {
  std::string out =
      "node " + node.name + (node.mediator ? " mediator" : "") + "\n";
  for (const RelationSchema& rel : node.relations) {
    out += "  relation " + rel.ToString() + "\n";
  }
  for (const KeyConstraint& key : node.keys) {
    out += "  " + key.ToString() + "\n";
  }
  return out;
}

std::string RuleText(const CoordinationRule& rule) {
  return "rule " + rule.id() + " " + rule.importer() + " <- " +
         rule.exporter() + " : " + rule.query().ToString() + "\n";
}

Result<NodeDecl> ParseNodeDeclText(const std::string& text) {
  // A node block is a one-node configuration with no rules; reuse the
  // full parser (validation of a lone declaration is schema-local).
  CODB_ASSIGN_OR_RETURN(NetworkConfig config, NetworkConfig::Parse(text));
  if (config.nodes().size() != 1 || !config.rules().empty()) {
    return Status::ParseError("expected exactly one node declaration");
  }
  return config.nodes().front();
}

Result<CoordinationRule> ParseRuleText(const std::string& line) {
  // rule <id> <importer> <- <exporter> : <query>
  std::string_view trimmed = Trim(line);
  if (!StartsWith(trimmed, "rule ")) {
    return Status::ParseError("rule line must start with 'rule '");
  }
  std::string rest(Trim(trimmed.substr(5)));
  size_t colon = rest.find(':');
  if (colon == std::string::npos) {
    return Status::ParseError("rule without ':' before the query");
  }
  std::string head_part(Trim(rest.substr(0, colon)));
  std::string query_part(Trim(rest.substr(colon + 1)));
  size_t arrow = head_part.find("<-");
  if (arrow == std::string::npos) {
    return Status::ParseError(
        "rule without '<-' between importer and exporter");
  }
  std::string left(Trim(head_part.substr(0, arrow)));
  std::string exporter(Trim(head_part.substr(arrow + 2)));
  size_t space = left.find_last_of(" \t");
  if (space == std::string::npos) {
    return Status::ParseError("rule needs both an id and an importer");
  }
  std::string id(Trim(left.substr(0, space)));
  std::string importer(Trim(left.substr(space + 1)));
  if (id.empty() || importer.empty() || exporter.empty()) {
    return Status::ParseError(
        "rule id, importer and exporter must be non-empty");
  }
  CODB_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(query_part));
  return CoordinationRule(id, importer, exporter, std::move(query));
}

std::string NetworkConfig::Serialize() const {
  std::string out;
  for (const NodeDecl& node : nodes_) {
    out += NodeDeclText(node);
  }
  for (const CoordinationRule& rule : rules_) {
    out += RuleText(rule);
  }
  return out;
}

std::string NetworkConfig::CanonicalText() const {
  std::vector<const NodeDecl*> nodes;
  nodes.reserve(nodes_.size());
  for (const NodeDecl& node : nodes_) nodes.push_back(&node);
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeDecl* a, const NodeDecl* b) {
              return a->name < b->name;
            });
  std::vector<const CoordinationRule*> rules;
  rules.reserve(rules_.size());
  for (const CoordinationRule& rule : rules_) rules.push_back(&rule);
  std::sort(rules.begin(), rules.end(),
            [](const CoordinationRule* a, const CoordinationRule* b) {
              return a->id() < b->id();
            });
  std::string out;
  for (const NodeDecl* node : nodes) out += NodeDeclText(*node);
  for (const CoordinationRule* rule : rules) out += RuleText(*rule);
  return out;
}

uint64_t NetworkConfig::CanonicalChecksum() const {
  // FNV-1a 64.
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : CanonicalText()) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

Status NetworkConfig::AddNode(NodeDecl node) {
  if (FindNode(node.name) != nullptr) {
    return Status::AlreadyExists("node '" + node.name + "' already declared");
  }
  nodes_.push_back(std::move(node));
  return Status::Ok();
}

Status NetworkConfig::AddRule(CoordinationRule rule) {
  if (FindRule(rule.id()) != nullptr) {
    return Status::AlreadyExists("rule '" + rule.id() + "' already declared");
  }
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

void NetworkConfig::UpsertNode(NodeDecl node) {
  for (NodeDecl& existing : nodes_) {
    if (existing.name == node.name) {
      existing = std::move(node);
      return;
    }
  }
  nodes_.push_back(std::move(node));
}

Status NetworkConfig::RemoveNode(const std::string& name) {
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (it->name == name) {
      nodes_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("node '" + name + "' not declared");
}

Status NetworkConfig::RemoveRule(const std::string& rule_id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id() == rule_id) {
      rules_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("rule '" + rule_id + "' not declared");
}

NetworkConfig NetworkConfig::ProjectFor(const std::string& node_name) const {
  NetworkConfig slice;
  const NodeDecl* self = FindNode(node_name);
  if (self == nullptr) return slice;
  slice.nodes_.push_back(*self);
  for (const std::string& other : AcquaintancesOf(node_name)) {
    const NodeDecl* decl = FindNode(other);
    if (decl != nullptr) slice.nodes_.push_back(*decl);
  }
  for (const CoordinationRule& rule : rules_) {
    if (rule.importer() == node_name || rule.exporter() == node_name) {
      slice.rules_.push_back(rule);
    }
  }
  return slice;
}

Status NetworkConfig::Validate() const {
  std::set<std::string> node_names;
  for (const NodeDecl& node : nodes_) {
    if (!node_names.insert(node.name).second) {
      return Status::InvalidArgument("duplicate node '" + node.name + "'");
    }
    std::set<std::string> rel_names;
    for (const RelationSchema& rel : node.relations) {
      if (!rel_names.insert(rel.name()).second) {
        return Status::InvalidArgument("node '" + node.name +
                                       "' declares relation '" + rel.name() +
                                       "' twice");
      }
    }
    for (const KeyConstraint& key : node.keys) {
      DatabaseSchema schema = SchemaOf(node.name);
      const RelationSchema* rel = schema.FindRelation(key.relation);
      if (rel == nullptr) {
        return Status::NotFound("key constraint on undeclared relation '" +
                                key.relation + "' at node '" + node.name +
                                "'");
      }
      for (const std::string& column : key.columns) {
        if (rel->AttributeIndex(column) < 0) {
          return Status::NotFound("key column '" + column +
                                  "' not in relation '" + key.relation +
                                  "'");
        }
      }
    }
  }
  std::set<std::string> rule_ids;
  for (const CoordinationRule& rule : rules_) {
    if (!rule_ids.insert(rule.id()).second) {
      return Status::InvalidArgument("duplicate rule id '" + rule.id() + "'");
    }
    if (rule.importer() == rule.exporter()) {
      return Status::InvalidArgument(
          "rule '" + rule.id() + "' connects node '" + rule.importer() +
          "' to itself");
    }
    if (FindNode(rule.importer()) == nullptr) {
      return Status::NotFound("rule '" + rule.id() + "' importer '" +
                              rule.importer() + "' not declared");
    }
    if (FindNode(rule.exporter()) == nullptr) {
      return Status::NotFound("rule '" + rule.id() + "' exporter '" +
                              rule.exporter() + "' not declared");
    }
    // Type-check head against the importer's schema and body against the
    // exporter's, without mutating the stored rule.
    CoordinationRule copy = rule;
    Status compiled =
        copy.Compile(SchemaOf(rule.exporter()), SchemaOf(rule.importer()));
    if (!compiled.ok()) {
      return Status::InvalidArgument("rule '" + rule.id() +
                                     "': " + compiled.ToString());
    }
  }
  return Status::Ok();
}

const NodeDecl* NetworkConfig::FindNode(const std::string& name) const {
  for (const NodeDecl& node : nodes_) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

DatabaseSchema NetworkConfig::SchemaOf(const std::string& node_name) const {
  DatabaseSchema schema;
  const NodeDecl* node = FindNode(node_name);
  if (node != nullptr) {
    for (const RelationSchema& rel : node->relations) {
      schema.AddRelation(rel);
    }
  }
  return schema;
}

const CoordinationRule* NetworkConfig::FindRule(
    const std::string& rule_id) const {
  for (const CoordinationRule& rule : rules_) {
    if (rule.id() == rule_id) return &rule;
  }
  return nullptr;
}

std::vector<const CoordinationRule*> NetworkConfig::OutgoingOf(
    const std::string& node_name) const {
  std::vector<const CoordinationRule*> out;
  for (const CoordinationRule& rule : rules_) {
    if (rule.importer() == node_name) out.push_back(&rule);
  }
  return out;
}

std::vector<const CoordinationRule*> NetworkConfig::IncomingOf(
    const std::string& node_name) const {
  std::vector<const CoordinationRule*> out;
  for (const CoordinationRule& rule : rules_) {
    if (rule.exporter() == node_name) out.push_back(&rule);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>>
NetworkConfig::FindSubsumedRules() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const CoordinationRule& a : rules_) {
    for (const CoordinationRule& b : rules_) {
      if (a.id() == b.id()) continue;
      if (a.importer() != b.importer() || a.exporter() != b.exporter()) {
        continue;
      }
      // Break id-order ties so mutually equivalent rules do not subsume
      // each other away entirely.
      DatabaseSchema exporter_schema = SchemaOf(a.exporter());
      Result<bool> contained =
          IsContained(a.query(), b.query(), exporter_schema);
      if (!contained.ok() || !contained.value()) continue;
      Result<bool> reverse =
          IsContained(b.query(), a.query(), exporter_schema);
      bool equivalent = reverse.ok() && reverse.value();
      if (equivalent && a.id() < b.id()) continue;  // keep the smaller id
      out.emplace_back(a.id(), b.id());
    }
  }
  return out;
}

std::vector<std::string> NetworkConfig::AcquaintancesOf(
    const std::string& node_name) const {
  std::vector<std::string> out;
  auto add = [&](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  };
  for (const CoordinationRule& rule : rules_) {
    if (rule.importer() == node_name) add(rule.exporter());
    if (rule.exporter() == node_name) add(rule.importer());
  }
  return out;
}

}  // namespace codb
