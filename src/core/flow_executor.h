// Per-flow FIFO strands over a shared thread pool (DESIGN.md §10).
//
// Concurrent flow admission needs two properties at once: messages of one
// flow must be handled in arrival order (the reliability layer's DupFilter
// releases parked messages in sequence, and the managers' state machines
// assume it), while messages of *different* flows should overlap. A
// FlowExecutor gives each FlowId a strand — a FIFO queue drained by at
// most one pool task at a time — so order holds per flow and concurrency
// happens across flows.
//
// Quiescence: every posted task is bracketed with the network's
// BeginExternalWork/EndExternalWork, so NetworkBase::Run() blocks until
// all strands drain; the testbed's settle loops keep working unchanged.
//
// Leak check: a strand is erased the moment its queue drains, so
// ActiveFlows() == 0 after quiescence proves no flow left work behind —
// the concurrent-flows stress test asserts exactly this at teardown.

#ifndef CODB_CORE_FLOW_EXECUTOR_H_
#define CODB_CORE_FLOW_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "core/protocol.h"
#include "net/network_interface.h"
#include "util/thread_pool.h"

namespace codb {

class FlowExecutor {
 public:
  FlowExecutor(ThreadPool* pool, NetworkBase* network);
  ~FlowExecutor();

  FlowExecutor(const FlowExecutor&) = delete;
  FlowExecutor& operator=(const FlowExecutor&) = delete;

  // Appends `task` to the flow's strand; starts a drain if idle.
  void Post(const FlowId& flow, std::function<void()> task);

  // Strands with queued or running work right now.
  size_t ActiveFlows() const;

  // Blocks until every strand has drained. Called by the owner's
  // destructor so strand tasks never outlive the managers they touch.
  void Drain();

 private:
  struct Strand {
    std::deque<std::function<void()>> queue;
    bool running = false;
  };

  // Pool task: drains one strand until its queue empties.
  void RunStrand(FlowId flow);

  ThreadPool* pool_;
  NetworkBase* network_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::map<FlowId, Strand> strands_;
};

}  // namespace codb

#endif  // CODB_CORE_FLOW_EXECUTOR_H_
