// Centralized reference implementations of the coDB semantics, used by the
// test suite to verify the distributed algorithms.
//
// Two evaluators:
//
//  * PathBounded — a sequential, network-free mirror of the global-update
//    semantics: data propagates through coordination rules along *simple*
//    node paths, with per-link frontier dedup and fresh marked nulls for
//    existentials. After a distributed global update every node's store
//    must be homomorphically equivalent to this oracle's result (and equal
//    on the null-free part, up to tuple order). Note the algorithm's
//    sent-set dedup makes the outcome order-sensitive when the same
//    frontier is derivable along several paths; tests use seed data with
//    unique derivations where exact agreement is asserted.
//
//  * NaiveFixpoint — the classic chase-style fixpoint with no path bound
//    (every node eventually holds everything derivable). This is an upper
//    bound of the coDB semantics: the distributed result must always map
//    homomorphically into it, and equals it on topologies whose dependency
//    chains never revisit a node (chains, trees, stars). It may not
//    terminate for cyclic rules with existential variables, hence the
//    round cap.

#ifndef CODB_CORE_ORACLE_H_
#define CODB_CORE_ORACLE_H_

#include <map>
#include <string>

#include "core/config.h"
#include "query/homomorphism.h"
#include "util/status.h"

namespace codb {

// node name -> instance.
using NetworkInstance = std::map<std::string, Instance>;

class Oracle {
 public:
  // Runs the path-bounded semantics from the given initial instances.
  static Result<NetworkInstance> PathBounded(
      const NetworkConfig& config, const NetworkInstance& initial);

  // Runs the unbounded fixpoint; fails with kFailedPrecondition if it has
  // not converged after `max_rounds` rounds.
  static Result<NetworkInstance> NaiveFixpoint(
      const NetworkConfig& config, const NetworkInstance& initial,
      int max_rounds = 1000);
};

}  // namespace codb

#endif  // CODB_CORE_ORACLE_H_
