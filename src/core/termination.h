// Distributed termination detection for diffusing computations.
//
// The paper propagates queries and updates with "an extension of the
// 'diffusing computation' approach [Lynch, 1996]". This module implements
// the Dijkstra–Scholten scheme that underlies it:
//
//   * every protocol message of a flow (request, data, link-closed, query
//     request, query result) is a *basic message* and is acknowledged;
//   * the first basic message a node receives for a flow *engages* it; the
//     acknowledgement of that message is deferred until the node has no
//     outstanding unacknowledged messages of its own (its *deficit* is 0);
//   * the initiator (root) detects global termination when its own deficit
//     reaches zero — at that point no message of the flow exists anywhere.
//
// Churn: when a pipe to a peer is lost, the deficit attributable to that
// peer is cancelled and an engaged node orphaned from its parent simply
// disengages. Termination detection then covers the surviving part of the
// computation tree (see DESIGN.md §4, decision 2).

#ifndef CODB_CORE_TERMINATION_H_
#define CODB_CORE_TERMINATION_H_

#include <functional>
#include <map>

#include "core/protocol.h"
#include "net/peer_id.h"

namespace codb {

class TerminationDetector {
 public:
  // `send_ack(to, flow)` must transmit one acknowledgement; failures are
  // the caller's concern (a lost ack peer is reported via OnPeerLost).
  using SendAckFn = std::function<void(PeerId to, const FlowId& flow)>;
  // Invoked exactly once per rooted flow when it terminates.
  using TerminatedFn = std::function<void(const FlowId& flow)>;

  TerminationDetector(PeerId self, SendAckFn send_ack)
      : self_(self), send_ack_(std::move(send_ack)) {}

  // Declares this node the root of `flow`.
  void StartRoot(const FlowId& flow, TerminatedFn on_terminated);

  // Must be called for every incoming basic message of `flow`, before the
  // message is processed. Engages the node or acks immediately.
  void OnBasicMessage(const FlowId& flow, PeerId src);

  // A basic message of `flow` was successfully handed to the network.
  void OnSent(const FlowId& flow, PeerId dst);

  // An acknowledgement for `flow` arrived from `from` (the envelope's
  // source peer — i.e. a peer we previously sent a basic message to).
  void OnAck(const FlowId& flow, PeerId from);

  // The pipe to `peer` is gone: cancel outstanding deficit towards it in
  // every flow, and orphan any engagement whose parent it was.
  void OnPeerLost(PeerId peer);

  // Cancels one unit of deficit towards `dst` (the reliability layer gave
  // up retransmitting a basic message — its ack will never come). No-op
  // if nothing is outstanding towards `dst`.
  void CancelOne(const FlowId& flow, PeerId dst);

  // Deadline abort: zeroes the flow's deficit and, at the root, marks the
  // flow terminated WITHOUT firing on_terminated (the caller reports the
  // abort itself; termination callbacks stay exactly-once). A non-root
  // sends its deferred parent ack and disengages.
  void Abort(const FlowId& flow);

  // Idle check; call after processing each event. Disengages quiescent
  // non-roots (sending the deferred parent ack) and fires termination at
  // quiescent roots.
  void MaybeQuiesce();

  bool IsEngaged(const FlowId& flow) const;
  uint64_t DeficitOf(const FlowId& flow) const;

 private:
  struct FlowState {
    bool engaged = false;
    bool root = false;
    bool terminated = false;
    bool parent_ack_pending = false;
    PeerId parent;
    uint64_t deficit = 0;
    std::map<uint32_t, uint64_t> deficit_by_peer;
    TerminatedFn on_terminated;
  };

  void Quiesce(const FlowId& flow, FlowState& state);

  PeerId self_;
  SendAckFn send_ack_;
  std::map<FlowId, FlowState> flows_;
};

}  // namespace codb

#endif  // CODB_CORE_TERMINATION_H_
