// At-least-once delivery for the coDB protocol messages.
//
// The fault-injection layer (net/fault.h) makes the network drop,
// duplicate and reorder traffic; this module restores the exactly-once
// *processing* the managers assume, with the classic pair:
//
//   * sender side (ReliableSender): every protocol message of a flow is
//     stamped with a per-(flow, destination) monotonically increasing
//     sequence number and retransmitted with exponential backoff until a
//     kDeliveryAck receipt arrives or the retry budget is exhausted;
//   * receiver side (DupFilter): a (flow, source, seq) triple is processed
//     at most once; re-deliveries are receipt-acked again and dropped, so
//     retransmissions are idempotent.
//
// The delivery receipt is deliberately distinct from the Dijkstra–Scholten
// kUpdateAck: a D-S ack is *deferred* until a whole subtree quiesces, so
// using it to cancel retransmission would make slow-but-alive subtrees
// look like losses. Receipts are immediate, carry no termination
// semantics, and are themselves never sequenced or retransmitted (a lost
// receipt just means one more retransmission, which the DupFilter
// absorbs). D-S acks and completion floods, on the other hand, ARE
// sequenced and retransmitted: losing one would permanently wedge the
// sender's deficit.
//
// When the sender gives up on a *basic* message, its D-S ack will never
// arrive; the manager cancels the corresponding unit of deficit
// (TerminationDetector::CancelOne) so the flow still terminates — with
// partial coverage, like a lost pipe.

#ifndef CODB_CORE_RELIABILITY_H_
#define CODB_CORE_RELIABILITY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/protocol.h"
#include "net/network_interface.h"
#include "obs/metrics.h"

namespace codb {

struct ReliabilityOptions {
  // Off by default: the fault-free runtimes keep their historical message
  // counts and the managers behave exactly as before.
  bool enabled = false;
  // First retransmission fires after this delay; each further one is
  // `backoff_factor` times later.
  int64_t retransmit_base_us = 50'000;
  double backoff_factor = 2.0;
  int max_retries = 5;
  // Root-side deadline for a whole flow; 0 disables. A flow still running
  // at the deadline is aborted and reported as partial.
  int64_t flow_deadline_us = 0;
};

class ReliableSender {
 public:
  // Invoked when the retry budget for a message is exhausted. `basic`
  // mirrors the Send() argument: true means a unit of termination deficit
  // must be cancelled by the owner.
  using GiveUpFn = std::function<void(const FlowId& flow, PeerId dst,
                                      bool basic)>;

  // Counters may be null. All pointers must outlive the sender.
  // `retx_bytes` accumulates the wire bytes of retransmissions only —
  // first sends are excluded — so the cost of the reliability layer is
  // separable from the payload traffic it protects.
  ReliableSender(NetworkBase* network, ReliabilityOptions options,
                 GiveUpFn on_give_up, Counter* retransmits = nullptr,
                 Counter* give_ups = nullptr,
                 Counter* retx_bytes = nullptr);

  // Stamps the next per-(flow, dst) sequence number, sends, and arms the
  // retransmission timer. With reliability disabled this degrades to a
  // plain network send (seq stays 0, nothing is tracked).
  Status Send(Message message, const FlowId& flow, bool basic);

  // A kDeliveryAck receipt arrived: stop retransmitting that message.
  void OnDeliveryAck(const FlowId& flow, PeerId from, uint32_t acked_seq);

  // The pipe to `peer` is gone; pending messages towards it are dropped
  // without a give-up callback (the owner cancels deficit via OnPeerLost).
  void OnPeerLost(PeerId peer);

  const ReliabilityOptions& options() const { return shared_->options; }
  uint64_t pending_count() const;

  // Expires when the owning manager is destroyed; timer closures that
  // touch the manager (e.g. flow deadlines) check this before firing.
  std::weak_ptr<void> liveness() const { return shared_; }

 private:
  struct Key {
    FlowId flow;
    uint32_t dst = 0;
    uint32_t seq = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Pending {
    Message message;  // retransmitted verbatim, same seq
    bool basic = false;
    int retries = 0;
    int64_t next_backoff_us = 0;
  };
  struct Shared {
    mutable std::mutex mutex;
    NetworkBase* network = nullptr;
    ReliabilityOptions options;
    GiveUpFn on_give_up;
    Counter* retransmits = nullptr;
    Counter* give_ups = nullptr;
    Counter* retx_bytes = nullptr;
    std::map<Key, Pending> pending;
    std::map<std::pair<FlowId, uint32_t>, uint32_t> next_seq;
  };

  // Schedules the retransmission check for `key` after `delay_us`. The
  // closure holds only a weak reference: once the owning manager dies
  // (e.g. reconfiguration rebuilds it) the timer is a no-op.
  static void Arm(const std::shared_ptr<Shared>& shared, const Key& key,
                  int64_t delay_us);

  std::shared_ptr<Shared> shared_;
};

// Receiver-side ordering and duplicate suppression. Sequence numbers per
// (flow, src) are contiguous, so the receiver can restore the sender's
// order exactly: the next expected seq is delivered, anything below it is
// a duplicate, anything above it is parked until the gap fills (a drop's
// retransmission is on its way). Ordering matters beyond deduplication —
// the link-closing induction assumes a LinkClosed never overtakes the
// data sent before it, which drop+retransmit would otherwise violate.
//
// State is kept for the lifetime of the manager (not just the flow): a
// retransmission that lands after the flow completed must still be
// recognized as already-processed, or it would re-engage the node and
// corrupt the converged database.
class DupFilter {
 public:
  enum class Verdict {
    kDeliver,    // next in order: process it (the cursor advances)
    kDuplicate,  // already delivered (or already parked): drop it
    kHold,       // a gap precedes it: park it via Hold()
  };

  // Classifies (flow, src, seq). seq 0 (unsequenced sender) is always
  // delivered.
  Verdict Check(const FlowId& flow, PeerId src, uint32_t seq);

  // Parks an out-of-order message until the gap before it fills.
  void Hold(const FlowId& flow, PeerId src, Message message);

  // Removes and returns the parked message that is now next in order, if
  // any. The caller feeds it back through its message handler, whose
  // Check() then classifies it as an in-order delivery.
  std::optional<Message> NextReady(const FlowId& flow, PeerId src);

  uint64_t held_count() const;

 private:
  struct Channel {
    uint32_t next = 1;                 // lowest seq not yet delivered
    std::map<uint32_t, Message> held;  // parked out-of-order arrivals
  };
  std::map<std::pair<FlowId, uint32_t>, Channel> channels_;
};

}  // namespace codb

#endif  // CODB_CORE_RELIABILITY_H_
