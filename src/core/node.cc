#include "core/node.h"

#include "core/config_distribution.h"
#include "core/consistency.h"

#include "relation/printer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace codb {

Node::Node(NetworkBase* network, std::string name)
    : network_(network), name_(std::move(name)) {}

Node::~Node() {
  // Drain in-flight flow strands before any member dies: strand tasks
  // hold shared_ptrs to the managers but also touch the wrapper, the
  // statistics module, and the network binding.
  if (flow_exec_ != nullptr) flow_exec_->Drain();
}

Result<std::unique_ptr<Node>> Node::Create(NetworkBase* network,
                                           const std::string& name,
                                           DatabaseSchema schema,
                                           bool mediator, Options options) {
  auto node = std::unique_ptr<Node>(new Node(network, name));
  node->options_ = options;

  if (mediator) {
    CODB_ASSIGN_OR_RETURN(node->wrapper_,
                          Wrapper::ForMediator(std::move(schema)));
  } else {
    node->ldb_ = std::make_unique<Database>();
    for (const RelationSchema& rel : schema.relations()) {
      CODB_RETURN_IF_ERROR(node->ldb_->CreateRelation(rel));
    }
    CODB_ASSIGN_OR_RETURN(
        node->wrapper_,
        Wrapper::ForDatabase(node->ldb_.get(), std::move(schema)));
  }

  node->id_ = network->Join(name, node.get());
  node->minter_ = std::make_unique<NullMinter>(node->id_.value);
  node->discovery_ =
      std::make_unique<DiscoveryService>(network, node->id_);
  // One pool serves both the evaluator fan-out and the flow strands.
  // num_threads == 1 spawns no workers: every Submit runs inline and the
  // node behaves exactly like the historical single-threaded build.
  node->pool_ = std::make_unique<ThreadPool>(options.exec.num_threads);
  node->flow_exec_ =
      std::make_unique<FlowExecutor>(node->pool_.get(), network);
  node->AnnounceSelf();
  return node;
}

bool Node::ConcurrentFlows() const {
  return options_.exec.concurrent_flows &&
         network_->SupportsBackgroundWork();
}

void Node::SampleExecMetrics() {
  ThreadPool::StatsSnapshot pool = pool_->Stats();
  MetricsRegistry& metrics = statistics_.metrics();
  metrics.GetGauge("exec.threads")->Set(pool_->num_threads());
  metrics.GetGauge("exec.queue_depth")
      ->Set(static_cast<int64_t>(pool.queue_depth));
  metrics.GetGauge("exec.tasks_executed")
      ->Set(static_cast<int64_t>(pool.executed));
  metrics.GetGauge("exec.tasks_stolen")
      ->Set(static_cast<int64_t>(pool.stolen));
  metrics.GetGauge("exec.worker_busy_us")
      ->Set(static_cast<int64_t>(pool.busy_us));
  metrics.GetGauge("exec.lock_wait_us")
      ->Set(static_cast<int64_t>(wrapper_->store_lock().wait_us()));
  metrics.GetGauge("exec.active_flows")
      ->Set(static_cast<int64_t>(flow_exec_->ActiveFlows()));
}

void Node::AnnounceSelf() {
  if (options_.quiet_discovery) return;
  discovery_->Announce(name_, wrapper_->dbs().ExportedRelationNames());
}

Status Node::EnableMembership(const MembershipOptions& options) {
  if (membership_ != nullptr) {
    return Status::FailedPrecondition("node '" + name_ +
                                      "' already runs a membership session");
  }
  membership_ = HeartbeatSession::Create(network_, id_, options,
                                         &statistics_.metrics());
  membership_fanout_ = std::make_unique<MembershipFanout>(this);
  membership_->AddListener(membership_fanout_.get());
  membership_->Start();
  return Status::Ok();
}

void Node::EnableProfiling() {
  network_->AttachCostLedger(id_, &statistics_.cost());
}

bool Node::IsPresumedAlive(PeerId peer) const {
  // Deliberately no mutex_: called from the managers (which run under
  // mutex_) and membership_ is immutable after EnableMembership; the
  // session serializes internally.
  return membership_ == nullptr || membership_->IsPresumedAlive(peer);
}

void Node::MembershipFanout::OnPeerEvicted(PeerId peer, int64_t at_us) {
  (void)at_us;
  node->OnPeerEvicted(peer);
}

void Node::OnPeerEvicted(PeerId peer) {
  // Active liveness replaces the passive pipe-loss path: an evicted peer
  // gets exactly the cleanup a snapped pipe would have triggered —
  // ReliableSender drops its retransmission timers immediately (instead
  // of burning the full retry-cap backoff), the termination detector
  // cancels its deficits, and closing links re-evaluate.
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  CODB_LOG(kInfo) << name_ << ": evicting unresponsive peer "
                  << network_->NameOf(peer);
  if (update_manager_ != nullptr) update_manager_->HandlePipeClosed(peer);
  if (query_manager_ != nullptr) query_manager_->HandlePipeClosed(peer);
}

Status Node::ApplyConfig(const NetworkConfig& config, uint64_t version) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return ApplyConfigLocked(config, version, /*cyclic_rules=*/nullptr,
                           /*has_any_cycle=*/false);
}

uint64_t Node::config_version() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return config_version_;
}

Status Node::ApplyConfigLocked(const NetworkConfig& config,
                               uint64_t version,
                               const std::set<std::string>* cyclic_rules,
                               bool has_any_cycle) {
  if (config_ != nullptr && version <= config_version_) {
    return Status::Ok();  // stale broadcast
  }
  CODB_RETURN_IF_ERROR(config.Validate());

  const NodeDecl* self_decl = config.FindNode(name_);
  if (self_decl == nullptr) {
    return Status::NotFound("node '" + name_ +
                            "' is not part of this configuration");
  }
  // The declared schema must match the exported one: the config cannot
  // change what the LDB can provide.
  for (const RelationSchema& rel : self_decl->relations) {
    const RelationSchema* exported =
        wrapper_->dbs().exported().FindRelation(rel.name());
    if (exported == nullptr || !(*exported == rel)) {
      return Status::InvalidArgument(
          "config schema for relation '" + rel.name() +
          "' does not match node '" + name_ + "'");
    }
  }

  config_ = std::make_unique<NetworkConfig>(config);
  config_version_ = version;
  config_checksum_ = config_->CanonicalChecksum();
  if (cyclic_rules != nullptr) {
    // Projected slice: cycle answers come from the super-peer's closure,
    // computed on the full graph the slice was cut from.
    link_graph_ = std::make_unique<LinkGraph>(
        LinkGraph::BuildProjected(*config_, *cyclic_rules, has_any_cycle));
  } else {
    link_graph_ = std::make_unique<LinkGraph>(LinkGraph::Build(*config_));
  }

  // "it drops 'old' rules and pipes, and creates new ones, where
  // necessary": reconcile the rule-pipe set with the new acquaintances.
  // A pipe that cannot be opened yet (open failure, or the acquaintance
  // not on the network) is remembered and retried on the next discovery
  // or membership event instead of being silently forgotten.
  std::set<uint32_t> desired;
  pending_pipe_retries_.clear();
  for (const std::string& other : config_->AcquaintancesOf(name_)) {
    Result<PeerId> peer = network_->FindByName(other);
    if (!peer.ok()) {
      pending_pipe_retries_.insert(other);
      continue;  // acquaintance not on the network yet
    }
    if (!network_->HasPipe(id_, peer.value())) {
      Status opened =
          network_->OpenPipe(id_, peer.value(), options_.link_profile);
      if (!opened.ok()) {
        statistics_.metrics().GetCounter("config.pipe_open_failures")->Add();
        pending_pipe_retries_.insert(other);
        CODB_LOG(kWarning) << name_ << ": pipe to " << other
                           << " failed to open: " << opened.ToString()
                           << " (will retry)";
        continue;
      }
    }
    desired.insert(peer.value().value);
  }
  has_pending_pipe_retries_.store(!pending_pipe_retries_.empty());
  for (uint32_t stale : rule_pipes_) {
    if (desired.find(stale) == desired.end() &&
        network_->HasPipe(id_, PeerId(stale))) {
      network_->ClosePipe(id_, PeerId(stale));
    }
  }
  rule_pipes_ = std::move(desired);

  // Rebuild the DBM against the new configuration. In-flight updates and
  // queries of the previous configuration are abandoned (the initiators'
  // termination detectors see the dropped peers as lost).
  EvalOptions eval;
  eval.num_threads = options_.exec.num_threads;
  eval.pool = pool_.get();
  eval.min_parallel_rows = options_.exec.min_parallel_rows;
  UpdateManager::Options update_options = options_.update;
  update_options.reliability = options_.reliability;
  update_options.eval = eval;
  update_manager_ = std::make_shared<UpdateManager>(
      network_, id_, name_, wrapper_.get(), config_.get(),
      link_graph_.get(), &statistics_, minter_.get(), &update_seq_,
      &export_memory_, update_options);
  CODB_RETURN_IF_ERROR(update_manager_->Init());
  query_manager_ = std::make_shared<QueryManager>(
      network_, id_, name_, wrapper_.get(), config_.get(),
      link_graph_.get(), &statistics_, minter_.get(), &query_seq_,
      options_.reliability, eval);
  CODB_RETURN_IF_ERROR(query_manager_->Init());
  // The node outlives both managers, so capturing `this` is safe; the
  // predicate makes evicted peers invisible to new flows immediately.
  auto presumed_alive = [this](PeerId peer) {
    return IsPresumedAlive(peer);
  };
  update_manager_->SetPresumedAlive(presumed_alive);
  query_manager_->SetPresumedAlive(presumed_alive);

  AnnounceSelf();
  CODB_LOG(kInfo) << name_ << ": applied configuration v" << version;
  return Status::Ok();
}

void Node::RetryPendingPipes() {
  if (config_ == nullptr || pending_pipe_retries_.empty()) return;
  for (auto it = pending_pipe_retries_.begin();
       it != pending_pipe_retries_.end();) {
    Result<PeerId> peer = network_->FindByName(*it);
    if (!peer.ok()) {
      ++it;
      continue;
    }
    if (!network_->HasPipe(id_, peer.value())) {
      Status opened =
          network_->OpenPipe(id_, peer.value(), options_.link_profile);
      if (!opened.ok()) {
        statistics_.metrics().GetCounter("config.pipe_open_failures")->Add();
        ++it;
        continue;
      }
    }
    CODB_LOG(kInfo) << name_ << ": opened deferred pipe to " << *it;
    rule_pipes_.insert(peer.value().value);
    it = pending_pipe_retries_.erase(it);
  }
  has_pending_pipe_retries_.store(!pending_pipe_retries_.empty());
}

void Node::SendConfigAck(PeerId to) {
  ConfigAckPayload ack;
  ack.version = config_version_;
  ack.checksum = config_checksum_;
  Status sent = network_->Send(
      MakeMessage(id_, to, MessageType::kConfigAck, ack.Serialize()));
  if (!sent.ok()) {
    CODB_LOG(kWarning) << name_ << ": config ack failed: "
                       << sent.ToString();
  }
}

void Node::SendConfigFetch(PeerId to) {
  ConfigFetchPayload fetch;
  fetch.have_version = config_version_;
  fetch.have_checksum = config_checksum_;
  Status sent = network_->Send(
      MakeMessage(id_, to, MessageType::kConfigFetch, fetch.Serialize()));
  if (!sent.ok()) {
    CODB_LOG(kWarning) << name_ << ": config fetch failed: "
                       << sent.ToString();
  }
}

void Node::HandleConfigSlice(const Message& message) {
  Result<ConfigSlicePayload> payload =
      ConfigSlicePayload::Deserialize(message.payload);
  if (!payload.ok()) {
    CODB_LOG(kWarning) << name_ << ": bad config slice: "
                       << payload.status().ToString();
    return;
  }
  if (config_ != nullptr && payload.value().version <= config_version_) {
    SendConfigAck(message.src);  // stale: restate what we hold
    return;
  }
  Result<NetworkConfig> config =
      NetworkConfig::Parse(payload.value().config_text);
  if (!config.ok()) {
    CODB_LOG(kError) << name_ << ": config slice did not parse: "
                     << config.status().ToString();
    return;
  }
  if (config.value().CanonicalChecksum() != payload.value().checksum) {
    statistics_.metrics().GetCounter("config.checksum_mismatches")->Add();
    CODB_LOG(kWarning) << name_
                       << ": config slice checksum mismatch; refetching";
    SendConfigFetch(message.src);
    return;
  }
  std::set<std::string> cyclic(payload.value().cycles.cyclic_rules.begin(),
                               payload.value().cycles.cyclic_rules.end());
  Status applied =
      ApplyConfigLocked(config.value(), payload.value().version, &cyclic,
                        payload.value().cycles.has_any_cycle);
  if (!applied.ok()) {
    CODB_LOG(kError) << name_ << ": config slice rejected: "
                     << applied.ToString();
    return;
  }
  statistics_.metrics().GetCounter("config.slices_applied")->Add();
  SendConfigAck(message.src);
}

void Node::HandleConfigDelta(const Message& message) {
  Result<ConfigDeltaPayload> payload =
      ConfigDeltaPayload::Deserialize(message.payload);
  if (!payload.ok()) {
    CODB_LOG(kWarning) << name_ << ": bad config delta: "
                       << payload.status().ToString();
    return;
  }
  const ConfigPatch& patch = payload.value().patch;
  if (config_ != nullptr && patch.to_version <= config_version_) {
    SendConfigAck(message.src);  // stale: restate what we hold
    return;
  }
  if (config_ == nullptr || patch.from_version != config_version_ ||
      patch.pre_checksum != config_checksum_) {
    // Version gap: a broadcast was lost on the way here (or this node
    // restarted and starts over at v0). Ask the sender for catch-up from
    // the state we actually hold.
    statistics_.metrics().GetCounter("config.gap_fetches")->Add();
    CODB_LOG(kInfo) << name_ << ": config delta v" << patch.from_version
                    << "->" << patch.to_version << " does not apply to v"
                    << config_version_ << "; fetching";
    SendConfigFetch(message.src);
    return;
  }
  Result<NetworkConfig> patched = ApplyPatch(*config_, patch);
  if (!patched.ok()) {
    // Checksum mismatch (or malformed patch): the local config is NOT
    // touched — ApplyPatch is pure — so fall back to a fetch.
    statistics_.metrics().GetCounter("config.checksum_mismatches")->Add();
    CODB_LOG(kWarning) << name_ << ": config delta did not apply: "
                       << patched.status().ToString() << "; refetching";
    SendConfigFetch(message.src);
    return;
  }
  std::set<std::string> cyclic(payload.value().cycles.cyclic_rules.begin(),
                               payload.value().cycles.cyclic_rules.end());
  Status applied =
      ApplyConfigLocked(patched.value(), patch.to_version, &cyclic,
                        payload.value().cycles.has_any_cycle);
  if (!applied.ok()) {
    CODB_LOG(kError) << name_ << ": patched config rejected: "
                     << applied.ToString();
    return;
  }
  statistics_.metrics().GetCounter("config.deltas_applied")->Add();
  SendConfigAck(message.src);
}

Result<FlowId> Node::StartGlobalUpdate(
    UpdateManager::CompletionFn on_complete) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (update_manager_ == nullptr) {
    return Status::FailedPrecondition(
        "node '" + name_ + "' has no configuration; broadcast one first");
  }
  return update_manager_->StartUpdate(/*refresh=*/false,
                                      std::move(on_complete));
}

Result<FlowId> Node::StartGlobalRefresh(
    UpdateManager::CompletionFn on_complete) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (update_manager_ == nullptr) {
    return Status::FailedPrecondition(
        "node '" + name_ + "' has no configuration; broadcast one first");
  }
  return update_manager_->StartUpdate(/*refresh=*/true,
                                      std::move(on_complete));
}

Status Node::InsertLocal(const std::string& relation,
                         const std::vector<Tuple>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return wrapper_->InsertLocal(relation, rows);
}

Result<FlowId> Node::StartIncrementalUpdate(
    UpdateManager::CompletionFn on_complete) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (update_manager_ == nullptr) {
    return Status::FailedPrecondition(
        "node '" + name_ + "' has no configuration; broadcast one first");
  }
  return update_manager_->StartIncrementalUpdate(
      wrapper_->TakePendingDelta(), std::move(on_complete));
}

Result<FlowId> Node::StartQuery(const ConjunctiveQuery& query,
                                QueryManager::ProgressFn on_progress) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (query_manager_ == nullptr) {
    return Status::FailedPrecondition(
        "node '" + name_ + "' has no configuration; broadcast one first");
  }
  return query_manager_->StartQuery(query, std::move(on_progress));
}

bool Node::QueryDone(const FlowId& query) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return query_manager_ != nullptr && query_manager_->IsDone(query);
}

Result<std::vector<Tuple>> Node::QueryAnswers(const FlowId& query) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (query_manager_ == nullptr) {
    return Status::FailedPrecondition("node has no configuration");
  }
  return query_manager_->Answers(query);
}

Result<std::vector<Tuple>> Node::CertainQueryAnswers(
    const FlowId& query) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (query_manager_ == nullptr) {
    return Status::FailedPrecondition("node has no configuration");
  }
  return query_manager_->CertainAnswers(query);
}

Result<std::vector<Tuple>> Node::LocalQuery(
    const ConjunctiveQuery& query) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return wrapper_->EvaluateQuery(query);
}

Status Node::EnableDurability(const StorageOptions& options) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (is_mediator()) {
    return Status::FailedPrecondition(
        "mediator '" + name_ + "' holds only transient relay data; "
        "durability does not apply");
  }
  if (durable_ != nullptr) {
    return Status::FailedPrecondition(
        "node '" + name_ + "' already has durable storage at " +
        durable_->directory());
  }
  CODB_ASSIGN_OR_RETURN(
      durable_,
      DurableStorage::Open(options, ldb_.get(),
                           &statistics_.durability()));
  wrapper_->AttachJournal(durable_.get());
  CODB_LOG(kInfo) << name_ << ": durable storage at " << options.directory
                  << " (recovered " << durable_->recovery().checkpoint_tuples
                  << " checkpoint tuples, "
                  << durable_->recovery().wal_records_replayed
                  << " WAL records)";
  return Status::Ok();
}

std::vector<std::string> Node::ConsistencyViolations() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (config_ == nullptr) return {};
  const NodeDecl* decl = config_->FindNode(name_);
  if (decl == nullptr) return {};
  return FindKeyViolations(wrapper_->storage(), decl->keys);
}

void Node::HandleMessage(const Message& message) {
  // Heartbeat traffic routes to the session BEFORE taking mutex_: the
  // session's eviction callbacks acquire mutex_ while holding its own
  // lock, so the node must never enter the session while holding mutex_
  // (lock order is session -> node, always).
  switch (message.type) {
    case MessageType::kHeartbeat: {
      if (membership_ != nullptr) {
        membership_->HandleBeacon(message);
      } else {
        // Ack-reflex: a peer without a session still answers beacons so
        // membership-enabled peers never falsely suspect it.
        Result<Message> ack =
            MakeHeartbeatAck(message, id_, /*incarnation=*/1,
                             network_->now_us());
        if (ack.ok()) network_->Send(std::move(ack).value());
      }
      // Liveness traffic doubles as the deferred-pipe retry tick: a peer
      // beaconing at us is clearly joinable now.
      if (has_pending_pipe_retries_.load()) {
        std::lock_guard<std::recursive_mutex> lock(mutex_);
        RetryPendingPipes();
      }
      return;
    }
    case MessageType::kHeartbeatAck:
      if (membership_ != nullptr) membership_->HandleAck(message);
      return;
    default:
      break;
  }
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  switch (message.type) {
    case MessageType::kAdvertisement:
      discovery_->HandleAdvertisement(message);
      // A newly announced peer may be a pending acquaintance.
      RetryPendingPipes();
      return;

    case MessageType::kConfigBroadcast: {
      Result<ConfigBroadcastPayload> parsed =
          ConfigBroadcastPayload::Deserialize(message.payload);
      if (!parsed.ok()) {
        CODB_LOG(kWarning) << name_ << ": bad config broadcast: "
                           << parsed.status().ToString();
        return;
      }
      Result<NetworkConfig> config =
          NetworkConfig::Parse(parsed.value().config_text);
      if (!config.ok()) {
        CODB_LOG(kError) << name_ << ": config did not parse: "
                         << config.status().ToString();
        return;
      }
      Status applied =
          ApplyConfigLocked(config.value(), parsed.value().version,
                            /*cyclic_rules=*/nullptr,
                            /*has_any_cycle=*/false);
      if (!applied.ok()) {
        CODB_LOG(kError) << name_ << ": config rejected: "
                         << applied.ToString();
      }
      return;
    }

    case MessageType::kConfigSlice:
      HandleConfigSlice(message);
      return;

    case MessageType::kConfigDelta:
      HandleConfigDelta(message);
      return;

    case MessageType::kConfigFetch:
    case MessageType::kConfigAck:
      // Super-peer -> node protocol only; a node never serves these.
      CODB_LOG(kWarning) << name_ << ": unexpected "
                         << MessageTypeName(message.type) << " from "
                         << message.src.ToString();
      return;

    case MessageType::kUpdateRequest:
    case MessageType::kUpdateData:
    case MessageType::kLinkClosed:
    case MessageType::kUpdateComplete:
      DispatchFlowMessage(message, /*to_update=*/true);
      return;

    case MessageType::kQueryRequest:
    case MessageType::kQueryResult:
    case MessageType::kQueryDone:
      DispatchFlowMessage(message, /*to_update=*/false);
      return;

    case MessageType::kUpdateAck: {
      Result<AckPayload> ack = AckPayload::Deserialize(message.payload);
      if (!ack.ok()) return;
      DispatchFlowMessage(
          message,
          /*to_update=*/ack.value().flow.scope == FlowId::Scope::kUpdate);
      return;
    }

    case MessageType::kDeliveryAck: {
      // Delivery receipts route by flow scope, like D-S acks.
      Result<DeliveryAckPayload> receipt =
          DeliveryAckPayload::Deserialize(message.payload);
      if (!receipt.ok()) return;
      DispatchFlowMessage(
          message,
          /*to_update=*/receipt.value().flow.scope ==
              FlowId::Scope::kUpdate);
      return;
    }

    case MessageType::kStatsRequest:
      SampleExecMetrics();
      network_->Send(MakeMessage(id_, message.src, MessageType::kStatsReport,
                                 statistics_.SerializeAll()));
      return;

    case MessageType::kStatsReport:
      CODB_LOG(kWarning) << name_ << ": unexpected stats report from "
                         << message.src.ToString();
      return;

    case MessageType::kHeartbeat:
    case MessageType::kHeartbeatAck:
      return;  // handled above, before the lock

    case MessageType::kFederationReport:
      CODB_LOG(kWarning) << name_ << ": unexpected federation report from "
                         << message.src.ToString();
      return;
  }
}

void Node::DispatchFlowMessage(const Message& message, bool to_update) {
  if (ConcurrentFlows()) {
    // Strand dispatch: per-flow FIFO order, cross-flow concurrency. The
    // strand task captures the manager shared_ptr at dispatch time, so a
    // reconfiguration swapping managers cannot pull it out from under a
    // running flow.
    Result<FlowId> flow = PeekFlowId(message.payload);
    if (flow.ok()) {
      if (to_update) {
        if (std::shared_ptr<UpdateManager> manager = update_manager_) {
          flow_exec_->Post(flow.value(), [manager, message] {
            manager->HandleMessage(message);
          });
        }
      } else {
        if (std::shared_ptr<QueryManager> manager = query_manager_) {
          flow_exec_->Post(flow.value(), [manager, message] {
            manager->HandleMessage(message);
          });
        }
      }
      return;
    }
    // Unparseable flow id: fall through to the inline path, where the
    // manager's own parse error reporting applies.
  }
  if (to_update) {
    if (update_manager_ != nullptr) update_manager_->HandleMessage(message);
  } else {
    if (query_manager_ != nullptr) query_manager_->HandleMessage(message);
  }
}

void Node::HandlePipeClosed(PeerId other) {
  // Orderly pipe loss is departure, not failure: the membership session
  // just stops tracking the peer. Called before mutex_ for the same
  // session->node lock-order reason as the heartbeat routing.
  if (membership_ != nullptr) membership_->Forget(other);
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (update_manager_ != nullptr) update_manager_->HandlePipeClosed(other);
  if (query_manager_ != nullptr) query_manager_->HandlePipeClosed(other);
}

std::string Node::Report() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::string out = "=== node " + name_ + " (" + id_.ToString() + ")" +
                    (is_mediator() ? " [mediator]" : "") + " ===\n";
  out += "exported schema:\n";
  for (const RelationSchema& rel : wrapper_->dbs().exported().relations()) {
    out += "  " + rel.ToString() + "\n";
  }
  out += StrFormat("stored tuples: %zu\n", wrapper_->StoredTuples());
  if (durable_ != nullptr) {
    out += "durable storage: " + durable_->directory() +
           StrFormat(" (next lsn %llu)\n",
                     static_cast<unsigned long long>(durable_->next_lsn()));
  }
  out += "pipes:";
  for (PeerId neighbor : network_->Neighbors(id_)) {
    out += " ";
    out += network_->NameOf(neighbor);
  }
  out += "\n";
  if (update_manager_ != nullptr) {
    out += "outgoing links (we import):";
    for (const std::string& rule : update_manager_->OutgoingLinkIds()) {
      out += " " + rule;
    }
    out += "\nincoming links (we export):";
    for (const std::string& rule : update_manager_->IncomingLinkIds()) {
      out += " " + rule;
    }
    out += "\n";
  }
  for (const auto& [flow, report] : statistics_.reports()) {
    if (flow.scope == FlowId::Scope::kUpdate) out += report.Render();
  }
  return out;
}

std::string Node::DiscoveryView() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::set<uint32_t> acquainted;
  std::string out = "--- discovery view of " + name_ + " ---\n";
  out += "acquaintances (pipes):";
  for (PeerId neighbor : network_->Neighbors(id_)) {
    acquainted.insert(neighbor.value);
    out += " ";
    out += network_->NameOf(neighbor);
  }
  out += "\ndiscovered (no pipe):";
  for (const PeerAdvertisement& ad : discovery_->Known()) {
    if (acquainted.find(ad.peer.value) == acquainted.end()) {
      out += " " + ad.name;
    }
  }
  out += "\n";
  return out;
}

}  // namespace codb
