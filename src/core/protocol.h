// Payloads of the coDB protocol messages and their wire formats.
//
// Both distributed computations (global update, query answering) are
// diffusing computations; they share the FlowId naming scheme and the
// acknowledgement format used by the termination detector.

#ifndef CODB_CORE_PROTOCOL_H_
#define CODB_CORE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/peer_id.h"
#include "relation/wire.h"
#include "query/rule.h"
#include "util/status.h"

namespace codb {

// Identifies one diffusing computation network-wide: the peer that started
// it plus a sequence number local to that peer. The paper generates global
// update identifiers through JXTA; this pair gives the same uniqueness.
struct FlowId {
  enum class Scope : uint8_t { kUpdate = 0, kQuery = 1 };

  Scope scope = Scope::kUpdate;
  uint32_t origin = 0;
  uint64_t seq = 0;

  friend bool operator==(const FlowId& a, const FlowId& b) {
    return a.scope == b.scope && a.origin == b.origin && a.seq == b.seq;
  }
  friend auto operator<=>(const FlowId& a, const FlowId& b) = default;

  std::string ToString() const;
};

// -- global update -----------------------------------------------------------

struct UpdateRequestPayload {
  FlowId update;
  // Refresh updates first drop every previously imported tuple, so
  // source-side deletions propagate network-wide.
  bool refresh = false;
  // Incremental (semi-naive) updates skip the full-store initial link
  // evaluation everywhere: only the initiator fires, seeded by its local
  // delta batch, and propagation carries deltas only (DESIGN.md §14).
  // Mutually exclusive with `refresh`.
  bool incremental = false;

  std::vector<uint8_t> Serialize() const;
  static Result<UpdateRequestPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Data shipped from an exporter to the importer of `rule_id`: instantiated
// head tuples, labelled with the update-propagation path (the node ids the
// data passed through, ending with the sender).
struct UpdateDataPayload {
  FlowId update;
  std::string rule_id;
  std::vector<uint32_t> path;
  std::vector<HeadTuple> tuples;

  std::vector<uint8_t> Serialize() const;
  static Result<UpdateDataPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Exporter -> importer: no more data will arrive through `rule_id`.
struct LinkClosedPayload {
  FlowId update;
  std::string rule_id;

  std::vector<uint8_t> Serialize() const;
  static Result<LinkClosedPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Dijkstra–Scholten acknowledgement of one basic message of a flow.
struct AckPayload {
  FlowId flow;
  std::vector<uint8_t> Serialize() const;
  static Result<AckPayload> Deserialize(const std::vector<uint8_t>& payload);
};

// Transport-level receipt for a sequenced message (core/reliability.h):
// sent immediately on arrival — duplicate or not — to cancel the sender's
// retransmission timer. Unlike AckPayload it carries no termination
// semantics and is itself never sequenced or retransmitted.
struct DeliveryAckPayload {
  FlowId flow;
  uint32_t acked_seq = 0;
  std::vector<uint8_t> Serialize() const;
  static Result<DeliveryAckPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Flooded by the initiator once its diffusing computation has terminated.
struct UpdateCompletePayload {
  FlowId update;
  std::vector<uint8_t> Serialize() const;
  static Result<UpdateCompletePayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// -- query answering ---------------------------------------------------------

// Origin or relay -> exporter of `rule_id`: evaluate the rule for this
// query and stream results back. `label` is the node-id path of the
// request; a request is not propagated to a node already in the label.
struct QueryRequestPayload {
  FlowId query;
  std::string rule_id;
  std::vector<uint32_t> label;

  std::vector<uint8_t> Serialize() const;
  static Result<QueryRequestPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Exporter -> requester: (incremental) results for `rule_id`.
struct QueryResultPayload {
  FlowId query;
  std::string rule_id;
  std::vector<HeadTuple> tuples;

  std::vector<uint8_t> Serialize() const;
  static Result<QueryResultPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// Origin -> participants: the query's diffusing computation terminated;
// per-query state can be dropped.
struct QueryDonePayload {
  FlowId query;
  std::vector<uint8_t> Serialize() const;
  static Result<QueryDonePayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// -- super-peer --------------------------------------------------------------

struct ConfigBroadcastPayload {
  uint64_t version = 0;
  std::string config_text;

  std::vector<uint8_t> Serialize() const;
  static Result<ConfigBroadcastPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

struct StatsRequestPayload {
  uint64_t request_id = 0;
  std::vector<uint8_t> Serialize() const;
  static Result<StatsRequestPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

// -- helpers -----------------------------------------------------------------

// Serialization of HeadTuple batches shared by data/result payloads.
void WriteHeadTuples(WireWriter& writer, const std::vector<HeadTuple>& tuples);
Result<std::vector<HeadTuple>> ReadHeadTuples(WireReader& reader);

// Builds a Message envelope.
Message MakeMessage(PeerId src, PeerId dst, MessageType type,
                    std::vector<uint8_t> payload);

// Reads the FlowId prefix every flow-scoped payload starts with, without
// deserializing the rest. Used by the reliability layer to receipt-ack a
// sequenced message before (and regardless of) full parsing.
Result<FlowId> PeekFlowId(const std::vector<uint8_t>& payload);

}  // namespace codb

#endif  // CODB_CORE_PROTOCOL_H_
