#include "core/export_memory.h"

namespace codb {

void ExportMemory::SyncRules(
    const std::map<std::string, std::string>& fingerprints) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = rules_.begin(); it != rules_.end();) {
    auto want = fingerprints.find(it->first);
    if (want == fingerprints.end()) {
      it = rules_.erase(it);
      continue;
    }
    if (it->second.fingerprint != want->second) {
      it->second.sent.clear();
      it->second.fingerprint = want->second;
    }
    ++it;
  }
  for (const auto& [rule_id, fingerprint] : fingerprints) {
    auto [it, inserted] = rules_.try_emplace(rule_id);
    if (inserted) it->second.fingerprint = fingerprint;
  }
}

bool ExportMemory::Record(const std::string& rule_id, const Tuple& frontier) {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_[rule_id].sent.insert(frontier).second;
}

bool ExportMemory::Seen(const std::string& rule_id,
                        const Tuple& frontier) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(rule_id);
  return it != rules_.end() && it->second.sent.count(frontier) != 0;
}

void ExportMemory::Forget(const std::string& rule_id,
                          const std::vector<Tuple>& frontiers) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(rule_id);
  if (it == rules_.end()) return;
  for (const Tuple& frontier : frontiers) it->second.sent.erase(frontier);
}

void ExportMemory::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [rule_id, memory] : rules_) memory.sent.clear();
}

size_t ExportMemory::TotalFrontiers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [rule_id, memory] : rules_) total += memory.sent.size();
  return total;
}

}  // namespace codb
