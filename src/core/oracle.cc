#include "core/oracle.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_set>

#include "core/link_graph.h"
#include "relation/database.h"

namespace codb {

namespace {

// Marked nulls minted by the oracle use a reserved peer id so they can
// never collide with nulls minted by real peers.
constexpr uint32_t kOraclePeer = 0xFFFFFFF0;

struct World {
  std::map<std::string, std::unique_ptr<Database>> stores;
  std::map<std::string, CoordinationRule> rules;  // compiled, by id
};

Result<World> BuildWorld(const NetworkConfig& config,
                         const NetworkInstance& initial) {
  World world;
  for (const NodeDecl& node : config.nodes()) {
    auto db = std::make_unique<Database>();
    for (const RelationSchema& rel : node.relations) {
      CODB_RETURN_IF_ERROR(db->CreateRelation(rel));
    }
    auto seed = initial.find(node.name);
    if (seed != initial.end()) {
      for (const auto& [relation, tuples] : seed->second) {
        CODB_ASSIGN_OR_RETURN(Relation * r, db->Get(relation));
        for (const Tuple& t : tuples) r->Insert(t);
      }
    }
    world.stores.emplace(node.name, std::move(db));
  }
  for (const CoordinationRule& rule : config.rules()) {
    CoordinationRule compiled = rule;
    CODB_RETURN_IF_ERROR(
        compiled.Compile(config.SchemaOf(rule.exporter()),
                         config.SchemaOf(rule.importer())));
    world.rules.emplace(rule.id(), std::move(compiled));
  }
  return world;
}

NetworkInstance Snapshot(const World& world) {
  NetworkInstance out;
  for (const auto& [name, db] : world.stores) {
    out.emplace(name, db->Snapshot());
  }
  return out;
}

}  // namespace

Result<NetworkInstance> Oracle::PathBounded(const NetworkConfig& config,
                                            const NetworkInstance& initial) {
  CODB_RETURN_IF_ERROR(config.Validate());
  CODB_ASSIGN_OR_RETURN(World world, BuildWorld(config, initial));
  LinkGraph graph = LinkGraph::Build(config);
  NullMinter minter(kOraclePeer);

  // Per-rule sent-sets (each rule has a unique exporter, so one set each).
  std::map<std::string, std::unordered_set<Tuple, TupleHash>> sent;

  struct Item {
    std::string rule_id;
    std::vector<Tuple> frontiers;          // already dedupped
    std::vector<std::string> path;         // node names, ending w/ exporter
  };
  std::deque<Item> worklist;

  // Initial firing: every incoming link of every node, over the seed data.
  // Node order mirrors the breadth-first flavour of the network run.
  for (const NodeDecl& node : config.nodes()) {
    for (const CoordinationRule* rule : config.IncomingOf(node.name)) {
      const CoordinationRule& compiled = world.rules.at(rule->id());
      std::vector<Tuple> fresh;
      for (Tuple& frontier :
           compiled.EvaluateFrontier(*world.stores.at(node.name))) {
        if (sent[rule->id()].insert(frontier).second) {
          fresh.push_back(std::move(frontier));
        }
      }
      if (!fresh.empty()) {
        worklist.push_back({rule->id(), std::move(fresh), {node.name}});
      }
    }
  }

  while (!worklist.empty()) {
    Item item = std::move(worklist.front());
    worklist.pop_front();
    const CoordinationRule& rule = world.rules.at(item.rule_id);
    const std::string& importer = rule.importer();
    Database& store = *world.stores.at(importer);

    // Deliver: instantiate heads and insert; collect the delta.
    std::map<std::string, std::vector<Tuple>> delta;
    for (const Tuple& frontier : item.frontiers) {
      for (const HeadTuple& ht : rule.InstantiateHead(frontier, minter)) {
        CODB_ASSIGN_OR_RETURN(Relation * r, store.Get(ht.relation));
        if (r->Insert(ht.tuple)) delta[ht.relation].push_back(ht.tuple);
      }
    }
    if (delta.empty()) continue;

    std::vector<std::string> extended = item.path;
    extended.push_back(importer);

    for (const std::string& dependent : graph.DependentOn(item.rule_id)) {
      const CoordinationRule& next = world.rules.at(dependent);
      // Simple-path constraint: never towards a node already on the path.
      if (std::find(item.path.begin(), item.path.end(), next.importer()) !=
          item.path.end()) {
        continue;
      }
      std::vector<Tuple> frontiers;
      for (const auto& [relation, rows] : delta) {
        bool referenced = std::find_if(
                              next.query().body.begin(),
                              next.query().body.end(),
                              [&](const Atom& atom) {
                                return atom.predicate == relation;
                              }) != next.query().body.end();
        if (!referenced) continue;
        std::vector<Tuple> partial =
            next.EvaluateFrontierDelta(store, relation, rows);
        frontiers.insert(frontiers.end(), partial.begin(), partial.end());
      }
      std::vector<Tuple> fresh;
      for (Tuple& frontier : frontiers) {
        if (sent[dependent].insert(frontier).second) {
          fresh.push_back(std::move(frontier));
        }
      }
      if (!fresh.empty()) {
        worklist.push_back({dependent, std::move(fresh), extended});
      }
    }
  }
  return Snapshot(world);
}

Result<NetworkInstance> Oracle::NaiveFixpoint(const NetworkConfig& config,
                                              const NetworkInstance& initial,
                                              int max_rounds) {
  CODB_RETURN_IF_ERROR(config.Validate());
  CODB_ASSIGN_OR_RETURN(World world, BuildWorld(config, initial));
  NullMinter minter(kOraclePeer);
  std::map<std::string, std::unordered_set<Tuple, TupleHash>> fired;

  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const CoordinationRule& decl : config.rules()) {
      const CoordinationRule& rule = world.rules.at(decl.id());
      const Database& exporter_db = *world.stores.at(rule.exporter());
      Database& importer_db = *world.stores.at(rule.importer());
      for (const Tuple& frontier : rule.EvaluateFrontier(exporter_db)) {
        // One firing per (rule, frontier): existentials are witnessed once.
        if (!fired[decl.id()].insert(frontier).second) continue;
        for (const HeadTuple& ht : rule.InstantiateHead(frontier, minter)) {
          CODB_ASSIGN_OR_RETURN(Relation * r, importer_db.Get(ht.relation));
          if (r->Insert(ht.tuple)) changed = true;
        }
      }
    }
    if (!changed) return Snapshot(world);
  }
  return Status::FailedPrecondition(
      "naive fixpoint did not converge after " +
      std::to_string(max_rounds) + " rounds");
}

}  // namespace codb
