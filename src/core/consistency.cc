#include "core/consistency.h"

#include <unordered_map>

namespace codb {

std::vector<std::string> FindKeyViolations(
    const Database& db, const std::vector<KeyConstraint>& constraints) {
  std::vector<std::string> violations;
  for (const KeyConstraint& key : constraints) {
    const Relation* relation = db.Find(key.relation);
    if (relation == nullptr) {
      violations.push_back(key.ToString() +
                           " references an unknown relation");
      continue;
    }
    std::vector<int> columns;
    bool columns_ok = true;
    for (const std::string& column : key.columns) {
      int index = relation->schema().AttributeIndex(column);
      if (index < 0) {
        violations.push_back(key.ToString() + " references unknown column '" +
                             column + "'");
        columns_ok = false;
        break;
      }
      columns.push_back(index);
    }
    if (!columns_ok) continue;

    // First tuple seen per key value; any differing second tuple with the
    // same key is a violation.
    std::unordered_map<Tuple, const Tuple*, TupleHash> seen;
    for (const Tuple& tuple : relation->rows()) {
      std::vector<Value> key_values;
      key_values.reserve(columns.size());
      for (int index : columns) key_values.push_back(tuple.at(index));
      Tuple key_tuple(std::move(key_values));
      auto [it, inserted] = seen.emplace(std::move(key_tuple), &tuple);
      if (!inserted && !(*it->second == tuple)) {
        violations.push_back(key.ToString() + " violated by " +
                             it->second->ToString() + " and " +
                             tuple.ToString());
      }
    }
  }
  return violations;
}

}  // namespace codb
