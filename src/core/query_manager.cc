#include "core/query_manager.h"

#include <algorithm>

#include "core/consistency.h"
#include "obs/trace.h"
#include "query/evaluator.h"
#include "util/logging.h"

namespace codb {

QueryManager::QueryManager(NetworkBase* network, PeerId self,
                           std::string node_name, Wrapper* wrapper,
                           const NetworkConfig* config,
                           const LinkGraph* link_graph,
                           StatisticsModule* stats, NullMinter* minter,
                           uint64_t* query_seq,
                           ReliabilityOptions reliability, EvalOptions eval)
    : network_(network),
      self_(self),
      node_name_(std::move(node_name)),
      wrapper_(wrapper),
      config_(config),
      link_graph_(link_graph),
      stats_(stats),
      minter_(minter),
      eval_(eval),
      m_started_(stats->metrics().GetCounter("query.started")),
      m_requests_in_(stats->metrics().GetCounter("query.requests_in")),
      m_results_in_(stats->metrics().GetCounter("query.results_in")),
      m_results_out_(stats->metrics().GetCounter("query.results_out")),
      m_done_in_(stats->metrics().GetCounter("query.done_in")),
      m_rule_evals_(stats->metrics().GetCounter("query.rule_evals")),
      m_dups_suppressed_(
          stats->metrics().GetCounter("query.dups_suppressed")),
      m_root_terminations_(
          stats->metrics().GetCounter("query.root_terminations")),
      m_aborted_(stats->metrics().GetCounter("query.aborted")),
      termination_(self, [this](PeerId to, const FlowId& flow) {
        AckPayload ack{flow};
        // Sequenced + retransmitted, like the update-side D-S ack.
        reliable_.Send(MakeMessage(self_, to, MessageType::kUpdateAck,
                                   ack.Serialize()),
                       flow, /*basic=*/false);
      }),
      reliable_(network, reliability,
                [this](const FlowId& flow, PeerId dst, bool basic) {
                  // Runs from a retransmit timer, outside HandleMessage.
                  std::lock_guard<std::recursive_mutex> lock(mu_);
                  if (basic) termination_.CancelOne(flow, dst);
                  termination_.MaybeQuiesce();
                },
                stats->metrics().GetCounter("query.retransmits"),
                stats->metrics().GetCounter("query.send_give_ups"),
                stats->metrics().GetCounter("net.retx.bytes")),
      query_seq_(query_seq) {}

Status QueryManager::Init() {
  for (const CoordinationRule* rule : config_->IncomingOf(node_name_)) {
    CoordinationRule compiled = *rule;
    CODB_RETURN_IF_ERROR(
        compiled.Compile(config_->SchemaOf(rule->exporter()),
                         config_->SchemaOf(rule->importer())));
    compiled_incoming_.emplace(rule->id(), std::move(compiled));
  }
  return Status::Ok();
}

Result<PeerId> QueryManager::ResolvePeer(const std::string& node_name) const {
  auto it = peer_cache_.find(node_name);
  if (it != peer_cache_.end()) return it->second;
  CODB_ASSIGN_OR_RETURN(PeerId id, network_->FindByName(node_name));
  peer_cache_.emplace(node_name, id);
  return id;
}

QueryManager::QueryState& QueryManager::StateOf(const FlowId& query) {
  return queries_[query];
}

Database& QueryManager::OverlayOf(QueryState& state) {
  if (state.overlay == nullptr) {
    state.overlay = std::make_unique<Database>();
    // Copy-on-start snapshot of the shared store: bracketed as a reader
    // (wrapper locking contract) so a concurrent update flow's writes
    // never interleave with the copy.
    ShardedRWLock::ReadAllGuard read_guard(wrapper_->store_lock());
    const Database& storage = wrapper_->storage();
    for (const std::string& name : storage.RelationNames()) {
      const Relation* relation = storage.Find(name);
      state.overlay->CreateRelation(relation->schema());
      Relation* copy = state.overlay->Find(name);
      for (const Tuple& tuple : relation->rows()) copy->Insert(tuple);
    }
  }
  return *state.overlay;
}

Result<FlowId> QueryManager::StartQuery(const ConjunctiveQuery& query,
                                        ProgressFn on_progress) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  CODB_RETURN_IF_ERROR(query.Validate());
  if (query.head.size() != 1 || !query.ExistentialVars().empty()) {
    return Status::InvalidArgument(
        "node queries need a single, safe head atom");
  }
  DatabaseSchema own_schema = config_->SchemaOf(node_name_);
  DatabaseSchema head_schema;  // head predicate is virtual; skip head check
  for (const Atom& atom : query.body) {
    if (own_schema.FindRelation(atom.predicate) == nullptr) {
      return Status::NotFound("query body predicate '" + atom.predicate +
                              "' not in this node's schema");
    }
  }

  FlowId id{FlowId::Scope::kQuery, self_.value, (*query_seq_)++};
  m_started_->Add();
  // Root span of the diffusing query computation.
  ScopedSpan span(
      Tracer::Global().BeginSpan(self_.value, "query.start", id.ToString()));
  QueryState& state = StateOf(id);
  state.owned = true;
  state.user_query = query;
  state.on_progress = std::move(on_progress);
  OverlayOf(state);

  UpdateReport& report = stats_->ReportFor(id);
  report.start_virtual_us = network_->now_us();

  termination_.StartRoot(id, [this](const FlowId& flow) {
    m_root_terminations_->Add();
    FinishOwned(flow);
  });
  if (reliable_.options().enabled &&
      reliable_.options().flow_deadline_us > 0) {
    std::weak_ptr<void> alive = reliable_.liveness();
    network_->ScheduleAfter(reliable_.options().flow_deadline_us,
                            [this, alive, id] {
                              if (alive.expired()) return;
                              AbortIfIncomplete(id);
                            });
  }

  std::vector<std::string> needed;
  for (const Atom& atom : query.body) {
    if (std::find(needed.begin(), needed.end(), atom.predicate) ==
        needed.end()) {
      needed.push_back(atom.predicate);
    }
  }
  Fetch(id, state, needed, /*label=*/{self_.value});
  termination_.MaybeQuiesce();
  return id;
}

void QueryManager::Fetch(const FlowId& query, QueryState& state,
                         const std::vector<std::string>& relations,
                         const std::vector<uint32_t>& label) {
  // Ask the exporter of every outgoing link whose head writes one of the
  // needed relations — unless the exporter is already on the request path.
  for (const CoordinationRule* rule : config_->OutgoingOf(node_name_)) {
    bool relevant = false;
    for (const std::string& head_rel : rule->HeadRelations()) {
      if (std::find(relations.begin(), relations.end(), head_rel) !=
          relations.end()) {
        relevant = true;
        break;
      }
    }
    if (!relevant) continue;

    Result<PeerId> exporter = ResolvePeer(rule->exporter());
    if (!exporter.ok()) continue;
    if (std::find(label.begin(), label.end(), exporter.value().value) !=
        label.end()) {
      continue;  // simple-path guard
    }
    if (!state.requested.insert({rule->id(), label}).second) continue;

    QueryRequestPayload request;
    request.query = query;
    request.rule_id = rule->id();
    request.label = label;
    SendBasic(query, exporter.value(), MessageType::kQueryRequest,
              request.Serialize());
    stats_->ReportFor(query).acquaintances_queried.insert(
        exporter.value().value);
  }
}

bool QueryManager::AcceptDelivery(const Message& message) {
  if (message.seq == 0) return true;
  Result<FlowId> flow = PeekFlowId(message.payload);
  if (!flow.ok()) return true;
  DeliveryAckPayload receipt{flow.value(), message.seq};
  network_->Send(MakeMessage(self_, message.src, MessageType::kDeliveryAck,
                             receipt.Serialize()));
  switch (dup_filter_.Check(flow.value(), message.src, message.seq)) {
    case DupFilter::Verdict::kDeliver:
      return true;
    case DupFilter::Verdict::kDuplicate:
      m_dups_suppressed_->Add();
      return false;
    case DupFilter::Verdict::kHold:
      dup_filter_.Hold(flow.value(), message.src, message);
      return false;
  }
  return false;
}

void QueryManager::DrainReady(const Message& delivered) {
  if (delivered.seq == 0) return;
  Result<FlowId> flow = PeekFlowId(delivered.payload);
  if (!flow.ok()) return;
  while (std::optional<Message> ready =
             dup_filter_.NextReady(flow.value(), delivered.src)) {
    HandleMessage(*ready);
  }
}

void QueryManager::HandleMessage(const Message& message) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (message.type == MessageType::kDeliveryAck) {
    Result<DeliveryAckPayload> receipt =
        DeliveryAckPayload::Deserialize(message.payload);
    if (receipt.ok()) {
      reliable_.OnDeliveryAck(receipt.value().flow, message.src,
                              receipt.value().acked_seq);
    }
    return;
  }
  if (!AcceptDelivery(message)) return;
  switch (message.type) {
    case MessageType::kQueryRequest:
      OnRequest(message);
      break;
    case MessageType::kQueryResult:
      OnResult(message);
      break;
    case MessageType::kQueryDone:
      OnDone(message);
      break;
    case MessageType::kUpdateAck: {
      Result<AckPayload> ack = AckPayload::Deserialize(message.payload);
      if (ack.ok()) termination_.OnAck(ack.value().flow, message.src);
      break;
    }
    default:
      CODB_LOG(kWarning) << node_name_ << ": query manager got unexpected "
                         << MessageTypeName(message.type);
      break;
  }
  termination_.MaybeQuiesce();
  // This delivery may have filled the gap in front of parked arrivals.
  DrainReady(message);
}

void QueryManager::OnRequest(const Message& message) {
  Result<QueryRequestPayload> parsed =
      QueryRequestPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << node_name_ << ": bad query request: "
                       << parsed.status().ToString();
    return;
  }
  QueryRequestPayload request = std::move(parsed).value();
  m_requests_in_->Add();
  ScopedSpan span(Tracer::Global().BeginSpanHere(
      "query.request", request.query.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", request.rule_id);
  termination_.OnBasicMessage(request.query, message.src);

  auto rule_it = compiled_incoming_.find(request.rule_id);
  if (rule_it == compiled_incoming_.end()) {
    CODB_LOG(kWarning) << node_name_ << ": asked to serve unknown rule "
                       << request.rule_id;
    return;
  }

  QueryState& state = StateOf(request.query);
  QueryState::Serving& serving = state.serving[request.rule_id];
  serving.requester = message.src;
  bool new_label = serving.labels.insert(request.label).second;

  // Answer from local (overlay) data immediately...
  Serve(request.query, state, request.rule_id, /*delta=*/nullptr);

  // ...and forward the fetch through our own relevant outgoing links.
  if (new_label) {
    std::vector<uint32_t> extended = request.label;
    extended.push_back(self_.value);
    Fetch(request.query, state,
          rule_it->second.BodyRelations(), extended);
  }
}

void QueryManager::Serve(
    const FlowId& query, QueryState& state, const std::string& rule_id,
    const std::map<std::string, std::vector<Tuple>>* delta) {
  // Local inconsistency does not propagate: serve nothing while the local
  // store violates its own constraints.
  if (LocallyInconsistent()) return;
  const CoordinationRule& rule = compiled_incoming_.at(rule_id);
  QueryState::Serving& serving = state.serving.at(rule_id);
  Database& overlay = OverlayOf(state);

  m_rule_evals_->Add();
  ScopedSpan span(
      Tracer::Global().BeginSpanHere("query.serve", query.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", rule_id);

  // The overlay is private to this query and only touched under the
  // monitor, so no store guard is needed; the evaluator may still fan the
  // join out over the worker pool.
  std::vector<Tuple> frontiers;
  if (delta == nullptr) {
    frontiers = rule.EvaluateFrontier(overlay, eval_);
  } else {
    for (const auto& [relation, rows] : *delta) {
      bool referenced =
          std::find_if(rule.query().body.begin(), rule.query().body.end(),
                       [&](const Atom& atom) {
                         return atom.predicate == relation;
                       }) != rule.query().body.end();
      if (!referenced) continue;
      std::vector<Tuple> partial =
          rule.EvaluateFrontierDelta(overlay, relation, rows, eval_);
      frontiers.insert(frontiers.end(), partial.begin(), partial.end());
    }
  }

  std::vector<Tuple> fresh;
  for (Tuple& frontier : frontiers) {
    if (serving.sent_frontiers.insert(frontier).second) {
      fresh.push_back(std::move(frontier));
    }
  }
  if (fresh.empty()) return;

  QueryResultPayload result;
  result.query = query;
  result.rule_id = rule_id;
  result.tuples.reserve(fresh.size());
  for (const Tuple& frontier : fresh) {
    rule.InstantiateHeadInto(frontier, *minter_, result.tuples);
  }
  size_t tuple_count = result.tuples.size();
  std::vector<uint8_t> payload = result.Serialize();
  size_t bytes = payload.size() + Message::kHeaderBytes;
  SendBasic(query, serving.requester, MessageType::kQueryResult,
            std::move(payload));
  m_results_out_->Add();

  UpdateReport& report = stats_->ReportFor(query);
  ++report.data_messages_sent;
  report.data_bytes_sent += bytes;
  RuleTrafficStats& traffic = report.sent_per_rule[rule_id];
  ++traffic.messages;
  traffic.tuples += tuple_count;
  traffic.bytes += bytes;
  report.result_destinations.insert(serving.requester.value);
}

void QueryManager::OnResult(const Message& message) {
  Result<QueryResultPayload> parsed =
      QueryResultPayload::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << node_name_ << ": bad query result: "
                       << parsed.status().ToString();
    return;
  }
  QueryResultPayload result = std::move(parsed).value();
  m_results_in_->Add();
  ScopedSpan span(Tracer::Global().BeginSpanHere(
      "query.result", result.query.ToString()));
  Tracer::Global().AddArg(span.id(), "rule", result.rule_id);
  termination_.OnBasicMessage(result.query, message.src);

  QueryState& state = StateOf(result.query);
  Database& overlay = OverlayOf(state);

  UpdateReport& report = stats_->ReportFor(result.query);
  ++report.data_messages_received;
  report.data_bytes_received += message.WireSize();
  RuleTrafficStats& traffic = report.received_per_rule[result.rule_id];
  ++traffic.messages;
  traffic.tuples += result.tuples.size();
  traffic.bytes += message.WireSize();

  // Reconcile into the overlay; collect the genuinely new tuples.
  std::map<std::string, std::vector<Tuple>> delta;
  size_t new_count = 0;
  for (const HeadTuple& ht : result.tuples) {
    Relation* relation = overlay.Find(ht.relation);
    if (relation == nullptr) {
      CODB_LOG(kWarning) << node_name_ << ": query result for unknown "
                         << "relation " << ht.relation;
      continue;
    }
    if (relation->Insert(ht.tuple)) {
      delta[ht.relation].push_back(ht.tuple);
      ++new_count;
    }
  }
  report.tuples_added += new_count;

  if (state.owned && state.on_progress && new_count > 0) {
    state.on_progress({new_count, false});
  }
  if (delta.empty()) return;

  // Re-serve every request that depends on the grown relations.
  for (const std::string& dependent :
       link_graph_->DependentOn(result.rule_id)) {
    if (state.serving.find(dependent) != state.serving.end()) {
      Serve(result.query, state, dependent, &delta);
    }
  }
}

void QueryManager::FinishOwned(const FlowId& query) {
  QueryState& state = StateOf(query);
  if (state.done) return;
  state.done = true;

  UpdateReport& report = stats_->ReportFor(query);
  report.complete_virtual_us = network_->now_us();

  if (state.on_progress) state.on_progress({0, true});

  // Tell participants to drop their per-query state. Sequenced +
  // retransmitted: a lost done-flood would leak per-query overlays.
  done_flood_seen_.insert(query);
  QueryDonePayload done{query};
  for (PeerId neighbor : Acquaintances()) {
    reliable_.Send(MakeMessage(self_, neighbor, MessageType::kQueryDone,
                               done.Serialize()),
                   query, /*basic=*/false);
  }
}

void QueryManager::AbortIfIncomplete(const FlowId& query) {
  // Entered from the flow-deadline timer, outside HandleMessage.
  std::lock_guard<std::recursive_mutex> lock(mu_);
  QueryState& state = StateOf(query);
  if (!state.owned || state.done) return;
  CODB_LOG(kWarning) << node_name_ << ": deadline expired for "
                     << query.ToString()
                     << "; finishing with partial results";
  m_aborted_->Add();
  stats_->ReportFor(query).aborted = true;
  termination_.Abort(query);
  FinishOwned(query);
}

void QueryManager::OnDone(const Message& message) {
  Result<QueryDonePayload> parsed =
      QueryDonePayload::Deserialize(message.payload);
  if (!parsed.ok()) return;
  const FlowId query = parsed.value().query;
  m_done_in_->Add();
  if (!done_flood_seen_.insert(query).second) return;
  auto it = queries_.find(query);
  if (it != queries_.end() && !it->second.owned) {
    queries_.erase(it);
  }
  for (PeerId neighbor : Acquaintances()) {
    if (neighbor == message.src) continue;
    reliable_.Send(MakeMessage(self_, neighbor, MessageType::kQueryDone,
                               message.payload),
                   query, /*basic=*/false);
  }
}

void QueryManager::HandlePipeClosed(PeerId other) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  reliable_.OnPeerLost(other);
  termination_.OnPeerLost(other);
  termination_.MaybeQuiesce();
}

void QueryManager::SendBasic(const FlowId& query, PeerId dst,
                             MessageType type, std::vector<uint8_t> payload) {
  Status sent = reliable_.Send(
      MakeMessage(self_, dst, type, std::move(payload)), query,
      /*basic=*/true);
  if (sent.ok()) {
    termination_.OnSent(query, dst);
  } else {
    CODB_LOG(kDebug) << node_name_ << ": query send failed: "
                     << sent.ToString();
  }
}

std::vector<PeerId> QueryManager::Acquaintances() const {
  std::vector<PeerId> out;
  for (const std::string& name : config_->AcquaintancesOf(node_name_)) {
    Result<PeerId> peer = ResolvePeer(name);
    if (peer.ok() && network_->IsAlive(peer.value()) &&
        network_->HasPipe(self_, peer.value()) &&
        (presumed_alive_ == nullptr || presumed_alive_(peer.value()))) {
      out.push_back(peer.value());
    }
  }
  return out;
}

bool QueryManager::LocallyInconsistent() const {
  const NodeDecl* decl = config_->FindNode(node_name_);
  if (decl == nullptr || decl->keys.empty()) return false;
  ShardedRWLock::ReadAllGuard read_guard(wrapper_->store_lock());
  return !FindKeyViolations(wrapper_->storage(), decl->keys).empty();
}

bool QueryManager::IsDone(const FlowId& query) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = queries_.find(query);
  return it != queries_.end() && it->second.done;
}

size_t QueryManager::ForeignQueryStates() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [id, state] : queries_) {
    if (!state.owned) ++count;
  }
  return count;
}

Result<std::vector<Tuple>> QueryManager::Answers(const FlowId& query) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = queries_.find(query);
  if (it == queries_.end() || !it->second.owned) {
    return Status::NotFound("not the origin of " + query.ToString());
  }
  const QueryState& state = it->second;
  // Owned queries always have an overlay; the storage fallback (read
  // under the store lock) covers states deserialized by older paths.
  std::optional<ShardedRWLock::ReadAllGuard> read_guard;
  if (state.overlay == nullptr) read_guard.emplace(wrapper_->store_lock());
  const Database& db =
      state.overlay != nullptr ? *state.overlay : wrapper_->storage();
  if (!state.compiled_user_query.has_value()) {
    const ConjunctiveQuery& q = state.user_query;
    std::vector<std::string> output;
    for (const Term& term : q.head[0].terms) {
      if (term.is_var()) output.push_back(term.var());
    }
    CODB_ASSIGN_OR_RETURN(
        CompiledQuery compiled,
        CompiledQuery::Compile(q, db.Schema(), output));
    state.compiled_user_query.emplace(std::move(compiled));
  }
  return state.compiled_user_query->Evaluate(db, eval_);
}

Result<std::vector<Tuple>> QueryManager::CertainAnswers(
    const FlowId& query) const {
  CODB_ASSIGN_OR_RETURN(std::vector<Tuple> all, Answers(query));
  std::vector<Tuple> certain;
  for (Tuple& tuple : all) {
    if (!tuple.HasNull()) certain.push_back(std::move(tuple));
  }
  return certain;
}

}  // namespace codb
