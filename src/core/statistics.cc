#include "core/statistics.h"

#include "util/string_util.h"

namespace codb {

namespace {

void WriteRuleTraffic(WireWriter& writer,
                      const std::map<std::string, RuleTrafficStats>& stats) {
  writer.WriteU32(static_cast<uint32_t>(stats.size()));
  for (const auto& [rule, traffic] : stats) {
    writer.WriteString(rule);
    writer.WriteU64(traffic.messages);
    writer.WriteU64(traffic.tuples);
    writer.WriteU64(traffic.bytes);
  }
}

Result<std::map<std::string, RuleTrafficStats>> ReadRuleTraffic(
    WireReader& reader) {
  std::map<std::string, RuleTrafficStats> stats;
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(std::string rule, reader.ReadString());
    RuleTrafficStats traffic;
    CODB_ASSIGN_OR_RETURN(traffic.messages, reader.ReadU64());
    CODB_ASSIGN_OR_RETURN(traffic.tuples, reader.ReadU64());
    CODB_ASSIGN_OR_RETURN(traffic.bytes, reader.ReadU64());
    stats.emplace(std::move(rule), traffic);
  }
  return stats;
}

void WritePeerSet(WireWriter& writer, const std::set<uint32_t>& peers) {
  writer.WriteU32(static_cast<uint32_t>(peers.size()));
  for (uint32_t p : peers) writer.WriteU32(p);
}

Result<std::set<uint32_t>> ReadPeerSet(WireReader& reader) {
  std::set<uint32_t> peers;
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(uint32_t p, reader.ReadU32());
    peers.insert(p);
  }
  return peers;
}

}  // namespace

void UpdateReport::SerializeTo(WireWriter& writer) const {
  writer.WriteU8(static_cast<uint8_t>(update.scope));
  writer.WriteU32(update.origin);
  writer.WriteU64(update.seq);
  writer.WriteI64(start_virtual_us);
  writer.WriteI64(closed_virtual_us);
  writer.WriteI64(complete_virtual_us);
  writer.WriteDouble(wall_micros);
  writer.WriteU64(tuples_added);
  writer.WriteU64(data_messages_received);
  writer.WriteU64(data_bytes_received);
  writer.WriteU64(data_messages_sent);
  writer.WriteU64(data_bytes_sent);
  writer.WriteU32(longest_path_nodes);
  writer.WriteU8(aborted ? 1 : 0);
  WriteRuleTraffic(writer, received_per_rule);
  WriteRuleTraffic(writer, sent_per_rule);
  WritePeerSet(writer, acquaintances_queried);
  WritePeerSet(writer, result_destinations);
}

Result<UpdateReport> UpdateReport::DeserializeFrom(WireReader& reader) {
  UpdateReport report;
  CODB_ASSIGN_OR_RETURN(uint8_t scope, reader.ReadU8());
  report.update.scope = static_cast<FlowId::Scope>(scope);
  CODB_ASSIGN_OR_RETURN(report.update.origin, reader.ReadU32());
  CODB_ASSIGN_OR_RETURN(report.update.seq, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(report.start_virtual_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(report.closed_virtual_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(report.complete_virtual_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(report.wall_micros, reader.ReadDouble());
  CODB_ASSIGN_OR_RETURN(report.tuples_added, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(report.data_messages_received, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(report.data_bytes_received, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(report.data_messages_sent, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(report.data_bytes_sent, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(report.longest_path_nodes, reader.ReadU32());
  CODB_ASSIGN_OR_RETURN(uint8_t aborted, reader.ReadU8());
  report.aborted = aborted != 0;
  CODB_ASSIGN_OR_RETURN(report.received_per_rule, ReadRuleTraffic(reader));
  CODB_ASSIGN_OR_RETURN(report.sent_per_rule, ReadRuleTraffic(reader));
  CODB_ASSIGN_OR_RETURN(report.acquaintances_queried, ReadPeerSet(reader));
  CODB_ASSIGN_OR_RETURN(report.result_destinations, ReadPeerSet(reader));
  return report;
}

std::string UpdateReport::Render() const {
  std::string out = "update report for " + update.ToString() +
                    (aborted ? " [ABORTED: partial coverage]" : "") + "\n";
  out += StrFormat("  started at       %lld us (virtual)\n",
                   static_cast<long long>(start_virtual_us));
  out += StrFormat("  links closed at  %lld us\n",
                   static_cast<long long>(closed_virtual_us));
  out += StrFormat("  completed at     %lld us\n",
                   static_cast<long long>(complete_virtual_us));
  if (complete_virtual_us >= 0 && start_virtual_us >= 0) {
    out += StrFormat("  total time       %lld us (virtual), %.0f us (wall)\n",
                     static_cast<long long>(complete_virtual_us -
                                            start_virtual_us),
                     wall_micros);
  }
  out += StrFormat(
      "  data in          %llu msgs, %llu tuples added, %s\n",
      static_cast<unsigned long long>(data_messages_received),
      static_cast<unsigned long long>(tuples_added),
      HumanBytes(data_bytes_received).c_str());
  out += StrFormat("  data out         %llu msgs, %s\n",
                   static_cast<unsigned long long>(data_messages_sent),
                   HumanBytes(data_bytes_sent).c_str());
  out += StrFormat("  longest path     %u nodes\n", longest_path_nodes);
  for (const auto& [rule, traffic] : received_per_rule) {
    out += StrFormat("  <- rule %-12s %6llu msgs %8llu tuples %10s\n",
                     rule.c_str(),
                     static_cast<unsigned long long>(traffic.messages),
                     static_cast<unsigned long long>(traffic.tuples),
                     HumanBytes(traffic.bytes).c_str());
  }
  for (const auto& [rule, traffic] : sent_per_rule) {
    out += StrFormat("  -> rule %-12s %6llu msgs %8llu tuples %10s\n",
                     rule.c_str(),
                     static_cast<unsigned long long>(traffic.messages),
                     static_cast<unsigned long long>(traffic.tuples),
                     HumanBytes(traffic.bytes).c_str());
  }
  return out;
}

UpdateReport& StatisticsModule::ReportFor(const FlowId& update) {
  std::lock_guard<std::mutex> lock(mu_);
  UpdateReport& report = reports_[update];
  report.update = update;
  return report;
}

const UpdateReport* StatisticsModule::FindReport(const FlowId& update) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = reports_.find(update);
  return it == reports_.end() ? nullptr : &it->second;
}

std::vector<uint8_t> StatisticsModule::SerializeAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  WireWriter writer;
  writer.WriteU32(static_cast<uint32_t>(reports_.size()));
  for (const auto& [id, report] : reports_) {
    report.SerializeTo(writer);
  }
  durability_.SerializeTo(writer);
  // The cost ledger rides the metrics trailer as cost.* entries; an idle
  // ledger snapshots to nothing, keeping the payload unchanged.
  MetricsSnapshot metrics = metrics_.Snapshot();
  metrics.Merge(cost_.Snapshot());
  metrics.SerializeTo(writer);
  return writer.Take();
}

Result<StatsBundle> StatisticsModule::DeserializeBundle(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  StatsBundle bundle;
  bundle.reports.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(UpdateReport report,
                          UpdateReport::DeserializeFrom(reader));
    bundle.reports.push_back(std::move(report));
  }
  // Older payloads simply stop early: reports-only bundles lack the
  // durability trailer, durability-only bundles lack the metrics trailer.
  // Each trailing section is optional so old snapshots stay readable.
  if (!reader.AtEnd()) {
    CODB_ASSIGN_OR_RETURN(bundle.durability,
                          DurabilityStats::DeserializeFrom(reader));
  }
  if (!reader.AtEnd()) {
    CODB_ASSIGN_OR_RETURN(bundle.metrics,
                          MetricsSnapshot::DeserializeFrom(reader));
  }
  return bundle;
}

Result<std::vector<UpdateReport>> StatisticsModule::DeserializeAll(
    const std::vector<uint8_t>& payload) {
  CODB_ASSIGN_OR_RETURN(StatsBundle bundle, DeserializeBundle(payload));
  return std::move(bundle.reports);
}

}  // namespace codb
