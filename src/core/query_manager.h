// Distributed query answering at query time (paper, sections 1 and 3).
//
// A node is queried in its own schema. Data relevant to the query may live
// anywhere in the network, so the node fetches it through its coordination
// rules by a diffusing computation: it asks the exporter of every outgoing
// link whose head writes a relation the query reads; that exporter answers
// from its local data immediately, forwards fetch requests through its own
// relevant outgoing links, and streams incremental results back as deeper
// data arrives. Requests carry a node-id label and are never propagated to
// a node already in the label (simple paths, the paper's cycle guard).
//
// Fetched data lives in a per-query *overlay* (a copy-on-start of the local
// store), so query-time answering leaves the node databases untouched —
// that is precisely the contrast with the global update, which materializes
// the data and makes later queries local (experiment E2).

#ifndef CODB_CORE_QUERY_MANAGER_H_
#define CODB_CORE_QUERY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "query/evaluator.h"
#include "core/link_graph.h"
#include "core/protocol.h"
#include "core/reliability.h"
#include "core/statistics.h"
#include "core/termination.h"
#include "net/network_interface.h"
#include "wrapper/wrapper.h"

namespace codb {

class QueryManager {
 public:
  // Called at the origin when new result tuples arrive (streaming UI) and
  // once more on completion.
  struct QueryProgress {
    size_t new_tuples = 0;
    bool done = false;
  };
  using ProgressFn = std::function<void(const QueryProgress&)>;

  // `query_seq` is the node-owned counter of issued queries; it lives
  // outside the manager so ids stay unique across reconfigurations.
  // `eval` configures this manager's rule/answer evaluations (thread pool
  // + fan-out for the partitioned-join path; defaults stay sequential).
  QueryManager(NetworkBase* network, PeerId self, std::string node_name,
               Wrapper* wrapper, const NetworkConfig* config,
               const LinkGraph* link_graph, StatisticsModule* stats,
               NullMinter* minter, uint64_t* query_seq,
               ReliabilityOptions reliability = ReliabilityOptions(),
               EvalOptions eval = EvalOptions());

  // Compiles this node's incoming links (rules it may be asked to serve).
  Status Init();

  // Issues `query` (over this node's schema) from this node. The node
  // becomes the root of the diffusing computation.
  Result<FlowId> StartQuery(const ConjunctiveQuery& query,
                            ProgressFn on_progress = nullptr);

  // Routed by the node: kQueryRequest/kQueryResult/kQueryDone, plus
  // kUpdateAck with query scope.
  void HandleMessage(const Message& message);

  void HandlePipeClosed(PeerId other);

  // Liveness predicate from the node's membership layer (see
  // UpdateManager::SetPresumedAlive). Null = historical behaviour.
  void SetPresumedAlive(std::function<bool(PeerId)> predicate) {
    presumed_alive_ = std::move(predicate);
  }

  // True once the diffusing computation of an owned query terminated.
  bool IsDone(const FlowId& query) const;

  // Current (streaming) or final answers of an owned query: the user query
  // evaluated over local store + fetched overlay.
  Result<std::vector<Tuple>> Answers(const FlowId& query) const;

  // The null-free subset of Answers(): the *certain* answers under the
  // marked-null semantics (for conjunctive queries, evaluating the naive
  // tables and dropping rows with nulls is sound and complete).
  Result<std::vector<Tuple>> CertainAnswers(const FlowId& query) const;

  // Per-query states held for queries *other* nodes own. The no-leak
  // teardown check: once every owned query finished and its done-flood
  // propagated, this is zero network-wide.
  size_t ForeignQueryStates() const;

  // Unacked sequenced messages still held for retransmission (see
  // UpdateManager::PendingReliable).
  uint64_t PendingReliable() const { return reliable_.pending_count(); }

 private:
  struct QueryState {
    // Set only at the origin.
    bool owned = false;
    bool done = false;
    ConjunctiveQuery user_query;
    ProgressFn on_progress;

    // user_query compiled once on first Answers() call; reused afterwards
    // so streaming progress callbacks and repeated reads share one plan
    // cache. Mutable: filling it is invisible to callers of const Answers.
    mutable std::optional<CompiledQuery> compiled_user_query;

    // Overlay: local store copy + fetched data; created lazily.
    std::unique_ptr<Database> overlay;

    // Incoming links this node serves for the query: rule id -> requester
    // and the set of labels under which it was requested.
    struct Serving {
      PeerId requester;
      std::set<std::vector<uint32_t>> labels;
      std::unordered_set<Tuple, TupleHash> sent_frontiers;
    };
    std::map<std::string, Serving> serving;

    // (rule id, label) sub-requests already issued.
    std::set<std::pair<std::string, std::vector<uint32_t>>> requested;
  };

  QueryState& StateOf(const FlowId& query);
  Database& OverlayOf(QueryState& state);

  void OnRequest(const Message& message);
  void OnResult(const Message& message);
  void OnDone(const Message& message);

  // Issues sub-requests for every outgoing link relevant to `rule_id`
  // (or, with empty rule_id, to the user query's body relations), under
  // `label` extended with self.
  void Fetch(const FlowId& query, QueryState& state,
             const std::vector<std::string>& relations,
             const std::vector<uint32_t>& label);

  // Evaluates rule `rule_id` over the overlay (optionally delta-restricted)
  // and streams fresh results to the requester.
  void Serve(const FlowId& query, QueryState& state,
             const std::string& rule_id,
             const std::map<std::string, std::vector<Tuple>>* delta);

  void SendBasic(const FlowId& query, PeerId dst, MessageType type,
                 std::vector<uint8_t> payload);

  void FinishOwned(const FlowId& query);

  // Flow-deadline expiry at the origin: reports the query aborted and
  // finishes it with whatever results arrived.
  void AbortIfIncomplete(const FlowId& query);

  // Receipt-acks a sequenced message, filters duplicates and parks
  // out-of-order arrivals (see UpdateManager::AcceptDelivery).
  bool AcceptDelivery(const Message& message);

  // Processes parked arrivals that `delivered` made next-in-order.
  void DrainReady(const Message& delivered);

  Result<PeerId> ResolvePeer(const std::string& node_name) const;

  // Alive, pipe-connected rule acquaintances (flood targets).
  std::vector<PeerId> Acquaintances() const;

  // True when this node's store violates its own key constraints.
  bool LocallyInconsistent() const;

  // Monitor serializing this manager's handlers, timers, and answer reads
  // (DESIGN.md §10); see UpdateManager::mu_ for the rationale. Cross-flow
  // concurrency comes from the update manager running on its own strand
  // and from the evaluator's worker pool, not from reentering here.
  mutable std::recursive_mutex mu_;

  NetworkBase* network_;
  PeerId self_;
  std::string node_name_;
  Wrapper* wrapper_;
  const NetworkConfig* config_;
  const LinkGraph* link_graph_;
  StatisticsModule* stats_;
  NullMinter* minter_;
  EvalOptions eval_;
  std::function<bool(PeerId)> presumed_alive_;  // null = no membership

  // Cached instruments from stats_->metrics() (see update_manager.h).
  Counter* m_started_;
  Counter* m_requests_in_;
  Counter* m_results_in_;
  Counter* m_results_out_;
  Counter* m_done_in_;
  Counter* m_rule_evals_;
  Counter* m_dups_suppressed_;
  Counter* m_root_terminations_;
  Counter* m_aborted_;

  TerminationDetector termination_;
  ReliableSender reliable_;
  DupFilter dup_filter_;
  std::map<std::string, CoordinationRule> compiled_incoming_;
  std::map<FlowId, QueryState> queries_;
  std::set<FlowId> done_flood_seen_;
  mutable std::map<std::string, PeerId> peer_cache_;
  uint64_t* query_seq_;  // owned by the node
};

}  // namespace codb

#endif  // CODB_CORE_QUERY_MANAGER_H_
