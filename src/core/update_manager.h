// The global update algorithm (paper, section 3).
//
// A global update makes every node import, through its coordination rules,
// all data reachable from its acquaintances — transitively, along *simple*
// update-propagation paths — so that subsequent local queries need no
// network access. Sketch, at a node n for update u:
//
//   join(u):      flood UpdateRequest(u) to all acquaintances (dedup by u);
//                 for every incoming link i, evaluate its body over the
//                 local store, dedup against the per-link sent-set, mint
//                 fresh marked nulls for existential head variables, and
//                 ship the head tuples with path label [n].
//
//   data(u,o,T,P): T' = T \ R; R += T' (set semantics); for every incoming
//                 link i dependent on o whose importer m' is not on P∪{n},
//                 recompute i semi-naively with delta T', dedup against the
//                 sent-set of i, and forward with label P+[n].
//
//   closing:      an incoming link i closes when n has joined, fired i's
//                 initial evaluation, and every outgoing link relevant for
//                 i is closed (received LinkClosed) or unreachable. Links
//                 on dependency cycles cannot close inductively; they close
//                 when the initiator's diffusing computation detects global
//                 quiescence and floods UpdateComplete.
//
// Termination is guaranteed: path labels bound every tuple's journey by
// the number of nodes, even for cyclic rules with existential variables.

#ifndef CODB_CORE_UPDATE_MANAGER_H_
#define CODB_CORE_UPDATE_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/link_graph.h"
#include "core/protocol.h"
#include "core/reliability.h"
#include "core/statistics.h"
#include "core/termination.h"
#include "net/network_interface.h"
#include "wrapper/wrapper.h"

namespace codb {

class UpdateManager {
 public:
  struct Options {
    // T' = T \ R receiver-side dedup. Off: every received tuple is treated
    // as a delta even when already stored (ablation E6; storage stays a
    // set either way).
    bool dedup_received = true;
    // Frontier sent-sets per incoming link. Off: recomputed results are
    // re-shipped every time (ablation E6).
    bool dedup_sent = true;
    // Maximum head tuples per kUpdateData message; larger result sets are
    // split into consecutive batches on the same pipe (FIFO keeps them
    // ordered). 0 = unlimited (one message per rule activation).
    size_t max_batch_tuples = 0;
    // Containment optimization: do not execute incoming links whose query
    // another rule on the same importer/exporter pair subsumes (see
    // NetworkConfig::FindSubsumedRules). The links still open and close
    // normally; they just never carry data the subsuming rule ships
    // anyway.
    bool skip_subsumed = false;
    // At-least-once delivery (core/reliability.h). Off by default: the
    // fault-free runtimes keep their historical message counts.
    ReliabilityOptions reliability;
    // Execution options for this manager's rule evaluations: thread pool +
    // fan-out for the partitioned-join path (query/evaluator.h). The
    // defaults keep the historical sequential evaluator.
    EvalOptions eval;
  };

  // All pointers must outlive the manager. `node_name` is this node's name
  // in `config`.
  // `update_seq` is the node-owned counter of started updates; it lives
  // outside the manager so ids stay unique across reconfigurations.
  UpdateManager(NetworkBase* network, PeerId self, std::string node_name,
                Wrapper* wrapper, const NetworkConfig* config,
                const LinkGraph* link_graph, StatisticsModule* stats,
                NullMinter* minter, uint64_t* update_seq, Options options);

  // Compiles this node's incoming links. Must succeed before any traffic.
  Status Init();

  // Starts a global update from this node (it becomes the root of the
  // diffusing computation). A *refresh* update additionally drops every
  // node's previously imported tuples first, so deletions at the sources
  // propagate. Returns the update id.
  FlowId StartUpdate(bool refresh = false);

  // Routed by the node: kUpdateRequest/kUpdateData/kLinkClosed/
  // kUpdateComplete, plus kUpdateAck with update scope.
  void HandleMessage(const Message& message);

  // Churn notification from the node. Also the membership eviction path:
  // an evicted peer gets the same treatment as a snapped pipe.
  void HandlePipeClosed(PeerId other);

  // Liveness predicate supplied by the node's membership layer: peers for
  // which it returns false (evicted) are excluded from Acquaintances()
  // and treated as permanently quiet exporters. Null = everyone reachable
  // is presumed alive (the historical behaviour).
  void SetPresumedAlive(std::function<bool(PeerId)> predicate) {
    presumed_alive_ = std::move(predicate);
  }

  // -- introspection (reports, tests, benches) ----------------------------

  bool IsJoined(const FlowId& update) const;
  // All outgoing links closed at this node.
  bool IsClosed(const FlowId& update) const;
  // Global completion observed (or detected, at the root).
  bool IsComplete(const FlowId& update) const;

  bool OutgoingLinkClosed(const FlowId& update,
                          const std::string& rule_id) const;
  bool IncomingLinkClosed(const FlowId& update,
                          const std::string& rule_id) const;

  // Ids of this node's links (for the node report).
  std::vector<std::string> OutgoingLinkIds() const;
  std::vector<std::string> IncomingLinkIds() const;

  // Unacked sequenced messages still held for retransmission. The
  // eviction tests assert this drops to zero the moment a dead peer is
  // evicted, instead of draining through the full retry backoff.
  uint64_t PendingReliable() const { return reliable_.pending_count(); }

 private:
  struct IncomingLinkState {  // we are the exporter: we ship data
    bool closed = false;
    bool initial_fired = false;
    std::unordered_set<Tuple, TupleHash> sent_frontiers;
  };
  struct OutgoingLinkState {  // we are the importer: we receive data
    bool closed = false;
  };
  struct UpdateState {
    bool joined = false;
    bool complete = false;
    // Local inconsistency at join time: exports are suppressed for the
    // whole update (paper principle (d)).
    bool exports_suppressed = false;
    std::map<std::string, IncomingLinkState> incoming;
    std::map<std::string, OutgoingLinkState> outgoing;
  };

  UpdateState& StateOf(const FlowId& update);

  // Marks the node joined: floods the request onward (skipping `via`, the
  // peer it came from, if any) and fires the initial link evaluations.
  // Refresh joins drop imported tuples before evaluating.
  void Join(const FlowId& update, PeerId via, bool refresh);

  void OnRequest(const Message& message);
  void OnData(const Message& message);
  void OnLinkClosed(const Message& message);
  void OnComplete(const Message& message);

  // Evaluates + ships the initial content of incoming link `rule_id`.
  void FireInitial(const FlowId& update, UpdateState& state,
                   const std::string& rule_id);

  // Dedups `frontiers` against the sent-set, instantiates heads, ships.
  void ShipFrontiers(const FlowId& update, UpdateState& state,
                     const std::string& rule_id,
                     std::vector<Tuple> frontiers,
                     const std::vector<uint32_t>& path);

  // Inductive link closing; records node-closed time when the last
  // outgoing link closes.
  void CheckClosing(const FlowId& update, UpdateState& state);

  // True if outgoing link `rule_id` can no longer deliver data (closed by
  // its exporter, or the exporter is unreachable).
  bool OutgoingQuiet(const UpdateState& state,
                     const std::string& rule_id) const;

  // Marks the update complete locally and floods kUpdateComplete onward.
  void Complete(const FlowId& update, PeerId via);

  // Flow-deadline expiry at the root: reports the update aborted and
  // completes it with whatever data arrived. No-op if already complete.
  void AbortIfIncomplete(const FlowId& update);

  // Receipt-acks a sequenced message, filters duplicates and parks
  // out-of-order arrivals. Returns false when the message must not be
  // processed now (already seen, or a gap precedes it).
  bool AcceptDelivery(const Message& message);

  // Processes parked arrivals that `delivered` made next-in-order.
  void DrainReady(const Message& delivered);

  // Sends a basic protocol message and books the deficit.
  void SendBasic(const FlowId& update, PeerId dst, MessageType type,
                 std::vector<uint8_t> payload);

  Result<PeerId> ResolvePeer(const std::string& node_name) const;

  // Alive, pipe-connected rule acquaintances (flood targets).
  std::vector<PeerId> Acquaintances() const;

  // True when this node's store violates its own key constraints.
  bool LocallyInconsistent() const;

  // Monitor serializing this manager's handlers and timers (DESIGN.md
  // §10): with concurrent flow admission, the update flow's strand, the
  // reliability timers, and introspection calls from other threads all
  // enter here. Recursive because the single-threaded simulator delivers
  // nested callbacks (pipe-closed, give-ups) from within a handler.
  mutable std::recursive_mutex mu_;

  NetworkBase* network_;
  PeerId self_;
  std::string node_name_;
  Wrapper* wrapper_;
  const NetworkConfig* config_;
  const LinkGraph* link_graph_;
  StatisticsModule* stats_;
  NullMinter* minter_;
  Options options_;
  std::function<bool(PeerId)> presumed_alive_;  // null = no membership

  // Cached instruments from stats_->metrics(); registered once here so the
  // handler hot paths are plain relaxed-atomic increments.
  Counter* m_started_;
  Counter* m_requests_in_;
  Counter* m_data_in_;
  Counter* m_data_out_;
  Counter* m_link_closed_in_;
  Counter* m_acks_in_;
  Counter* m_completes_in_;
  Counter* m_rule_evals_;
  Counter* m_tuples_shipped_;
  Counter* m_dups_suppressed_;
  Counter* m_root_terminations_;
  Counter* m_aborted_;
  Histogram* m_handler_us_;
  Histogram* m_data_tuples_;

  TerminationDetector termination_;
  ReliableSender reliable_;
  DupFilter dup_filter_;
  std::map<std::string, CoordinationRule> compiled_incoming_;
  std::set<std::string> subsumed_incoming_;  // skip_subsumed option
  std::map<FlowId, UpdateState> updates_;
  mutable std::map<std::string, PeerId> peer_cache_;
  uint64_t* update_seq_;  // owned by the node
};

}  // namespace codb

#endif  // CODB_CORE_UPDATE_MANAGER_H_
