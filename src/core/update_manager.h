// The global update algorithm (paper, section 3).
//
// A global update makes every node import, through its coordination rules,
// all data reachable from its acquaintances — transitively, along *simple*
// update-propagation paths — so that subsequent local queries need no
// network access. Sketch, at a node n for update u:
//
//   join(u):      flood UpdateRequest(u) to all acquaintances (dedup by u);
//                 for every incoming link i, evaluate its body over the
//                 local store, dedup against the per-link sent-set, mint
//                 fresh marked nulls for existential head variables, and
//                 ship the head tuples with path label [n].
//
//   data(u,o,T,P): T' = T \ R; R += T' (set semantics); for every incoming
//                 link i dependent on o whose importer m' is not on P∪{n},
//                 recompute i semi-naively with delta T', dedup against the
//                 sent-set of i, and forward with label P+[n].
//
//   closing:      an incoming link i closes when n has joined, fired i's
//                 initial evaluation, and every outgoing link relevant for
//                 i is closed (received LinkClosed) or unreachable. Links
//                 on dependency cycles cannot close inductively; they close
//                 when the initiator's diffusing computation detects global
//                 quiescence and floods UpdateComplete.
//
// Termination is guaranteed: path labels bound every tuple's journey by
// the number of nodes, even for cyclic rules with existential variables.

#ifndef CODB_CORE_UPDATE_MANAGER_H_
#define CODB_CORE_UPDATE_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/export_memory.h"
#include "core/link_graph.h"
#include "core/protocol.h"
#include "core/reliability.h"
#include "core/statistics.h"
#include "core/termination.h"
#include "net/network_interface.h"
#include "wrapper/wrapper.h"

namespace codb {

class UpdateManager {
 public:
  struct Options {
    // T' = T \ R receiver-side dedup. Off: every received tuple is treated
    // as a delta even when already stored (ablation E6; storage stays a
    // set either way).
    bool dedup_received = true;
    // Frontier sent-sets per incoming link. Off: recomputed results are
    // re-shipped every time (ablation E6).
    bool dedup_sent = true;
    // Maximum head tuples per kUpdateData message; larger result sets are
    // split into consecutive batches on the same pipe (FIFO keeps them
    // ordered). 0 = unlimited (one message per rule activation).
    size_t max_batch_tuples = 0;
    // Containment optimization: do not execute incoming links whose query
    // another rule on the same importer/exporter pair subsumes (see
    // NetworkConfig::FindSubsumedRules). The links still open and close
    // normally; they just never carry data the subsuming rule ships
    // anyway.
    bool skip_subsumed = false;
    // At-least-once delivery (core/reliability.h). Off by default: the
    // fault-free runtimes keep their historical message counts.
    ReliabilityOptions reliability;
    // Execution options for this manager's rule evaluations: thread pool +
    // fan-out for the partitioned-join path (query/evaluator.h). The
    // defaults keep the historical sequential evaluator.
    EvalOptions eval;
  };

  // Per-relation batch of inserted tuples: the seed of an incremental
  // update (must already be present in the initiator's store).
  using DeltaMap = std::map<std::string, std::vector<Tuple>>;
  // Root-side completion notification: invoked exactly once, when the
  // diffusing computation this node initiated terminates (including
  // deadline aborts — check the report's `aborted` flag).
  using CompletionFn = std::function<void(const FlowId&)>;

  // All pointers must outlive the manager. `node_name` is this node's name
  // in `config`.
  // `update_seq` is the node-owned counter of started updates; it lives
  // outside the manager so ids stay unique across reconfigurations.
  // `export_memory` is the node-owned cross-update export memory
  // (DESIGN.md §14); it outlives the manager for the same reason
  // `update_seq` does. Null disables cross-update dedup (incremental
  // updates then re-ship previously exported frontiers, which importers
  // absorb through set semantics).
  UpdateManager(NetworkBase* network, PeerId self, std::string node_name,
                Wrapper* wrapper, const NetworkConfig* config,
                const LinkGraph* link_graph, StatisticsModule* stats,
                NullMinter* minter, uint64_t* update_seq,
                ExportMemory* export_memory, Options options);

  // Compiles this node's incoming links. Must succeed before any traffic.
  Status Init();

  // Starts a global update from this node (it becomes the root of the
  // diffusing computation). A *refresh* update additionally drops every
  // node's previously imported tuples first, so deletions at the sources
  // propagate. Returns the update id.
  FlowId StartUpdate(bool refresh = false,
                     CompletionFn on_complete = nullptr);

  // Starts an incremental (semi-naive) global update seeded by `delta`:
  // instead of the full-store initial evaluation, every incoming link
  // fires EvaluateFrontierDelta over the delta relations only, and
  // non-initiator nodes skip the initial firing entirely — propagation
  // carries deltas end to end, so the work is proportional to the delta,
  // not the store. Requires the delta tuples to already be in the local
  // store (Wrapper::InsertLocal does both). Assumes the network was
  // synchronized by a prior full/refresh update; frontiers recorded in
  // the export memory are not re-shipped.
  FlowId StartIncrementalUpdate(DeltaMap delta,
                                CompletionFn on_complete = nullptr);

  // Routed by the node: kUpdateRequest/kUpdateData/kLinkClosed/
  // kUpdateComplete, plus kUpdateAck with update scope.
  void HandleMessage(const Message& message);

  // Churn notification from the node. Also the membership eviction path:
  // an evicted peer gets the same treatment as a snapped pipe.
  void HandlePipeClosed(PeerId other);

  // Liveness predicate supplied by the node's membership layer: peers for
  // which it returns false (evicted) are excluded from Acquaintances()
  // and treated as permanently quiet exporters. Null = everyone reachable
  // is presumed alive (the historical behaviour).
  void SetPresumedAlive(std::function<bool(PeerId)> predicate) {
    presumed_alive_ = std::move(predicate);
  }

  // -- introspection (reports, tests, benches) ----------------------------

  bool IsJoined(const FlowId& update) const;
  // All outgoing links closed at this node.
  bool IsClosed(const FlowId& update) const;
  // Global completion observed (or detected, at the root).
  bool IsComplete(const FlowId& update) const;

  bool OutgoingLinkClosed(const FlowId& update,
                          const std::string& rule_id) const;
  bool IncomingLinkClosed(const FlowId& update,
                          const std::string& rule_id) const;

  // Ids of this node's links (for the node report).
  std::vector<std::string> OutgoingLinkIds() const;
  std::vector<std::string> IncomingLinkIds() const;

  // Unacked sequenced messages still held for retransmission. The
  // eviction tests assert this drops to zero the moment a dead peer is
  // evicted, instead of draining through the full retry backoff.
  uint64_t PendingReliable() const { return reliable_.pending_count(); }

 private:
  struct IncomingLinkState {  // we are the exporter: we ship data
    bool closed = false;
    bool initial_fired = false;
    std::unordered_set<Tuple, TupleHash> sent_frontiers;
  };
  struct OutgoingLinkState {  // we are the importer: we receive data
    bool closed = false;
  };
  struct UpdateState {
    bool joined = false;
    bool complete = false;
    // Semi-naive update: initial firing is delta-seeded (initiator) or
    // skipped (everyone else), and shipments dedup against the
    // cross-update export memory.
    bool incremental = false;
    // Local inconsistency at join time: exports are suppressed for the
    // whole update (paper principle (d)).
    bool exports_suppressed = false;
    std::map<std::string, IncomingLinkState> incoming;
    std::map<std::string, OutgoingLinkState> outgoing;
  };

  UpdateState& StateOf(const FlowId& update);

  // Shared root-side start path of StartUpdate/StartIncrementalUpdate.
  FlowId StartUpdateInternal(bool refresh, bool incremental,
                             const DeltaMap* delta,
                             CompletionFn on_complete);

  // Marks the node joined: floods the request onward (skipping `via`, the
  // peer it came from, if any) and fires the initial link evaluations.
  // Refresh joins drop imported tuples before evaluating; incremental
  // joins fire over `delta` (the initiator) or nothing (delta == null).
  void Join(const FlowId& update, PeerId via, bool refresh,
            bool incremental, const DeltaMap* delta = nullptr);

  void OnRequest(const Message& message);
  void OnData(const Message& message);
  void OnLinkClosed(const Message& message);
  void OnComplete(const Message& message);

  // Evaluates + ships the initial content of incoming link `rule_id`.
  void FireInitial(const FlowId& update, UpdateState& state,
                   const std::string& rule_id);

  // Semi-naive initial firing at the initiator: evaluates `rule_id` with
  // each delta relation its body references substituted, and ships the
  // union — work proportional to the delta, not the store.
  void FireInitialDelta(const FlowId& update, UpdateState& state,
                        const std::string& rule_id, const DeltaMap& delta);

  // Dedups `frontiers` against the sent-set, instantiates heads, ships.
  void ShipFrontiers(const FlowId& update, UpdateState& state,
                     const std::string& rule_id,
                     std::vector<Tuple> frontiers,
                     const std::vector<uint32_t>& path);

  // Inductive link closing; records node-closed time when the last
  // outgoing link closes.
  void CheckClosing(const FlowId& update, UpdateState& state);

  // True if outgoing link `rule_id` can no longer deliver data (closed by
  // its exporter, or the exporter is unreachable).
  bool OutgoingQuiet(const UpdateState& state,
                     const std::string& rule_id) const;

  // Marks the update complete locally and floods kUpdateComplete onward.
  void Complete(const FlowId& update, PeerId via);

  // Flow-deadline expiry at the root: reports the update aborted and
  // completes it with whatever data arrived. No-op if already complete.
  void AbortIfIncomplete(const FlowId& update);

  // Receipt-acks a sequenced message, filters duplicates and parks
  // out-of-order arrivals. Returns false when the message must not be
  // processed now (already seen, or a gap precedes it).
  bool AcceptDelivery(const Message& message);

  // Processes parked arrivals that `delivered` made next-in-order.
  void DrainReady(const Message& delivered);

  // Sends a basic protocol message and books the deficit.
  void SendBasic(const FlowId& update, PeerId dst, MessageType type,
                 std::vector<uint8_t> payload);

  Result<PeerId> ResolvePeer(const std::string& node_name) const;

  // Alive, pipe-connected rule acquaintances (flood targets).
  std::vector<PeerId> Acquaintances() const;

  // True when this node's store violates its own key constraints.
  bool LocallyInconsistent() const;

  // Monitor serializing this manager's handlers and timers (DESIGN.md
  // §10): with concurrent flow admission, the update flow's strand, the
  // reliability timers, and introspection calls from other threads all
  // enter here. Recursive because the single-threaded simulator delivers
  // nested callbacks (pipe-closed, give-ups) from within a handler.
  mutable std::recursive_mutex mu_;

  NetworkBase* network_;
  PeerId self_;
  std::string node_name_;
  Wrapper* wrapper_;
  const NetworkConfig* config_;
  const LinkGraph* link_graph_;
  StatisticsModule* stats_;
  NullMinter* minter_;
  Options options_;
  std::function<bool(PeerId)> presumed_alive_;  // null = no membership

  // Cached instruments from stats_->metrics(); registered once here so the
  // handler hot paths are plain relaxed-atomic increments.
  Counter* m_started_;
  Counter* m_requests_in_;
  Counter* m_data_in_;
  Counter* m_data_out_;
  Counter* m_link_closed_in_;
  Counter* m_acks_in_;
  Counter* m_completes_in_;
  Counter* m_rule_evals_;
  Counter* m_tuples_shipped_;
  Counter* m_dups_suppressed_;
  Counter* m_root_terminations_;
  Counter* m_aborted_;
  // Semi-naive instrumentation: incremental updates started here, delta
  // rows they were seeded with, rows fed into rule evaluations (full
  // evals charge the body relations' sizes; delta evals the delta), and
  // frontiers the cross-update export memory suppressed.
  Counter* m_incremental_;
  Counter* m_delta_rows_;
  Counter* m_eval_rows_;
  Counter* m_memory_suppressed_;
  Histogram* m_handler_us_;
  Histogram* m_data_tuples_;

  TerminationDetector termination_;
  ReliableSender reliable_;
  DupFilter dup_filter_;
  std::map<std::string, CoordinationRule> compiled_incoming_;
  std::set<std::string> subsumed_incoming_;  // skip_subsumed option
  std::map<FlowId, UpdateState> updates_;
  // Root-side completion callbacks, fired exactly once from Complete().
  std::map<FlowId, CompletionFn> completions_;
  mutable std::map<std::string, PeerId> peer_cache_;
  uint64_t* update_seq_;        // owned by the node
  ExportMemory* export_memory_;  // owned by the node; may be null
};

}  // namespace codb

#endif  // CODB_CORE_UPDATE_MANAGER_H_
