#include "core/flow_executor.h"

namespace codb {

FlowExecutor::FlowExecutor(ThreadPool* pool, NetworkBase* network)
    : pool_(pool), network_(network) {}

FlowExecutor::~FlowExecutor() { Drain(); }

void FlowExecutor::Post(const FlowId& flow, std::function<void()> task) {
  network_->BeginExternalWork();
  bool start = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Strand& strand = strands_[flow];
    strand.queue.push_back(std::move(task));
    if (!strand.running) {
      strand.running = true;
      start = true;
    }
  }
  // With a worker-less pool Submit executes inline, which fully drains the
  // strand before Post returns — the sequential path, unchanged.
  if (start) pool_->Submit([this, flow] { RunStrand(flow); });
}

void FlowExecutor::RunStrand(FlowId flow) {
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = strands_.find(flow);
      Strand& strand = it->second;
      if (strand.queue.empty()) {
        // Erase on drain: an empty strand map is the no-leak invariant
        // the teardown checks assert.
        strands_.erase(it);
        idle_cv_.notify_all();
        return;
      }
      task = std::move(strand.queue.front());
      strand.queue.pop_front();
    }
    task();
    network_->EndExternalWork();
  }
}

size_t FlowExecutor::ActiveFlows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strands_.size();
}

void FlowExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return strands_.empty(); });
}

}  // namespace codb
