#include "core/reliability.h"

#include "util/logging.h"

namespace codb {

ReliableSender::ReliableSender(NetworkBase* network,
                               ReliabilityOptions options, GiveUpFn on_give_up,
                               Counter* retransmits, Counter* give_ups,
                               Counter* retx_bytes)
    : shared_(std::make_shared<Shared>()) {
  shared_->network = network;
  shared_->options = options;
  shared_->on_give_up = std::move(on_give_up);
  shared_->retransmits = retransmits;
  shared_->give_ups = give_ups;
  shared_->retx_bytes = retx_bytes;
}

Status ReliableSender::Send(Message message, const FlowId& flow, bool basic) {
  Shared& s = *shared_;
  if (!s.options.enabled) {
    return s.network->Send(std::move(message));
  }
  Key key;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    uint32_t& next = s.next_seq[{flow, message.dst.value}];
    message.seq = ++next;
    key = Key{flow, message.dst.value, message.seq};
    Pending entry;
    entry.message = message;
    entry.basic = basic;
    entry.next_backoff_us = static_cast<int64_t>(
        static_cast<double>(s.options.retransmit_base_us) *
        s.options.backoff_factor);
    s.pending.emplace(key, std::move(entry));
  }
  Status sent = s.network->Send(std::move(message));
  if (!sent.ok()) {
    // No pipe: nothing to retransmit over. The owner sees the failure and
    // books no deficit, exactly as without reliability. The stamp is
    // rolled back too — receivers deliver contiguous seqs in order, so a
    // never-sent number would be a permanent gap stalling the channel.
    std::lock_guard<std::mutex> lock(s.mutex);
    s.pending.erase(key);
    uint32_t& next = s.next_seq[{flow, key.dst}];
    if (next == key.seq) --next;
    return sent;
  }
  Arm(shared_, key, s.options.retransmit_base_us);
  return sent;
}

void ReliableSender::Arm(const std::shared_ptr<Shared>& shared,
                         const Key& key, int64_t delay_us) {
  std::weak_ptr<Shared> weak = shared;
  shared->network->ScheduleAfter(delay_us, [weak, key] {
    std::shared_ptr<Shared> shared = weak.lock();
    if (shared == nullptr) return;  // owning manager is gone
    Message resend;
    FlowId give_up_flow;
    PeerId give_up_dst;
    bool give_up_basic = false;
    bool gave_up = false;
    int64_t next_delay = 0;
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      auto it = shared->pending.find(key);
      if (it == shared->pending.end()) return;  // receipt arrived
      Pending& entry = it->second;
      if (entry.retries >= shared->options.max_retries) {
        gave_up = true;
        give_up_flow = key.flow;
        give_up_dst = PeerId(key.dst);
        give_up_basic = entry.basic;
        if (shared->give_ups != nullptr) shared->give_ups->Add();
        shared->pending.erase(it);
      } else {
        ++entry.retries;
        resend = entry.message;
        // Mark the copy so the cost ledger charges it to the retransmit
        // class; the entry itself stays unmarked (it was a first send).
        resend.retransmit = true;
        next_delay = entry.next_backoff_us;
        entry.next_backoff_us = static_cast<int64_t>(
            static_cast<double>(entry.next_backoff_us) *
            shared->options.backoff_factor);
        if (shared->retransmits != nullptr) shared->retransmits->Add();
        if (shared->retx_bytes != nullptr) {
          shared->retx_bytes->Add(resend.WireSize());
        }
      }
    }
    if (gave_up) {
      CODB_LOG(kWarning) << "reliability: giving up on "
                         << give_up_flow.ToString() << " seq " << key.seq
                         << " to " << give_up_dst.ToString();
      if (shared->on_give_up) {
        shared->on_give_up(give_up_flow, give_up_dst, give_up_basic);
      }
      return;
    }
    shared->network->Send(std::move(resend));
    Arm(shared, key, next_delay);
  });
}

void ReliableSender::OnDeliveryAck(const FlowId& flow, PeerId from,
                                   uint32_t acked_seq) {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  shared_->pending.erase(Key{flow, from.value, acked_seq});
}

void ReliableSender::OnPeerLost(PeerId peer) {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  for (auto it = shared_->pending.begin(); it != shared_->pending.end();) {
    if (it->first.dst == peer.value) {
      it = shared_->pending.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t ReliableSender::pending_count() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->pending.size();
}

DupFilter::Verdict DupFilter::Check(const FlowId& flow, PeerId src,
                                    uint32_t seq) {
  if (seq == 0) return Verdict::kDeliver;
  Channel& channel = channels_[{flow, src.value}];
  if (seq < channel.next) return Verdict::kDuplicate;
  if (seq > channel.next) {
    // A duplicate of an already-parked arrival needs no second parking.
    return channel.held.count(seq) != 0 ? Verdict::kDuplicate
                                        : Verdict::kHold;
  }
  ++channel.next;
  return Verdict::kDeliver;
}

void DupFilter::Hold(const FlowId& flow, PeerId src, Message message) {
  Channel& channel = channels_[{flow, src.value}];
  channel.held.emplace(message.seq, std::move(message));
}

std::optional<Message> DupFilter::NextReady(const FlowId& flow, PeerId src) {
  auto channel_it = channels_.find({flow, src.value});
  if (channel_it == channels_.end()) return std::nullopt;
  Channel& channel = channel_it->second;
  auto it = channel.held.find(channel.next);
  if (it == channel.held.end()) return std::nullopt;
  Message message = std::move(it->second);
  channel.held.erase(it);
  return message;
}

uint64_t DupFilter::held_count() const {
  uint64_t total = 0;
  for (const auto& [key, channel] : channels_) {
    total += channel.held.size();
  }
  return total;
}

}  // namespace codb
