#include "core/protocol.h"

#include "relation/wire.h"
#include "util/string_util.h"

namespace codb {

namespace {

void WriteFlowId(WireWriter& writer, const FlowId& id) {
  writer.WriteU8(static_cast<uint8_t>(id.scope));
  writer.WriteU32(id.origin);
  writer.WriteU64(id.seq);
}

Result<FlowId> ReadFlowId(WireReader& reader) {
  FlowId id;
  CODB_ASSIGN_OR_RETURN(uint8_t scope, reader.ReadU8());
  if (scope > 1) {
    return Status::ParseError("bad flow scope " + std::to_string(scope));
  }
  id.scope = static_cast<FlowId::Scope>(scope);
  CODB_ASSIGN_OR_RETURN(id.origin, reader.ReadU32());
  CODB_ASSIGN_OR_RETURN(id.seq, reader.ReadU64());
  return id;
}

}  // namespace

std::string FlowId::ToString() const {
  return StrFormat("%s/%u.%llu",
                   scope == Scope::kUpdate ? "update" : "query", origin,
                   static_cast<unsigned long long>(seq));
}

void WriteHeadTuples(WireWriter& writer,
                     const std::vector<HeadTuple>& tuples) {
  writer.WriteU32(static_cast<uint32_t>(tuples.size()));
  for (const HeadTuple& ht : tuples) {
    writer.WriteString(ht.relation);
    writer.WriteTuple(ht.tuple);
  }
}

Result<std::vector<HeadTuple>> ReadHeadTuples(WireReader& reader) {
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  std::vector<HeadTuple> tuples;
  tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HeadTuple ht;
    CODB_ASSIGN_OR_RETURN(ht.relation, reader.ReadString());
    CODB_ASSIGN_OR_RETURN(ht.tuple, reader.ReadTuple());
    tuples.push_back(std::move(ht));
  }
  return tuples;
}

Result<FlowId> PeekFlowId(const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  return ReadFlowId(reader);
}

Message MakeMessage(PeerId src, PeerId dst, MessageType type,
                    std::vector<uint8_t> payload) {
  Message message;
  message.src = src;
  message.dst = dst;
  message.type = type;
  message.payload = std::move(payload);
  return message;
}

// -- UpdateRequestPayload -----------------------------------------------------

std::vector<uint8_t> UpdateRequestPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, update);
  writer.WriteU8(refresh ? 1 : 0);
  writer.WriteU8(incremental ? 1 : 0);
  return writer.Take();
}

Result<UpdateRequestPayload> UpdateRequestPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  UpdateRequestPayload out;
  CODB_ASSIGN_OR_RETURN(out.update, ReadFlowId(reader));
  CODB_ASSIGN_OR_RETURN(uint8_t refresh, reader.ReadU8());
  out.refresh = refresh != 0;
  CODB_ASSIGN_OR_RETURN(uint8_t incremental, reader.ReadU8());
  out.incremental = incremental != 0;
  return out;
}

// -- UpdateDataPayload --------------------------------------------------------

std::vector<uint8_t> UpdateDataPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, update);
  writer.WriteString(rule_id);
  writer.WriteU32List(path);
  WriteHeadTuples(writer, tuples);
  return writer.Take();
}

Result<UpdateDataPayload> UpdateDataPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  UpdateDataPayload out;
  CODB_ASSIGN_OR_RETURN(out.update, ReadFlowId(reader));
  CODB_ASSIGN_OR_RETURN(out.rule_id, reader.ReadString());
  CODB_ASSIGN_OR_RETURN(out.path, reader.ReadU32List());
  CODB_ASSIGN_OR_RETURN(out.tuples, ReadHeadTuples(reader));
  return out;
}

// -- LinkClosedPayload --------------------------------------------------------

std::vector<uint8_t> LinkClosedPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, update);
  writer.WriteString(rule_id);
  return writer.Take();
}

Result<LinkClosedPayload> LinkClosedPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  LinkClosedPayload out;
  CODB_ASSIGN_OR_RETURN(out.update, ReadFlowId(reader));
  CODB_ASSIGN_OR_RETURN(out.rule_id, reader.ReadString());
  return out;
}

// -- AckPayload ---------------------------------------------------------------

std::vector<uint8_t> AckPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, flow);
  return writer.Take();
}

Result<AckPayload> AckPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  AckPayload out;
  CODB_ASSIGN_OR_RETURN(out.flow, ReadFlowId(reader));
  return out;
}

// -- DeliveryAckPayload -------------------------------------------------------

std::vector<uint8_t> DeliveryAckPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, flow);
  writer.WriteU32(acked_seq);
  return writer.Take();
}

Result<DeliveryAckPayload> DeliveryAckPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  DeliveryAckPayload out;
  CODB_ASSIGN_OR_RETURN(out.flow, ReadFlowId(reader));
  CODB_ASSIGN_OR_RETURN(out.acked_seq, reader.ReadU32());
  return out;
}

// -- UpdateCompletePayload ----------------------------------------------------

std::vector<uint8_t> UpdateCompletePayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, update);
  return writer.Take();
}

Result<UpdateCompletePayload> UpdateCompletePayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  UpdateCompletePayload out;
  CODB_ASSIGN_OR_RETURN(out.update, ReadFlowId(reader));
  return out;
}

// -- QueryRequestPayload ------------------------------------------------------

std::vector<uint8_t> QueryRequestPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, query);
  writer.WriteString(rule_id);
  writer.WriteU32List(label);
  return writer.Take();
}

Result<QueryRequestPayload> QueryRequestPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  QueryRequestPayload out;
  CODB_ASSIGN_OR_RETURN(out.query, ReadFlowId(reader));
  CODB_ASSIGN_OR_RETURN(out.rule_id, reader.ReadString());
  CODB_ASSIGN_OR_RETURN(out.label, reader.ReadU32List());
  return out;
}

// -- QueryResultPayload -------------------------------------------------------

std::vector<uint8_t> QueryResultPayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, query);
  writer.WriteString(rule_id);
  WriteHeadTuples(writer, tuples);
  return writer.Take();
}

Result<QueryResultPayload> QueryResultPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  QueryResultPayload out;
  CODB_ASSIGN_OR_RETURN(out.query, ReadFlowId(reader));
  CODB_ASSIGN_OR_RETURN(out.rule_id, reader.ReadString());
  CODB_ASSIGN_OR_RETURN(out.tuples, ReadHeadTuples(reader));
  return out;
}

// -- QueryDonePayload ---------------------------------------------------------

std::vector<uint8_t> QueryDonePayload::Serialize() const {
  WireWriter writer;
  WriteFlowId(writer, query);
  return writer.Take();
}

Result<QueryDonePayload> QueryDonePayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  QueryDonePayload out;
  CODB_ASSIGN_OR_RETURN(out.query, ReadFlowId(reader));
  return out;
}

// -- ConfigBroadcastPayload ---------------------------------------------------

std::vector<uint8_t> ConfigBroadcastPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(version);
  writer.WriteString(config_text);
  return writer.Take();
}

Result<ConfigBroadcastPayload> ConfigBroadcastPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  ConfigBroadcastPayload out;
  CODB_ASSIGN_OR_RETURN(out.version, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.config_text, reader.ReadString());
  return out;
}

// -- StatsRequestPayload ------------------------------------------------------

std::vector<uint8_t> StatsRequestPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(request_id);
  return writer.Take();
}

Result<StatsRequestPayload> StatsRequestPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  StatsRequestPayload out;
  CODB_ASSIGN_OR_RETURN(out.request_id, reader.ReadU64());
  return out;
}

}  // namespace codb
