#include "core/super_peer.h"

#include <algorithm>

#include "core/config_distribution.h"
#include "core/protocol.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace codb {

namespace {

void WriteRuleTraffic(WireWriter& writer,
                      const std::map<std::string, RuleTrafficStats>& stats) {
  writer.WriteU32(static_cast<uint32_t>(stats.size()));
  for (const auto& [rule, traffic] : stats) {
    writer.WriteString(rule);
    writer.WriteU64(traffic.messages);
    writer.WriteU64(traffic.tuples);
    writer.WriteU64(traffic.bytes);
  }
}

Result<std::map<std::string, RuleTrafficStats>> ReadRuleTraffic(
    WireReader& reader) {
  std::map<std::string, RuleTrafficStats> stats;
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(std::string rule, reader.ReadString());
    RuleTrafficStats traffic;
    CODB_ASSIGN_OR_RETURN(traffic.messages, reader.ReadU64());
    CODB_ASSIGN_OR_RETURN(traffic.tuples, reader.ReadU64());
    CODB_ASSIGN_OR_RETURN(traffic.bytes, reader.ReadU64());
    stats.emplace(std::move(rule), traffic);
  }
  return stats;
}

// Shared renderer of the per-update aggregate block: the single-super
// FinalReport and the federated report print updates identically.
std::string RenderAggregates(const std::vector<AggregatedUpdateStats>& aggs) {
  std::string out;
  for (const AggregatedUpdateStats& agg : aggs) {
    out += agg.update.ToString() + ":\n";
    out += StrFormat("  nodes          %zu\n", agg.nodes_reporting);
    out += StrFormat("  total time     %lld us (virtual), %.0f us (wall)\n",
                     static_cast<long long>(agg.total_virtual_us),
                     agg.total_wall_micros);
    out += StrFormat("  data messages  %llu (%s)\n",
                     static_cast<unsigned long long>(agg.data_messages),
                     HumanBytes(agg.data_bytes).c_str());
    out += StrFormat("  tuples added   %llu\n",
                     static_cast<unsigned long long>(agg.tuples_added));
    out += StrFormat("  longest path   %u nodes\n", agg.longest_path_nodes);
    for (const auto& [rule, traffic] : agg.per_rule) {
      out += StrFormat("    rule %-12s %6llu msgs %8llu tuples %10s\n",
                       rule.c_str(),
                       static_cast<unsigned long long>(traffic.messages),
                       static_cast<unsigned long long>(traffic.tuples),
                       HumanBytes(traffic.bytes).c_str());
    }
  }
  return out;
}

}  // namespace

// -- AggregatedUpdateStats ----------------------------------------------------

void AggregatedUpdateStats::Merge(const AggregatedUpdateStats& other) {
  nodes_reporting += other.nodes_reporting;
  total_wall_micros += other.total_wall_micros;
  data_messages += other.data_messages;
  data_bytes += other.data_bytes;
  tuples_added += other.tuples_added;
  longest_path_nodes = std::max(longest_path_nodes,
                                other.longest_path_nodes);
  for (const auto& [rule, traffic] : other.per_rule) {
    RuleTrafficStats& total = per_rule[rule];
    total.messages += traffic.messages;
    total.tuples += traffic.tuples;
    total.bytes += traffic.bytes;
  }
  if (other.min_start_virtual_us >= 0) {
    min_start_virtual_us =
        min_start_virtual_us < 0
            ? other.min_start_virtual_us
            : std::min(min_start_virtual_us, other.min_start_virtual_us);
  }
  if (other.max_complete_virtual_us >= 0) {
    max_complete_virtual_us =
        std::max(max_complete_virtual_us, other.max_complete_virtual_us);
  }
  total_virtual_us =
      (min_start_virtual_us >= 0 && max_complete_virtual_us >= 0)
          ? max_complete_virtual_us - min_start_virtual_us
          : -1;
}

void AggregatedUpdateStats::SerializeTo(WireWriter& writer) const {
  writer.WriteU8(static_cast<uint8_t>(update.scope));
  writer.WriteU32(update.origin);
  writer.WriteU64(update.seq);
  writer.WriteU64(nodes_reporting);
  writer.WriteI64(total_virtual_us);
  writer.WriteI64(min_start_virtual_us);
  writer.WriteI64(max_complete_virtual_us);
  writer.WriteDouble(total_wall_micros);
  writer.WriteU64(data_messages);
  writer.WriteU64(data_bytes);
  writer.WriteU64(tuples_added);
  writer.WriteU32(longest_path_nodes);
  WriteRuleTraffic(writer, per_rule);
}

Result<AggregatedUpdateStats> AggregatedUpdateStats::DeserializeFrom(
    WireReader& reader) {
  AggregatedUpdateStats agg;
  CODB_ASSIGN_OR_RETURN(uint8_t scope, reader.ReadU8());
  if (scope > 1) {
    return Status::ParseError("bad flow scope " + std::to_string(scope));
  }
  agg.update.scope = static_cast<FlowId::Scope>(scope);
  CODB_ASSIGN_OR_RETURN(agg.update.origin, reader.ReadU32());
  CODB_ASSIGN_OR_RETURN(agg.update.seq, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(uint64_t nodes, reader.ReadU64());
  agg.nodes_reporting = static_cast<size_t>(nodes);
  CODB_ASSIGN_OR_RETURN(agg.total_virtual_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(agg.min_start_virtual_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(agg.max_complete_virtual_us, reader.ReadI64());
  CODB_ASSIGN_OR_RETURN(agg.total_wall_micros, reader.ReadDouble());
  CODB_ASSIGN_OR_RETURN(agg.data_messages, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(agg.data_bytes, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(agg.tuples_added, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(agg.longest_path_nodes, reader.ReadU32());
  CODB_ASSIGN_OR_RETURN(agg.per_rule, ReadRuleTraffic(reader));
  return agg;
}

// -- FederationReportPayload --------------------------------------------------

std::vector<uint8_t> FederationReportPayload::Serialize() const {
  WireWriter writer;
  writer.WriteString(super_name);
  writer.WriteU64(nodes_reporting);
  writer.WriteU32(static_cast<uint32_t>(aggregates.size()));
  for (const AggregatedUpdateStats& agg : aggregates) {
    agg.SerializeTo(writer);
  }
  metrics.SerializeTo(writer);
  return writer.Take();
}

Result<FederationReportPayload> FederationReportPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  FederationReportPayload out;
  CODB_ASSIGN_OR_RETURN(out.super_name, reader.ReadString());
  CODB_ASSIGN_OR_RETURN(out.nodes_reporting, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  out.aggregates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(AggregatedUpdateStats agg,
                          AggregatedUpdateStats::DeserializeFrom(reader));
    out.aggregates.push_back(std::move(agg));
  }
  CODB_ASSIGN_OR_RETURN(out.metrics,
                        MetricsSnapshot::DeserializeFrom(reader));
  return out;
}

// -- SuperPeer ----------------------------------------------------------------

SuperPeer::SuperPeer(NetworkBase* network, std::string name)
    : network_(network), name_(std::move(name)) {}

std::unique_ptr<SuperPeer> SuperPeer::Create(NetworkBase* network,
                                             const std::string& name) {
  auto peer = std::unique_ptr<SuperPeer>(new SuperPeer(network, name));
  peer->id_ = network->Join(name, peer.get());
  return peer;
}

SuperPeer::~SuperPeer() { alive_->store(false); }

Status SuperPeer::LoadConfigText(const std::string& text) {
  CODB_ASSIGN_OR_RETURN(NetworkConfig config, NetworkConfig::Parse(text));
  return LoadConfig(std::move(config));
}

Status SuperPeer::LoadConfig(NetworkConfig config) {
  CODB_RETURN_IF_ERROR(config.Validate());
  config_ = std::make_unique<NetworkConfig>(std::move(config));
  return Status::Ok();
}

void SuperPeer::SetRegion(std::vector<std::string> node_names) {
  region_ = std::set<std::string>(node_names.begin(), node_names.end());
}

bool SuperPeer::InRegion(PeerId peer) const {
  if (!IsPresumedAlive(peer)) return false;
  if (region_.empty()) return true;
  return region_.count(network_->NameOf(peer)) > 0;
}

Status SuperPeer::BroadcastConfig() {
  if (config_ == nullptr) {
    return Status::FailedPrecondition("no configuration loaded");
  }
  std::lock_guard<std::mutex> lock(config_mutex_);
  // Bump exactly once, BEFORE any send: a partial failure must not leave
  // half the region on v and a retry re-bump the rest to v+2.
  ++config_version_;
  ++broadcast_generation_;
  config_graph_ = std::make_unique<LinkGraph>(LinkGraph::Build(*config_));
  config_history_.emplace(config_version_, *config_);
  while (config_history_.size() > kConfigHistoryLimit) {
    config_history_.erase(config_history_.begin());
  }
  broadcast_failures_.clear();

  size_t recipients = 0;
  for (PeerId peer : network_->AlivePeers()) {
    if (peer == id_) continue;
    if (!InRegion(peer)) continue;
    const std::string peer_name = network_->NameOf(peer);
    // Only config nodes take part in the distribution protocol; other
    // peers (federation partners, bystanders) have no slice to receive.
    if (config_->FindNode(peer_name) == nullptr) continue;
    Status sent = SendConfigTo(peer, peer_name);
    if (sent.ok()) {
      ++recipients;
    } else {
      // Best-effort: record the failure and keep going — the retransmit
      // sweep (or the peer's own kConfigFetch) heals the gap.
      broadcast_failures_.push_back(peer_name);
      CODB_LOG(kWarning) << name_ << ": config v" << config_version_
                         << " to " << peer_name
                         << " failed: " << sent.ToString()
                         << " (sweep will retry)";
    }
  }
  ScheduleSweep(broadcast_generation_, 0);
  CODB_LOG(kInfo) << name_ << ": distributed configuration v"
                  << config_version_ << " to " << recipients << " peers ("
                  << broadcast_failures_.size() << " failed sends)";
  return Status::Ok();
}

uint64_t SuperPeer::config_version() const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  return config_version_;
}

uint64_t SuperPeer::AckedVersionOf(const std::string& node_name) const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  auto it = acked_.find(node_name);
  return it == acked_.end() ? 0 : it->second.version;
}

std::vector<std::string> SuperPeer::LastBroadcastFailures() const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  return broadcast_failures_;
}

void SuperPeer::SetConfigRetransmit(int64_t period_us, int max_rounds) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  retransmit_period_us_ = period_us;
  max_retransmit_rounds_ = max_rounds;
}

Status SuperPeer::SendConfigTo(PeerId peer, const std::string& peer_name) {
  if (!network_->HasPipe(id_, peer)) {
    CODB_RETURN_IF_ERROR(network_->OpenPipe(id_, peer, LinkProfile::Lan()));
  }
  auto acked = acked_.find(peer_name);
  if (acked != acked_.end() && acked->second.version > 0 &&
      acked->second.version < config_version_) {
    auto base = config_history_.find(acked->second.version);
    if (base != config_history_.end()) {
      NetworkConfig old_slice = base->second.ProjectFor(peer_name);
      // Only patch against a base the peer verifiably holds: if its
      // reported checksum diverged (e.g. a config applied out-of-band),
      // fall through to the full slice instead of ping-ponging fetches.
      if (old_slice.CanonicalChecksum() == acked->second.checksum) {
        ConfigSlice new_slice = MakeSlice(*config_, *config_graph_,
                                          peer_name);
        ConfigDeltaPayload delta;
        delta.patch = DiffSlices(old_slice, new_slice.config);
        delta.patch.from_version = acked->second.version;
        delta.patch.to_version = config_version_;
        delta.cycles = new_slice.cycles;
        return network_->Send(MakeMessage(
            id_, peer, MessageType::kConfigDelta, delta.Serialize()));
      }
    }
  }
  ConfigSlice slice = MakeSlice(*config_, *config_graph_, peer_name);
  ConfigSlicePayload payload;
  payload.version = config_version_;
  payload.config_text = slice.config.Serialize();
  payload.cycles = slice.cycles;
  payload.checksum = slice.checksum;
  return network_->Send(MakeMessage(id_, peer, MessageType::kConfigSlice,
                                    payload.Serialize()));
}

void SuperPeer::ScheduleSweep(uint64_t generation, int round) {
  if (retransmit_period_us_ <= 0 || round >= max_retransmit_rounds_) return;
  std::shared_ptr<std::atomic<bool>> alive = alive_;
  network_->ScheduleAfter(retransmit_period_us_,
                          [this, alive, generation, round] {
                            if (!alive->load()) return;
                            RetransmitSweep(generation, round);
                          });
}

void SuperPeer::RetransmitSweep(uint64_t generation, int round) {
  std::lock_guard<std::mutex> lock(config_mutex_);
  if (generation != broadcast_generation_ || config_ == nullptr) return;
  bool any_laggard = false;
  for (PeerId peer : network_->AlivePeers()) {
    if (peer == id_) continue;
    if (!InRegion(peer)) continue;
    const std::string peer_name = network_->NameOf(peer);
    if (config_->FindNode(peer_name) == nullptr) continue;
    auto acked = acked_.find(peer_name);
    if (acked != acked_.end() && acked->second.version >= config_version_) {
      continue;
    }
    any_laggard = true;
    Status sent = SendConfigTo(peer, peer_name);
    if (!sent.ok()) {
      CODB_LOG(kWarning) << name_ << ": config retransmit to " << peer_name
                         << " failed: " << sent.ToString();
    }
  }
  if (!any_laggard) return;
  if (round + 1 >= max_retransmit_rounds_) {
    CODB_LOG(kWarning) << name_ << ": giving up config retransmits for v"
                       << config_version_ << " after "
                       << max_retransmit_rounds_ << " sweeps";
    return;
  }
  ScheduleSweep(generation, round + 1);
}

void SuperPeer::HandleConfigAck(const Message& message) {
  Result<ConfigAckPayload> ack =
      ConfigAckPayload::Deserialize(message.payload);
  if (!ack.ok()) {
    CODB_LOG(kWarning) << name_ << ": bad config ack: "
                       << ack.status().ToString();
    return;
  }
  std::lock_guard<std::mutex> lock(config_mutex_);
  PeerConfigState& state = acked_[network_->NameOf(message.src)];
  if (ack.value().version >= state.version) {
    state.version = ack.value().version;
    state.checksum = ack.value().checksum;
  }
}

void SuperPeer::HandleConfigFetch(const Message& message) {
  Result<ConfigFetchPayload> fetch =
      ConfigFetchPayload::Deserialize(message.payload);
  if (!fetch.ok()) {
    CODB_LOG(kWarning) << name_ << ": bad config fetch: "
                       << fetch.status().ToString();
    return;
  }
  std::lock_guard<std::mutex> lock(config_mutex_);
  if (config_ == nullptr || config_version_ == 0) return;
  const std::string peer_name = network_->NameOf(message.src);
  if (config_->FindNode(peer_name) == nullptr) return;
  // The fetch states the peer's actual slice, which may be older than the
  // recorded ack (a restarted peer starts over at version 0): make it the
  // record, so the reply — and any later sweep — patches from the truth.
  PeerConfigState& state = acked_[peer_name];
  state.version = fetch.value().have_version;
  state.checksum = fetch.value().have_checksum;
  if (state.version >= config_version_) return;  // already current
  if (config_graph_ == nullptr) {
    config_graph_ = std::make_unique<LinkGraph>(LinkGraph::Build(*config_));
  }
  Status sent = SendConfigTo(message.src, peer_name);
  if (!sent.ok()) {
    CODB_LOG(kWarning) << name_ << ": config fetch reply to " << peer_name
                       << " failed: " << sent.ToString();
  }
}

Status SuperPeer::RequestStats() {
  ++stats_request_id_;
  StatsRequestPayload payload{stats_request_id_};
  // Count the recipients up front: on the threaded runtime the first
  // replies can arrive while later requests are still going out, and the
  // pending counter must never dip to zero early.
  std::vector<PeerId> recipients;
  for (PeerId peer : network_->AlivePeers()) {
    if (peer == id_) continue;
    if (!InRegion(peer)) continue;
    recipients.push_back(peer);
  }
  {
    std::lock_guard<std::mutex> lock(collected_mutex_);
    collected_.clear();
    collected_durability_.clear();
    collected_metrics_.clear();
    awaiting_.clear();
    for (PeerId peer : recipients) awaiting_.insert(peer.value);
  }
  pending_stats_.store(recipients.size());
  for (PeerId peer : recipients) {
    if (!network_->HasPipe(id_, peer)) {
      CODB_RETURN_IF_ERROR(
          network_->OpenPipe(id_, peer, LinkProfile::Lan()));
    }
    Status sent = network_->Send(MakeMessage(
        id_, peer, MessageType::kStatsRequest, payload.Serialize()));
    if (!sent.ok()) {
      bool awaited;
      {
        std::lock_guard<std::mutex> lock(collected_mutex_);
        awaited = awaiting_.erase(peer.value) > 0;
      }
      if (awaited) pending_stats_.fetch_sub(1);
    }
  }
  return Status::Ok();
}

void SuperPeer::EnableProfiling() {
  network_->AttachCostLedger(id_, &cost_);
}

Status SuperPeer::EnableMembership(const MembershipOptions& options) {
  if (membership_ != nullptr) {
    return Status::FailedPrecondition("super-peer '" + name_ +
                                      "' already runs a membership session");
  }
  membership_ = HeartbeatSession::Create(network_, id_, options,
                                         /*metrics=*/nullptr);
  membership_fanout_ = std::make_unique<MembershipFanout>(this);
  membership_->AddListener(membership_fanout_.get());
  membership_->Start();
  return Status::Ok();
}

bool SuperPeer::IsPresumedAlive(PeerId peer) const {
  return membership_ == nullptr || membership_->IsPresumedAlive(peer);
}

void SuperPeer::MembershipFanout::OnPeerEvicted(PeerId peer, int64_t at_us) {
  (void)at_us;
  super->OnPeerEvicted(peer);
}

void SuperPeer::OnPeerEvicted(PeerId peer) {
  bool awaited;
  {
    std::lock_guard<std::mutex> lock(collected_mutex_);
    awaited = awaiting_.erase(peer.value) > 0;
  }
  if (awaited) {
    // The in-flight collection will never hear from this peer; release
    // its slot so CollectionComplete() reflects the surviving topology.
    pending_stats_.fetch_sub(1);
  }
  CODB_LOG(kInfo) << name_ << ": evicted " << network_->NameOf(peer)
                  << (awaited ? " (released pending stats slot)" : "");
}

void SuperPeer::AddFederationPeer(PeerId super) {
  federation_peers_.insert(super.value);
}

Status SuperPeer::ShareWithFederation() {
  FederationReportPayload report;
  report.super_name = name_;
  {
    std::lock_guard<std::mutex> lock(collected_mutex_);
    report.nodes_reporting = collected_.size();
  }
  report.aggregates = Aggregate();
  report.metrics = MergedMetrics();
  std::vector<uint8_t> payload = report.Serialize();

  for (uint32_t raw : federation_peers_) {
    PeerId super(raw);
    if (!network_->IsAlive(super)) continue;
    if (!network_->HasPipe(id_, super)) {
      CODB_RETURN_IF_ERROR(
          network_->OpenPipe(id_, super, LinkProfile::Lan()));
    }
    CODB_RETURN_IF_ERROR(network_->Send(MakeMessage(
        id_, super, MessageType::kFederationReport, payload)));
  }
  return Status::Ok();
}

bool SuperPeer::FederationComplete() const {
  std::lock_guard<std::mutex> lock(collected_mutex_);
  for (uint32_t super : federation_peers_) {
    if (federation_reports_.count(super) == 0) return false;
  }
  return true;
}

void SuperPeer::HandleMessage(const Message& message) {
  switch (message.type) {
    case MessageType::kHeartbeat: {
      if (membership_ != nullptr) {
        membership_->HandleBeacon(message);
      } else {
        // Ack-reflex: even without a session of its own the super-peer
        // answers beacons, so membership-enabled nodes never suspect it.
        Result<Message> ack = MakeHeartbeatAck(message, id_,
                                               /*incarnation=*/1,
                                               network_->now_us());
        if (ack.ok()) {
          Status ignored = network_->Send(std::move(ack).value());
          (void)ignored;
        }
      }
      return;
    }
    case MessageType::kHeartbeatAck:
      if (membership_ != nullptr) membership_->HandleAck(message);
      return;
    case MessageType::kFederationReport: {
      Result<FederationReportPayload> report =
          FederationReportPayload::Deserialize(message.payload);
      if (!report.ok()) {
        CODB_LOG(kWarning) << name_ << ": bad federation report: "
                           << report.status().ToString();
        return;
      }
      std::lock_guard<std::mutex> lock(collected_mutex_);
      federation_reports_[message.src.value] = std::move(report.value());
      return;
    }
    case MessageType::kStatsReport: {
      Result<StatsBundle> bundle =
          StatisticsModule::DeserializeBundle(message.payload);
      if (!bundle.ok()) {
        CODB_LOG(kWarning) << name_ << ": bad stats report: "
                           << bundle.status().ToString();
        return;
      }
      bool awaited;
      {
        std::lock_guard<std::mutex> lock(collected_mutex_);
        const std::string node = network_->NameOf(message.src);
        collected_[node] = std::move(bundle.value().reports);
        if (bundle.value().durability.Any()) {
          collected_durability_[node] = bundle.value().durability;
        }
        if (!bundle.value().metrics.empty()) {
          collected_metrics_[node] = std::move(bundle.value().metrics);
        }
        // A report only releases a pending slot if this collection was
        // still waiting on the sender: duplicates and post-eviction
        // stragglers must not drive the counter below zero.
        awaited = awaiting_.erase(message.src.value) > 0;
      }
      if (awaited) {
        size_t pending = pending_stats_.load();
        while (pending > 0 &&
               !pending_stats_.compare_exchange_weak(pending, pending - 1)) {
        }
      }
      return;
    }
    case MessageType::kConfigAck:
      HandleConfigAck(message);
      return;
    case MessageType::kConfigFetch:
      HandleConfigFetch(message);
      return;
    case MessageType::kAdvertisement:
      // The super-peer is pipe-connected to everyone; nothing to learn.
      return;
    default:
      // The super-peer does not take part in updates or queries.
      CODB_LOG(kDebug) << name_ << ": ignoring "
                       << MessageTypeName(message.type);
      return;
  }
}

std::vector<AggregatedUpdateStats> SuperPeer::Aggregate() const {
  std::map<FlowId, AggregatedUpdateStats> by_update;
  std::map<FlowId, int64_t> min_start;
  std::map<FlowId, int64_t> max_complete;

  for (const auto& [node, reports] : collected_) {
    for (const UpdateReport& report : reports) {
      if (report.update.scope != FlowId::Scope::kUpdate) continue;
      AggregatedUpdateStats& agg = by_update[report.update];
      agg.update = report.update;
      ++agg.nodes_reporting;
      agg.total_wall_micros += report.wall_micros;
      agg.data_messages += report.data_messages_received;
      agg.data_bytes += report.data_bytes_received;
      agg.tuples_added += report.tuples_added;
      agg.longest_path_nodes =
          std::max(agg.longest_path_nodes, report.longest_path_nodes);
      for (const auto& [rule, traffic] : report.received_per_rule) {
        RuleTrafficStats& total = agg.per_rule[rule];
        total.messages += traffic.messages;
        total.tuples += traffic.tuples;
        total.bytes += traffic.bytes;
      }
      if (report.start_virtual_us >= 0) {
        auto [it, inserted] =
            min_start.emplace(report.update, report.start_virtual_us);
        if (!inserted) {
          it->second = std::min(it->second, report.start_virtual_us);
        }
      }
      if (report.complete_virtual_us >= 0) {
        auto [it, inserted] =
            max_complete.emplace(report.update, report.complete_virtual_us);
        if (!inserted) {
          it->second = std::max(it->second, report.complete_virtual_us);
        }
      }
    }
  }

  std::vector<AggregatedUpdateStats> out;
  for (auto& [update, agg] : by_update) {
    auto start = min_start.find(update);
    auto complete = max_complete.find(update);
    if (start != min_start.end()) {
      agg.min_start_virtual_us = start->second;
    }
    if (complete != max_complete.end()) {
      agg.max_complete_virtual_us = complete->second;
    }
    if (start != min_start.end() && complete != max_complete.end()) {
      agg.total_virtual_us = complete->second - start->second;
    }
    out.push_back(std::move(agg));
  }
  return out;
}

std::vector<AggregatedUpdateStats> SuperPeer::FederatedAggregate() const {
  std::vector<AggregatedUpdateStats> own = Aggregate();
  std::map<FlowId, AggregatedUpdateStats> by_update;
  for (AggregatedUpdateStats& agg : own) {
    by_update.emplace(agg.update, std::move(agg));
  }
  {
    std::lock_guard<std::mutex> lock(collected_mutex_);
    for (const auto& [super, report] : federation_reports_) {
      for (const AggregatedUpdateStats& agg : report.aggregates) {
        auto [it, inserted] = by_update.emplace(agg.update, agg);
        if (!inserted) it->second.Merge(agg);
      }
    }
  }
  std::vector<AggregatedUpdateStats> out;
  out.reserve(by_update.size());
  for (auto& [update, agg] : by_update) out.push_back(std::move(agg));
  return out;
}

MetricsSnapshot SuperPeer::FederatedMetrics() const {
  MetricsSnapshot merged = MergedMetrics();
  std::lock_guard<std::mutex> lock(collected_mutex_);
  for (const auto& [super, report] : federation_reports_) {
    merged.Merge(report.metrics);
  }
  return merged;
}

std::string SuperPeer::FinalReport() const {
  std::string out = "===== final statistical report (" +
                    std::to_string(collected_.size()) + " nodes) =====\n";
  out += RenderAggregates(Aggregate());
  if (!collected_durability_.empty()) {
    DurabilityStats total;
    for (const auto& [node, stats] : collected_durability_) {
      total.Add(stats);
    }
    out += StrFormat("durability (%zu nodes):\n",
                     collected_durability_.size());
    out += total.Render();
  }
  MetricsSnapshot metrics = MergedMetrics();
  metrics.Merge(cost_.Snapshot());
  if (!collected_metrics_.empty()) {
    out += StrFormat("metrics (%zu nodes):\n", collected_metrics_.size());
    out += metrics.Render();
  }
  std::string cost = RenderCostBreakdown(metrics);
  if (!cost.empty()) {
    out += "wire cost (bytes by class):\n";
    out += cost;
  }
  return out;
}

std::string SuperPeer::FederatedReport() const {
  size_t nodes = collected_.size();
  size_t supers = 1;
  {
    std::lock_guard<std::mutex> lock(collected_mutex_);
    for (const auto& [super, report] : federation_reports_) {
      nodes += report.nodes_reporting;
      ++supers;
    }
  }
  std::string out = StrFormat(
      "===== federated statistical report (%zu nodes, %zu super-peers) "
      "=====\n",
      nodes, supers);
  out += RenderAggregates(FederatedAggregate());
  MetricsSnapshot metrics = FederatedMetrics();
  metrics.Merge(cost_.Snapshot());
  if (!metrics.empty()) {
    out += "metrics (federated):\n";
    out += metrics.Render();
  }
  std::string cost = RenderCostBreakdown(metrics);
  if (!cost.empty()) {
    out += "wire cost (bytes by class):\n";
    out += cost;
  }
  return out;
}

MetricsSnapshot SuperPeer::MergedMetrics() const {
  MetricsSnapshot merged;
  for (const auto& [node, snapshot] : collected_metrics_) {
    merged.Merge(snapshot);
  }
  return merged;
}

}  // namespace codb
