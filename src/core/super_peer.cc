#include "core/super_peer.h"

#include <algorithm>

#include "core/protocol.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace codb {

SuperPeer::SuperPeer(NetworkBase* network, std::string name)
    : network_(network), name_(std::move(name)) {}

std::unique_ptr<SuperPeer> SuperPeer::Create(NetworkBase* network,
                                             const std::string& name) {
  auto peer = std::unique_ptr<SuperPeer>(new SuperPeer(network, name));
  peer->id_ = network->Join(name, peer.get());
  return peer;
}

Status SuperPeer::LoadConfigText(const std::string& text) {
  CODB_ASSIGN_OR_RETURN(NetworkConfig config, NetworkConfig::Parse(text));
  return LoadConfig(std::move(config));
}

Status SuperPeer::LoadConfig(NetworkConfig config) {
  CODB_RETURN_IF_ERROR(config.Validate());
  config_ = std::make_unique<NetworkConfig>(std::move(config));
  return Status::Ok();
}

Status SuperPeer::BroadcastConfig() {
  if (config_ == nullptr) {
    return Status::FailedPrecondition("no configuration loaded");
  }
  ++config_version_;
  ConfigBroadcastPayload payload;
  payload.version = config_version_;
  payload.config_text = config_->Serialize();

  for (PeerId peer : network_->AlivePeers()) {
    if (peer == id_) continue;
    if (!network_->HasPipe(id_, peer)) {
      CODB_RETURN_IF_ERROR(
          network_->OpenPipe(id_, peer, LinkProfile::Lan()));
    }
    CODB_RETURN_IF_ERROR(network_->Send(MakeMessage(
        id_, peer, MessageType::kConfigBroadcast, payload.Serialize())));
  }
  CODB_LOG(kInfo) << name_ << ": broadcast configuration v"
                  << config_version_;
  return Status::Ok();
}

Status SuperPeer::RequestStats() {
  {
    std::lock_guard<std::mutex> lock(collected_mutex_);
    collected_.clear();
    collected_durability_.clear();
    collected_metrics_.clear();
  }
  ++stats_request_id_;
  StatsRequestPayload payload{stats_request_id_};
  // Count the recipients up front: on the threaded runtime the first
  // replies can arrive while later requests are still going out, and the
  // pending counter must never dip to zero early.
  std::vector<PeerId> recipients;
  for (PeerId peer : network_->AlivePeers()) {
    if (!(peer == id_)) recipients.push_back(peer);
  }
  pending_stats_.store(recipients.size());
  size_t failed = 0;
  for (PeerId peer : recipients) {
    if (!network_->HasPipe(id_, peer)) {
      CODB_RETURN_IF_ERROR(
          network_->OpenPipe(id_, peer, LinkProfile::Lan()));
    }
    Status sent = network_->Send(MakeMessage(
        id_, peer, MessageType::kStatsRequest, payload.Serialize()));
    if (!sent.ok()) ++failed;
  }
  pending_stats_.fetch_sub(failed);
  return Status::Ok();
}

void SuperPeer::HandleMessage(const Message& message) {
  switch (message.type) {
    case MessageType::kStatsReport: {
      Result<StatsBundle> bundle =
          StatisticsModule::DeserializeBundle(message.payload);
      if (!bundle.ok()) {
        CODB_LOG(kWarning) << name_ << ": bad stats report: "
                           << bundle.status().ToString();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(collected_mutex_);
        const std::string node = network_->NameOf(message.src);
        collected_[node] = std::move(bundle.value().reports);
        if (bundle.value().durability.Any()) {
          collected_durability_[node] = bundle.value().durability;
        }
        if (!bundle.value().metrics.empty()) {
          collected_metrics_[node] = std::move(bundle.value().metrics);
        }
      }
      size_t pending = pending_stats_.load();
      while (pending > 0 &&
             !pending_stats_.compare_exchange_weak(pending, pending - 1)) {
      }
      return;
    }
    case MessageType::kAdvertisement:
      // The super-peer is pipe-connected to everyone; nothing to learn.
      return;
    default:
      // The super-peer does not take part in updates or queries.
      CODB_LOG(kDebug) << name_ << ": ignoring "
                       << MessageTypeName(message.type);
      return;
  }
}

std::vector<AggregatedUpdateStats> SuperPeer::Aggregate() const {
  std::map<FlowId, AggregatedUpdateStats> by_update;
  std::map<FlowId, int64_t> min_start;
  std::map<FlowId, int64_t> max_complete;

  for (const auto& [node, reports] : collected_) {
    for (const UpdateReport& report : reports) {
      if (report.update.scope != FlowId::Scope::kUpdate) continue;
      AggregatedUpdateStats& agg = by_update[report.update];
      agg.update = report.update;
      ++agg.nodes_reporting;
      agg.total_wall_micros += report.wall_micros;
      agg.data_messages += report.data_messages_received;
      agg.data_bytes += report.data_bytes_received;
      agg.tuples_added += report.tuples_added;
      agg.longest_path_nodes =
          std::max(agg.longest_path_nodes, report.longest_path_nodes);
      for (const auto& [rule, traffic] : report.received_per_rule) {
        RuleTrafficStats& total = agg.per_rule[rule];
        total.messages += traffic.messages;
        total.tuples += traffic.tuples;
        total.bytes += traffic.bytes;
      }
      if (report.start_virtual_us >= 0) {
        auto [it, inserted] =
            min_start.emplace(report.update, report.start_virtual_us);
        if (!inserted) {
          it->second = std::min(it->second, report.start_virtual_us);
        }
      }
      if (report.complete_virtual_us >= 0) {
        auto [it, inserted] =
            max_complete.emplace(report.update, report.complete_virtual_us);
        if (!inserted) {
          it->second = std::max(it->second, report.complete_virtual_us);
        }
      }
    }
  }

  std::vector<AggregatedUpdateStats> out;
  for (auto& [update, agg] : by_update) {
    auto start = min_start.find(update);
    auto complete = max_complete.find(update);
    if (start != min_start.end() && complete != max_complete.end()) {
      agg.total_virtual_us = complete->second - start->second;
    }
    out.push_back(std::move(agg));
  }
  return out;
}

std::string SuperPeer::FinalReport() const {
  std::string out = "===== final statistical report (" +
                    std::to_string(collected_.size()) + " nodes) =====\n";
  for (const AggregatedUpdateStats& agg : Aggregate()) {
    out += agg.update.ToString() + ":\n";
    out += StrFormat("  nodes          %zu\n", agg.nodes_reporting);
    out += StrFormat("  total time     %lld us (virtual), %.0f us (wall)\n",
                     static_cast<long long>(agg.total_virtual_us),
                     agg.total_wall_micros);
    out += StrFormat("  data messages  %llu (%s)\n",
                     static_cast<unsigned long long>(agg.data_messages),
                     HumanBytes(agg.data_bytes).c_str());
    out += StrFormat("  tuples added   %llu\n",
                     static_cast<unsigned long long>(agg.tuples_added));
    out += StrFormat("  longest path   %u nodes\n", agg.longest_path_nodes);
    for (const auto& [rule, traffic] : agg.per_rule) {
      out += StrFormat("    rule %-12s %6llu msgs %8llu tuples %10s\n",
                       rule.c_str(),
                       static_cast<unsigned long long>(traffic.messages),
                       static_cast<unsigned long long>(traffic.tuples),
                       HumanBytes(traffic.bytes).c_str());
    }
  }
  if (!collected_durability_.empty()) {
    DurabilityStats total;
    for (const auto& [node, stats] : collected_durability_) {
      total.Add(stats);
    }
    out += StrFormat("durability (%zu nodes):\n",
                     collected_durability_.size());
    out += total.Render();
  }
  if (!collected_metrics_.empty()) {
    out += StrFormat("metrics (%zu nodes):\n", collected_metrics_.size());
    out += MergedMetrics().Render();
  }
  return out;
}

MetricsSnapshot SuperPeer::MergedMetrics() const {
  MetricsSnapshot merged;
  for (const auto& [node, snapshot] : collected_metrics_) {
    merged.Merge(snapshot);
  }
  return merged;
}

}  // namespace codb
