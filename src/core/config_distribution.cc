#include "core/config_distribution.h"

#include <algorithm>
#include <map>

#include "relation/wire.h"

namespace codb {

ConfigSlice MakeSlice(const NetworkConfig& config, const LinkGraph& graph,
                      const std::string& node_name) {
  ConfigSlice slice;
  slice.config = config.ProjectFor(node_name);
  for (const CoordinationRule& rule : slice.config.rules()) {
    if (graph.IsCyclic(rule.id())) {
      slice.cycles.cyclic_rules.push_back(rule.id());
    }
  }
  slice.cycles.has_any_cycle = graph.HasAnyCycle();
  slice.checksum = slice.config.CanonicalChecksum();
  return slice;
}

ConfigPatch DiffSlices(const NetworkConfig& from, const NetworkConfig& to) {
  ConfigPatch patch;
  patch.pre_checksum = from.CanonicalChecksum();
  patch.post_checksum = to.CanonicalChecksum();

  for (const NodeDecl& node : from.nodes()) {
    if (to.FindNode(node.name) == nullptr) {
      patch.removed_nodes.push_back(node.name);
    }
  }
  for (const NodeDecl& node : to.nodes()) {
    const NodeDecl* old = from.FindNode(node.name);
    if (old == nullptr || NodeDeclText(*old) != NodeDeclText(node)) {
      patch.upserted_nodes.push_back(NodeDeclText(node));
    }
  }
  for (const CoordinationRule& rule : from.rules()) {
    if (to.FindRule(rule.id()) == nullptr) {
      patch.removed_rules.push_back(rule.id());
    }
  }
  for (const CoordinationRule& rule : to.rules()) {
    const CoordinationRule* old = from.FindRule(rule.id());
    if (old == nullptr || RuleText(*old) != RuleText(rule)) {
      patch.upserted_rules.push_back(RuleText(rule));
    }
  }
  return patch;
}

Result<NetworkConfig> ApplyPatch(const NetworkConfig& base,
                                 const ConfigPatch& patch) {
  if (base.CanonicalChecksum() != patch.pre_checksum) {
    return Status::FailedPrecondition(
        "patch base checksum mismatch: local config diverged from the "
        "sender's record");
  }
  NetworkConfig config = base;
  // Rules first: a removed node's incident rules must go before the node
  // (and replaced rules must not dangle against removed declarations).
  for (const std::string& rule_id : patch.removed_rules) {
    CODB_RETURN_IF_ERROR(config.RemoveRule(rule_id));
  }
  for (const std::string& name : patch.removed_nodes) {
    CODB_RETURN_IF_ERROR(config.RemoveNode(name));
  }
  for (const std::string& text : patch.upserted_nodes) {
    CODB_ASSIGN_OR_RETURN(NodeDecl decl, ParseNodeDeclText(text));
    config.UpsertNode(std::move(decl));
  }
  for (const std::string& line : patch.upserted_rules) {
    CODB_ASSIGN_OR_RETURN(CoordinationRule rule, ParseRuleText(line));
    Status removed = config.RemoveRule(rule.id());
    (void)removed;  // absent on pure additions
    CODB_RETURN_IF_ERROR(config.AddRule(std::move(rule)));
  }
  if (config.CanonicalChecksum() != patch.post_checksum) {
    return Status::Internal(
        "patched config misses the post-state checksum");
  }
  CODB_RETURN_IF_ERROR(config.Validate());
  return config;
}

// -- wire payloads -----------------------------------------------------------

namespace {

void WriteCycleClosure(WireWriter& writer, const CycleClosure& cycles) {
  writer.WriteStringList(cycles.cyclic_rules);
  writer.WriteU8(cycles.has_any_cycle ? 1 : 0);
}

Result<CycleClosure> ReadCycleClosure(WireReader& reader) {
  CycleClosure cycles;
  CODB_ASSIGN_OR_RETURN(cycles.cyclic_rules, reader.ReadStringList());
  CODB_ASSIGN_OR_RETURN(uint8_t any, reader.ReadU8());
  cycles.has_any_cycle = any != 0;
  return cycles;
}

}  // namespace

std::vector<uint8_t> ConfigSlicePayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(version);
  writer.WriteString(config_text);
  WriteCycleClosure(writer, cycles);
  writer.WriteU64(checksum);
  return writer.Take();
}

Result<ConfigSlicePayload> ConfigSlicePayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  ConfigSlicePayload out;
  CODB_ASSIGN_OR_RETURN(out.version, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.config_text, reader.ReadString());
  CODB_ASSIGN_OR_RETURN(out.cycles, ReadCycleClosure(reader));
  CODB_ASSIGN_OR_RETURN(out.checksum, reader.ReadU64());
  return out;
}

std::vector<uint8_t> ConfigDeltaPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(patch.from_version);
  writer.WriteU64(patch.to_version);
  writer.WriteU64(patch.pre_checksum);
  writer.WriteU64(patch.post_checksum);
  writer.WriteStringList(patch.removed_nodes);
  writer.WriteStringList(patch.upserted_nodes);
  writer.WriteStringList(patch.removed_rules);
  writer.WriteStringList(patch.upserted_rules);
  WriteCycleClosure(writer, cycles);
  return writer.Take();
}

Result<ConfigDeltaPayload> ConfigDeltaPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  ConfigDeltaPayload out;
  CODB_ASSIGN_OR_RETURN(out.patch.from_version, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.patch.to_version, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.patch.pre_checksum, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.patch.post_checksum, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.patch.removed_nodes, reader.ReadStringList());
  CODB_ASSIGN_OR_RETURN(out.patch.upserted_nodes, reader.ReadStringList());
  CODB_ASSIGN_OR_RETURN(out.patch.removed_rules, reader.ReadStringList());
  CODB_ASSIGN_OR_RETURN(out.patch.upserted_rules, reader.ReadStringList());
  CODB_ASSIGN_OR_RETURN(out.cycles, ReadCycleClosure(reader));
  return out;
}

std::vector<uint8_t> ConfigFetchPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(have_version);
  writer.WriteU64(have_checksum);
  return writer.Take();
}

Result<ConfigFetchPayload> ConfigFetchPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  ConfigFetchPayload out;
  CODB_ASSIGN_OR_RETURN(out.have_version, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.have_checksum, reader.ReadU64());
  return out;
}

std::vector<uint8_t> ConfigAckPayload::Serialize() const {
  WireWriter writer;
  writer.WriteU64(version);
  writer.WriteU64(checksum);
  return writer.Take();
}

Result<ConfigAckPayload> ConfigAckPayload::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  ConfigAckPayload out;
  CODB_ASSIGN_OR_RETURN(out.version, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(out.checksum, reader.ReadU64());
  return out;
}

}  // namespace codb
