#include "core/termination.h"

#include "util/logging.h"

namespace codb {

void TerminationDetector::StartRoot(const FlowId& flow,
                                    TerminatedFn on_terminated) {
  FlowState& state = flows_[flow];
  state.engaged = true;
  state.root = true;
  state.on_terminated = std::move(on_terminated);
}

void TerminationDetector::OnBasicMessage(const FlowId& flow, PeerId src) {
  FlowState& state = flows_[flow];
  if (!state.engaged) {
    state.engaged = true;
    state.parent = src;
    state.parent_ack_pending = true;
  } else {
    send_ack_(src, flow);
  }
}

void TerminationDetector::OnSent(const FlowId& flow, PeerId dst) {
  FlowState& state = flows_[flow];
  ++state.deficit;
  ++state.deficit_by_peer[dst.value];
}

void TerminationDetector::OnAck(const FlowId& flow, PeerId from) {
  auto it = flows_.find(flow);
  if (it == flows_.end() || it->second.deficit == 0) {
    CODB_LOG(kWarning) << "termination: stray ack for " << flow.ToString();
    return;
  }
  // The flow-wide deficit only moves together with the sender's bucket:
  // an ack that cannot be matched to an outstanding message towards
  // `from` (duplicate, misrouted, or already cancelled by OnPeerLost)
  // must not drain the total past the real outstanding count, or the
  // root would fire termination early.
  auto bucket = it->second.deficit_by_peer.find(from.value);
  if (bucket == it->second.deficit_by_peer.end() || bucket->second == 0) {
    CODB_LOG(kWarning) << "termination: unmatched ack from "
                       << from.ToString() << " for " << flow.ToString();
    return;
  }
  --bucket->second;
  --it->second.deficit;
}

void TerminationDetector::CancelOne(const FlowId& flow, PeerId dst) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  auto bucket = it->second.deficit_by_peer.find(dst.value);
  if (bucket == it->second.deficit_by_peer.end() || bucket->second == 0) {
    return;
  }
  --bucket->second;
  if (it->second.deficit > 0) --it->second.deficit;
}

void TerminationDetector::Abort(const FlowId& flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return;
  FlowState& state = it->second;
  state.deficit = 0;
  state.deficit_by_peer.clear();
  if (state.root) {
    // Mark terminated without firing the callback: the caller reports the
    // abort through its own channel, and a late deficit drain must not
    // fire on_terminated a second time.
    state.terminated = true;
    return;
  }
  if (state.parent_ack_pending) {
    send_ack_(state.parent, flow);
    state.parent_ack_pending = false;
  }
  state.engaged = false;
  state.parent = PeerId();
}

void TerminationDetector::OnPeerLost(PeerId peer) {
  for (auto& [flow, state] : flows_) {
    auto it = state.deficit_by_peer.find(peer.value);
    if (it != state.deficit_by_peer.end()) {
      uint64_t cancelled = it->second;
      state.deficit -= cancelled < state.deficit ? cancelled : state.deficit;
      state.deficit_by_peer.erase(it);
    }
    if (state.engaged && !state.root && state.parent == peer) {
      // Orphaned: the deferred ack has nowhere to go; forget it, and
      // clear the parent so a later message from the same peer id is a
      // fresh engagement rather than a stale orphan.
      state.parent_ack_pending = false;
      state.parent = PeerId();
      if (state.deficit == 0) {
        // Nothing outstanding either: disengage now instead of waiting
        // for the next MaybeQuiesce that may never be driven.
        state.engaged = false;
        state.deficit_by_peer.clear();
      }
    }
  }
}

void TerminationDetector::MaybeQuiesce() {
  for (auto& [flow, state] : flows_) {
    if (state.engaged && state.deficit == 0) {
      Quiesce(flow, state);
    }
  }
}

void TerminationDetector::Quiesce(const FlowId& flow, FlowState& state) {
  if (state.root) {
    if (!state.terminated) {
      state.terminated = true;
      if (state.on_terminated) state.on_terminated(flow);
    }
    return;
  }
  if (state.parent_ack_pending) {
    send_ack_(state.parent, flow);
    state.parent_ack_pending = false;
  }
  state.engaged = false;
  state.deficit_by_peer.clear();
}

bool TerminationDetector::IsEngaged(const FlowId& flow) const {
  auto it = flows_.find(flow);
  return it != flows_.end() && it->second.engaged;
}

uint64_t TerminationDetector::DeficitOf(const FlowId& flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.deficit;
}

}  // namespace codb
