#include "core/link_graph.h"

#include <algorithm>
#include <functional>

namespace codb {

const std::vector<std::string> LinkGraph::kEmpty = {};

LinkGraph LinkGraph::Build(const NetworkConfig& config) {
  LinkGraph graph = BuildEdges(config);
  graph.ComputeSccs();
  return graph;
}

LinkGraph LinkGraph::BuildProjected(
    const NetworkConfig& slice, const std::set<std::string>& cyclic_rules,
    bool has_any_cycle) {
  LinkGraph graph = BuildEdges(slice);
  graph.cyclic_.assign(graph.rule_ids_.size(), false);
  for (size_t i = 0; i < graph.rule_ids_.size(); ++i) {
    if (cyclic_rules.count(graph.rule_ids_[i]) > 0) graph.cyclic_[i] = true;
  }
  graph.has_any_cycle_ = has_any_cycle;
  return graph;
}

LinkGraph LinkGraph::BuildEdges(const NetworkConfig& config) {
  LinkGraph graph;
  for (const CoordinationRule& rule : config.rules()) {
    graph.index_[rule.id()] = static_cast<int>(graph.rule_ids_.size());
    graph.rule_ids_.push_back(rule.id());
  }
  size_t n = graph.rule_ids_.size();
  graph.successors_.resize(n);
  graph.predecessors_.resize(n);
  graph.successor_names_.resize(n);
  graph.predecessor_names_.resize(n);

  // Edge o -> i iff the importer of o is the exporter of i and o's head
  // writes a relation read by i's body.
  for (const CoordinationRule& o : config.rules()) {
    std::vector<std::string> head_rels = o.HeadRelations();
    for (const CoordinationRule& i : config.rules()) {
      if (o.importer() != i.exporter()) continue;
      std::vector<std::string> body_rels = i.BodyRelations();
      bool overlaps = false;
      for (const std::string& h : head_rels) {
        if (std::find(body_rels.begin(), body_rels.end(), h) !=
            body_rels.end()) {
          overlaps = true;
          break;
        }
      }
      if (!overlaps) continue;
      int from = graph.index_.at(o.id());
      int to = graph.index_.at(i.id());
      graph.successors_[static_cast<size_t>(from)].push_back(to);
      graph.predecessors_[static_cast<size_t>(to)].push_back(from);
      graph.successor_names_[static_cast<size_t>(from)].push_back(i.id());
      graph.predecessor_names_[static_cast<size_t>(to)].push_back(o.id());
    }
  }
  graph.cyclic_.assign(graph.rule_ids_.size(), false);
  return graph;
}

void LinkGraph::ComputeSccs() {
  // Iterative Tarjan SCC.
  size_t n = rule_ids_.size();
  cyclic_.assign(n, false);
  std::vector<int> dfs_index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int counter = 0;

  struct Frame {
    int node;
    size_t next_child;
  };

  for (size_t root = 0; root < n; ++root) {
    if (dfs_index[root] != -1) continue;
    std::vector<Frame> frames{{static_cast<int>(root), 0}};
    dfs_index[root] = low[root] = counter++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      size_t u = static_cast<size_t>(frame.node);
      if (frame.next_child < successors_[u].size()) {
        int v = successors_[u][frame.next_child++];
        size_t vs = static_cast<size_t>(v);
        if (dfs_index[vs] == -1) {
          dfs_index[vs] = low[vs] = counter++;
          stack.push_back(v);
          on_stack[vs] = true;
          frames.push_back({v, 0});
        } else if (on_stack[vs]) {
          low[u] = std::min(low[u], dfs_index[vs]);
        }
      } else {
        if (low[u] == dfs_index[u]) {
          // Pop one SCC.
          std::vector<int> component;
          for (;;) {
            int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            component.push_back(w);
            if (w == frame.node) break;
          }
          bool is_cycle = component.size() > 1;
          if (!is_cycle) {
            // Self-loop?
            int w = component[0];
            const std::vector<int>& succ =
                successors_[static_cast<size_t>(w)];
            is_cycle = std::find(succ.begin(), succ.end(), w) != succ.end();
          }
          if (is_cycle) {
            has_any_cycle_ = true;
            for (int w : component) cyclic_[static_cast<size_t>(w)] = true;
          }
        }
        int u_node = frame.node;
        frames.pop_back();
        if (!frames.empty()) {
          size_t parent = static_cast<size_t>(frames.back().node);
          low[parent] = std::min(low[parent],
                                 low[static_cast<size_t>(u_node)]);
        }
      }
    }
  }
}

const std::vector<std::string>& LinkGraph::RelevantFor(
    const std::string& rule_id) const {
  auto it = index_.find(rule_id);
  if (it == index_.end()) return kEmpty;
  return predecessor_names_[static_cast<size_t>(it->second)];
}

const std::vector<std::string>& LinkGraph::DependentOn(
    const std::string& rule_id) const {
  auto it = index_.find(rule_id);
  if (it == index_.end()) return kEmpty;
  return successor_names_[static_cast<size_t>(it->second)];
}

bool LinkGraph::IsCyclic(const std::string& rule_id) const {
  auto it = index_.find(rule_id);
  if (it == index_.end()) return false;
  return cyclic_[static_cast<size_t>(it->second)];
}

int LinkGraph::LongestSimplePath(size_t max_explored) const {
  size_t n = rule_ids_.size();
  int best = 0;
  size_t explored = 0;
  std::vector<bool> visited(n, false);

  std::function<void(size_t, int)> dfs = [&](size_t u, int depth) {
    if (explored >= max_explored) return;
    ++explored;
    best = std::max(best, depth);
    for (int v : successors_[u]) {
      size_t vs = static_cast<size_t>(v);
      if (!visited[vs]) {
        visited[vs] = true;
        dfs(vs, depth + 1);
        visited[vs] = false;
      }
    }
  };

  for (size_t start = 0; start < n; ++start) {
    visited[start] = true;
    dfs(start, 0);
    visited[start] = false;
  }
  return best;
}

std::string LinkGraph::ToString() const {
  std::string out = "link graph (" + std::to_string(rule_ids_.size()) +
                    " links" + (has_any_cycle_ ? ", cyclic" : ", acyclic") +
                    ")\n";
  for (size_t i = 0; i < rule_ids_.size(); ++i) {
    out += "  " + rule_ids_[i] + (cyclic_[i] ? " [cyclic]" : "") + " ->";
    for (const std::string& succ : successor_names_[i]) {
      out += " " + succ;
    }
    out += "\n";
  }
  return out;
}

}  // namespace codb
