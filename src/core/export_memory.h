// Per-link export memory: which frontiers this node has already shipped
// to each importer, persisted ACROSS global updates (DESIGN.md §14).
//
// The per-update sent-sets inside UpdateManager dedup re-derivations
// within one update; incremental (semi-naive) updates additionally need
// to know what every PREVIOUS update exported, or a delta firing would
// re-ship — and, for rules with existential head variables, re-mint nulls
// for — frontiers the importer already holds. The memory lives in the
// Node (like the update sequence counter) so it survives the manager
// rebuilds a reconfiguration performs.
//
// Invariant: a recorded frontier has been handed to the reliability
// layer for shipment to the importer. On a send failure the caller
// Forget()s the batch, trading a possible future re-ship (harmless:
// importers store sets) for never silently missing an export. A refresh
// update Reset()s the memory network-wide — its drop-and-rederive
// semantics restate every export from scratch, which is also how the
// memory recovers from an importer that lost its store.

#ifndef CODB_CORE_EXPORT_MEMORY_H_
#define CODB_CORE_EXPORT_MEMORY_H_

#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "relation/tuple.h"

namespace codb {

class ExportMemory {
 public:
  // Reconciles the memory with the current rule set: entries for rules
  // that disappeared are dropped, and an entry whose rule *definition*
  // changed (fingerprint mismatch) is cleared — frontiers recorded for
  // the old body say nothing about the new one. Called by the update
  // manager's Init on every reconfiguration.
  void SyncRules(const std::map<std::string, std::string>& fingerprints);

  // Records `frontier` as exported on `rule_id`; returns true when it
  // was not recorded before.
  bool Record(const std::string& rule_id, const Tuple& frontier);

  // True when `frontier` was already recorded as exported on `rule_id`.
  bool Seen(const std::string& rule_id, const Tuple& frontier) const;

  // Un-records a batch whose shipment failed, so a later update may
  // re-derive and re-ship it.
  void Forget(const std::string& rule_id,
              const std::vector<Tuple>& frontiers);

  // Drops everything (refresh updates: every export is restated).
  void Reset();

  // Total recorded frontiers across all rules (tests, reports).
  size_t TotalFrontiers() const;

 private:
  struct RuleMemory {
    std::string fingerprint;
    std::unordered_set<Tuple, TupleHash> sent;
  };

  // Own mutex (not the manager's): after a reconfiguration the old
  // manager may still drain in-flight flows on strands while the new one
  // is already live, and both point here.
  mutable std::mutex mu_;
  std::map<std::string, RuleMemory> rules_;
};

}  // namespace codb

#endif  // CODB_CORE_EXPORT_MEMORY_H_
