// The super-peer (paper, section 4).
//
// A peer with extra experiment-orchestration duties: it reads the
// coordination rules for all peers from a file, broadcasts that file to
// every peer on the network (peers then drop old rules/pipes and build the
// new ones — the super-peer can therefore change the topology at runtime),
// and collects each node's statistical module contents, aggregating them
// into the final statistical report.
//
// Federation (DESIGN.md §11): a large deployment runs several super-peers,
// each owning a *region* (a subset of the node names). A regioned
// super-peer broadcasts and collects only inside its region, then
// exchanges its aggregated digest with the other super-peers over
// kFederationReport, so every super-peer can render the network-wide
// report without any of them having to talk to every node. A super-peer
// may also run its own membership session over its region pipes; an
// evicted node is dropped from the pending-stats count (collection cannot
// hang on a dead node) and skipped by future broadcasts/collections.

#ifndef CODB_CORE_SUPER_PEER_H_
#define CODB_CORE_SUPER_PEER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/link_graph.h"
#include "core/statistics.h"
#include "membership/heartbeat.h"
#include "membership/membership.h"
#include "net/network_interface.h"

namespace codb {

// Network-wide (or region-wide, on a regioned super-peer) aggregation of
// one global update, built from the per-node reports collected.
struct AggregatedUpdateStats {
  FlowId update;
  size_t nodes_reporting = 0;
  int64_t total_virtual_us = -1;   // max complete - min start across nodes
  // The endpoints total_virtual_us was computed from, kept so a federation
  // merge across super-peers recomputes the global span from the extreme
  // endpoints instead of (wrongly) combining per-region spans.
  int64_t min_start_virtual_us = -1;
  int64_t max_complete_virtual_us = -1;
  double total_wall_micros = 0;
  uint64_t data_messages = 0;      // received side, network-wide
  uint64_t data_bytes = 0;
  uint64_t tuples_added = 0;
  uint32_t longest_path_nodes = 0;
  std::map<std::string, RuleTrafficStats> per_rule;  // received per rule

  // Absorbs another super-peer's aggregate of the same update: sums add,
  // maxima max, and the virtual span is recomputed from the merged
  // endpoints.
  void Merge(const AggregatedUpdateStats& other);

  void SerializeTo(WireWriter& writer) const;
  static Result<AggregatedUpdateStats> DeserializeFrom(WireReader& reader);
};

// kFederationReport payload: one super-peer's digest of its region — the
// per-update aggregates plus the point-wise merged metrics snapshot of
// every node that reported.
struct FederationReportPayload {
  std::string super_name;
  uint64_t nodes_reporting = 0;
  std::vector<AggregatedUpdateStats> aggregates;
  MetricsSnapshot metrics;

  std::vector<uint8_t> Serialize() const;
  static Result<FederationReportPayload> Deserialize(
      const std::vector<uint8_t>& payload);
};

class SuperPeer : public NetworkPeer {
 public:
  // Joins the network under the given name.
  static std::unique_ptr<SuperPeer> Create(NetworkBase* network,
                                           const std::string& name =
                                               "super-peer");
  ~SuperPeer() override;

  PeerId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Loads the coordination-rules file (text or parsed form).
  Status LoadConfigText(const std::string& text);
  Status LoadConfig(NetworkConfig config);
  const NetworkConfig* config() const { return config_.get(); }

  // Restricts this super-peer to the named nodes: BroadcastConfig and
  // RequestStats only talk to region members. An empty region (the
  // default) means the whole network — the historical single-super mode.
  void SetRegion(std::vector<std::string> node_names);
  const std::set<std::string>& region() const { return region_; }

  // Opens pipes to every alive config node in the region and distributes
  // the current configuration: each peer gets its projected slice (first
  // contact) or a version-keyed delta against the slice version it last
  // acknowledged (DESIGN.md §13). The version is bumped exactly once per
  // call, BEFORE any send, and sends are best-effort: a failed delivery is
  // recorded in LastBroadcastFailures() and healed by the retransmit
  // sweep, never aborting the loop mid-region.
  Status BroadcastConfig();

  // The configuration version of the last broadcast (0 before the first).
  uint64_t config_version() const;

  // The slice version `node_name` last acknowledged (0 if none).
  uint64_t AckedVersionOf(const std::string& node_name) const;

  // Node names whose send failed during the last BroadcastConfig call.
  std::vector<std::string> LastBroadcastFailures() const;

  // Tunes the retransmit sweep that re-sends the current version to peers
  // that have not acknowledged it: `period_us` between sweeps (<= 0
  // disables), at most `max_rounds` sweeps per broadcast. The sweep stops
  // re-arming once every region peer acknowledged, so Run()-driven tests
  // still quiesce.
  void SetConfigRetransmit(int64_t period_us, int max_rounds);

  // Asks every node in the region for its statistical module contents.
  // Collection is asynchronous: run the network, then check
  // CollectionComplete(). Thread-safe against concurrently arriving
  // reports (replies can land on the threaded runtime while the requests
  // are still going out). Peers the membership session evicted are
  // skipped.
  Status RequestStats();
  bool CollectionComplete() const { return pending_stats_.load() == 0; }

  // Node name -> reports, from the last collection. Like the other
  // read-side accessors (Aggregate, FinalReport), call this while the
  // network is quiescent — after Run() returned.
  const std::map<std::string, std::vector<UpdateReport>>& collected() const {
    return collected_;
  }
  // Node name -> durability counters from the same collection (only nodes
  // whose bundle reported any durable activity appear).
  const std::map<std::string, DurabilityStats>& collected_durability() const {
    return collected_durability_;
  }

  // Node name -> metric registry snapshot from the same collection (only
  // nodes whose registry had any instruments appear).
  const std::map<std::string, MetricsSnapshot>& collected_metrics() const {
    return collected_metrics_;
  }

  // Point-wise merge of every collected node's metrics snapshot.
  MetricsSnapshot MergedMetrics() const;

  // Aggregates the collected reports per update.
  std::vector<AggregatedUpdateStats> Aggregate() const;

  // The final statistical report of the demo.
  std::string FinalReport() const;

  // -- observability --------------------------------------------------------

  // Attaches this super-peer's own cost ledger to the network, so its
  // orchestration traffic (config broadcasts, stats collections,
  // federation exchanges) is classified and accounted like node traffic.
  // Call after Create, while the network is quiescent; off by default.
  void EnableProfiling();
  CostLedger& cost() { return cost_; }
  const CostLedger& cost() const { return cost_; }

  // -- membership -----------------------------------------------------------

  // Runs a heartbeat session over this super-peer's pipes (its region,
  // once BroadcastConfig opened them). An evicted node is removed from
  // any in-flight stats collection so CollectionComplete() cannot hang on
  // a dead node, and is skipped by later broadcasts/collections.
  Status EnableMembership(const MembershipOptions& options);
  HeartbeatSession* membership() { return membership_.get(); }

  // False only for peers the membership session evicted.
  bool IsPresumedAlive(PeerId peer) const;

  // -- federation -----------------------------------------------------------

  // Registers another super-peer as a federation partner (call on both
  // sides). ShareWithFederation sends to — and FederationComplete waits
  // for — exactly these peers.
  void AddFederationPeer(PeerId super);

  // Sends this super-peer's region digest (aggregates + merged metrics)
  // to every federation partner. Call after a collection completed; run
  // the network, then check FederationComplete().
  Status ShareWithFederation();

  // True once a report from every federation partner has arrived.
  bool FederationComplete() const;

  // Partner peer id -> its last region digest.
  const std::map<uint32_t, FederationReportPayload>& federation_reports()
      const {
    return federation_reports_;
  }

  // Own region aggregate merged with every partner's digest: the
  // network-wide per-update statistics.
  std::vector<AggregatedUpdateStats> FederatedAggregate() const;

  // Own merged metrics merged with every partner's snapshot.
  MetricsSnapshot FederatedMetrics() const;

  // The network-wide final report, rendered from the federated view.
  std::string FederatedReport() const;

  // -- NetworkPeer ----------------------------------------------------------
  void HandleMessage(const Message& message) override;

 private:
  // Fans the membership session's eviction events into the super-peer
  // (same shape as Node::MembershipFanout).
  struct MembershipFanout : MembershipListener {
    explicit MembershipFanout(SuperPeer* s) : super(s) {}
    void OnPeerEvicted(PeerId peer, int64_t at_us) override;
    SuperPeer* super;
  };

  // Last slice state a peer reported (via kConfigAck or kConfigFetch),
  // keyed by node name so the record survives a peer-id change across a
  // restart.
  struct PeerConfigState {
    uint64_t version = 0;
    uint64_t checksum = 0;
  };

  SuperPeer(NetworkBase* network, std::string name);

  // True when `peer` is inside this super-peer's region (or no region is
  // set) and not evicted.
  bool InRegion(PeerId peer) const;

  void OnPeerEvicted(PeerId peer);

  // Sends `peer_name`'s slice of the current config: a delta against its
  // acknowledged version when the patch base is in the history and the
  // peer's reported checksum matches it, a full slice otherwise.
  // config_mutex_ must be held.
  Status SendConfigTo(PeerId peer, const std::string& peer_name);

  // Retransmit sweep: re-sends the current version to unacknowledged
  // region peers, re-arming until everyone acked, the round cap is hit,
  // or a newer broadcast superseded this generation.
  void ScheduleSweep(uint64_t generation, int round);
  void RetransmitSweep(uint64_t generation, int round);

  void HandleConfigAck(const Message& message);
  void HandleConfigFetch(const Message& message);

  NetworkBase* network_;
  std::string name_;
  PeerId id_;
  uint64_t config_version_ = 0;
  std::unique_ptr<NetworkConfig> config_;
  std::set<std::string> region_;  // empty = whole network

  // Distribution state (DESIGN.md §13), guarded by config_mutex_ against
  // acks/fetches landing on the threaded runtime mid-broadcast.
  mutable std::mutex config_mutex_;
  std::map<std::string, PeerConfigState> acked_;
  // version -> full config at that broadcast, bounded: patch bases for
  // deltas and fetch catch-up. A peer older than the horizon gets a full
  // slice instead.
  std::map<uint64_t, NetworkConfig> config_history_;
  static constexpr size_t kConfigHistoryLimit = 16;
  std::unique_ptr<LinkGraph> config_graph_;  // of config_, for cycle flags
  std::vector<std::string> broadcast_failures_;
  uint64_t broadcast_generation_ = 0;
  int64_t retransmit_period_us_ = 50'000;
  int max_retransmit_rounds_ = 10;
  // Guards the sweep timer callbacks against a destroyed super-peer (the
  // network may still hold scheduled closures).
  std::shared_ptr<std::atomic<bool>> alive_ =
      std::make_shared<std::atomic<bool>>(true);

  // Set once in EnableMembership, then immutable (read without locks; the
  // session serializes internally — same discipline as Node).
  std::shared_ptr<HeartbeatSession> membership_;
  std::unique_ptr<MembershipFanout> membership_fanout_;

  std::atomic<size_t> pending_stats_{0};
  uint64_t stats_request_id_ = 0;
  mutable std::mutex collected_mutex_;  // guards collected_* and awaiting_
                                        // against mid-request replies on
                                        // the threaded runtime
  std::set<uint32_t> awaiting_;  // peers the current collection waits on
  std::map<std::string, std::vector<UpdateReport>> collected_;
  std::map<std::string, DurabilityStats> collected_durability_;
  std::map<std::string, MetricsSnapshot> collected_metrics_;

  std::set<uint32_t> federation_peers_;
  std::map<uint32_t, FederationReportPayload> federation_reports_;

  // The super-peer's own wire-cost accounting (idle until
  // EnableProfiling); the region nodes' ledgers arrive as cost.* entries
  // inside their collected metrics snapshots.
  CostLedger cost_;
};

}  // namespace codb

#endif  // CODB_CORE_SUPER_PEER_H_
