// The super-peer (paper, section 4).
//
// A peer with extra experiment-orchestration duties: it reads the
// coordination rules for all peers from a file, broadcasts that file to
// every peer on the network (peers then drop old rules/pipes and build the
// new ones — the super-peer can therefore change the topology at runtime),
// and collects each node's statistical module contents, aggregating them
// into the final statistical report.

#ifndef CODB_CORE_SUPER_PEER_H_
#define CODB_CORE_SUPER_PEER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/statistics.h"
#include "net/network_interface.h"

namespace codb {

// Network-wide aggregation of one global update, built from the per-node
// reports the super-peer collected.
struct AggregatedUpdateStats {
  FlowId update;
  size_t nodes_reporting = 0;
  int64_t total_virtual_us = -1;   // max complete - min start across nodes
  double total_wall_micros = 0;
  uint64_t data_messages = 0;      // received side, network-wide
  uint64_t data_bytes = 0;
  uint64_t tuples_added = 0;
  uint32_t longest_path_nodes = 0;
  std::map<std::string, RuleTrafficStats> per_rule;  // received per rule
};

class SuperPeer : public NetworkPeer {
 public:
  // Joins the network under the given name.
  static std::unique_ptr<SuperPeer> Create(NetworkBase* network,
                                           const std::string& name =
                                               "super-peer");

  PeerId id() const { return id_; }

  // Loads the coordination-rules file (text or parsed form).
  Status LoadConfigText(const std::string& text);
  Status LoadConfig(NetworkConfig config);
  const NetworkConfig* config() const { return config_.get(); }

  // Opens pipes to every alive peer and broadcasts the current
  // configuration; each broadcast bumps the version, so re-broadcasting a
  // modified config reconfigures the network at runtime.
  Status BroadcastConfig();

  // Asks every node for its statistical module contents. Collection is
  // asynchronous: run the network, then check CollectionComplete().
  // Thread-safe against concurrently arriving reports (replies can land
  // on the threaded runtime while the requests are still going out).
  Status RequestStats();
  bool CollectionComplete() const { return pending_stats_.load() == 0; }

  // Node name -> reports, from the last collection. Like the other
  // read-side accessors (Aggregate, FinalReport), call this while the
  // network is quiescent — after Run() returned.
  const std::map<std::string, std::vector<UpdateReport>>& collected() const {
    return collected_;
  }
  // Node name -> durability counters from the same collection (only nodes
  // whose bundle reported any durable activity appear).
  const std::map<std::string, DurabilityStats>& collected_durability() const {
    return collected_durability_;
  }

  // Node name -> metric registry snapshot from the same collection (only
  // nodes whose registry had any instruments appear).
  const std::map<std::string, MetricsSnapshot>& collected_metrics() const {
    return collected_metrics_;
  }

  // Point-wise merge of every collected node's metrics snapshot.
  MetricsSnapshot MergedMetrics() const;

  // Aggregates the collected reports per update.
  std::vector<AggregatedUpdateStats> Aggregate() const;

  // The final statistical report of the demo.
  std::string FinalReport() const;

  // -- NetworkPeer ----------------------------------------------------------
  void HandleMessage(const Message& message) override;

 private:
  SuperPeer(NetworkBase* network, std::string name);

  NetworkBase* network_;
  std::string name_;
  PeerId id_;
  uint64_t config_version_ = 0;
  std::unique_ptr<NetworkConfig> config_;

  std::atomic<size_t> pending_stats_{0};
  uint64_t stats_request_id_ = 0;
  std::mutex collected_mutex_;  // guards collected_ against mid-request
                                // replies on the threaded runtime
  std::map<std::string, std::vector<UpdateReport>> collected_;
  std::map<std::string, DurabilityStats> collected_durability_;
  std::map<std::string, MetricsSnapshot> collected_metrics_;
};

}  // namespace codb

#endif  // CODB_CORE_SUPER_PEER_H_
