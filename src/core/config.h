// The network configuration: node declarations plus the coordination-rule
// file the super-peer reads and broadcasts (paper, section 4).
//
// Text format (one declaration per line; '#' starts a comment):
//
//   node n1
//     relation r(a:int, b:string)
//   node n2 mediator
//     relation t(a:int)
//   rule r1 n2 <- n1 : t(X) :- r(X, Y), X > 0.
//
// A rule line reads: rule <id> <importer> <- <exporter> : <glav query>.
// The head of the query is over the importer's schema, the body over the
// exporter's schema.

#ifndef CODB_CORE_CONFIG_H_
#define CODB_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "query/rule.h"
#include "relation/schema.h"
#include "util/status.h"

namespace codb {

// A key (functional-dependency) constraint on one relation of a node:
// the listed columns determine the whole tuple. Nodes whose local data
// violates their own constraints are *locally inconsistent*; per the
// paper's design principle (d), such inconsistency does not propagate —
// an inconsistent node exports nothing until repaired.
struct KeyConstraint {
  std::string relation;
  std::vector<std::string> columns;

  std::string ToString() const;
};

struct NodeDecl {
  std::string name;
  bool mediator = false;
  std::vector<RelationSchema> relations;
  std::vector<KeyConstraint> keys;
};

class NetworkConfig {
 public:
  NetworkConfig() = default;

  static Result<NetworkConfig> Parse(const std::string& text);
  std::string Serialize() const;

  // Canonical form: the same declarations in a fixed order (nodes sorted
  // by name, rules by id), so two configs with equal content serialize —
  // and checksum — identically regardless of how they were assembled
  // (parsed from text, projected, or patched together).
  std::string CanonicalText() const;
  // FNV-1a 64 over CanonicalText(); the pre/post-state checksum of the
  // delta distribution protocol (core/config_distribution.h).
  uint64_t CanonicalChecksum() const;

  Status AddNode(NodeDecl node);
  Status AddRule(CoordinationRule rule);
  // Replaces the declaration of an existing node (or adds a new one).
  void UpsertNode(NodeDecl node);
  Status RemoveNode(const std::string& name);
  Status RemoveRule(const std::string& rule_id);

  // This node's slice of the configuration: its own declaration, its
  // acquaintances' declarations, and every rule it is an endpoint of.
  // The slice is itself a valid NetworkConfig, and — because the 1-hop
  // dependency neighborhood of a node's incident rules lies entirely
  // within its incident rule set — a LinkGraph built from it answers
  // RelevantFor/DependentOn exactly as the full config's graph does for
  // those rules (cycle flags need global knowledge and are shipped
  // separately; see core/config_distribution.h).
  NetworkConfig ProjectFor(const std::string& node_name) const;

  // Structural checks: unique node names and rule ids, rules connecting
  // two distinct declared nodes, and every rule type-checking against the
  // two node schemas.
  Status Validate() const;

  const NodeDecl* FindNode(const std::string& name) const;
  DatabaseSchema SchemaOf(const std::string& node_name) const;

  const std::vector<NodeDecl>& nodes() const { return nodes_; }
  const std::vector<CoordinationRule>& rules() const { return rules_; }

  const CoordinationRule* FindRule(const std::string& rule_id) const;

  // Rules a given node imports through (it is the importer).
  std::vector<const CoordinationRule*> OutgoingOf(
      const std::string& node_name) const;
  // Rules a given node exports through (it is the exporter).
  std::vector<const CoordinationRule*> IncomingOf(
      const std::string& node_name) const;

  // Names of the node's acquaintances: every node it shares at least one
  // coordination rule with (in either direction). This — not mere pipe
  // adjacency — is the set protocol floods address.
  std::vector<std::string> AcquaintancesOf(const std::string& node_name)
      const;

  // Rule-level redundancy: (subsumed, subsuming) pairs of rule ids where
  // both rules connect the same importer/exporter pair and the subsumed
  // rule's query is contained in the subsuming rule's query — everything
  // the first can ship, the second ships too, so executing the first is
  // pure overhead. Detection uses Chandra–Merlin containment and only
  // considers the comparison-free single-head fragment it supports;
  // other rules are conservatively kept.
  std::vector<std::pair<std::string, std::string>> FindSubsumedRules()
      const;

 private:

  std::vector<NodeDecl> nodes_;
  std::vector<CoordinationRule> rules_;
};

// Text fragments of single declarations, used by the patch records of the
// delta distribution protocol (core/config_distribution.h). Each round-trips
// through the corresponding parse helper.
std::string NodeDeclText(const NodeDecl& node);
std::string RuleText(const CoordinationRule& rule);
Result<NodeDecl> ParseNodeDeclText(const std::string& text);
Result<CoordinationRule> ParseRuleText(const std::string& line);

}  // namespace codb

#endif  // CODB_CORE_CONFIG_H_
