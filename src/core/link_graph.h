// The link-dependency graph.
//
// Terminology from the paper (section 3): at a node, a coordination rule is
// an *incoming link* if an acquaintance uses it to import data from that
// node, and an *outgoing link* if the node itself imports through it. An
// incoming link i *depends on* an outgoing link o — equivalently, o is
// *relevant for* i — if the head of o references a relation referenced by
// a body subgoal of i.
//
// Network-wide, every rule is the outgoing link of its importer and the
// incoming link of its exporter, so the dependency relation forms a
// directed graph over rules: edge o -> i iff importer(o) == exporter(i)
// and head-relations(o) ∩ body-relations(i) ≠ ∅ (data arriving through o
// can trigger new results on i).
//
// The graph is computable at every peer because the super-peer broadcasts
// the complete rule file. It drives:
//   * the incremental recomputation step (which incoming links to re-run
//     when data arrives on an outgoing link),
//   * link closing: rules on dependency cycles (non-trivial SCCs) cannot
//     close inductively and wait for global quiescence,
//   * the maximal-simple-dependency-path statistics of the demo.

#ifndef CODB_CORE_LINK_GRAPH_H_
#define CODB_CORE_LINK_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"

namespace codb {

class LinkGraph {
 public:
  // Builds the dependency graph for `config` (which must Validate()),
  // detecting cycles locally via Tarjan SCC.
  static LinkGraph Build(const NetworkConfig& config);

  // Builds the graph for a *projected slice* of the configuration
  // (NetworkConfig::ProjectFor): edges come from the slice, but the cycle
  // flags — which need global knowledge the slice lacks — are supplied by
  // the super-peer. `cyclic_rules` lists the slice rules on a global
  // dependency cycle; `has_any_cycle` is the network-wide flag.
  static LinkGraph BuildProjected(const NetworkConfig& slice,
                                  const std::set<std::string>& cyclic_rules,
                                  bool has_any_cycle);

  // Outgoing links relevant for incoming link `rule_id` (predecessors).
  const std::vector<std::string>& RelevantFor(
      const std::string& rule_id) const;

  // Incoming links dependent on outgoing link `rule_id` (successors).
  const std::vector<std::string>& DependentOn(
      const std::string& rule_id) const;

  // True if the rule lies on a dependency cycle (member of a non-trivial
  // SCC, or has a self-loop).
  bool IsCyclic(const std::string& rule_id) const;

  bool HasAnyCycle() const { return has_any_cycle_; }

  size_t rule_count() const { return rule_ids_.size(); }
  const std::vector<std::string>& rule_ids() const { return rule_ids_; }

  // Length (in edges) of the longest simple path in the dependency graph.
  // Exponential in the worst case; used for statistics on demo-sized
  // networks only. Capped by `max_explored` DFS steps; returns a lower
  // bound if the cap is hit.
  int LongestSimplePath(size_t max_explored = 1'000'000) const;

  std::string ToString() const;

 private:
  static LinkGraph BuildEdges(const NetworkConfig& config);
  void ComputeSccs();

  std::vector<std::string> rule_ids_;
  std::map<std::string, int> index_;               // rule id -> dense index
  std::vector<std::vector<int>> successors_;       // o -> dependent i's
  std::vector<std::vector<int>> predecessors_;     // i -> relevant o's
  std::vector<bool> cyclic_;
  bool has_any_cycle_ = false;

  // String views of adjacency, materialized for the public API.
  std::vector<std::vector<std::string>> successor_names_;
  std::vector<std::vector<std::string>> predecessor_names_;
  static const std::vector<std::string> kEmpty;
};

}  // namespace codb

#endif  // CODB_CORE_LINK_GRAPH_H_
