// ThreadedNetwork: a real concurrent runtime behind the NetworkBase
// interface.
//
// Where the simulator (net/network.h) interleaves everything on one
// virtual timeline, this implementation gives every peer its own delivery
// thread draining a FIFO inbox, plus a timer thread for scheduled actions.
// It demonstrates that the coDB protocols — diffusing computations,
// acknowledgements, link closing — do not depend on simulator determinism:
// the integration tests run the same global updates over real threads and
// check the same oracle.
//
// Concurrency model:
//   * one worker thread per peer; a peer never handles two events at once
//     (messages and pipe-closed notifications are serialized through its
//     inbox);
//   * distinct peers run genuinely in parallel;
//   * peer-facing API calls (Node::StartGlobalUpdate etc.) must happen
//     while the network is quiescent — before traffic starts or after
//     Run() returns (Run() blocks until every inbox is empty, no handler
//     is executing and no timer is due, and synchronizes memory with the
//     workers);
//   * pipe latency is honoured by delaying delivery; bandwidth-queueing
//     is modelled per pipe like the simulator.

#ifndef CODB_NET_THREADED_NETWORK_H_
#define CODB_NET_THREADED_NETWORK_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/network_interface.h"

namespace codb {

class ThreadedNetwork : public NetworkBase {
 public:
  ThreadedNetwork();
  ~ThreadedNetwork() override;
  ThreadedNetwork(const ThreadedNetwork&) = delete;
  ThreadedNetwork& operator=(const ThreadedNetwork&) = delete;

  using NetworkBase::OpenPipe;
  using NetworkBase::Run;

  PeerId Join(const std::string& name, NetworkPeer* peer) override;
  Status Leave(PeerId id) override;
  bool IsAlive(PeerId id) const override;
  std::string NameOf(PeerId id) const override;
  Result<PeerId> FindByName(const std::string& name) const override;
  std::vector<PeerId> AlivePeers() const override;

  Status OpenPipe(PeerId a, PeerId b, LinkProfile profile) override;
  Status ClosePipe(PeerId a, PeerId b) override;
  Status SetFaultProfile(PeerId a, PeerId b,
                         const FaultProfile& fault) override;
  void SetDefaultFaultProfile(const FaultProfile& fault) override;
  bool HasPipe(PeerId from, PeerId to) const override;
  std::vector<PeerId> Neighbors(PeerId id) const override;
  size_t open_pipe_count() const override;

  Status Send(Message message) override;
  void ScheduleAt(int64_t time_us, std::function<void()> action) override;
  void ScheduleAfter(int64_t delay_us,
                     std::function<void()> action) override;
  void ScheduleMaintenance(int64_t delay_us,
                           std::function<void()> action) override;

  // Wall-clock microseconds since construction.
  int64_t now_us() const override;

  // Blocks until quiescent; returns the number of events (messages +
  // notifications + timer actions) processed since the previous Run().
  // Pending maintenance timers/messages do not count as busy — they keep
  // firing on their own threads but never hold Run() open.
  uint64_t Run(uint64_t max_events) override;

  // Blocks until the wall clock reaches `deadline_us` (now_us() scale),
  // letting maintenance traffic fire, then drains to quiescence.
  uint64_t RunUntil(int64_t deadline_us) override;

  // Work a peer runs on its own executor (a node's flow strands) joins
  // the busy_ accounting so Run() waits for it like any inbox item.
  bool SupportsBackgroundWork() const override { return true; }
  void BeginExternalWork() override;
  void EndExternalWork() override;

  TransportStats& stats() override { return stats_; }
  const TransportStats& stats() const override { return stats_; }

 private:
  struct InboxItem {
    // Exactly one of the three is meaningful.
    std::unique_ptr<Message> message;
    bool pipe_closed = false;
    PeerId closed_other;
    std::chrono::steady_clock::time_point due;
    // When the item entered the inbox; the gap to dispatch is the queue
    // sojourn (modelled wire delay + any worker backlog) the profiler
    // reports.
    std::chrono::steady_clock::time_point enqueued;
    // Maintenance items do not count toward busy_ while queued; the
    // worker counts them only while their handler is executing.
    bool maintenance = false;
  };

  struct Worker {
    std::string name;
    NetworkPeer* handler = nullptr;
    bool alive = false;
    std::thread thread;
    std::deque<InboxItem> inbox;  // guarded by mutex_
  };

  struct PipeState {
    LinkProfile profile;
    bool open = false;
    // Bandwidth queueing: when the link is next free, in now_us() time.
    int64_t busy_until_us = 0;
    // Same decision sequence as the simulator's Pipe for identical
    // per-pipe traffic (guarded by mutex_, like the rest of the state).
    FaultInjector injector;
  };

  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::function<void()> action;
    bool maintenance = false;  // pending: not busy_; executing: busy_
  };

  void WorkerLoop(uint32_t index);
  void TimerLoop();
  void EnqueueLocked(uint32_t peer, InboxItem item);
  void NotifyPipeClosedLocked(PeerId peer, PeerId other);
  const PipeState* FindPipeLocked(PeerId from, PeerId to) const;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;       // workers + timer wait on this
  std::condition_variable quiescent_cv_;  // Run() waits on this

  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<std::pair<uint32_t, uint32_t>, PipeState> pipes_;
  FaultProfile default_fault_;  // guarded by mutex_
  std::vector<Timer> timers_;
  std::thread timer_thread_;

  // Items enqueued-but-not-finished (inbox entries + running handlers +
  // pending timers). Quiescent == 0. Guarded by mutex_.
  uint64_t busy_ = 0;
  uint64_t events_processed_ = 0;
  bool shutdown_ = false;

  std::chrono::steady_clock::time_point epoch_;
  TransportStats stats_;  // guarded by mutex_
};

}  // namespace codb

#endif  // CODB_NET_THREADED_NETWORK_H_
