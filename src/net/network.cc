#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/trace.h"
#include "util/logging.h"

namespace codb {

namespace {

std::pair<uint32_t, uint32_t> PipeKey(PeerId from, PeerId to) {
  return {from.value, to.value};
}

}  // namespace

PeerId Network::Join(const std::string& name, NetworkPeer* peer) {
  PeerId id(static_cast<uint32_t>(peers_.size()));
  peers_.push_back({name, peer, /*alive=*/true});
  adjacency_.emplace_back();
  Tracer::Global().SetNodeName(id.value, name);
  CODB_LOG(kDebug) << "network: " << name << " joined as "
                   << id.ToString();
  return id;
}

Status Network::Leave(PeerId id) {
  if (!IsAlive(id)) {
    return Status::NotFound(id.ToString() + " is not on the network");
  }
  peers_[id.value].alive = false;
  peers_[id.value].handler = nullptr;
  std::vector<uint32_t> to_notify;
  for (uint32_t other : adjacency_[id.value]) {
    Pipe* forward = FindPipe(id, PeerId(other));
    Pipe* backward = FindPipe(PeerId(other), id);
    if (forward != nullptr && forward->open()) to_notify.push_back(other);
    if (forward != nullptr) forward->Close();
    if (backward != nullptr) backward->Close();
    adjacency_[other].erase(id.value);
  }
  adjacency_[id.value].clear();
  for (uint32_t other : to_notify) {
    NotifyPipeClosed(PeerId(other), id);
  }
  return Status::Ok();
}

void Network::NotifyPipeClosed(PeerId peer, PeerId other) {
  if (!IsAlive(peer)) return;
  NetworkPeer* handler = peers_[peer.value].handler;
  if (handler != nullptr) handler->HandlePipeClosed(other);
}

bool Network::IsAlive(PeerId id) const {
  return id.valid() && id.value < peers_.size() && peers_[id.value].alive;
}

std::string Network::NameOf(PeerId id) const {
  if (!id.valid() || id.value >= peers_.size()) return "<unknown>";
  return peers_[id.value].name;
}

Result<PeerId> Network::FindByName(const std::string& name) const {
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].alive && peers_[i].name == name) {
      return PeerId(static_cast<uint32_t>(i));
    }
  }
  return Status::NotFound("no alive peer named '" + name + "'");
}

std::vector<PeerId> Network::AlivePeers() const {
  std::vector<PeerId> out;
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].alive) out.push_back(PeerId(static_cast<uint32_t>(i)));
  }
  return out;
}

Status Network::OpenPipe(PeerId a, PeerId b, LinkProfile profile) {
  if (!IsAlive(a) || !IsAlive(b)) {
    return Status::Unavailable("both endpoints must be alive to open a pipe");
  }
  if (a == b) {
    return Status::InvalidArgument("cannot open a pipe to self");
  }
  // Re-opening replaces a closed pipe.
  if (!profile.fault.Active() && default_fault_.Active()) {
    profile.fault = default_fault_;
  }
  pipes_.insert_or_assign(PipeKey(a, b), Pipe(a, b, profile));
  pipes_.insert_or_assign(PipeKey(b, a), Pipe(b, a, profile));
  adjacency_[a.value].insert(b.value);
  adjacency_[b.value].insert(a.value);
  return Status::Ok();
}

Status Network::SetFaultProfile(PeerId a, PeerId b,
                                const FaultProfile& fault) {
  Pipe* forward = FindPipe(a, b);
  Pipe* backward = FindPipe(b, a);
  if (forward == nullptr || backward == nullptr) {
    return Status::NotFound("no pipe between " + a.ToString() + " and " +
                            b.ToString());
  }
  forward->SetFault(fault);
  backward->SetFault(fault);
  return Status::Ok();
}

void Network::SetDefaultFaultProfile(const FaultProfile& fault) {
  default_fault_ = fault;
  for (auto& [key, pipe] : pipes_) {
    if (pipe.open()) pipe.SetFault(fault);
  }
}

Status Network::ClosePipe(PeerId a, PeerId b) {
  Pipe* forward = FindPipe(a, b);
  Pipe* backward = FindPipe(b, a);
  if (forward == nullptr && backward == nullptr) {
    return Status::NotFound("no pipe between " + a.ToString() + " and " +
                            b.ToString());
  }
  bool was_open = (forward != nullptr && forward->open()) ||
                  (backward != nullptr && backward->open());
  if (forward != nullptr) forward->Close();
  if (backward != nullptr) backward->Close();
  if (a.value < adjacency_.size()) adjacency_[a.value].erase(b.value);
  if (b.value < adjacency_.size()) adjacency_[b.value].erase(a.value);
  if (was_open) {
    NotifyPipeClosed(a, b);
    NotifyPipeClosed(b, a);
  }
  return Status::Ok();
}

bool Network::HasPipe(PeerId from, PeerId to) const {
  const Pipe* pipe = FindPipe(from, to);
  return pipe != nullptr && pipe->open();
}

std::vector<PeerId> Network::Neighbors(PeerId id) const {
  std::vector<PeerId> out;
  if (!id.valid() || id.value >= adjacency_.size()) return out;
  for (uint32_t other : adjacency_[id.value]) {
    if (IsAlive(PeerId(other))) out.push_back(PeerId(other));
  }
  return out;
}

size_t Network::open_pipe_count() const {
  size_t n = 0;
  for (const auto& [key, pipe] : pipes_) {
    if (pipe.open()) ++n;
  }
  return n / 2;  // pipes are stored per direction
}

Pipe* Network::FindPipe(PeerId from, PeerId to) {
  auto it = pipes_.find(PipeKey(from, to));
  return it == pipes_.end() ? nullptr : &it->second;
}

const Pipe* Network::FindPipe(PeerId from, PeerId to) const {
  auto it = pipes_.find(PipeKey(from, to));
  return it == pipes_.end() ? nullptr : &it->second;
}

Status Network::Send(Message message) {
  if (!IsAlive(message.src)) {
    return Status::Unavailable("sender " + message.src.ToString() +
                               " is not on the network");
  }
  Pipe* pipe = FindPipe(message.src, message.dst);
  if (pipe == nullptr || !pipe->open()) {
    return Status::Unavailable("no open pipe " + message.src.ToString() +
                               " -> " + message.dst.ToString());
  }
  stats_.RecordSend(message);
  // The ledger mirrors TransportStats send accounting: bytes are charged
  // even when the fault injector then drops the message on the wire.
  RecordCostSend(message);
  FaultInjector::Decision fault = pipe->NextFault();
  if (fault.drop) {
    // The sender cannot tell a dropped message from a delivered one:
    // Send still succeeds and the bytes were charged above.
    stats_.RecordInjectedDrop();
    return Status::Ok();
  }
  if (Tracer::Global().enabled()) {
    message.trace_id = Tracer::Global().NoteSend();
  }
  int64_t arrival = pipe->ScheduleArrival(now_us_, message.WireSize());
  if (fault.extra_delay_us > 0) {
    stats_.RecordInjectedDelay();
    arrival += fault.extra_delay_us;
  }
  const bool maintenance = message.maintenance;
  Event event;
  event.time_us = arrival;
  event.seq = next_seq_++;
  event.enqueued_us = now_us_;
  if (fault.duplicate) {
    stats_.RecordInjectedDup();
    Event dup;
    // The copy rides right behind the original on the wire.
    dup.time_us = pipe->ScheduleArrival(now_us_, message.WireSize());
    dup.seq = next_seq_++;
    dup.enqueued_us = now_us_;
    dup.message = std::make_unique<Message>(message);
    PushEvent(std::move(dup), maintenance);
  }
  event.message = std::make_unique<Message>(std::move(message));
  PushEvent(std::move(event), maintenance);
  return Status::Ok();
}

void Network::ScheduleAt(int64_t time_us, std::function<void()> action) {
  Event event;
  event.time_us = std::max(time_us, now_us_);
  event.seq = next_seq_++;
  event.enqueued_us = now_us_;
  event.action = std::move(action);
  PushEvent(std::move(event), /*maintenance=*/false);
}

void Network::ScheduleAfter(int64_t delay_us, std::function<void()> action) {
  ScheduleAt(now_us_ + delay_us, std::move(action));
}

void Network::ScheduleMaintenance(int64_t delay_us,
                                  std::function<void()> action) {
  Event event;
  event.time_us = now_us_ + std::max<int64_t>(delay_us, 0);
  event.seq = next_seq_++;
  event.enqueued_us = now_us_;
  event.action = std::move(action);
  PushEvent(std::move(event), /*maintenance=*/true);
}

void Network::PushEvent(Event event, bool maintenance) {
  std::vector<Event>& lane = maintenance ? maintenance_events_ : events_;
  lane.push_back(std::move(event));
  std::push_heap(lane.begin(), lane.end(), EventLater());
  profiler_.NoteQueueDepth(maintenance, lane.size());
}

bool Network::PopNext(bool include_maintenance, Event* out) {
  const bool have_fg = !events_.empty();
  const bool have_mt = include_maintenance && !maintenance_events_.empty();
  if (!have_fg && !have_mt) return false;
  bool take_maintenance;
  if (have_fg && have_mt) {
    // Merge the lanes: earliest time wins, seq breaks ties, so the merged
    // order is exactly what a single heap would have produced.
    const Event& fg = events_.front();
    const Event& mt = maintenance_events_.front();
    take_maintenance = mt.time_us < fg.time_us ||
                       (mt.time_us == fg.time_us && mt.seq < fg.seq);
  } else {
    take_maintenance = have_mt;
  }
  std::vector<Event>& lane = take_maintenance ? maintenance_events_ : events_;
  std::pop_heap(lane.begin(), lane.end(), EventLater());
  *out = std::move(lane.back());
  lane.pop_back();
  return true;
}

void Network::Dispatch(const Event& event) {
  // Foreground time is monotone; a maintenance event can surface "late"
  // when Run() advanced the clock past its due point while it sat queued,
  // so the clock only ever moves forward.
  now_us_ = std::max(now_us_, event.time_us);

  Tracer& tracer = Tracer::Global();
  bool tracing = tracer.enabled();
  if (tracing) Tracer::SetVirtualTime(now_us_);

  if (event.message != nullptr) {
    const Message& msg = *event.message;
    // In-flight traffic is lost if the destination died or the pipe was
    // closed while the message was on the wire.
    if (!IsAlive(msg.dst) || !HasPipe(msg.src, msg.dst)) {
      stats_.RecordDrop(msg);
      return;
    }
    NetworkPeer* handler = peers_[msg.dst.value].handler;
    if (handler != nullptr) {
      // The profiler's sojourn is virtual (wire time: pipe latency plus
      // bandwidth queueing); handler service time is wall-clock, since a
      // handler runs in zero virtual time by construction.
      const bool profiling = profiler_.enabled();
      CostClass cls = CostClass::kData;
      std::chrono::steady_clock::time_point service_start;
      if (profiling) {
        cls = ClassifyMessage(msg);
        profiler_.RecordSojourn(cls, now_us_ - event.enqueued_us);
      }
      RecordCostRecv(msg);
      if (profiling) service_start = std::chrono::steady_clock::now();
      if (tracing) {
        uint64_t span = tracer.BeginSpan(msg.dst.value, "net.deliver");
        tracer.AddArg(span, "type", MessageTypeName(msg.type));
        tracer.AddArg(span, "bytes", std::to_string(msg.WireSize()));
        tracer.LinkDelivery(msg.trace_id, span);
        handler->HandleMessage(msg);
        tracer.EndSpan(span);
      } else {
        handler->HandleMessage(msg);
      }
      if (profiling) {
        profiler_.RecordService(
            cls, std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - service_start)
                     .count());
      }
    }
  } else if (event.action) {
    // For timers, lag is how far past its due time the virtual clock had
    // already advanced when the action ran (maintenance events surfacing
    // late under Run(); always 0 for foreground timers).
    profiler_.RecordTimerLag(now_us_ - event.time_us);
    event.action();
  }
}

bool Network::Step() {
  Event event;
  if (!PopNext(/*include_maintenance=*/false, &event)) return false;
  assert(event.time_us >= now_us_ && "virtual time must be monotone");
  Dispatch(event);
  return true;
}

uint64_t Network::Run(uint64_t max_events) {
  uint64_t processed = 0;
  while (processed < max_events && Step()) {
    ++processed;
  }
  if (processed == max_events) {
    CODB_LOG(kWarning) << "network: Run() hit the event cap ("
                       << max_events << ")";
  }
  return processed;
}

uint64_t Network::RunUntil(int64_t deadline_us) {
  uint64_t processed = 0;
  for (;;) {
    const bool have_fg = !events_.empty();
    const bool have_mt = !maintenance_events_.empty();
    if (!have_fg && !have_mt) break;
    int64_t next_due = INT64_MAX;
    if (have_fg) next_due = std::min(next_due, events_.front().time_us);
    if (have_mt) {
      next_due = std::min(next_due, maintenance_events_.front().time_us);
    }
    if (next_due > deadline_us) break;
    Event event;
    PopNext(/*include_maintenance=*/true, &event);
    Dispatch(event);
    ++processed;
  }
  now_us_ = std::max(now_us_, deadline_us);
  return processed;
}

}  // namespace codb
